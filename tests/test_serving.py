"""Tests for the online serving layer: sharded index, micro-batcher,
service facade, and store-backed model/index snapshots."""

import numpy as np
import pytest

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.persistence import save_uhscm
from repro.core.uhscm import UHSCM
from repro.errors import ConfigurationError, NotFittedError, ShapeError
from repro.pipeline import ArtifactStore
from repro.retrieval import HammingIndex, make_backend
from repro.serving import (
    INDEX_STAGE,
    EncodeBatcher,
    HashingService,
    ShardedIndex,
    load_model,
    publish_model,
)


def random_codes(n, k, seed=0):
    rng = np.random.default_rng(seed)
    return np.where(rng.random((n, k)) < 0.5, -1.0, 1.0)


def identity_network(bits=16, dim=8, rng=0, dtype="float64"):
    return HashingNetwork(bits, mode="feature", feature_extractor=lambda x: x,
                         feature_dim=dim, rng=rng, dtype=dtype)


class TestShardedIndex:
    def test_partition_by_id_modulo(self):
        index = ShardedIndex(8, n_shards=3).add(random_codes(10, 8))
        assert index.shard_sizes == (4, 3, 3)  # ids 0,3,6,9 / 1,4,7 / 2,5,8
        assert len(index) == 10

    @pytest.mark.parametrize("shard_backend", ["bruteforce", "multi-index"])
    def test_merge_identical_to_single_index_under_churn(self, shard_backend):
        k = 32
        single = HammingIndex(k)
        sharded = ShardedIndex(k, n_shards=3, shard_backend=shard_backend)
        rng = np.random.default_rng(3)
        for step in range(3):
            batch = random_codes(50, k, seed=50 + step)
            single.add(batch)
            sharded.add(batch)
            drop = rng.choice((step + 1) * 50, size=9, replace=False)
            assert single.remove(drop) == sharded.remove(drop)
        queries = random_codes(6, k, seed=60)
        s_ids, s_dist = single.search(queries, top_k=17)
        m_ids, m_dist = sharded.search(queries, top_k=17)
        np.testing.assert_array_equal(s_ids, m_ids)
        np.testing.assert_array_equal(s_dist, m_dist)
        for radius in (0, 5, k):
            for a, b in zip(single.radius_search(queries, radius),
                            sharded.radius_search(queries, radius)):
                np.testing.assert_array_equal(a, b)

    def test_more_shards_than_rows(self):
        index = ShardedIndex(8, n_shards=6).add(random_codes(3, 8, seed=1))
        assert len(index) == 3
        assert sum(index.shard_sizes) == 3
        ids, dist = index.search(random_codes(2, 8, seed=2), top_k=3)
        brute = HammingIndex(8).add(random_codes(3, 8, seed=1))
        b_ids, b_dist = brute.search(random_codes(2, 8, seed=2), top_k=3)
        np.testing.assert_array_equal(ids, b_ids)
        np.testing.assert_array_equal(dist, b_dist)

    def test_empty_raises_not_fitted(self):
        with pytest.raises(NotFittedError):
            ShardedIndex(8).search(random_codes(1, 8), top_k=1)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ShardedIndex(8, n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedIndex(8, shard_backend="sharded")
        with pytest.raises(ShapeError):
            ShardedIndex(0)

    def test_shard_options_forwarded(self):
        index = ShardedIndex(16, n_shards=2, shard_backend="multi-index",
                             shard_options={"n_tables": 2})
        assert all(shard.n_tables == 2 for shard in index.shards)


class TestEncodeBatcher:
    def test_size_trigger(self):
        net = identity_network()
        batcher = EncodeBatcher(net, max_batch=3, max_delay_s=100.0)
        vectors = np.random.default_rng(0).normal(size=(5, 8))
        tickets = [batcher.submit(v) for v in vectors]
        assert [t.ready for t in tickets] == [True] * 3 + [False] * 2
        assert batcher.flushes == 1
        assert len(batcher) == 2

    def test_deadline_trigger(self):
        clock = [0.0]
        net = identity_network()
        batcher = EncodeBatcher(net, max_batch=100, max_delay_s=1.0,
                                clock=lambda: clock[0])
        first = batcher.submit(np.zeros(8))
        assert not batcher.poll()
        clock[0] = 2.0
        assert batcher.poll()  # deadline passed -> flush
        assert first.ready
        assert batcher.deadline_flushes == 1
        # a submit after the deadline also drains the stale queue first
        batcher.submit(np.zeros(8))
        clock[0] = 5.0
        late = batcher.submit(np.ones(8))
        assert batcher.flushes == 2  # the stale row flushed before enqueue
        assert not late.ready

    def test_result_forces_flush(self):
        net = identity_network()
        batcher = EncodeBatcher(net, max_batch=100, max_delay_s=100.0)
        ticket = batcher.submit(np.full(8, 0.5))
        code = ticket.result()
        np.testing.assert_array_equal(code, net.encode(np.full((1, 8), 0.5))[0])
        assert batcher.flushes == 1

    def test_codes_match_bulk_encode(self):
        net = identity_network()
        vectors = np.random.default_rng(1).normal(size=(7, 8))
        batcher = EncodeBatcher(net, max_batch=4)
        tickets = [batcher.submit(v) for v in vectors]
        batcher.flush()
        got = np.stack([t.result() for t in tickets])
        np.testing.assert_array_equal(got, net.encode(vectors))

    def test_float32_dtype_policy(self):
        net = identity_network(dtype="float32")
        batcher = EncodeBatcher(net, max_batch=2)
        ticket = batcher.submit(np.random.default_rng(2).normal(size=8))
        assert ticket.result().shape == (16,)

    def test_stats_histogram(self):
        net = identity_network()
        batcher = EncodeBatcher(net, max_batch=2, max_delay_s=100.0)
        for v in np.random.default_rng(3).normal(size=(5, 8)):
            batcher.submit(v)
        batcher.flush()
        stats = batcher.stats()
        assert stats["requests"] == 5
        assert stats["flush_sizes"] == {2: 2, 1: 1}
        assert stats["pending"] == 0

    def test_invalid_arguments(self):
        net = identity_network()
        with pytest.raises(ConfigurationError):
            EncodeBatcher(net, max_batch=0)
        with pytest.raises(ConfigurationError):
            EncodeBatcher(net, max_delay_s=-1.0)
        with pytest.raises(ShapeError):
            EncodeBatcher(net).submit(np.float64(3.0))


class TestHashingService:
    def make_service(self, dim=8, bits=16, store=None, **kwargs):
        kwargs.setdefault("n_shards", 3)
        return HashingService(identity_network(bits, dim), store=store,
                              **kwargs)

    def test_query_matches_direct_backend(self):
        rng = np.random.default_rng(4)
        db = rng.normal(size=(60, 8))
        queries = rng.normal(size=(5, 8))
        service = self.make_service()
        service.load_database(db)
        ids, dist = service.query(queries, top_k=7)
        net = identity_network()
        reference = make_backend("multi-index", 16).add(net.encode(db))
        r_ids, r_dist = reference.search(net.encode(queries), top_k=7)
        np.testing.assert_array_equal(ids, r_ids)
        np.testing.assert_array_equal(dist, r_dist)

    def test_single_query_vector(self):
        rng = np.random.default_rng(5)
        service = self.make_service()
        service.load_database(rng.normal(size=(20, 8)))
        ids, dist = service.query(rng.normal(size=8), top_k=3)
        assert ids.shape == dist.shape == (1, 3)

    def test_add_remove_external_ids(self):
        rng = np.random.default_rng(6)
        service = self.make_service()
        db_ids = service.load_database(rng.normal(size=(10, 8)))
        np.testing.assert_array_equal(db_ids, np.arange(10))
        vectors = rng.normal(size=(3, 8))
        ext = service.add(vectors, ids=[500, 501, 502])
        np.testing.assert_array_equal(ext, [500, 501, 502])
        ids, dist = service.query(vectors, top_k=1)
        np.testing.assert_array_equal(ids.ravel(), [500, 501, 502])
        assert (dist.ravel() == 0).all()
        assert service.remove([501, 999]) == 1
        assert len(service) == 12
        ids, _ = service.query(vectors[1], top_k=12)
        assert 501 not in ids

    def test_duplicate_external_ids_raise(self):
        service = self.make_service()
        service.add(np.zeros((2, 8)), ids=[7, 8])
        with pytest.raises(ConfigurationError):
            service.add(np.ones((1, 8)), ids=[7])
        with pytest.raises(ConfigurationError):
            service.add(np.ones((2, 8)), ids=[9, 9])
        with pytest.raises(ShapeError):
            service.add(np.ones((2, 8)), ids=[1, 2, 3])

    def test_auto_ids_never_collide_with_caller_ids(self):
        # Auto-assigned ids are the internal counter; if a caller already
        # claimed one of those values the add must refuse, not remap it.
        service = self.make_service()
        service.add(np.zeros((1, 8)), ids=[2])  # internal 0 -> external 2
        with pytest.raises(ConfigurationError):
            service.add(np.ones((3, 8)))  # would auto-assign 1, 2, 3
        assert len(service) == 1  # nothing was indexed by the refused add

    def test_empty_query_raises(self):
        service = self.make_service()
        service.load_database(np.random.default_rng(12).normal(size=(6, 8)))
        with pytest.raises(ShapeError):
            service.query(np.empty((0, 8)))

    def test_stats_shape(self):
        rng = np.random.default_rng(7)
        service = self.make_service(cache_size=8)
        service.load_database(rng.normal(size=(12, 8)))
        service.query(rng.normal(size=(2, 8)), top_k=2)
        service.query(rng.normal(size=(2, 8)), top_k=2)
        stats = service.stats()
        assert stats["backend"] == "sharded"
        assert stats["size"] == 12
        assert len(stats["shards"]) == 3
        assert stats["batcher"]["requests"] == 4
        assert "index" in stats["caches"]
        assert 0.0 <= stats["caches"]["index"]["hit_rate"] <= 1.0
        assert "store_stages" not in stats

    def test_store_snapshot_warm_restart(self, tmp_path):
        rng = np.random.default_rng(8)
        db = rng.normal(size=(30, 8))
        store = ArtifactStore(tmp_path / "cache")
        cold = self.make_service(store=store)
        cold.load_database(db, key={"name": "unit"})
        assert cold.stats()["database"] == {
            "encodes": 1, "warm_loads": 0, "snapshot_mmapped": False,
        }
        assert store.stats()["stages"][INDEX_STAGE]["puts"] == 1

        warm_store = ArtifactStore(tmp_path / "cache")
        warm = self.make_service(store=warm_store)
        warm.load_database(db, key={"name": "unit"})
        assert warm.stats()["database"] == {
            "encodes": 0, "warm_loads": 1, "snapshot_mmapped": False,
        }
        stages = warm_store.stats()["stages"][INDEX_STAGE]
        assert stages["puts"] == 1 and stages["misses"] == 1
        queries = rng.normal(size=(4, 8))
        a = cold.query(queries, top_k=5)
        b = warm.query(queries, top_k=5)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_db_key_is_a_different_snapshot(self, tmp_path):
        rng = np.random.default_rng(9)
        store = ArtifactStore(tmp_path / "cache")
        first = self.make_service(store=store)
        first.load_database(rng.normal(size=(10, 8)), key={"name": "a"})
        second = self.make_service(store=store)
        second.load_database(rng.normal(size=(10, 8)), key={"name": "b"})
        assert second.stats()["database"]["encodes"] == 1

    def test_callable_encoder_needs_explicit_bits(self):
        encode = lambda x: np.where(x[:, :4] > 0, 1.0, -1.0)  # noqa: E731
        with pytest.raises(ConfigurationError):
            HashingService(encode)
        service = HashingService(encode, n_bits=4, n_shards=2)
        service.load_database(np.random.default_rng(10).normal(size=(8, 6)))
        assert len(service) == 8
        # no inspectable state -> no model key -> snapshots disabled
        assert service.model_key is None

    def test_backend_override(self):
        service = HashingService(identity_network(), backend="bruteforce")
        service.load_database(np.random.default_rng(11).normal(size=(6, 8)))
        assert service.stats()["shards"] == [6]


@pytest.fixture()
def served_model(clip, cifar_tiny):
    config = UHSCMConfig(n_bits=16, train=TrainConfig(epochs=3), seed=0)
    model = UHSCM(config, clip=clip)
    model.fit(cifar_tiny.train_images)
    return model


class TestModelSnapshots:
    def test_publish_and_from_snapshot(self, served_model, clip, cifar_tiny,
                                       tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        fp = publish_model(store, served_model)
        assert len(fp) == 64
        assert publish_model(store, served_model) == fp  # content-addressed
        service = HashingService.from_snapshot(store, fp, clip, n_shards=2)
        assert service.model_key == fp
        service.load_database(cifar_tiny.database_images[:40])
        ids, dist = service.query(cifar_tiny.query_images[:2], top_k=3)
        direct = served_model.encode(cifar_tiny.query_images[:2])
        loaded_codes = service.encoder.encode(cifar_tiny.query_images[:2])
        np.testing.assert_array_equal(direct, loaded_codes)

    def test_load_model_path_fallback(self, served_model, clip, tmp_path):
        path = tmp_path / "model.npz"
        save_uhscm(served_model, path)
        loaded = load_model(path, clip)
        assert loaded.config == served_model.config

    def test_load_model_unknown_source_raises(self, clip, tmp_path):
        with pytest.raises(ConfigurationError):
            load_model(tmp_path / "nope.npz", clip)
        with pytest.raises(ConfigurationError):
            load_model("ab" * 32, clip, store=ArtifactStore(tmp_path / "c"))
