"""Failure-injection tests: corrupted inputs must fail loudly, not silently.

A production library's error paths matter as much as its happy paths; these
tests feed each subsystem malformed data and assert it refuses clearly.
"""

import numpy as np
import pytest

from repro.config import TrainConfig, UHSCMConfig
from repro.core.uhscm import UHSCM
from repro.errors import (
    ConfigurationError,
    ReproError,
    ShapeError,
)
from repro.retrieval import evaluate_codes, pack_codes
from repro.retrieval.hamming import PackedCodes


class TestCorruptedCodes:
    def test_nan_codes_rejected(self):
        codes = np.full((3, 8), np.nan)
        with pytest.raises(ShapeError):
            pack_codes(codes)

    def test_fractional_codes_rejected(self):
        with pytest.raises(ShapeError):
            pack_codes(np.full((2, 4), 0.999))

    def test_packed_codes_byte_width_checked(self):
        with pytest.raises(ShapeError):
            PackedCodes(bits=np.zeros((2, 3), dtype=np.uint8), n_bits=64)

    def test_packed_codes_dtype_checked(self):
        with pytest.raises(ShapeError):
            PackedCodes(bits=np.zeros((2, 8), dtype=np.int64), n_bits=64)


class TestCorruptedLabels:
    def test_evaluate_rejects_label_dim_mismatch(self):
        q = np.where(np.random.default_rng(0).random((3, 8)) < 0.5, -1.0, 1.0)
        db = np.where(np.random.default_rng(1).random((9, 8)) < 0.5, -1.0, 1.0)
        with pytest.raises(ShapeError):
            evaluate_codes(q, db, np.ones((3, 4), int), np.ones((9, 5), int))


class TestCorruptedImages:
    def test_uhscm_rejects_wrong_image_geometry(self, clip):
        model = UHSCM(UHSCMConfig(n_bits=8, train=TrainConfig(epochs=1)),
                      clip=clip)
        bad_images = np.zeros((10, 3, 7, 7))  # world expects 16x16
        with pytest.raises(ReproError):
            model.fit(bad_images)

    def test_world_rejects_flat_input(self, world):
        with pytest.raises(ConfigurationError):
            world.encode_pixels(np.zeros((5, 768)))


class TestDegenerateTrainingData:
    def test_single_image_training_is_rejected_or_harmless(self, clip,
                                                           cifar_tiny):
        """Pairwise losses need >= 2 images per batch; a 1-image train set
        must not produce NaNs."""
        model = UHSCM(UHSCMConfig(n_bits=8, train=TrainConfig(epochs=1,
                                                              batch_size=2)),
                      clip=clip)
        # Two identical images: Q is all-ones; must still train finitely.
        images = np.repeat(cifar_tiny.train_images[:1], 2, axis=0)
        model.fit(images)
        codes = model.encode(images)
        assert np.isfinite(codes).all()

    def test_constant_features_do_not_crash_shallow_methods(self, cifar_tiny):
        from repro.baselines import ITQ, LSH

        def constant_features(images):
            return np.ones((images.shape[0], 16))

        for cls in (LSH, ITQ):
            m = cls(8, constant_features, seed=0)
            m.fit(cifar_tiny.train_images)
            codes = m.encode(cifar_tiny.query_images[:4])
            assert codes.shape == (4, 8)
            assert np.isfinite(codes).all()


class TestConfigBoundaries:
    def test_lam_one_keeps_only_identical_pairs(self, clip, cifar_tiny):
        """λ=1.0 makes Ψ nearly empty — training must still proceed via L_s."""
        cfg = UHSCMConfig(n_bits=8, lam=1.0, train=TrainConfig(epochs=1))
        model = UHSCM(cfg, clip=clip)
        model.fit(cifar_tiny.train_images[:40])
        assert np.isfinite(model.history_.total[-1])

    def test_zero_alpha_and_beta(self, clip, cifar_tiny):
        cfg = UHSCMConfig(n_bits=8, alpha=0.0, beta=0.0,
                          train=TrainConfig(epochs=1))
        model = UHSCM(cfg, clip=clip)
        model.fit(cifar_tiny.train_images[:40])
        assert np.isfinite(model.history_.total[-1])


class TestCorruptedArtifacts:
    """On-disk artifact damage must quarantine + rebuild, never crash."""

    KEY = "f" * 64

    def _store(self, tmp_path, **kwargs):
        from repro.pipeline import ArtifactStore

        return ArtifactStore(tmp_path / "cache", **kwargs)

    def test_corrupt_raw_member_is_quarantined(self, tmp_path):
        store = self._store(tmp_path, mmap_threshold_bytes=1)
        arrays = {"x": np.arange(64, dtype=np.float64)}
        store.put(self.KEY, {"n": 64}, arrays, stage="unit")
        raw_dir = store.cache_dir / "objects" / f"{self.KEY}.raw"
        member = raw_dir / "a0.npy"  # the sole array's member file
        blob = bytearray(member.read_bytes())
        blob[-8] ^= 0xFF  # surgical flip: structure intact, content wrong
        member.write_bytes(bytes(blob))

        fresh = self._store(tmp_path, mmap_threshold_bytes=1)
        assert fresh.get(self.KEY, stage="unit") is None
        assert not raw_dir.exists()
        assert (fresh.quarantine_dir / f"{self.KEY}.raw").is_dir()
        stats = fresh.stats()
        assert stats["corruptions"] == 1 and stats["quarantined"] == 1
        # Rebuild lands clean at the same address.
        fresh.put(self.KEY, {"n": 64}, arrays, stage="unit")
        replay = self._store(tmp_path, mmap_threshold_bytes=1)
        back = replay.get(self.KEY, stage="unit")
        assert back is not None
        np.testing.assert_array_equal(back.arrays["x"], arrays["x"])

    def test_truncated_npz_is_quarantined(self, tmp_path):
        store = self._store(tmp_path)
        store.put(self.KEY, {"n": 3},
                  {"x": np.arange(12, dtype=np.float64)}, stage="unit")
        path = store.cache_dir / "objects" / f"{self.KEY}.npz"
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn write / bad disk

        fresh = self._store(tmp_path)
        assert fresh.get(self.KEY, stage="unit") is None
        assert (fresh.quarantine_dir / f"{self.KEY}.npz").exists()
        assert fresh.stats()["stages"]["unit"]["quarantined"] == 1


class TestServingFaults:
    """Mid-request failures must degrade or fail typed, never hang."""

    def _service(self, n=12, **kwargs):
        from repro.core.hashing_network import HashingNetwork
        from repro.serving import HashingService

        network = HashingNetwork(
            16, mode="feature", feature_extractor=lambda x: x,
            feature_dim=8, rng=0,
        )
        kwargs.setdefault("n_shards", 3)
        service = HashingService(network, **kwargs)
        service.load_database(np.random.default_rng(1).normal(size=(n, 8)))
        return service

    def test_shard_raising_mid_fanout_degrades(self):
        service = self._service()
        # A shard whose backend raises from inside the fan-out: the merge
        # must degrade to the survivors, not propagate the raw exception.
        def explode(codes, top_k):
            raise RuntimeError("shard backend blew up mid-fanout")

        service.index.shards[1].search = explode
        queries = np.random.default_rng(2).normal(size=(2, 8))
        ids, dist = service.query(queries, top_k=4)
        assert service.last_query_degraded
        assert ids.shape == dist.shape == (2, 4)
        assert not np.any(ids % 3 == 1)  # nothing from the exploded shard

    def test_batcher_shape_poisoning_under_concurrent_tickets(self):
        from repro.serving import EncodeBatcher

        class ShapeShifter:
            """Returns garbage-shaped output when any row is poisoned."""

            n_bits = 16
            calls = 0

            def encode(self, matrix):
                self.calls += 1
                if np.any(matrix[:, 0] > 9):  # the poisoned rows
                    raise ShapeError("poisoned input row")
                return np.ones((matrix.shape[0], 16))

        batcher = EncodeBatcher(ShapeShifter(), max_batch=64,
                                max_delay_s=100.0)
        rows = np.zeros((6, 8))
        rows[2, 0] = rows[4, 0] = 10.0  # two poison rows among six tickets
        tickets = [batcher.submit(row) for row in rows]
        batcher.flush()
        assert all(t.ready for t in tickets)  # nobody hangs
        for ti, ticket in enumerate(tickets):
            if ti in (2, 4):
                with pytest.raises(ShapeError):
                    ticket.result()
            else:
                assert ticket.result().shape == (16,)
        assert batcher.stats()["poisoned"] == 2
        assert batcher.stats()["isolation_flushes"] == 1
