"""Failure-injection tests: corrupted inputs must fail loudly, not silently.

A production library's error paths matter as much as its happy paths; these
tests feed each subsystem malformed data and assert it refuses clearly.
"""

import numpy as np
import pytest

from repro.config import TrainConfig, UHSCMConfig
from repro.core.uhscm import UHSCM
from repro.errors import (
    ConfigurationError,
    ReproError,
    ShapeError,
)
from repro.retrieval import evaluate_codes, pack_codes
from repro.retrieval.hamming import PackedCodes


class TestCorruptedCodes:
    def test_nan_codes_rejected(self):
        codes = np.full((3, 8), np.nan)
        with pytest.raises(ShapeError):
            pack_codes(codes)

    def test_fractional_codes_rejected(self):
        with pytest.raises(ShapeError):
            pack_codes(np.full((2, 4), 0.999))

    def test_packed_codes_byte_width_checked(self):
        with pytest.raises(ShapeError):
            PackedCodes(bits=np.zeros((2, 3), dtype=np.uint8), n_bits=64)

    def test_packed_codes_dtype_checked(self):
        with pytest.raises(ShapeError):
            PackedCodes(bits=np.zeros((2, 8), dtype=np.int64), n_bits=64)


class TestCorruptedLabels:
    def test_evaluate_rejects_label_dim_mismatch(self):
        q = np.where(np.random.default_rng(0).random((3, 8)) < 0.5, -1.0, 1.0)
        db = np.where(np.random.default_rng(1).random((9, 8)) < 0.5, -1.0, 1.0)
        with pytest.raises(ShapeError):
            evaluate_codes(q, db, np.ones((3, 4), int), np.ones((9, 5), int))


class TestCorruptedImages:
    def test_uhscm_rejects_wrong_image_geometry(self, clip):
        model = UHSCM(UHSCMConfig(n_bits=8, train=TrainConfig(epochs=1)),
                      clip=clip)
        bad_images = np.zeros((10, 3, 7, 7))  # world expects 16x16
        with pytest.raises(ReproError):
            model.fit(bad_images)

    def test_world_rejects_flat_input(self, world):
        with pytest.raises(ConfigurationError):
            world.encode_pixels(np.zeros((5, 768)))


class TestDegenerateTrainingData:
    def test_single_image_training_is_rejected_or_harmless(self, clip,
                                                           cifar_tiny):
        """Pairwise losses need >= 2 images per batch; a 1-image train set
        must not produce NaNs."""
        model = UHSCM(UHSCMConfig(n_bits=8, train=TrainConfig(epochs=1,
                                                              batch_size=2)),
                      clip=clip)
        # Two identical images: Q is all-ones; must still train finitely.
        images = np.repeat(cifar_tiny.train_images[:1], 2, axis=0)
        model.fit(images)
        codes = model.encode(images)
        assert np.isfinite(codes).all()

    def test_constant_features_do_not_crash_shallow_methods(self, cifar_tiny):
        from repro.baselines import ITQ, LSH

        def constant_features(images):
            return np.ones((images.shape[0], 16))

        for cls in (LSH, ITQ):
            m = cls(8, constant_features, seed=0)
            m.fit(cifar_tiny.train_images)
            codes = m.encode(cifar_tiny.query_images[:4])
            assert codes.shape == (4, 8)
            assert np.isfinite(codes).all()


class TestConfigBoundaries:
    def test_lam_one_keeps_only_identical_pairs(self, clip, cifar_tiny):
        """λ=1.0 makes Ψ nearly empty — training must still proceed via L_s."""
        cfg = UHSCMConfig(n_bits=8, lam=1.0, train=TrainConfig(epochs=1))
        model = UHSCM(cfg, clip=clip)
        model.fit(cifar_tiny.train_images[:40])
        assert np.isfinite(model.history_.total[-1])

    def test_zero_alpha_and_beta(self, clip, cifar_tiny):
        cfg = UHSCMConfig(n_bits=8, alpha=0.0, beta=0.0,
                          train=TrainConfig(epochs=1))
        model = UHSCM(cfg, clip=clip)
        model.fit(cifar_tiny.train_images[:40])
        assert np.isfinite(model.history_.total[-1])
