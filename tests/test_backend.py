"""Tests for the retrieval serving layer: backend protocol, registry,
incremental add/remove semantics, and the query-result LRU cache."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError, ShapeError
from repro.retrieval import (
    HammingIndex,
    MultiIndexHammingIndex,
    QueryResultCache,
    RetrievalBackend,
    backend_names,
    evaluate_codes,
    make_backend,
)

#: Every registered backend, including the serving layer's "sharded".
BACKENDS = backend_names()


def random_codes(n, k, seed=0):
    rng = np.random.default_rng(seed)
    return np.where(rng.random((n, k)) < 0.5, -1.0, 1.0)


def distinct_codes(n, k, seed=0):
    """±1 codes with pairwise-distinct rows (distinct k-bit integers)."""
    rng = np.random.default_rng(seed)
    values = rng.choice(1 << k, size=n, replace=False)
    bits = (values[:, None] >> np.arange(k)[None, :]) & 1
    return np.where(bits.astype(bool), 1.0, -1.0)


class TestRegistry:
    def test_builtin_names(self):
        names = backend_names()
        assert "bruteforce" in names
        assert "multi-index" in names

    def test_make_backend_types(self):
        assert isinstance(make_backend("bruteforce", 16), HammingIndex)
        assert isinstance(make_backend("multi-index", 16), MultiIndexHammingIndex)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_backend("faiss", 16)

    def test_kwargs_pass_through(self):
        index = make_backend("multi-index", 16, n_tables=2, cache_size=8)
        assert index.n_tables == 2
        assert index.cache is not None

    def test_sharded_registered(self):
        from repro.serving import ShardedIndex

        index = make_backend("sharded", 16, n_shards=3,
                             shard_backend="multi-index",
                             shard_options={"n_tables": 2})
        assert isinstance(index, ShardedIndex)
        assert index.n_shards == 3
        assert all(shard.n_tables == 2 for shard in index.shards)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_unknown_kwargs_raise_configuration_error(self, name):
        # Unexpected constructor options must not escape as bare TypeError;
        # the error names the backend and its accepted options.
        with pytest.raises(ConfigurationError) as excinfo:
            make_backend(name, 16, bogus_option=3)
        message = str(excinfo.value)
        assert name in message
        assert "bogus_option" in message
        assert "cache_size" in message  # every backend accepts it

    @pytest.mark.parametrize("name", BACKENDS)
    def test_satisfies_protocol(self, name):
        assert isinstance(make_backend(name, 8), RetrievalBackend)


class TestIncrementalAdd:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_chunked_add_equals_one_shot(self, name):
        db = random_codes(120, 16, seed=1)
        queries = random_codes(6, 16, seed=2)
        one_shot = make_backend(name, 16).add(db)
        chunked = make_backend(name, 16)
        for chunk in np.array_split(db, 5):
            chunked.add(chunk)
        assert len(chunked) == len(one_shot) == 120
        for index_pair in (("search", 7), ("radius", 4)):
            kind, arg = index_pair
            if kind == "search":
                a = one_shot.search(queries, top_k=arg)
                b = chunked.search(queries, top_k=arg)
                np.testing.assert_array_equal(a[0], b[0])
                np.testing.assert_array_equal(a[1], b[1])
            else:
                for ra, rb in zip(one_shot.radius_search(queries, arg),
                                  chunked.radius_search(queries, arg)):
                    np.testing.assert_array_equal(ra, rb)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_ids_are_stable_across_adds(self, name):
        first = random_codes(10, 8, seed=3)
        second = random_codes(10, 8, seed=4)
        index = make_backend(name, 8).add(first).add(second)
        # Searching for an exact code from the second batch must return its
        # insertion-order id (10 + offset), not a renumbered position.
        ids, dist = index.search(second[:1], top_k=1)
        assert dist[0, 0] == 0
        assert ids[0, 0] >= 10 or (first == second[0]).all(axis=1).any()


class TestRemove:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_remove_excludes_ids(self, name):
        db = random_codes(50, 16, seed=5)
        queries = random_codes(4, 16, seed=6)
        index = make_backend(name, 16).add(db)
        removed = index.remove([0, 7, 49])
        assert removed == 3
        assert len(index) == 47
        ids, _ = index.search(queries, top_k=47)
        assert not set(ids.ravel()) & {0, 7, 49}
        for hits in index.radius_search(queries, 16):
            assert not set(hits) & {0, 7, 49}

    @pytest.mark.parametrize("name", BACKENDS)
    def test_remove_unknown_ids_ignored(self, name):
        index = make_backend(name, 8).add(random_codes(5, 8))
        assert index.remove([99, -3]) == 0
        assert index.remove([2, 2, 99]) == 1
        assert index.remove([2]) == 0  # already gone
        assert len(index) == 4

    @pytest.mark.parametrize("name", BACKENDS)
    def test_remove_all_then_search_raises(self, name):
        index = make_backend(name, 8).add(random_codes(3, 8))
        assert index.remove([0, 1, 2]) == 3
        with pytest.raises(NotFittedError):
            index.search(random_codes(1, 8), top_k=1)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_remove_then_add_id_stability(self, name):
        """Rows added after a removal get fresh ids; dead ids never return."""
        k = 16
        pool = distinct_codes(40, k, seed=40)  # pairwise-distinct rows
        first, second = pool[:30], pool[30:]
        index = make_backend(name, k).add(first)
        assert index.remove(np.arange(10)) == 10
        index.add(second)
        assert len(index) == 30
        # each new row matches itself at distance 0 under a post-removal id
        ids, dist = index.search(second, top_k=1)
        assert (dist.ravel() == 0).all()
        assert (ids.ravel() >= 30).all()
        np.testing.assert_array_equal(ids.ravel(), np.arange(30, 40))
        # surviving old rows keep their original ids
        ids, dist = index.search(first[10:], top_k=1)
        assert (dist.ravel() == 0).all()
        np.testing.assert_array_equal(ids.ravel(), np.arange(10, 30))
        # removed ids never resurface in a full ranking
        all_ids, _ = index.search(second[:3], top_k=30)
        assert not set(all_ids.ravel()) & set(range(10))

    @pytest.mark.parametrize("name", BACKENDS)
    def test_readding_removed_content_gets_fresh_ids(self, name):
        k = 16
        codes = distinct_codes(12, k, seed=42)
        index = make_backend(name, k).add(codes)
        assert index.remove([3, 4]) == 2
        index.add(codes[3:5])  # identical content, new rows
        ids, dist = index.search(codes[3:5], top_k=1)
        assert (dist.ravel() == 0).all()
        np.testing.assert_array_equal(ids.ravel(), [12, 13])

    def test_mih_vacuum_preserves_results(self):
        db = random_codes(80, 16, seed=7)
        queries = random_codes(5, 16, seed=8)
        mih = MultiIndexHammingIndex(16, n_tables=4).add(db)
        mih.remove(np.arange(0, 80, 3))
        before = mih.search(queries, top_k=10)
        mih.vacuum()
        after = mih.search(queries, top_k=10)
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])


class TestBackendsAgreeUnderChurn:
    """Brute force and MIH must stay bit-identical through add/remove cycles."""

    @pytest.mark.parametrize("n_tables", [1, 3, 4])
    def test_agreement_after_cycles(self, n_tables):
        rng = np.random.default_rng(9)
        k = 16
        brute = HammingIndex(k)
        mih = MultiIndexHammingIndex(k, n_tables=n_tables)
        alive = 0
        for step in range(4):
            batch = random_codes(40, k, seed=100 + step)
            brute.add(batch)
            mih.add(batch)
            alive += 40
            # Draw removals from the whole id space seen so far; ids that
            # were already removed in a previous cycle are ignored.
            drop = rng.choice(np.arange((step + 1) * 40), size=8, replace=False)
            alive -= brute.remove(drop)
            mih.remove(drop)
            assert len(brute) == len(mih) == alive
        queries = random_codes(8, k, seed=10)
        b_ids, b_dist = brute.search(queries, top_k=12)
        m_ids, m_dist = mih.search(queries, top_k=12)
        np.testing.assert_array_equal(b_ids, m_ids)
        np.testing.assert_array_equal(b_dist, m_dist)
        for radius in (0, 3, k):
            for rb, rm in zip(brute.radius_search(queries, radius),
                              mih.radius_search(queries, radius)):
                np.testing.assert_array_equal(np.sort(rb), rm)


class TestQueryResultCache:
    def test_lru_eviction(self):
        cache = QueryResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            QueryResultCache(0)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_cached_results_match_uncached(self, name):
        db = random_codes(60, 16, seed=11)
        queries = random_codes(5, 16, seed=12)
        plain = make_backend(name, 16).add(db)
        cached = make_backend(name, 16, cache_size=32).add(db)
        for _ in range(2):  # second pass served from cache
            p = plain.search(queries, top_k=6)
            c = cached.search(queries, top_k=6)
            np.testing.assert_array_equal(p[0], c[0])
            np.testing.assert_array_equal(p[1], c[1])
            for rp, rc in zip(plain.radius_search(queries, 5),
                              cached.radius_search(queries, 5)):
                np.testing.assert_array_equal(rp, rc)
        assert cached.cache.hits > 0

    @pytest.mark.parametrize("name", BACKENDS)
    def test_cache_invalidated_on_mutation(self, name):
        db = random_codes(30, 8, seed=13)
        index = make_backend(name, 8, cache_size=16).add(db)
        query = random_codes(1, 8, seed=14)
        index.search(query, top_k=3)
        assert len(index.cache) > 0
        index.add(random_codes(5, 8, seed=15))
        assert len(index.cache) == 0
        index.search(query, top_k=3)
        index.remove([0])
        assert len(index.cache) == 0

    def test_cache_returns_copies(self):
        db = random_codes(20, 8, seed=16)
        index = make_backend("bruteforce", 8, cache_size=8).add(db)
        query = random_codes(1, 8, seed=17)
        hits = index.radius_search(query, 8)[0]
        hits[:] = -1  # caller mutates their copy
        fresh = index.radius_search(query, 8)[0]
        assert (fresh >= 0).all()


class TestEvaluateCodesBackend:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_backend_matches_blas_path(self, name):
        q = random_codes(5, 16, seed=18)
        db = random_codes(30, 16, seed=19)
        rng = np.random.default_rng(20)
        ql = rng.integers(0, 2, size=(5, 3))
        ql[ql.sum(axis=1) == 0, 0] = 1
        dl = rng.integers(0, 2, size=(30, 3))
        dl[dl.sum(axis=1) == 0, 0] = 1
        base = evaluate_codes(q, db, ql, dl, pn_points=(5, 10))
        served = evaluate_codes(q, db, ql, dl, pn_points=(5, 10), backend=name)
        assert served.map == pytest.approx(base.map)
        assert served.precision_at_n == pytest.approx(base.precision_at_n)

    def test_backend_instance_accepted(self):
        q = random_codes(3, 8, seed=21)
        db = random_codes(12, 8, seed=22)
        ql = np.ones((3, 2), dtype=int)
        dl = np.ones((12, 2), dtype=int)
        index = MultiIndexHammingIndex(8, n_tables=2)
        report = evaluate_codes(q, db, ql, dl, pn_points=(4,), backend=index)
        base = evaluate_codes(q, db, ql, dl, pn_points=(4,))
        assert report.map == pytest.approx(base.map)

    def test_prebuilt_backend_with_id_gaps_raises(self):
        # Right row count but renumbered ids (remove + re-add) must raise
        # ShapeError, not crash or feed garbage into the metrics.
        q = random_codes(2, 8, seed=26)
        db = random_codes(6, 8, seed=27)
        gappy = HammingIndex(8).add(db)
        gappy.remove([2])
        gappy.add(random_codes(1, 8, seed=28))  # len matches, ids have a gap
        with pytest.raises(ShapeError):
            evaluate_codes(q, db, np.ones((2, 1), int), np.ones((6, 1), int),
                           pn_points=(2,), backend=gappy)

    def test_backend_size_mismatch_raises(self):
        q = random_codes(2, 8, seed=23)
        db = random_codes(10, 8, seed=24)
        stale = HammingIndex(8).add(random_codes(4, 8, seed=25))
        with pytest.raises(ShapeError):
            evaluate_codes(q, db, np.ones((2, 1), int), np.ones((10, 1), int),
                           pn_points=(2,), backend=stale)


class TestShardedWorkers:
    """Concurrent fan-out (PR 8): pooled probes are bit-identical to serial,
    including the composite-key ``(distance, id)`` tie-breaking."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_all_ties_merge_id_ascending(self, workers):
        # Every row identical: every candidate ties at distance 0, so the
        # merged top-k must fall back to pure id order regardless of which
        # worker thread returned its shard first.
        codes = np.tile(random_codes(1, 16), (12, 1))
        index = make_backend("sharded", 16, n_shards=3, workers=workers)
        index.add(codes)
        ids, dist = index.search(codes[:2], top_k=6)
        np.testing.assert_array_equal(ids, [[0, 1, 2, 3, 4, 5]] * 2)
        assert (dist == 0).all()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_adjacent_equal_distance_merge_is_deterministic(self, workers):
        # Duplicate pairs (ids 2i, 2i+1) land on different shards under
        # round-robin placement; the equal-distance candidates they produce
        # must interleave id-ascending, exactly like one flat index.
        base = distinct_codes(10, 16, seed=7)
        codes = np.repeat(base, 2, axis=0)
        sharded = make_backend("sharded", 16, n_shards=4, workers=workers)
        sharded.add(codes)
        ids, dist = sharded.search(base, top_k=8)
        reference = HammingIndex(16).add(codes)
        r_ids, r_dist = reference.search(base, top_k=8)
        np.testing.assert_array_equal(ids, r_ids)
        np.testing.assert_array_equal(dist, r_dist)
        # Each query's own duplicate pair heads the ranking, id-ascending.
        np.testing.assert_array_equal(ids[:, 0] + 1, ids[:, 1])
        np.testing.assert_array_equal(dist[:, 0], dist[:, 1])

    def test_pooled_results_match_serial(self):
        codes = random_codes(60, 16, seed=9)
        queries = random_codes(5, 16, seed=10)
        serial = make_backend("sharded", 16, n_shards=4, workers=1).add(codes)
        pooled = make_backend("sharded", 16, n_shards=4, workers=4).add(codes)
        for got, want in zip(pooled.search(queries, top_k=7),
                             serial.search(queries, top_k=7)):
            np.testing.assert_array_equal(got, want)
        for got, want in zip(pooled.radius_search(queries, 6),
                             serial.radius_search(queries, 6)):
            np.testing.assert_array_equal(got, want)
        # The effective count may clamp to os.cpu_count() on small boxes;
        # the pre-clamp request is what the backend plumbing owes us.
        assert pooled.pool_stats()["requested"] == 4
        assert serial.pool_stats()["serial"] is True
