"""End-to-end integration tests asserting the paper's qualitative claims.

These run the real pipeline at small (but not minimal) scale, so they are the
slowest tests in the suite — and the most meaningful: each asserts one of the
relations the paper's evaluation is built on.
"""

import numpy as np
import pytest

from repro.config import TrainConfig, UHSCMConfig, paper_config
from repro.core.uhscm import UHSCM
from repro.core.variants import get_variant
from repro.datasets import SplitSizes, dataset_spec, generate_dataset
from repro.retrieval import HammingIndex, evaluate_hashing, pack_codes
from repro.vlp import SimCLIP
from dataclasses import replace


@pytest.fixture(scope="module")
def cifar(world):
    sizes = SplitSizes(train=200, query=40, database=800)
    return generate_dataset(dataset_spec("cifar10"), sizes, world=world, seed=5)


@pytest.fixture(scope="module")
def nuswide(world):
    sizes = SplitSizes(train=200, query=40, database=800)
    return generate_dataset(dataset_spec("nuswide"), sizes, world=world, seed=5)


def fit_uhscm(data, clip, n_bits=32, epochs=25, **overrides):
    cfg = paper_config(data.name, n_bits=n_bits)
    cfg = replace(cfg, train=TrainConfig(epochs=epochs), **overrides)
    model = UHSCM(cfg, clip=clip)
    model.fit(data.train_images)
    return model


@pytest.fixture(scope="module")
def uhscm_cifar(cifar, clip):
    return fit_uhscm(cifar, clip)


class TestHeadlineClaims:
    def test_uhscm_beats_lsh_substantially_on_cifar(self, cifar, clip,
                                                    uhscm_cifar):
        from repro.baselines import make_baseline

        lsh = make_baseline("LSH", 32, cifar.world.vgg_features, seed=0)
        lsh.fit(cifar.train_images)
        lsh_map = evaluate_hashing(lsh, cifar, pn_points=(10,)).map
        uhscm_map = evaluate_hashing(uhscm_cifar, cifar, pn_points=(10,)).map
        assert uhscm_map > lsh_map + 0.2  # the paper's gap is ~0.57

    def test_uhscm_beats_cib_on_cifar(self, cifar, clip, uhscm_cifar):
        from repro.baselines import make_baseline

        world = cifar.world
        cib = make_baseline(
            "CIB", 32, world.backbone_features, seed=0,
            guidance_extractor=world.vgg_features,
            augment_fn=lambda f, rng: world.augment_features(f, rng),
            epochs=25,
        )
        cib.fit(cifar.train_images)
        cib_map = evaluate_hashing(cib, cifar, pn_points=(10,)).map
        uhscm_map = evaluate_hashing(uhscm_cifar, cifar, pn_points=(10,)).map
        assert uhscm_map > cib_map

    def test_multilabel_dataset_works(self, nuswide, clip):
        model = fit_uhscm(nuswide, clip, epochs=20)
        report = evaluate_hashing(model, nuswide, pn_points=(10,))
        # Must beat the relevance base rate by a clear margin.
        from repro.retrieval import relevance_matrix

        base = relevance_matrix(nuswide.query_labels,
                                nuswide.database_labels).mean()
        assert report.map > base + 0.05


class TestAblationDirections:
    def test_denoising_helps_on_cifar(self, cifar, clip):
        full = fit_uhscm(cifar, clip, epochs=20)
        wo_de = fit_uhscm(cifar, clip, epochs=20, denoise=False)
        m_full = evaluate_hashing(full, cifar, pn_points=(10,)).map
        m_wo = evaluate_hashing(wo_de, cifar, pn_points=(10,)).map
        assert m_full >= m_wo - 0.02  # denoising never hurts much, usually helps

    def test_mcl_helps_on_cifar(self, cifar, clip, uhscm_cifar):
        wo_mcl = fit_uhscm(cifar, clip, epochs=25, alpha=0.0)
        m_full = evaluate_hashing(uhscm_cifar, cifar, pn_points=(10,)).map
        m_wo = evaluate_hashing(wo_mcl, cifar, pn_points=(10,)).map
        assert m_full > m_wo - 0.02

    def test_mining_beats_raw_features_on_cifar(self, cifar, clip):
        cfg = paper_config("cifar10", n_bits=32)
        cfg = replace(cfg, train=TrainConfig(epochs=20))
        uhscm_if = get_variant("if")(cfg, clip)
        uhscm_if.fit(cifar.train_images)
        full = fit_uhscm(cifar, clip, epochs=20)
        m_if = evaluate_hashing(uhscm_if, cifar, pn_points=(10,)).map
        m_full = evaluate_hashing(full, cifar, pn_points=(10,)).map
        assert m_full > m_if


class TestSystemConsistency:
    def test_more_bits_do_not_hurt_much(self, cifar, clip):
        short = fit_uhscm(cifar, clip, n_bits=16, epochs=20)
        long = fit_uhscm(cifar, clip, n_bits=64, epochs=20)
        m_short = evaluate_hashing(short, cifar, pn_points=(10,)).map
        m_long = evaluate_hashing(long, cifar, pn_points=(10,)).map
        assert m_long > m_short - 0.05

    def test_index_agrees_with_bruteforce(self, cifar, uhscm_cifar):
        query = uhscm_cifar.encode(cifar.query_images[:5])
        db = uhscm_cifar.encode(cifar.database_images)
        index = HammingIndex(32).add(db)
        idx, dist = index.search(query, top_k=5)
        from repro.retrieval import hamming_distance_matrix

        brute = hamming_distance_matrix(query, db)
        for qi in range(5):
            order = np.argsort(brute[qi], kind="stable")[:5]
            np.testing.assert_array_equal(idx[qi], order)

    def test_codes_pack_losslessly(self, cifar, uhscm_cifar):
        codes = uhscm_cifar.encode(cifar.query_images[:8])
        from repro.retrieval import unpack_codes

        np.testing.assert_array_equal(unpack_codes(pack_codes(codes)), codes)

    def test_deterministic_end_to_end(self, cifar, world):
        a = fit_uhscm(cifar, SimCLIP(world), epochs=3)
        b = fit_uhscm(cifar, SimCLIP(world), epochs=3)
        np.testing.assert_array_equal(
            a.encode(cifar.query_images[:10]), b.encode(cifar.query_images[:10])
        )
