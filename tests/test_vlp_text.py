"""Tests for the tokenizer, text encoder, prompts, and SimCLIP."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, VocabularyError
from repro.vlp.clip import SimCLIP, resolve_template
from repro.vlp.prompts import PAPER_TEMPLATES, PromptTemplate, paper_template
from repro.vlp.text_encoder import CAPTION_STOPWORDS, TextEncoder
from repro.vlp.tokenizer import Vocabulary, tokenize


class TestTokenizer:
    def test_basic(self):
        assert tokenize("A photo of the Cat!") == ["a", "photo", "of", "the", "cat"]

    def test_numbers_and_apostrophes(self):
        assert tokenize("it's 42") == ["it's", "42"]

    def test_empty(self):
        assert tokenize("...") == []


class TestVocabulary:
    def test_roundtrip(self):
        v = Vocabulary(["cat", "dog"])
        assert v.decode(v.encode("cat dog")) == "cat dog"

    def test_unk(self):
        v = Vocabulary(["cat"])
        assert v.encode("zebra") == [0]
        assert v.word_of(0) == Vocabulary.UNK

    def test_contains_and_len(self):
        v = Vocabulary(["cat"])
        assert "cat" in v and "dog" not in v
        assert len(v) == 2  # unk + cat

    def test_add_idempotent(self):
        v = Vocabulary()
        assert v.add("cat") == v.add("CAT")

    def test_bad_inputs(self):
        v = Vocabulary()
        with pytest.raises(VocabularyError):
            v.add(" ")
        with pytest.raises(VocabularyError):
            v.word_of(99)


class TestPrompts:
    def test_paper_templates(self):
        assert PAPER_TEMPLATES["default"] == "a photo of the {concept}"
        assert paper_template("p1").format("cat") == "the cat"
        assert paper_template("p2").format("cat") == "it contains the cat"

    def test_format_all(self):
        t = paper_template("default")
        assert t.format_all(["cat", "dog"]) == [
            "a photo of the cat",
            "a photo of the dog",
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PromptTemplate("no placeholder")
        with pytest.raises(ConfigurationError):
            paper_template("p9")
        with pytest.raises(ConfigurationError):
            paper_template("default").format("  ")

    def test_resolve_template(self):
        assert resolve_template(None).template == PAPER_TEMPLATES["default"]
        assert resolve_template("p1").template == PAPER_TEMPLATES["p1"]
        assert resolve_template("look at {concept}").template == "look at {concept}"
        t = paper_template("p2")
        assert resolve_template(t) is t


class TestTextEncoder:
    def test_unit_norm(self, world):
        enc = TextEncoder(world)
        v = enc.encode("a photo of the cat")
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_grounding(self, world):
        enc = TextEncoder(world)
        v = enc.encode("a photo of the cat")
        assert v @ world.concept_direction("cat") > 0.6

    def test_deterministic(self, world):
        enc = TextEncoder(world)
        np.testing.assert_array_equal(
            enc.encode("a photo of the dog"), enc.encode("a photo of the dog")
        )

    def test_default_template_best_aligned(self, world):
        """The ablation-4.4.3 mechanism: the caption-style template aligns
        best with the concept direction."""
        enc = TextEncoder(world)
        concepts = ["cat", "dog", "tree", "bridge", "flowers", "ocean"]
        def mean_alignment(template):
            return np.mean([
                enc.encode(template.format(concept=c))
                @ world.concept_direction(c)
                for c in concepts
            ])

        default = mean_alignment("a photo of the {concept}")
        p1 = mean_alignment("the {concept}")
        p2 = mean_alignment("it contains the {concept}")
        assert default > p1
        assert default > p2

    def test_empty_prompt_raises(self, world):
        with pytest.raises(ConfigurationError):
            TextEncoder(world).encode("!!!")

    def test_stopwords_include_template_words(self):
        for w in ("a", "photo", "of", "the"):
            assert w in CAPTION_STOPWORDS

    def test_batch(self, world):
        enc = TextEncoder(world)
        out = enc.encode_batch(["the cat", "the dog"])
        assert out.shape == (2, world.config.latent_dim)
        with pytest.raises(ConfigurationError):
            enc.encode_batch([])


class TestSimCLIP:
    def test_scores_in_unit_interval(self, clip, world, rng):
        lat = np.stack([world.image_latent(["cat"], rng=rng) for _ in range(5)])
        images = world.render(lat, rng=rng)
        s = clip.score_concepts(images, ["cat", "dog", "sky"])
        assert s.shape == (5, 3)
        assert np.all((s >= 0) & (s <= 1))

    def test_present_concept_scores_highest(self, clip, world, rng):
        lat = np.stack([world.image_latent(["dog"], rng=rng) for _ in range(20)])
        images = world.render(lat, rng=rng)
        s = clip.score_concepts(images, ["dog", "bridge", "computer"])
        assert (s.argmax(axis=1) == 0).mean() > 0.9

    def test_encoders_unit_norm(self, clip, world, rng):
        lat = np.stack([world.image_latent(["cat"], rng=rng) for _ in range(3)])
        images = world.render(lat, rng=rng)
        img = clip.encode_images(images)
        txt = clip.encode_texts(["a photo of the cat"])
        np.testing.assert_allclose(np.linalg.norm(img, axis=1), 1.0)
        np.testing.assert_allclose(np.linalg.norm(txt, axis=1), 1.0)

    def test_empty_concepts_raises(self, clip, world, rng):
        lat = world.image_latent(["cat"], rng=rng)
        images = world.render(lat, rng=rng)
        with pytest.raises(ConfigurationError):
            clip.score_concepts(images, [])

    def test_default_world_constructible(self):
        assert SimCLIP().world is not None
