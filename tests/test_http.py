"""Tests for the HTTP serving front end and the concurrent batcher.

Covers the three layers of :mod:`repro.serving.http` — the schema
validation boundary, the :class:`ServingApp` handlers (admission, hot
swap, metrics, drain), and the asyncio socket server — plus the
thread-safety stress test for the shared :class:`EncodeBatcher` the
concurrent handlers feed.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.hashing_network import HashingNetwork
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    NotFittedError,
    OverloadedError,
    ReproError,
    ShapeError,
    ShutdownError,
    ValidationError,
)
from repro.serving import EncodeBatcher, HashingService
from repro.serving.http import ServingApp, run_server_in_thread
from repro.serving.http import schemas

DIM, BITS = 8, 16


def identity_network(bits=BITS, dim=DIM, rng=0):
    return HashingNetwork(bits, mode="feature", feature_extractor=lambda x: x,
                          feature_dim=dim, rng=rng)


def make_service(**kwargs):
    kwargs.setdefault("backend", "bruteforce")
    kwargs.setdefault("max_batch", 64)
    kwargs.setdefault("max_delay_s", 0.005)
    service = HashingService(identity_network(), **kwargs)
    service.add(np.random.default_rng(7).standard_normal((40, DIM)))
    return service


def post(port, path, payload):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def get(port, path):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30
        ) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestSchemas:
    def test_parse_query_single_vector(self):
        req = schemas.parse_query({"vector": [1.0] * DIM})
        assert req.vectors.shape == (1, DIM)
        assert req.top_k == 10 and req.deadline_s is None

    def test_parse_query_batch(self):
        req = schemas.parse_query(
            {"vectors": [[1.0] * DIM] * 3, "top_k": 5, "deadline_s": 2.5}
        )
        assert req.vectors.shape == (3, DIM)
        assert req.top_k == 5 and req.deadline_s == 2.5

    def test_parse_query_image_tensors(self):
        one = schemas.parse_query({"vector": np.zeros((3, 4, 4)).tolist()})
        assert one.vectors.shape == (1, 3, 4, 4)
        batch = schemas.parse_query(
            {"vectors": np.zeros((2, 3, 4, 4)).tolist()}
        )
        assert batch.vectors.shape == (2, 3, 4, 4)

    @pytest.mark.parametrize("payload", [
        {},                                             # neither field
        {"vector": [1.0], "vectors": [[1.0]]},          # both fields
        {"vector": [[1.0], [2.0]]},                     # batch in "vector"
        {"vectors": [[1.0]], "nope": 1},                # unknown field
        {"vectors": "text"},                            # not numeric
        {"vectors": [[1.0, float("nan")]]},             # non-finite
        {"vectors": [[1.0, 2.0], [3.0]]},               # ragged
        {"vectors": []},                                # empty
        {"vectors": [[1.0]], "top_k": 0},               # bad top_k
        {"vectors": [[1.0]], "top_k": 1.5},             # non-int top_k
        {"vectors": [[1.0]], "deadline_s": -1},         # bad deadline
        [1, 2, 3],                                      # not an object
    ])
    def test_parse_query_rejects(self, payload):
        with pytest.raises(ValidationError):
            schemas.parse_query(payload)

    def test_parse_query_row_limits(self):
        too_many = [[1.0]] * (schemas.MAX_ROWS + 1)
        with pytest.raises(ValidationError):
            schemas.parse_query({"vectors": too_many})

    def test_parse_add(self):
        req = schemas.parse_add(
            {"vectors": [[1.0] * DIM] * 2, "ids": [5, 9]}
        )
        assert req.vectors.shape == (2, DIM)
        assert req.ids.tolist() == [5, 9]
        assert schemas.parse_add({"vectors": [[1.0]]}).ids is None
        with pytest.raises(ValidationError):
            schemas.parse_add({"vectors": [[1.0]], "ids": [1, 2]})
        with pytest.raises(ValidationError):
            schemas.parse_add({"ids": [1]})

    def test_parse_remove_and_swap(self):
        assert schemas.parse_remove({"ids": [3]}).ids.tolist() == [3]
        with pytest.raises(ValidationError):
            schemas.parse_remove({})
        with pytest.raises(ValidationError):
            schemas.parse_remove({"ids": []})
        assert schemas.parse_swap({"model": " abc "}).model == "abc"
        with pytest.raises(ValidationError):
            schemas.parse_swap({"model": ""})
        with pytest.raises(ValidationError):
            schemas.parse_swap({})

    @pytest.mark.parametrize("exc,status", [
        (ValidationError("x"), 400),
        (ShapeError("x"), 400),
        (ConfigurationError("x"), 400),
        (NotFittedError("x"), 409),
        (OverloadedError("x"), 429),
        (ShutdownError("x"), 503),
        (DeadlineExceededError("x"), 504),
        (ReproError("x"), 500),
        (KeyError("x"), 500),
    ])
    def test_status_map(self, exc, status):
        assert schemas.status_for(exc) == status
        body = schemas.error_body(exc)
        assert body["error"]["type"] == type(exc).__name__

    def test_jsonable_handles_numpy(self):
        out = schemas.jsonable({
            "a": np.int64(3), "b": np.float64(0.5),
            "c": np.arange(2), "d": [np.bool_(True)], "e": (1, 2),
        })
        assert json.loads(json.dumps(out)) == {
            "a": 3, "b": 0.5, "c": [0, 1], "d": [True], "e": [1, 2],
        }


class TestServingApp:
    def test_query_matches_direct_service(self):
        service = make_service()
        app = ServingApp(service)
        queries = np.random.default_rng(1).standard_normal((3, DIM))
        status, body = app.handle(
            "POST", "/query", {"vectors": queries.tolist(), "top_k": 4}
        )
        assert status == 200
        ids, dist = service.query(queries, top_k=4)
        assert body["ids"] == ids.tolist()
        assert body["distances"] == dist.tolist()
        assert body["degraded"] is False
        service.close()

    def test_add_remove_roundtrip(self):
        app = ServingApp(make_service())
        rows = np.random.default_rng(2).standard_normal((2, DIM))
        status, body = app.handle(
            "POST", "/add", {"vectors": rows.tolist(), "ids": [100, 101]}
        )
        assert (status, body["ids"]) == (200, [100, 101])
        status, body = app.handle("POST", "/remove", {"ids": [100, 101, 7777]})
        assert (status, body["removed"]) == (200, 2)
        app.close()

    def test_unknown_route_404(self):
        app = ServingApp(make_service())
        status, body = app.handle("POST", "/nope", {})
        assert (status, body["error"]["type"]) == (404, "NotFound")
        status, _ = app.handle("PUT", "/query", {})
        assert status == 404
        app.close()

    def test_validation_maps_to_400(self):
        app = ServingApp(make_service())
        status, body = app.handle("POST", "/query", {"vectors": "zzz"})
        assert (status, body["error"]["type"]) == (400, "ValidationError")
        app.close()

    def test_handle_raw_bad_json(self):
        app = ServingApp(make_service())
        status, raw = app.handle_raw("POST", "/query", b"{nope")
        assert status == 400
        assert json.loads(raw)["error"]["type"] == "ValidationError"
        app.close()

    def test_admission_sheds_past_max_inflight(self):
        release = threading.Event()
        entered = threading.Event()
        net = identity_network()

        def slow_encode(matrix):
            entered.set()
            assert release.wait(10)
            return net.encode(matrix)

        service = HashingService(slow_encode, n_bits=BITS,
                                 backend="bruteforce", max_batch=64,
                                 max_delay_s=0.0)
        release.set()  # let the database load through
        service.add(np.random.default_rng(7).standard_normal((10, DIM)))
        release.clear()
        entered.clear()
        app = ServingApp(service, max_inflight=1)
        row = [0.5] * DIM
        results = []
        worker = threading.Thread(
            target=lambda: results.append(
                app.handle("POST", "/query", {"vector": row})
            )
        )
        worker.start()
        assert entered.wait(10)
        # The slot is taken: the next request sheds at the gate.
        status, body = app.handle("POST", "/query", {"vector": row})
        assert (status, body["error"]["type"]) == (429, "OverloadedError")
        assert app.inflight == 1
        # Observability endpoints bypass the gate.
        assert app.handle("GET", "/health", None)[0] == 200
        status, stats = app.handle("GET", "/stats", None)
        assert stats["server"]["shed"] == 1
        release.set()
        worker.join(10)
        assert results[0][0] == 200
        assert app.inflight == 0
        app.close()

    def test_draining_rejects_with_503(self):
        app = ServingApp(make_service())
        app.begin_drain()
        status, body = app.handle("POST", "/query", {"vector": [1.0] * DIM})
        assert (status, body["error"]["type"]) == (503, "ShutdownError")
        status, body = app.handle("GET", "/health", None)
        assert status == 200 and body["status"] == "draining"
        app.close()

    def test_close_retires_service(self):
        service = make_service()
        app = ServingApp(service)
        app.close()
        assert service.closed
        # The underlying service now refuses work with the typed error.
        status, body = app.handle("POST", "/query", {"vector": [1.0] * DIM})
        assert (status, body["error"]["type"]) == (503, "ShutdownError")

    def test_stats_reports_latency_and_counters(self):
        app = ServingApp(make_service())
        for _ in range(3):
            app.handle("POST", "/query", {"vector": [1.0] * DIM})
        app.handle("POST", "/query", {"vectors": "bad"})
        status, body = app.handle("GET", "/stats", None)
        assert status == 200
        server = body["server"]
        assert server["requests"] == 4
        assert server["responses"] == {"200": 3, "400": 1}
        query_latency = server["latency"]["query"]
        assert query_latency["count"] == 4
        assert 0 <= query_latency["p50_s"] <= query_latency["p99_s"]
        # The service's own per-stage histograms ride along.
        assert body["service"]["latency"]["total"]["count"] == 3
        app.close()

    def test_swap_without_factory_rejected(self):
        app = ServingApp(make_service())
        status, body = app.handle("POST", "/swap", {"model": "abc"})
        assert (status, body["error"]["type"]) == (400, "ConfigurationError")
        app.close()

    def test_swap_replaces_service_and_closes_old(self):
        old = make_service()
        new = make_service()
        app = ServingApp(old, service_factory=lambda source: new)
        status, body = app.handle("POST", "/swap", {"model": "v2"})
        assert status == 200 and body["swapped"] is True
        assert app.service is new
        assert old.closed and not new.closed
        status, _ = app.handle("POST", "/query", {"vector": [1.0] * DIM})
        assert status == 200
        app.close()

    def test_swap_failure_keeps_old_service(self):
        old = make_service()

        def broken_factory(source):
            raise ConfigurationError(f"no snapshot {source}")

        app = ServingApp(old, service_factory=broken_factory)
        status, body = app.handle("POST", "/swap", {"model": "ghost"})
        assert (status, body["error"]["type"]) == (400, "ConfigurationError")
        assert app.service is old and not old.closed
        assert app.handle("POST", "/query", {"vector": [1.0] * DIM})[0] == 200
        app.close()

    def test_swap_drops_zero_inflight_requests(self):
        release = threading.Event()
        entered = threading.Event()
        net = identity_network()

        def gate_encode(matrix):
            entered.set()
            assert release.wait(10)
            return net.encode(matrix)

        old = HashingService(gate_encode, n_bits=BITS, backend="bruteforce",
                             max_batch=64, max_delay_s=0.0)
        release.set()
        db = np.random.default_rng(7).standard_normal((10, DIM))
        old.add(db)
        release.clear()
        entered.clear()
        new = make_service()
        app = ServingApp(old, service_factory=lambda source: new,
                         max_inflight=4)
        results = []
        query = {"vector": [0.5] * DIM, "top_k": 3}
        worker = threading.Thread(
            target=lambda: results.append(app.handle("POST", "/query", query))
        )
        worker.start()
        assert entered.wait(10)  # pinned to the OLD generation mid-encode
        status, _ = app.handle("POST", "/swap", {"model": "v2"})
        assert status == 200
        # The old generation still has a rider: it must not close yet.
        assert not old.closed
        release.set()
        worker.join(10)
        status, body = results[0]
        assert status == 200  # the in-flight request completed on v1
        release.set()
        deadline = time.monotonic() + 5
        while not old.closed and time.monotonic() < deadline:
            time.sleep(0.01)
        assert old.closed  # retired once its last rider drained
        assert app.handle("POST", "/query", query)[0] == 200  # v2 serves
        app.close()


class TestHttpServer:
    def test_end_to_end_bit_identical(self):
        service = make_service()
        app = ServingApp(service)
        handle = run_server_in_thread(app, concurrency=4)
        try:
            queries = np.random.default_rng(3).standard_normal((4, DIM))
            status, body = post(handle.port, "/query",
                                {"vectors": queries.tolist(), "top_k": 5})
            assert status == 200
            ids, dist = service.query(queries, top_k=5)
            assert body["ids"] == ids.tolist()
            # float64 distances survive JSON bit-exactly (repr round trip).
            assert body["distances"] == dist.tolist()
        finally:
            handle.stop()

    def test_error_statuses_over_the_wire(self):
        app = ServingApp(make_service())
        handle = run_server_in_thread(app, concurrency=2)
        try:
            assert post(handle.port, "/query", {"vectors": "zzz"})[0] == 400
            assert post(handle.port, "/missing", {})[0] == 404
            assert get(handle.port, "/health")[1]["status"] == "ok"
        finally:
            handle.stop()

    def test_keep_alive_two_requests_one_connection(self):
        app = ServingApp(make_service())
        handle = run_server_in_thread(app, concurrency=2)
        try:
            body = json.dumps({"vector": [1.0] * DIM}).encode()
            request = (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            with socket.create_connection(
                ("127.0.0.1", handle.port), timeout=30
            ) as conn:
                conn.sendall(request)
                first = _read_response(conn)
                conn.sendall(request)
                second = _read_response(conn)
            assert first[0] == 200 and second[0] == 200
            assert first[1] == second[1]
        finally:
            handle.stop()

    def test_malformed_request_line_400(self):
        app = ServingApp(make_service())
        handle = run_server_in_thread(app, concurrency=2)
        try:
            with socket.create_connection(
                ("127.0.0.1", handle.port), timeout=30
            ) as conn:
                conn.sendall(b"BOGUS\r\n\r\n")
                status, _ = _read_response(conn)
            assert status == 400
        finally:
            handle.stop()

    def test_oversized_body_413(self):
        app = ServingApp(make_service())
        handle = run_server_in_thread(app, concurrency=2,
                                      max_body_bytes=64)
        try:
            big = json.dumps({"vector": [1.0] * 512}).encode()
            request = (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(big), big)
            )
            with socket.create_connection(
                ("127.0.0.1", handle.port), timeout=30
            ) as conn:
                conn.sendall(request)
                status, _ = _read_response(conn)
            assert status == 413
        finally:
            handle.stop()

    def test_concurrent_clients_coalesce_in_batcher(self):
        service = make_service(max_batch=8, max_delay_s=0.05)
        before = service.batcher.stats()["requests"]
        app = ServingApp(service)
        handle = run_server_in_thread(app, concurrency=8)
        try:
            rng = np.random.default_rng(4)
            rows = rng.standard_normal((8, DIM))
            statuses = []
            lock = threading.Lock()

            def client(row):
                status, _ = post(handle.port, "/query",
                                 {"vector": row.tolist(), "top_k": 3})
                with lock:
                    statuses.append(status)

            threads = [threading.Thread(target=client, args=(row,))
                       for row in rows]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
            assert statuses == [200] * 8
            stats = service.batcher.stats()
            sizes = {int(k): v for k, v in stats["flush_sizes"].items()}
            handled = stats["requests"] - before
            assert handled == 8
            # Independent connections genuinely shared encode flushes:
            # fewer flushes than requests means some batch held >1 row.
            new_flushes = sum(
                count for size, count in sizes.items()
            )
            assert max(sizes) > 1 or new_flushes < stats["requests"]
        finally:
            handle.stop()

    def test_graceful_shutdown_completes_inflight(self):
        release = threading.Event()
        entered = threading.Event()
        net = identity_network()

        def gate_encode(matrix):
            entered.set()
            assert release.wait(10)
            return net.encode(matrix)

        service = HashingService(gate_encode, n_bits=BITS,
                                 backend="sharded", n_shards=2, workers=2,
                                 max_batch=64, max_delay_s=0.0)
        release.set()
        service.add(np.random.default_rng(7).standard_normal((10, DIM)))
        release.clear()
        entered.clear()
        app = ServingApp(service)
        handle = run_server_in_thread(app, concurrency=4)
        port = handle.port
        results = []
        worker = threading.Thread(
            target=lambda: results.append(
                post(port, "/query", {"vector": [0.5] * DIM})
            )
        )
        worker.start()
        assert entered.wait(10)
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        time.sleep(0.05)  # let the drain begin
        release.set()
        worker.join(30)
        stopper.join(30)
        # The in-flight request completed despite the shutdown racing it.
        assert results and results[0][0] == 200
        # New connections are refused once the listener closed.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1)
        # Drain left everything balanced and closed.
        assert service.closed
        pool = service.index.pool_stats()
        assert pool["submitted"] == pool["completed"]
        assert pool["shm_published"] == pool["shm_released"]
        assert pool["shm_active"] == 0

    def test_rejects_new_work_while_draining(self):
        service = make_service()
        app = ServingApp(service)
        handle = run_server_in_thread(app, concurrency=2)
        try:
            app.begin_drain()
            status, body = post(handle.port, "/query",
                                {"vector": [1.0] * DIM})
            assert (status, body["error"]["type"]) == (503, "ShutdownError")
        finally:
            handle.stop()


def _read_response(conn: socket.socket):
    """Minimal HTTP response reader for the raw-socket tests."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(65536)
        if not chunk:
            raise AssertionError(f"connection closed mid-head: {data!r}")
        data += chunk
    head, body = data.split(b"\r\n\r\n", 1)
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    while len(body) < length:
        chunk = conn.recv(65536)
        if not chunk:
            break
        body += chunk
    return status, body


class TestBatcherThreadSafety:
    """Satellite: the shared batcher under genuinely concurrent load."""

    def test_stress_no_lost_duplicated_or_hung_tickets(self):
        net = identity_network()
        batcher = EncodeBatcher(net, max_batch=16, max_delay_s=0.002)
        n_threads, per_thread = 8, 40
        rng = np.random.default_rng(11)
        rows = rng.standard_normal((n_threads, per_thread, DIM))
        expected = net.encode(rows.reshape(-1, DIM))
        results = np.zeros((n_threads, per_thread, BITS))
        errors = []

        def client(t):
            try:
                for i in range(per_thread):
                    ticket = batcher.submit(rows[t, i])
                    results[t, i] = ticket.result(wait=True)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(t,))
                   for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors
        assert not any(thread.is_alive() for thread in threads)  # no hangs
        # Every ticket resolved to exactly its own row's code: nothing
        # lost, duplicated, or cross-wired between concurrent callers.
        np.testing.assert_array_equal(
            results.reshape(-1, BITS), expected
        )
        stats = batcher.stats()
        total = n_threads * per_thread
        assert stats["requests"] == total
        assert stats["pending"] == 0
        # Conservation: the flush-size histogram accounts for every row.
        assert sum(size * count
                   for size, count in stats["flush_sizes"].items()) == total
        # Concurrency actually coalesced: some flush carried >1 row.
        assert max(stats["flush_sizes"]) > 1

    def test_stress_through_service_auto_flush(self):
        service = make_service(max_batch=8, max_delay_s=0.002)
        baseline = service.batcher.stats()["requests"]
        rng = np.random.default_rng(12)
        rows = rng.standard_normal((6, DIM))
        direct = [service.query(rows[i], top_k=3) for i in range(6)]
        outcomes = [None] * 6

        def client(i):
            outcomes[i] = service.query(rows[i], top_k=3, flush="auto")

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        for i in range(6):
            assert outcomes[i] is not None, f"query {i} hung"
            np.testing.assert_array_equal(outcomes[i][0], direct[i][0])
            np.testing.assert_array_equal(outcomes[i][1], direct[i][1])
        service.close()
