"""Tests for the semantic similarity generators (Eq. 3 / Eq. 6)."""

import numpy as np
import pytest

from repro.core.similarity import (
    ClusteredConceptSimilarityGenerator,
    ImageFeatureSimilarityGenerator,
    SemanticSimilarityGenerator,
    similarity_from_distributions,
)
from repro.errors import ConfigurationError
from repro.vlp.concepts import NUS_WIDE_81


@pytest.fixture(scope="module")
def class_images(world):
    rng = np.random.default_rng(11)
    classes = ["cat"] * 10 + ["truck"] * 10 + ["flowers"] * 10
    lat = np.stack([world.image_latent([c], rng=rng) for c in classes])
    return world.render(lat, rng=rng), np.repeat(np.arange(3), 10)


class TestSimilarityFromDistributions:
    def test_diagonal_is_one(self, rng):
        d = rng.dirichlet(np.ones(5), size=8)
        q = similarity_from_distributions(d)
        np.testing.assert_allclose(np.diag(q), 1.0)

    def test_nonnegative_for_distributions(self, rng):
        q = similarity_from_distributions(rng.dirichlet(np.ones(4), size=6))
        assert np.all(q >= 0)

    def test_rank_check(self):
        with pytest.raises(ConfigurationError):
            similarity_from_distributions(np.zeros(4))


class TestSemanticSimilarityGenerator:
    def test_block_structure(self, clip, class_images):
        images, labels = class_images
        gen = SemanticSimilarityGenerator(clip, NUS_WIDE_81)
        result = gen.generate(images)
        q = result.matrix
        same = labels[:, None] == labels[None, :]
        off = ~np.eye(30, dtype=bool)
        assert q[same & off].mean() > q[~same].mean() + 0.3

    def test_denoising_shrinks_concepts(self, clip, class_images):
        images, _ = class_images
        gen = SemanticSimilarityGenerator(clip, NUS_WIDE_81, denoise=True)
        result = gen.generate(images)
        assert result.denoising is not None
        assert len(result.concepts) < len(NUS_WIDE_81)

    def test_no_denoise_keeps_all(self, clip, class_images):
        images, _ = class_images
        gen = SemanticSimilarityGenerator(clip, NUS_WIDE_81, denoise=False)
        result = gen.generate(images)
        assert result.concepts == tuple(NUS_WIDE_81)
        assert result.denoising is None

    def test_template_ensembling_averages(self, clip, class_images):
        images, _ = class_images
        single = SemanticSimilarityGenerator(clip, NUS_WIDE_81).generate(images)
        avg = SemanticSimilarityGenerator(
            clip, NUS_WIDE_81,
            templates=("default", "p1", "p2"),
        ).generate(images)
        assert avg.matrix.shape == single.matrix.shape
        assert not np.allclose(avg.matrix, single.matrix)

    def test_validation(self, clip):
        with pytest.raises(ConfigurationError):
            SemanticSimilarityGenerator(clip, ())
        with pytest.raises(ConfigurationError):
            SemanticSimilarityGenerator(clip, NUS_WIDE_81, templates=())


class TestImageFeatureGenerator:
    def test_symmetric_unit_diagonal(self, clip, class_images):
        images, _ = class_images
        q = ImageFeatureSimilarityGenerator(clip).generate(images).matrix
        np.testing.assert_allclose(np.diag(q), 1.0)
        np.testing.assert_allclose(q, q.T)

    def test_weaker_class_structure_than_mined(self, clip, class_images):
        """UHSCM_IF's premise: raw-feature Q tracks the true class structure
        less faithfully than concept-mined Q (correlation with the ideal
        same-class indicator)."""
        images, labels = class_images
        mined = SemanticSimilarityGenerator(clip, NUS_WIDE_81).generate(images)
        raw = ImageFeatureSimilarityGenerator(clip).generate(images)
        same = (labels[:, None] == labels[None, :]).astype(float)
        off = ~np.eye(30, dtype=bool)

        def fidelity(q):
            return np.corrcoef(q[off], same[off])[0, 1]

        assert fidelity(mined.matrix) > fidelity(raw.matrix)


class TestClusteredGenerator:
    def test_cluster_count_respected(self, clip, class_images):
        images, _ = class_images
        gen = ClusteredConceptSimilarityGenerator(clip, NUS_WIDE_81, 20)
        result = gen.generate(images)
        assert result.distributions.shape == (30, 20)
        assert len(result.concepts) == 20

    def test_validation(self, clip):
        with pytest.raises(ConfigurationError):
            ClusteredConceptSimilarityGenerator(clip, NUS_WIDE_81, 0)
        with pytest.raises(ConfigurationError):
            ClusteredConceptSimilarityGenerator(clip, ("a", "b"), 5)
