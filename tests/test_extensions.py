"""Tests for persistence, the CLI, prompt tuning, and the exporter."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.config import TrainConfig, UHSCMConfig
from repro.core.persistence import load_uhscm, save_uhscm
from repro.core.uhscm import UHSCM
from repro.errors import ConfigurationError, NotFittedError
from repro.experiments.export import write_experiments_md
from repro.vlp import SimCLIP, SemanticWorld, WorldConfig
from repro.vlp.prompt_tuning import PromptTuner, tuned_concept_scores


@pytest.fixture()
def fitted_model(clip, cifar_tiny):
    config = UHSCMConfig(n_bits=16, train=TrainConfig(epochs=4), seed=0)
    model = UHSCM(config, clip=clip)
    model.fit(cifar_tiny.train_images)
    return model


class TestPersistence:
    def test_roundtrip_codes_identical(self, fitted_model, clip, cifar_tiny,
                                       tmp_path):
        path = tmp_path / "model.npz"
        save_uhscm(fitted_model, path)
        loaded = load_uhscm(path, clip)
        np.testing.assert_array_equal(
            fitted_model.encode(cifar_tiny.query_images),
            loaded.encode(cifar_tiny.query_images),
        )
        assert loaded.config == fitted_model.config
        assert loaded.mined_concepts == fitted_model.mined_concepts

    def test_unfitted_save_raises(self, clip, tmp_path):
        model = UHSCM(UHSCMConfig(n_bits=8), clip=clip)
        with pytest.raises(NotFittedError):
            save_uhscm(model, tmp_path / "x.npz")

    def test_world_seed_mismatch(self, fitted_model, tmp_path):
        path = tmp_path / "model.npz"
        save_uhscm(fitted_model, path)
        other = SimCLIP(SemanticWorld(WorldConfig(seed=12345)))
        with pytest.raises(ConfigurationError):
            load_uhscm(path, other)

    def test_missing_file(self, clip, tmp_path):
        with pytest.raises(ConfigurationError):
            load_uhscm(tmp_path / "missing.npz", clip)

    def test_conv_mode_roundtrip(self, clip, cifar_tiny, tmp_path):
        """A conv-mode model must reload as a conv network (v1 silently
        rebuilt it as a feature-mode net and fed it mismatched params)."""
        config = UHSCMConfig(n_bits=8, train=TrainConfig(epochs=2), seed=0)
        model = UHSCM(config, clip=clip, network_mode="conv",
                      conv_profile="tiny")
        model.fit(cifar_tiny.train_images[:40])
        path = tmp_path / "conv.npz"
        save_uhscm(model, path)
        loaded = load_uhscm(path, clip)
        assert loaded.network_mode == "conv"
        assert loaded.conv_profile == "tiny"
        assert loaded.network.mode == "conv"
        np.testing.assert_array_equal(
            model.encode(cifar_tiny.query_images),
            loaded.encode(cifar_tiny.query_images),
        )

    def test_contrastive_mode_roundtrips(self, clip, cifar_tiny, tmp_path):
        """A cib-trained model must not reload claiming the default mcl."""
        config = UHSCMConfig(n_bits=8, train=TrainConfig(epochs=2), seed=0)
        model = UHSCM(config, clip=clip, contrastive="cib")
        model.fit(cifar_tiny.train_images)
        path = tmp_path / "cib.npz"
        save_uhscm(model, path)
        loaded = load_uhscm(path, clip)
        assert loaded.contrastive == "cib"
        np.testing.assert_array_equal(
            model.encode(cifar_tiny.query_images),
            loaded.encode(cifar_tiny.query_images),
        )

    def test_injected_similarity_roundtrips_as_not_mined(
        self, clip, cifar_tiny, tmp_path
    ):
        """An injected Q must not masquerade as 'mined zero concepts'."""
        config = UHSCMConfig(n_bits=8, train=TrainConfig(epochs=2), seed=0)
        model = UHSCM(config, clip=clip)
        n = cifar_tiny.train_images.shape[0]
        model.fit(cifar_tiny.train_images, similarity=np.eye(n))
        assert model.concepts_mined is False
        path = tmp_path / "injected.npz"
        save_uhscm(model, path)
        loaded = load_uhscm(path, clip)
        assert loaded.concepts_mined is False
        assert loaded.mined_concepts == ()

    def test_mined_flag_roundtrips_for_real_fits(self, fitted_model, clip,
                                                 tmp_path):
        path = tmp_path / "mined.npz"
        save_uhscm(fitted_model, path)
        loaded = load_uhscm(path, clip)
        assert loaded.concepts_mined is True
        assert loaded.mined_concepts == fitted_model.mined_concepts

    def test_old_format_rejected_with_clear_error(self, clip, tmp_path):
        from repro.pipeline import write_archive

        path = tmp_path / "old.npz"
        write_archive(path, {"format_version": 1, "world_seed": 99}, {})
        with pytest.raises(ConfigurationError, match="format"):
            load_uhscm(path, clip)


class TestPromptTuning:
    def test_improves_objective(self, clip, cifar_tiny):
        tuner = PromptTuner(clip, n_steps=15)
        concepts = ("cat", "dog", "bird", "horse", "truck", "boats")
        tuned = tuner.fit(cifar_tiny.train_images[:40], concepts)
        assert tuned.history[-1] > tuned.history[0]
        assert tuned.context.shape == (clip.world.config.latent_dim,)

    def test_tuned_scores_valid(self, clip, cifar_tiny):
        tuner = PromptTuner(clip, n_steps=5)
        concepts = ("cat", "dog", "bird")
        tuned = tuner.fit(cifar_tiny.train_images[:20], concepts)
        scores = tuned_concept_scores(clip, cifar_tiny.query_images[:10],
                                      concepts, tuned)
        assert scores.shape == (10, 3)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_sharpens_distributions(self, clip, cifar_tiny):
        """Tuning should increase the mean top-score margin it optimizes."""
        concepts = ("cat", "dog", "bird", "horse", "truck")
        images = cifar_tiny.train_images[:40]
        base = clip.score_concepts(images, concepts)
        tuner = PromptTuner(clip, n_steps=25)
        tuned = tuner.fit(images, concepts)
        new = tuned_concept_scores(clip, images, concepts, tuned)

        def margin(s):
            return float((s.max(axis=1) - s.mean(axis=1)).mean())

        assert margin(new) >= margin(base) - 1e-6

    def test_validation(self, clip, cifar_tiny):
        with pytest.raises(ConfigurationError):
            PromptTuner(clip, n_steps=0)
        with pytest.raises(ConfigurationError):
            PromptTuner(clip).fit(cifar_tiny.train_images[:5], ())


class TestExport:
    def test_writes_sections(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1.txt").write_text("TABLE1 CONTENT")
        out = tmp_path / "EXPERIMENTS.md"
        text = write_experiments_md(results, out)
        assert out.exists()
        assert "TABLE1 CONTENT" in text
        assert "not yet generated" in text  # missing sections marked


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--scale", "0.01", "--bits", "16"])
        assert args.scale == 0.01 and args.bits == [16]

    def test_export_command(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        out = tmp_path / "EXPERIMENTS.md"
        code = main(["export", "--results", str(results), "--out", str(out)])
        assert code == 0
        assert out.exists()

    def test_train_and_eval_roundtrip(self, tmp_path, capsys):
        model_path = tmp_path / "m.npz"
        code = main([
            "train", "--dataset", "cifar10", "--scale", "0.008",
            "--bits", "16", "--out", str(model_path), "--seed", "1",
        ])
        assert code == 0 and model_path.exists()
        code = main([
            "eval", "--dataset", "cifar10", "--scale", "0.008",
            "--model", str(model_path), "--seed", "1",
        ])
        assert code == 0
        assert "MAP" in capsys.readouterr().out
