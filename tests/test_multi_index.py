"""Tests for multi-index hashing — exactness vs. brute force is the key
property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError, ShapeError
from repro.retrieval.engine import HammingIndex
from repro.retrieval.multi_index import (
    MultiIndexHammingIndex,
    _bulk_keys,
    _keys_within_radius,
    _ring_masks,
    _split_points,
    _substring_key,
)


def random_codes(n, k, seed=0):
    rng = np.random.default_rng(seed)
    return np.where(rng.random((n, k)) < 0.5, -1.0, 1.0)


class TestHelpers:
    def test_split_points_cover_exactly(self):
        spans = _split_points(10, 3)
        assert spans == [(0, 4), (4, 7), (7, 10)]

    def test_substring_key(self):
        assert _substring_key(np.array([True, False, True])) == 0b101

    def test_keys_within_radius(self):
        keys = _keys_within_radius(0b00, width=2, radius=1)
        assert set(keys) == {0b00, 0b01, 0b10}

    def test_keys_radius_counts(self):
        # C(4,0)+C(4,1)+C(4,2) = 1+4+6.
        assert len(_keys_within_radius(0, width=4, radius=2)) == 11

    def test_bulk_keys_match_scalar_keying(self):
        rng = np.random.default_rng(7)
        bools = rng.random((50, 14)) < 0.5
        expected = [_substring_key(row) for row in bools]
        np.testing.assert_array_equal(_bulk_keys(bools), expected)

    def test_bulk_keys_wide_substring_object_path(self):
        # Widths beyond int64 take the arbitrary-precision fallback.
        rng = np.random.default_rng(8)
        bools = rng.random((10, 70)) < 0.5
        keys = _bulk_keys(bools)
        expected = [_substring_key(row) for row in bools]
        assert list(keys) == expected

    def test_ring_masks_popcounts(self):
        masks = _ring_masks(6, 2)
        assert len(masks) == 15  # C(6,2)
        assert all(bin(int(m)).count("1") == 2 for m in masks)
        np.testing.assert_array_equal(_ring_masks(6, 0), [0])


class TestRadiusSearch:
    @pytest.mark.parametrize("radius", [0, 2, 5, 16])
    def test_matches_bruteforce(self, radius):
        db = random_codes(200, 16, seed=1)
        queries = random_codes(10, 16, seed=2)
        mih = MultiIndexHammingIndex(16, n_tables=4).add(db)
        brute = HammingIndex(16).add(db)
        expected = brute.radius_search(queries, radius)
        got = mih.radius_search(queries, radius)
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(np.sort(e), g)

    @given(st.integers(0, 500), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_property_exact_at_any_radius(self, seed, n_tables):
        k = 12
        db = random_codes(60, k, seed=seed)
        queries = random_codes(3, k, seed=seed + 1)
        radius = int(np.random.default_rng(seed).integers(0, k + 1))
        mih = MultiIndexHammingIndex(k, n_tables=n_tables).add(db)
        brute = HammingIndex(k).add(db)
        for e, g in zip(brute.radius_search(queries, radius),
                        mih.radius_search(queries, radius)):
            np.testing.assert_array_equal(np.sort(e), g)

    def test_exact_regression_postvectorization(self):
        """radius_search must stay exact through both CSR probe modes:
        direct-addressed (narrow substrings) and sorted binary search
        (substrings wider than the direct-address cutoff)."""
        k = 48
        db = random_codes(500, k, seed=20)
        queries = random_codes(6, k, seed=21)
        brute = HammingIndex(k).add(db)
        for n_tables in (2, 4):  # widths 24 (sorted) and 12 (direct)
            mih = MultiIndexHammingIndex(k, n_tables=n_tables).add(db)
            for radius in (0, 5, 17, k):
                for e, g in zip(brute.radius_search(queries, radius),
                                mih.radius_search(queries, radius)):
                    np.testing.assert_array_equal(np.sort(e), g)

    def test_exact_wide_substring_object_keys(self):
        # One 70-bit table: keys exceed int64 and take the object path.
        k = 70
        db = random_codes(60, k, seed=22)
        queries = random_codes(3, k, seed=23)
        mih = MultiIndexHammingIndex(k, n_tables=1).add(db)
        brute = HammingIndex(k).add(db)
        for radius in (0, 1, 2):
            for e, g in zip(brute.radius_search(queries, radius),
                            mih.radius_search(queries, radius)):
                np.testing.assert_array_equal(np.sort(e), g)

    def test_validation(self):
        mih = MultiIndexHammingIndex(8, n_tables=2)
        with pytest.raises(NotFittedError):
            mih.radius_search(random_codes(1, 8), 2)
        mih.add(random_codes(10, 8))
        with pytest.raises(ShapeError):
            mih.radius_search(random_codes(1, 8), 99)
        with pytest.raises(ShapeError):
            mih.radius_search(random_codes(1, 16), 2)


class TestTopK:
    def test_matches_bruteforce_ranking(self):
        db = random_codes(150, 16, seed=3)
        queries = random_codes(8, 16, seed=4)
        mih = MultiIndexHammingIndex(16, n_tables=4).add(db)
        brute = HammingIndex(16).add(db)
        b_idx, b_dist = brute.search(queries, top_k=7)
        m_idx, m_dist = mih.search(queries, top_k=7)
        np.testing.assert_array_equal(b_dist, m_dist)
        np.testing.assert_array_equal(b_idx, m_idx)

    def test_top_k_bounds(self):
        mih = MultiIndexHammingIndex(8, n_tables=2).add(random_codes(5, 8))
        with pytest.raises(ShapeError):
            mih.search(random_codes(1, 8), top_k=50)


class TestStructure:
    def test_bucket_counts(self):
        mih = MultiIndexHammingIndex(16, n_tables=4).add(random_codes(100, 16))
        counts = mih.bucket_counts
        assert len(counts) == 4
        assert all(1 <= c <= 16 for c in counts)  # 4-bit substrings

    def test_len(self):
        mih = MultiIndexHammingIndex(8, n_tables=2)
        assert len(mih) == 0
        mih.add(random_codes(42, 8))
        assert len(mih) == 42

    def test_constructor_validation(self):
        with pytest.raises(ShapeError):
            MultiIndexHammingIndex(0)
        with pytest.raises(ShapeError):
            MultiIndexHammingIndex(8, n_tables=9)

    def test_probe_is_sublinear(self):
        """The probe should verify far fewer candidates than the corpus at
        small radius — the whole point of MIH."""
        db = random_codes(2000, 32, seed=5)
        mih = MultiIndexHammingIndex(32, n_tables=4).add(db)
        query = random_codes(1, 32, seed=6)
        candidates = mih._candidates(query[0] > 0, radius=3)
        assert candidates.size < 2000 * 0.25
