"""Tests for multi-index hashing — exactness vs. brute force is the key
property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError, ShapeError
from repro.retrieval.engine import HammingIndex
from repro.retrieval.multi_index import (
    MultiIndexHammingIndex,
    _keys_within_radius,
    _split_points,
    _substring_key,
)


def random_codes(n, k, seed=0):
    rng = np.random.default_rng(seed)
    return np.where(rng.random((n, k)) < 0.5, -1.0, 1.0)


class TestHelpers:
    def test_split_points_cover_exactly(self):
        spans = _split_points(10, 3)
        assert spans == [(0, 4), (4, 7), (7, 10)]

    def test_substring_key(self):
        assert _substring_key(np.array([True, False, True])) == 0b101

    def test_keys_within_radius(self):
        keys = _keys_within_radius(0b00, width=2, radius=1)
        assert set(keys) == {0b00, 0b01, 0b10}

    def test_keys_radius_counts(self):
        # C(4,0)+C(4,1)+C(4,2) = 1+4+6.
        assert len(_keys_within_radius(0, width=4, radius=2)) == 11


class TestRadiusSearch:
    @pytest.mark.parametrize("radius", [0, 2, 5, 16])
    def test_matches_bruteforce(self, radius):
        db = random_codes(200, 16, seed=1)
        queries = random_codes(10, 16, seed=2)
        mih = MultiIndexHammingIndex(16, n_tables=4).add(db)
        brute = HammingIndex(16).add(db)
        expected = brute.radius_search(queries, radius)
        got = mih.radius_search(queries, radius)
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(np.sort(e), g)

    @given(st.integers(0, 500), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_property_exact_at_any_radius(self, seed, n_tables):
        k = 12
        db = random_codes(60, k, seed=seed)
        queries = random_codes(3, k, seed=seed + 1)
        radius = int(np.random.default_rng(seed).integers(0, k + 1))
        mih = MultiIndexHammingIndex(k, n_tables=n_tables).add(db)
        brute = HammingIndex(k).add(db)
        for e, g in zip(brute.radius_search(queries, radius),
                        mih.radius_search(queries, radius)):
            np.testing.assert_array_equal(np.sort(e), g)

    def test_validation(self):
        mih = MultiIndexHammingIndex(8, n_tables=2)
        with pytest.raises(NotFittedError):
            mih.radius_search(random_codes(1, 8), 2)
        mih.add(random_codes(10, 8))
        with pytest.raises(ShapeError):
            mih.radius_search(random_codes(1, 8), 99)
        with pytest.raises(ShapeError):
            mih.radius_search(random_codes(1, 16), 2)


class TestTopK:
    def test_matches_bruteforce_ranking(self):
        db = random_codes(150, 16, seed=3)
        queries = random_codes(8, 16, seed=4)
        mih = MultiIndexHammingIndex(16, n_tables=4).add(db)
        brute = HammingIndex(16).add(db)
        b_idx, b_dist = brute.search(queries, top_k=7)
        m_idx, m_dist = mih.search(queries, top_k=7)
        np.testing.assert_array_equal(b_dist, m_dist)
        np.testing.assert_array_equal(b_idx, m_idx)

    def test_top_k_bounds(self):
        mih = MultiIndexHammingIndex(8, n_tables=2).add(random_codes(5, 8))
        with pytest.raises(ShapeError):
            mih.search(random_codes(1, 8), top_k=50)


class TestStructure:
    def test_bucket_counts(self):
        mih = MultiIndexHammingIndex(16, n_tables=4).add(random_codes(100, 16))
        counts = mih.bucket_counts
        assert len(counts) == 4
        assert all(1 <= c <= 16 for c in counts)  # 4-bit substrings

    def test_len(self):
        mih = MultiIndexHammingIndex(8, n_tables=2)
        assert len(mih) == 0
        mih.add(random_codes(42, 8))
        assert len(mih) == 42

    def test_constructor_validation(self):
        with pytest.raises(ShapeError):
            MultiIndexHammingIndex(0)
        with pytest.raises(ShapeError):
            MultiIndexHammingIndex(8, n_tables=9)

    def test_probe_is_sublinear(self):
        """The probe should verify far fewer candidates than the corpus at
        small radius — the whole point of MIH."""
        db = random_codes(2000, 32, seed=5)
        mih = MultiIndexHammingIndex(32, n_tables=4).add(db)
        query = random_codes(1, 32, seed=6)
        candidates = mih._candidates(query[0] > 0, radius=3)
        assert candidates.size < 2000 * 0.25
