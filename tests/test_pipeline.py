"""Tests for the staged pipeline: fingerprints, the artifact store, staged
similarity/fit execution, and resumable experiment runs."""

import os

import numpy as np
import pytest

from repro.config import TrainConfig, UHSCMConfig
from repro.core.similarity import SemanticSimilarityGenerator
from repro.core.uhscm import UHSCM
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentContext
from repro.experiments.table1 import run_table1
from repro.pipeline import (
    ArtifactStore,
    Stage,
    array_fingerprint,
    canonical,
    dataset_key,
    fingerprint,
    read_archive,
    run_stage,
    write_archive,
)

CONCEPTS = ("cat", "dog", "bird", "horse", "truck", "airplane", "ship")


class TestFingerprint:
    def test_deterministic_and_order_insensitive(self):
        a = fingerprint({"x": 1, "y": [1, 2], "z": "s"})
        b = fingerprint({"z": "s", "y": (1, 2), "x": 1})
        assert a == b
        assert len(a) == 64

    def test_dataclass_payload(self):
        config = UHSCMConfig(n_bits=32)
        assert fingerprint(config) == fingerprint(config)
        assert canonical(config)["train"]["epochs"] == config.train.epochs

    @pytest.mark.parametrize(
        "change",
        [
            {"n_bits": 16},
            {"alpha": 0.25},
            {"lam": 0.7},
            {"gamma": 0.3},
            {"beta": 0.01},
            {"tau_scale": 2.0},
            {"denoise": False},
            {"prompt_template": "the {concept}"},
            {"seed": 1},
            {"train": TrainConfig(epochs=3)},
            {"train": TrainConfig(dtype="float32")},
        ],
    )
    def test_any_config_field_change_invalidates(self, change):
        from dataclasses import replace

        base = UHSCMConfig()
        assert fingerprint(base) != fingerprint(replace(base, **change))

    def test_stage_fingerprint_chains_upstream(self):
        up_a = Stage("mine", params={"tau_scale": 1.0})
        up_b = Stage("mine", params={"tau_scale": 2.0})
        down_a = Stage("build_q", inputs=(up_a.fingerprint,))
        down_b = Stage("build_q", inputs=(up_b.fingerprint,))
        assert down_a.fingerprint != down_b.fingerprint
        assert Stage("build_q", inputs=(up_a.fingerprint,)).fingerprint \
            == down_a.fingerprint

    def test_stage_name_and_version_matter(self):
        assert Stage("mine").fingerprint != Stage("denoise").fingerprint
        assert Stage("mine").fingerprint != Stage("mine", version=2).fingerprint

    def test_arrays_rejected_from_params(self):
        with pytest.raises(ConfigurationError):
            fingerprint({"q": np.zeros(3)})

    def test_array_fingerprint_tracks_content(self):
        x = np.arange(6, dtype=np.float64)
        assert array_fingerprint(x) == array_fingerprint(x.copy())
        assert array_fingerprint(x) != array_fingerprint(x + 1)
        assert array_fingerprint(x) != array_fingerprint(
            x.astype(np.float32)
        )
        assert array_fingerprint(x) != array_fingerprint(x.reshape(2, 3))


class TestArchive:
    def test_roundtrip_exact(self, tmp_path):
        path = tmp_path / "artifact.npz"
        meta = {"kind": "test", "values": [1, 2.5, "x"], "flag": True}
        arrays = {
            "matrix": np.random.default_rng(0).normal(size=(5, 5)),
            "param/0:weight": np.arange(4, dtype=np.float32),
        }
        write_archive(path, meta, arrays)
        got_meta, got_arrays = read_archive(path)
        assert got_meta == meta
        assert set(got_arrays) == set(arrays)
        for key in arrays:
            np.testing.assert_array_equal(got_arrays[key], arrays[key])
            assert got_arrays[key].dtype == arrays[key].dtype

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_archive(tmp_path / "x.npz", {}, {"__meta__": np.zeros(1)})

    def test_missing_archive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_archive(tmp_path / "missing.npz")


class TestArtifactStore:
    def test_memory_only_roundtrip(self):
        store = ArtifactStore()
        assert store.get("k" * 64) is None
        store.put("k" * 64, {"a": 1}, {"x": np.ones(3)})
        art = store.get("k" * 64)
        assert art.meta == {"a": 1}
        np.testing.assert_array_equal(art.arrays["x"], np.ones(3))
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["puts"] == 1 and stats["disk_entries"] == 0

    def test_disk_persistence_across_instances(self, tmp_path):
        first = ArtifactStore(tmp_path / "cache")
        first.put("a" * 64, {"n": 1}, {"x": np.arange(3)})
        second = ArtifactStore(tmp_path / "cache")
        art = second.get("a" * 64)
        assert art is not None and art.meta == {"n": 1}
        np.testing.assert_array_equal(art.arrays["x"], np.arange(3))

    def test_stats_persist_across_instances(self, tmp_path):
        first = ArtifactStore(tmp_path / "cache")
        first.put("a" * 64, {}, {})
        first.get("a" * 64)
        second = ArtifactStore(tmp_path / "cache")
        stats = second.stats()
        assert stats["puts"] == 1 and stats["hits"] == 1

    def test_memory_layer_bounded(self):
        store = ArtifactStore(memory_entries=2)
        for i in range(4):
            store.put(f"{i:064d}", {"i": i}, {})
        assert store.stats()["memory_entries"] == 2
        assert store.get(f"{0:064d}") is None  # evicted from memory, no disk

    def test_disk_eviction_by_entries(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache", max_entries=2)
        for i in range(4):
            key = f"{i:064d}"
            store.put(key, {"i": i}, {"x": np.zeros(8)})
            # Space the mtimes out so LRU order is unambiguous on coarse
            # filesystem timestamp resolutions.
            os.utime(store._object_path(key), (i, i))
        store._evict()
        stats = store.stats()
        assert stats["disk_entries"] == 2
        assert stats["evictions"] >= 2
        assert not store._object_path(f"{0:064d}").exists()
        assert store._object_path(f"{3:064d}").exists()

    def test_disk_eviction_by_bytes(self, tmp_path):
        probe = ArtifactStore(tmp_path / "probe")
        probe.put("a" * 64, {}, {"x": np.zeros(64)})
        artifact_bytes = probe._object_path("a" * 64).stat().st_size
        # Room for one artifact but not two.
        store = ArtifactStore(tmp_path / "cache",
                              max_bytes=int(1.5 * artifact_bytes))
        store.put("a" * 64, {}, {"x": np.zeros(64)})
        os.utime(store._object_path("a" * 64), (1, 1))
        store.put("b" * 64, {}, {"x": np.zeros(64)})
        assert store.stats()["disk_entries"] == 1
        assert store._object_path("b" * 64).exists()
        assert not store._object_path("a" * 64).exists()

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("a" * 64, {}, {})
        store.put("b" * 64, {}, {})
        assert store.clear() == 2
        assert store.get("a" * 64) is None
        assert store.stats()["disk_entries"] == 0

    def test_orphaned_tmp_files_swept_at_init(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        orphan = store._objects_dir / "deadbeef.npzab12.tmp"
        orphan.write_bytes(b"partial write from a killed process")
        reopened = ArtifactStore(tmp_path / "cache")
        assert not orphan.exists()
        assert reopened.stats()["disk_entries"] == 0

    def test_oversized_artifact_not_pinned_in_memory(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache", memory_bytes=100)
        store.put("a" * 64, {}, {"x": np.zeros(64)})  # 512 bytes > bound
        assert store.stats()["memory_entries"] == 0
        # Still served from disk.
        art = store.get("a" * 64)
        assert art is not None
        np.testing.assert_array_equal(art.arrays["x"], np.zeros(64))

    def test_corrupt_archive_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("a" * 64, {"n": 1}, {})
        store._memory.clear()
        store._object_path("a" * 64).write_bytes(b"not an npz archive")
        assert store.get("a" * 64) is None
        assert not store._object_path("a" * 64).exists()

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ArtifactStore(tmp_path, max_entries=0)
        with pytest.raises(ConfigurationError):
            ArtifactStore(tmp_path, max_bytes=0)
        with pytest.raises(ConfigurationError):
            ArtifactStore(memory_entries=-1)

    def test_run_stage_without_store_always_builds(self):
        calls = []

        def build():
            calls.append(1)
            return {"n": len(calls)}, {}

        stage = Stage("mine", params={"p": 1})
        assert run_stage(None, stage, build).meta == {"n": 1}
        assert run_stage(None, stage, build).meta == {"n": 2}

    def test_run_stage_replays_from_store(self):
        store = ArtifactStore()
        calls = []

        def build():
            calls.append(1)
            return {"n": len(calls)}, {"x": np.ones(2)}

        stage = Stage("mine", params={"p": 1})
        first = run_stage(store, stage, build)
        second = run_stage(store, stage, build)
        assert len(calls) == 1
        assert second.meta == first.meta == {"n": 1}


class TestStagedSimilarity:
    def _generator(self, clip, **kwargs):
        defaults = dict(templates=(None,), tau_scale=1.0, denoise=True)
        defaults.update(kwargs)
        return SemanticSimilarityGenerator(clip, CONCEPTS, **defaults)

    def test_staged_matches_direct(self, clip, cifar_tiny):
        images = cifar_tiny.train_images
        gen = self._generator(clip)
        direct = gen.generate(images)
        store = ArtifactStore()
        staged = gen.generate(images, store=store,
                              data_key=dataset_key("t", 0.01, 7))
        np.testing.assert_array_equal(staged.matrix, direct.matrix)
        assert staged.concepts == direct.concepts
        assert staged.mined and staged.fingerprint is not None
        np.testing.assert_array_equal(
            staged.distributions, direct.distributions
        )

    def test_staged_matches_direct_without_denoise(self, clip, cifar_tiny):
        images = cifar_tiny.train_images
        gen = self._generator(clip, denoise=False)
        direct = gen.generate(images)
        staged = gen.generate(images, store=ArtifactStore(),
                              data_key=dataset_key("t", 0.01, 7))
        np.testing.assert_array_equal(staged.matrix, direct.matrix)

    def test_second_generate_hits_every_stage(self, clip, cifar_tiny):
        images = cifar_tiny.train_images
        gen = self._generator(clip)
        store = ArtifactStore()
        key = dataset_key("t", 0.01, 7)
        gen.generate(images, store=store, data_key=key)
        puts_before = store.stats()["puts"]
        gen.generate(images, store=store, data_key=key)
        stats = store.stats()
        assert stats["puts"] == puts_before  # nothing recomputed
        assert stats["hits"] >= 3  # mine + denoise + build_q

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(tau_scale=2.0),
            dict(denoise=False),
            dict(templates=("the {concept}",)),
        ],
    )
    def test_similarity_setting_change_invalidates(self, clip, cifar_tiny,
                                                   kwargs):
        images = cifar_tiny.train_images
        store = ArtifactStore()
        key = dataset_key("t", 0.01, 7)
        self._generator(clip).generate(images, store=store, data_key=key)
        misses_before = store.stats()["misses"]
        self._generator(clip, **kwargs).generate(images, store=store,
                                                 data_key=key)
        assert store.stats()["misses"] > misses_before

    def test_data_key_change_invalidates(self, clip, cifar_tiny):
        images = cifar_tiny.train_images
        store = ArtifactStore()
        gen = self._generator(clip)
        gen.generate(images, store=store, data_key=dataset_key("t", 0.01, 7))
        misses_before = store.stats()["misses"]
        gen.generate(images, store=store, data_key=dataset_key("t", 0.01, 8))
        assert store.stats()["misses"] > misses_before

    def test_averaged_templates_staged(self, clip, cifar_tiny):
        images = cifar_tiny.train_images
        gen = self._generator(
            clip,
            templates=("a photo of the {concept}", "the {concept}"),
        )
        direct = gen.generate(images)
        staged = gen.generate(images, store=ArtifactStore(),
                              data_key=dataset_key("t", 0.01, 7))
        np.testing.assert_array_equal(staged.matrix, direct.matrix)
        assert staged.fingerprint is not None


class TestStagedUHSCMFit:
    CONFIG = UHSCMConfig(n_bits=16, train=TrainConfig(epochs=3), seed=0)

    def test_replayed_fit_is_identical(self, clip, cifar_tiny):
        store = ArtifactStore()
        key = dataset_key("t", 0.01, 7)
        first = UHSCM(self.CONFIG, clip=clip)
        first.fit(cifar_tiny.train_images, store=store, data_key=key)
        second = UHSCM(self.CONFIG, clip=clip)
        second.fit(cifar_tiny.train_images, store=store, data_key=key)
        assert store.stats()["stages"]["train"]["hits"] == 1
        np.testing.assert_array_equal(
            first.encode(cifar_tiny.query_images),
            second.encode(cifar_tiny.query_images),
        )
        assert second.history_.total == first.history_.total
        assert second.history_.batches == first.history_.batches
        assert second.mined_concepts == first.mined_concepts

    def test_q_shared_across_bit_widths(self, clip, cifar_tiny):
        store = ArtifactStore()
        key = dataset_key("t", 0.01, 7)
        UHSCM(self.CONFIG, clip=clip).fit(
            cifar_tiny.train_images, store=store, data_key=key
        )
        UHSCM(self.CONFIG.with_bits(32), clip=clip).fit(
            cifar_tiny.train_images, store=store, data_key=key
        )
        stages = store.stats()["stages"]
        assert stages["mine"]["misses"] == 1
        assert stages["mine"]["hits"] == 1
        assert stages["train"]["misses"] == 2  # n_bits invalidates training

    def test_injected_similarity_is_not_mined(self, clip, cifar_tiny):
        n = cifar_tiny.train_images.shape[0]
        q = np.eye(n)
        model = UHSCM(self.CONFIG, clip=clip)
        model.fit(cifar_tiny.train_images, similarity=q)
        assert model.concepts_mined is False
        assert model.mined_concepts == ()

    def test_injected_similarity_replays_by_content(self, clip, cifar_tiny):
        n = cifar_tiny.train_images.shape[0]
        q = np.eye(n)
        store = ArtifactStore()
        key = dataset_key("t", 0.01, 7)
        a = UHSCM(self.CONFIG, clip=clip)
        a.fit(cifar_tiny.train_images, similarity=q, store=store, data_key=key)
        b = UHSCM(self.CONFIG, clip=clip)
        b.fit(cifar_tiny.train_images, similarity=q, store=store, data_key=key)
        assert store.stats()["stages"]["train"]["hits"] == 1
        np.testing.assert_array_equal(
            a.encode(cifar_tiny.query_images), b.encode(cifar_tiny.query_images)
        )
        # A different injected Q must not replay the same training.
        c = UHSCM(self.CONFIG, clip=clip)
        c.fit(cifar_tiny.train_images, similarity=np.ones((n, n)),
              store=store, data_key=key)
        assert store.stats()["stages"]["train"]["misses"] == 2

    def test_injected_similarity_result_keeps_provenance(self, clip,
                                                         cifar_tiny):
        """Passing a staged SimilarityResult chains the train stage on the
        Q fingerprint instead of re-hashing the matrix (figure 4's path)."""
        store = ArtifactStore()
        key = dataset_key("t", 0.01, 7)
        gen = SemanticSimilarityGenerator(clip, CONCEPTS)
        sim = gen.generate(cifar_tiny.train_images, store=store, data_key=key)
        assert sim.fingerprint is not None
        a = UHSCM(self.CONFIG, clip=clip)
        a.fit(cifar_tiny.train_images, similarity=sim, store=store,
              data_key=key)
        assert a.concepts_mined is True
        assert a.mined_concepts == sim.concepts
        b = UHSCM(self.CONFIG, clip=clip)
        b.fit(cifar_tiny.train_images, similarity=sim, store=store,
              data_key=key)
        assert store.stats()["stages"]["train"]["hits"] == 1
        np.testing.assert_array_equal(
            a.encode(cifar_tiny.query_images),
            b.encode(cifar_tiny.query_images),
        )


class TestResumableContext:
    def test_fit_replays_across_contexts(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        ctx = ExperimentContext("cifar10", scale=0.008, epochs=2, store=store)
        first = ctx.fit("LSH", 16)
        # A fresh context + fresh store instance simulates a new process
        # resuming after an interrupt.
        ctx2 = ExperimentContext("cifar10", scale=0.008, epochs=2,
                                 store=ArtifactStore(tmp_path / "cache"))
        second = ctx2.fit("LSH", 16)
        np.testing.assert_array_equal(first.query_codes, second.query_codes)
        np.testing.assert_array_equal(first.database_codes,
                                      second.database_codes)
        assert second.fit_seconds == first.fit_seconds
        assert ctx2.store.stats()["stages"]["encode"]["hits"] >= 1

    def test_use_cache_false_bypasses_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        ctx = ExperimentContext("cifar10", scale=0.008, epochs=2, store=store)
        ctx.fit("LSH", 16, use_cache=False)
        stats = store.stats()
        assert stats["puts"] == 0 and stats["hits"] == 0 \
            and stats["misses"] == 0

    def test_variant_fit_replays(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        ctx = ExperimentContext("cifar10", scale=0.008, epochs=2, store=store)
        first = ctx.fit_variant("wo_mcl", 16)
        ctx2 = ExperimentContext("cifar10", scale=0.008, epochs=2,
                                 store=ArtifactStore(tmp_path / "cache"))
        second = ctx2.fit_variant("wo_mcl", 16)
        np.testing.assert_array_equal(first.query_codes, second.query_codes)

    def test_table1_resumes_without_refitting(self, tmp_path):
        kwargs = dict(scale=0.008, bit_lengths=(16,), datasets=("cifar10",),
                      methods=("LSH", "UHSCM"), epochs=2)
        # Simulate an interrupted run: only the first cell finished.
        store = ArtifactStore(tmp_path / "cache")
        partial = run_table1(methods=("LSH",), store=store,
                             **{k: v for k, v in kwargs.items()
                                if k != "methods"})
        assert partial.value("LSH", "cifar10", 16) >= 0
        # Resume with a fresh store instance over the same directory.
        resumed_store = ArtifactStore(tmp_path / "cache")
        full = run_table1(store=resumed_store, **kwargs)
        stats = resumed_store.stats()
        assert stats["stages"]["encode"]["hits"] >= 1  # LSH cell replayed
        assert full.value("LSH", "cifar10", 16) \
            == partial.value("LSH", "cifar10", 16)
        # And the resumed numbers match a from-scratch, storeless run.
        fresh = run_table1(**kwargs)
        for method in kwargs["methods"]:
            assert full.value(method, "cifar10", 16) \
                == fresh.value(method, "cifar10", 16)


class TestCliCache:
    def test_stats_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        store = ArtifactStore(cache_dir)
        store.put("a" * 64, {"n": 1}, {"x": np.zeros(4)})
        store.get("a" * 64)
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "hits      : 1" in out and "1 artifacts" in out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "cleared 1 artifacts" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "0 artifacts" in capsys.readouterr().out

    def test_stats_on_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope"
        assert main(["cache", "stats", "--cache-dir", str(missing)]) == 0
        assert "does not exist" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(missing)]) == 0

    def test_resume_flag_implies_default_cache_dir(self, tmp_path,
                                                   monkeypatch):
        from repro.cli import _make_store, build_parser

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        args = build_parser().parse_args(["table1", "--resume"])
        store = _make_store(args)
        assert store is not None
        assert store.cache_dir == tmp_path / "envcache"
        args = build_parser().parse_args(["table1"])
        assert _make_store(args) is None

    def test_train_with_cache_dir_populates_store(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        code = main([
            "train", "--dataset", "cifar10", "--scale", "0.008",
            "--bits", "16", "--seed", "1", "--cache-dir", str(cache_dir),
        ])
        assert code == 0
        assert "cache:" in capsys.readouterr().out
        stats = ArtifactStore(cache_dir).stats()
        assert stats["puts"] >= 4  # mine, denoise, build_q, train
