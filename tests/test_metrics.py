"""Tests for the fixed-bucket latency histogram (:mod:`repro.utils.metrics`)."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.utils.metrics import DEFAULT_BOUNDS, LatencyHistogram, geometric_bounds


class TestBounds:
    def test_default_ladder_shape(self):
        assert DEFAULT_BOUNDS[0] == pytest.approx(1e-5)
        assert len(DEFAULT_BOUNDS) == 48
        assert all(b > a for a, b in zip(DEFAULT_BOUNDS, DEFAULT_BOUNDS[1:]))
        assert DEFAULT_BOUNDS[-1] > 60.0  # covers minutes-long outliers

    def test_geometric_bounds_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_bounds(start=0.0)
        with pytest.raises(ConfigurationError):
            geometric_bounds(factor=1.0)
        with pytest.raises(ConfigurationError):
            geometric_bounds(count=0)

    def test_bad_custom_bounds(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram(bounds=())
        with pytest.raises(ConfigurationError):
            LatencyHistogram(bounds=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            LatencyHistogram(bounds=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            LatencyHistogram(bounds=(2.0, 1.0))


class TestRecordPercentile:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.max == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.percentile(99) == 0.0

    def test_percentile_is_bucket_upper_bound(self):
        hist = LatencyHistogram(bounds=(0.001, 0.01, 0.1, 1.0))
        for value in (0.0005, 0.002, 0.003, 0.05):
            hist.record(value)
        # ranks: p50 -> 2nd of 4 -> the 0.01 bucket's bound
        assert hist.percentile(50) == 0.01
        assert hist.percentile(75) == 0.01
        assert hist.percentile(100) == 0.1
        assert hist.percentile(0) == 0.001  # rank clamps to 1

    def test_percentile_conservative(self):
        hist = LatencyHistogram()
        values = [i / 997.0 for i in range(1, 500)]
        for value in values:
            hist.record(value)
        for p in (50, 90, 95, 99):
            true = sorted(values)[max(0, -(-p * len(values) // 100) - 1)]
            assert hist.percentile(p) >= true

    def test_exact_boundary_lands_in_bucket(self):
        hist = LatencyHistogram(bounds=(0.001, 0.01))
        hist.record(0.001)  # exactly on a bound: that bucket, not the next
        assert hist.percentile(100) == 0.001

    def test_overflow_reports_exact_max(self):
        hist = LatencyHistogram(bounds=(0.001, 0.01))
        hist.record(5.0)
        hist.record(7.5)
        assert hist.percentile(99) == 7.5
        assert hist.max == 7.5

    def test_negative_clamps_to_zero(self):
        hist = LatencyHistogram(bounds=(0.001,))
        hist.record(-3.0)
        assert hist.count == 1
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.001

    def test_percentile_range_validation(self):
        hist = LatencyHistogram()
        with pytest.raises(ConfigurationError):
            hist.percentile(-1)
        with pytest.raises(ConfigurationError):
            hist.percentile(101)

    def test_mean_and_count(self):
        hist = LatencyHistogram()
        for value in (0.1, 0.2, 0.3):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(0.2)

    def test_deterministic_across_orderings(self):
        values = [0.0003, 0.02, 0.4, 0.0007, 0.02, 1.5]
        a, b = LatencyHistogram(), LatencyHistogram()
        for value in values:
            a.record(value)
        for value in reversed(values):
            b.record(value)
        for p in (50, 95, 99):
            assert a.percentile(p) == b.percentile(p)


class TestMergeSnapshotTime:
    def test_merge_equals_single_histogram(self):
        a, b, joint = (LatencyHistogram() for _ in range(3))
        for value in (0.001, 0.05, 0.2):
            a.record(value)
            joint.record(value)
        for value in (0.0004, 0.8):
            b.record(value)
            joint.record(value)
        a.merge(b)
        assert a.count == joint.count
        assert a.mean == pytest.approx(joint.mean)
        assert a.max == joint.max
        for p in (50, 95, 99):
            assert a.percentile(p) == joint.percentile(p)

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram(bounds=(1.0,)).merge(LatencyHistogram())

    def test_merge_self_is_noop(self):
        hist = LatencyHistogram()
        hist.record(0.5)
        assert hist.merge(hist).count == 1

    def test_merge_returns_self_for_chaining(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        assert a.merge(b) is a

    def test_snapshot_shape(self):
        hist = LatencyHistogram(bounds=(0.001, 1.0))
        hist.record(0.0002)
        snap = hist.snapshot()
        assert set(snap) == {"count", "mean_s", "max_s", "p50_s", "p95_s",
                             "p99_s"}
        assert snap["count"] == 1
        assert snap["p99_s"] == 0.001

    def test_time_uses_injected_clock(self):
        ticks = iter([10.0, 10.25])
        hist = LatencyHistogram(bounds=(0.1, 0.3, 1.0), clock=lambda: next(ticks))
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.mean == pytest.approx(0.25)
        assert hist.percentile(50) == 0.3

    def test_time_records_on_exception(self):
        ticks = iter([0.0, 0.05])
        hist = LatencyHistogram(bounds=(0.1,), clock=lambda: next(ticks))
        with pytest.raises(RuntimeError):
            with hist.time():
                raise RuntimeError("boom")
        assert hist.count == 1

    def test_thread_safe_recording(self):
        hist = LatencyHistogram()
        per_thread = 500

        def pound():
            for i in range(per_thread):
                hist.record((i % 7 + 1) * 1e-4)

        threads = [threading.Thread(target=pound) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 8 * per_thread
