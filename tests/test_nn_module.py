"""Tests for the Module base class: mode switching, params, buffers."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm1d, Linear, ReLU, Sequential
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class TestModeSwitching:
    def test_train_eval_propagates_to_children(self):
        net = Sequential(Linear(2, 3, rng=0), Sequential(ReLU(), BatchNorm1d(3)))
        net.eval()
        assert all(not m.training for m in net._modules_recursive())
        net.train()
        assert all(m.training for m in net._modules_recursive())


class TestParameters:
    def test_num_parameters(self):
        net = Sequential(Linear(4, 3, rng=0))  # 4*3 weights + 3 bias
        assert net.num_parameters() == 15

    def test_zero_grad(self):
        net = Sequential(Linear(2, 2, rng=0))
        for p in net.parameters():
            p.grad[...] = 1.0
        net.zero_grad()
        assert all(np.all(p.grad == 0) for p in net.parameters())

    def test_parameter_repr_and_size(self):
        p = Parameter(np.zeros((2, 3)), name="w")
        assert p.size == 6
        assert "w" in repr(p)


class TestBuffers:
    def test_register_and_roundtrip(self):
        class WithBuffer(Module):
            def __init__(self):
                super().__init__()
                self.counter = self.register_buffer("counter", np.zeros(2))

            def forward(self, x):
                return x

            def backward(self, g):
                return g

        m = WithBuffer()
        m.counter += 5.0
        state = m.state_dict()
        assert "buf:0:counter" in state

        m2 = WithBuffer()
        m2.load_state_dict(state)
        np.testing.assert_array_equal(m2.counter, [5.0, 5.0])

    def test_batchnorm_running_stats_serialized(self, rng):
        bn = BatchNorm1d(3)
        bn(rng.normal(loc=4.0, size=(50, 3)))
        state = bn.state_dict()
        bn2 = BatchNorm1d(3)
        bn2.load_state_dict(state)
        np.testing.assert_array_equal(bn2.running_mean, bn.running_mean)
        np.testing.assert_array_equal(bn2.running_var, bn.running_var)

    def test_load_rejects_wrong_size(self):
        net = Sequential(Linear(2, 2, rng=0))
        with pytest.raises(ValueError):
            net.load_state_dict({})

    def test_load_rejects_wrong_shape(self):
        net = Sequential(Linear(2, 2, rng=0))
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestAbstractContract:
    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(np.zeros(2))
