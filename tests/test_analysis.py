"""Tests for k-means, t-SNE, and separation scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    class_separation_ratio,
    kmeans,
    kmeans_best_of,
    silhouette_score,
    tsne,
)
from repro.errors import ConfigurationError


def blobs(n_per=20, centers=((0, 0), (10, 10), (-10, 10)), seed=0):
    rng = np.random.default_rng(seed)
    points, labels = [], []
    for i, c in enumerate(centers):
        points.append(rng.normal(size=(n_per, 2)) + np.asarray(c))
        labels += [i] * n_per
    return np.concatenate(points), np.asarray(labels)


class TestKMeans:
    def test_recovers_blobs(self):
        x, labels = blobs()
        result = kmeans(x, 3, seed=0)
        # Each true cluster maps to exactly one k-means cluster.
        for c in range(3):
            assigned = result.labels[labels == c]
            assert len(set(assigned)) == 1

    def test_labels_in_range(self, rng):
        result = kmeans(rng.normal(size=(30, 4)), 5, seed=1)
        assert result.labels.min() >= 0 and result.labels.max() < 5

    def test_inertia_decreases_with_k(self, rng):
        x = rng.normal(size=(60, 3))
        i2 = kmeans(x, 2, seed=0).inertia
        i10 = kmeans(x, 10, seed=0).inertia
        assert i10 < i2

    def test_k_equals_n(self, rng):
        x = rng.normal(size=(5, 2))
        result = kmeans(x, 5, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            kmeans(rng.normal(size=(5, 2)), 6)
        with pytest.raises(ConfigurationError):
            kmeans(rng.normal(size=5), 2)

    def test_best_of_not_worse(self, rng):
        x = rng.normal(size=(40, 3))
        single = kmeans(x, 4, seed=0).inertia
        best = kmeans_best_of(x, 4, n_init=5, seed=0).inertia
        assert best <= single + 1e-9

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_assignment_is_nearest(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(25, 3))
        result = kmeans(x, 4, seed=seed)
        d = ((x[:, None, :] - result.centroids[None]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(result.labels, d.argmin(axis=1))


class TestTsne:
    def test_embedding_shape(self):
        x, _ = blobs(n_per=10)
        y = tsne(x, n_iter=50, perplexity=5, seed=0)
        assert y.shape == (30, 2)
        assert np.isfinite(y).all()

    def test_separates_blobs(self):
        x, labels = blobs(n_per=15)
        y = tsne(x, n_iter=200, perplexity=10, seed=0)
        assert silhouette_score(y, labels) > 0.3

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            tsne(rng.normal(size=(3, 2)))
        with pytest.raises(ConfigurationError):
            tsne(rng.normal(size=(20, 2)), perplexity=50)


class TestSeparation:
    def test_silhouette_perfect_clusters(self):
        x, labels = blobs(n_per=10)
        assert silhouette_score(x, labels) > 0.8

    def test_silhouette_random_labels_near_zero(self, rng):
        x = rng.normal(size=(40, 2))
        labels = rng.integers(0, 2, size=40)
        assert abs(silhouette_score(x, labels)) < 0.2

    def test_separation_ratio_orders_quality(self, rng):
        x, labels = blobs(n_per=10)
        noisy = x + rng.normal(size=x.shape) * 8
        assert class_separation_ratio(x, labels) > class_separation_ratio(
            noisy, labels
        )

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            silhouette_score(rng.normal(size=(5, 2)), np.zeros(5))  # 1 class
        with pytest.raises(ConfigurationError):
            class_separation_ratio(rng.normal(size=(5, 2)), np.zeros(3))
