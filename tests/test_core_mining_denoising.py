"""Tests for concept mining (Eq. 1–2) and denoising (Eq. 4–5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.denoising import (
    concept_frequencies,
    denoise_concepts,
    keep_mask,
)
from repro.core.mining import ConceptMiner, concept_distributions
from repro.errors import ConfigurationError


class TestConceptDistributions:
    def test_rows_are_distributions(self, rng):
        scores = rng.random((10, 5))
        d = concept_distributions(scores, tau=5.0)
        np.testing.assert_allclose(d.sum(axis=1), 1.0)
        assert np.all(d >= 0)

    def test_tau_sharpens(self):
        scores = np.array([[0.2, 0.8]])
        soft = concept_distributions(scores, tau=1.0)
        sharp = concept_distributions(scores, tau=50.0)
        assert sharp[0, 1] > soft[0, 1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            concept_distributions(np.zeros(3), tau=1.0)
        with pytest.raises(ConfigurationError):
            concept_distributions(np.zeros((2, 2)), tau=0.0)

    @given(
        arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(2, 8)),
               elements=st.floats(0, 1)),
        st.floats(min_value=0.5, max_value=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_stochastic(self, scores, tau):
        d = concept_distributions(scores, tau)
        np.testing.assert_allclose(d.sum(axis=1), 1.0, atol=1e-9)


class TestConceptMiner:
    def test_mine_shapes(self, clip, world, rng):
        lat = np.stack([world.image_latent(["cat"], rng=rng) for _ in range(6)])
        images = world.render(lat, rng=rng)
        miner = ConceptMiner(clip, tau_scale=1.0)
        d = miner.mine(images, ["cat", "dog", "sky"])
        assert d.shape == (6, 3)
        np.testing.assert_allclose(d.sum(axis=1), 1.0)

    def test_present_concept_gets_most_mass(self, clip, world, rng):
        lat = np.stack([world.image_latent(["dog"], rng=rng) for _ in range(10)])
        images = world.render(lat, rng=rng)
        miner = ConceptMiner(clip, tau_scale=2.0)
        d = miner.mine(images, ["dog", "bridge", "computer", "map"])
        assert (d.argmax(axis=1) == 0).mean() >= 0.9

    def test_empty_concepts(self, clip, world, rng):
        images = world.render(world.image_latent(["cat"], rng=rng), rng=rng)
        with pytest.raises(ConfigurationError):
            ConceptMiner(clip).mine(images, [])

    def test_bad_tau_scale(self, clip):
        with pytest.raises(ConfigurationError):
            ConceptMiner(clip, tau_scale=0.0)


class TestFrequencies:
    def test_eq4_counts_argmax_wins(self):
        d = np.array([
            [0.7, 0.2, 0.1],
            [0.6, 0.3, 0.1],
            [0.1, 0.8, 0.1],
        ])
        np.testing.assert_array_equal(concept_frequencies(d), [2, 1, 0])

    def test_total_equals_n(self, rng):
        d = concept_distributions(rng.random((30, 7)), tau=3.0)
        assert concept_frequencies(d).sum() == 30


class TestKeepMask:
    def test_eq5_bounds(self):
        # n=100, m=4: keep iff 12.5 <= f <= 50.
        freq = np.array([0, 12, 13, 50, 51, 100])
        mask = keep_mask(freq, n_images=100)
        # m = 6 here: lower bound = 0.5*100/6 = 8.33.
        np.testing.assert_array_equal(mask, [False, True, True, True, False,
                                             False])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            keep_mask(np.zeros((2, 2)), 10)
        with pytest.raises(ConfigurationError):
            keep_mask(np.zeros(3), 0)


class TestDenoise:
    def test_discards_never_winning_concepts(self):
        # concept 2 never wins: below the 0.5 n/m floor.
        d = np.array([[0.6, 0.3, 0.1]] * 6 + [[0.3, 0.6, 0.1]] * 6)
        result = denoise_concepts(("a", "b", "c"), d)
        assert result.kept_concepts == ("a", "b")
        assert result.discarded_concepts == ("c",)
        assert result.n_kept == 2

    def test_discards_dominating_concept(self):
        # concept 0 wins for 8 of 12 images > 0.5 n; b and c stay in range.
        d = np.array(
            [[0.9, 0.05, 0.05]] * 8
            + [[0.1, 0.8, 0.1]] * 2
            + [[0.1, 0.1, 0.8]] * 2
        )
        result = denoise_concepts(("a", "b", "c"), d)
        assert "a" not in result.kept_concepts
        assert result.kept_concepts == ("b", "c")

    def test_never_empties_the_set(self):
        d = np.array([[1.0, 0.0]] * 4)  # 'a' too frequent, 'b' too rare
        result = denoise_concepts(("a", "b"), d)
        assert result.n_kept == 2  # fallback keeps everything

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            denoise_concepts(("a",), np.zeros((3, 2)))

    def test_background_concept_discarded_end_to_end(self, clip, world, rng):
        """The paper's motivating case: a ubiquitous background concept is
        dropped by the f > 0.5 n rule."""
        lat = np.stack([
            world.image_latent(["sun", c], np.array([1.2, 1.0]), rng=rng)
            for c in ("cat", "dog", "tree", "flowers") * 10
        ])
        images = world.render(lat, rng=rng)
        miner = ConceptMiner(clip, tau_scale=1.0)
        concepts = ("sun", "cat", "dog", "tree", "flowers", "computer")
        d = miner.mine(images, concepts)
        result = denoise_concepts(concepts, d)
        assert "sun" not in result.kept_concepts  # dominates everything
        assert "computer" not in result.kept_concepts  # never present
        # At least one genuine class concept survives the filter.
        assert set(result.kept_concepts) & {"cat", "dog", "tree", "flowers"}
