"""Smoke tests for every experiment runner at miniature scale."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentContext,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.reporting import (
    CurveFamily,
    MapTable,
    SweepResult,
    TimingTable,
)

TINY = dict(scale=0.008, epochs=4, seed=0)


class TestContext:
    def test_fit_cache(self):
        ctx = ExperimentContext("cifar10", scale=0.008, epochs=2)
        a = ctx.fit("LSH", 16)
        b = ctx.fit("LSH", 16)
        assert a is b
        c = ctx.fit("LSH", 16, use_cache=False)
        assert c is not a

    def test_build_all_table1_methods(self):
        ctx = ExperimentContext("cifar10", scale=0.008, epochs=2)
        from repro.experiments.runner import TABLE1_METHODS

        for name in TABLE1_METHODS:
            assert ctx.build_method(name, 8) is not None


class TestTable1:
    def test_runs_and_has_all_cells(self):
        table = run_table1(bit_lengths=(16,), datasets=("cifar10",),
                           methods=("LSH", "UHSCM"), **TINY)
        assert isinstance(table, MapTable)
        assert 0 <= table.value("LSH", "cifar10", 16) <= 1
        assert 0 <= table.value("UHSCM", "cifar10", 16) <= 1
        assert "Table 1" in table.render()


class TestTable2:
    def test_variant_subset(self):
        table = run_table2(bit_lengths=(16,), datasets=("cifar10",),
                           variants=("ours", "wo_mcl"), **TINY)
        assert set(table.methods) == {"ours", "wo_mcl"}


class TestTable3:
    def test_timings_positive(self):
        table = run_table3(n_bits=16, datasets=("cifar10",),
                           methods=("SSDH", "UHSCM"), **TINY)
        assert isinstance(table, TimingTable)
        assert table.seconds["SSDH"]["cifar10"] > 0
        assert "Table 3" in table.render()


class TestFigures:
    def test_figure2_panels(self):
        panels = run_figure2(bit_lengths=(16,), datasets=("cifar10",),
                             methods=("LSH", "ITQ"), **TINY)
        family = panels[("cifar10", 16)]
        assert isinstance(family, CurveFamily)
        assert set(family.methods) == {"LSH", "ITQ"}
        assert family.render()

    def test_figure3_panels(self):
        panels = run_figure3(bit_lengths=(16,), datasets=("cifar10",),
                             methods=("LSH",), **TINY)
        curve = panels[("cifar10", 16)]
        y = curve.y_values["LSH"]
        x = curve.x_values["LSH"]
        assert x.size == 17  # radius 0..16
        assert np.all(np.diff(x) >= 0)  # recall monotone

    def test_figure4_sweep(self):
        panels = run_figure4(n_bits=16, datasets=("cifar10",),
                             parameters=("alpha",), **TINY)
        sweep = panels[("cifar10", "alpha")]
        assert isinstance(sweep, SweepResult)
        assert len(sweep.values) == 6
        assert sweep.best_value in sweep.values
        assert "alpha" in sweep.render()

    def test_figure5(self):
        result = run_figure5(n_bits=16, methods=("UHSCM", "CIB"),
                             max_points=80, tsne_iters=30, **TINY)
        assert set(result.silhouettes) == {"UHSCM", "CIB"}
        assert all(np.isfinite(v) for v in result.separation_ratios.values())
        assert result.render()

    def test_figure6(self):
        result = run_figure6(n_bits=16, methods=("UHSCM",), n_queries=5,
                             **TINY)
        assert 0 <= result.precision_at_10["UHSCM"] <= 1
        assert result.hit_grids["UHSCM"].shape == (5, 10)
        assert "+" in result.render() or "." in result.render()


class TestReportingEdgeCases:
    def test_map_table_missing_cell_renders_dash(self):
        table = MapTable(title="t")
        table.record("m1", "d1", 32, 0.5)
        table.methods.append("m2")
        assert "-" in table.render()

    def test_curve_family_downsampling(self):
        family = CurveFamily(title="t", x_label="x", y_label="y")
        family.record("m", np.arange(100), np.linspace(0, 1, 100))
        out = family.render(max_points=5)
        assert out.count(":") == 5
