"""Tests for dataset specs, splits, and the synthetic generator."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    PAPER_SPLITS,
    SplitSizes,
    dataset_spec,
    generate_dataset,
    load_dataset,
    paper_splits,
)
from repro.datasets.synthetic import DatasetSpec
from repro.errors import ConfigurationError


class TestSplits:
    def test_paper_sizes(self):
        assert PAPER_SPLITS["cifar10"] == (10_000, 1_000, 59_000)
        assert PAPER_SPLITS["nuswide"] == (10_500, 5_000, 190_834)
        assert PAPER_SPLITS["mirflickr"] == (10_000, 1_000, 24_000)

    def test_full_scale(self):
        sizes = paper_splits("cifar10", scale=1.0)
        assert (sizes.train, sizes.query, sizes.database) == PAPER_SPLITS["cifar10"]

    def test_scaling_keeps_floors(self):
        sizes = paper_splits("cifar10", scale=0.001)
        assert sizes.train >= 60 and sizes.query >= 30 and sizes.database >= 120

    def test_database_contains_train(self):
        with pytest.raises(ConfigurationError):
            SplitSizes(train=100, query=10, database=50)

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            paper_splits("cifar10", scale=0.0)
        with pytest.raises(ConfigurationError):
            paper_splits("cifar10", scale=1.5)

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            paper_splits("mnist")


class TestSpecValidation:
    def test_known_specs(self):
        for name in DATASET_NAMES:
            spec = dataset_spec(name)
            assert spec.name == name

    def test_probs_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            DatasetSpec(name="x", class_names=("a", "b"), class_probs=(0.5,))

    def test_background_needs_concept(self):
        with pytest.raises(ConfigurationError):
            DatasetSpec(
                name="x", class_names=("a",), class_probs=(0.5,),
                background_prob=0.5,
            )

    def test_context_probs_sum(self):
        with pytest.raises(ConfigurationError):
            DatasetSpec(
                name="x", class_names=("a",), class_probs=(0.5,),
                context_count_probs=(0.5, 0.4),
            )


class TestGeneratedDatasets:
    def test_shapes_and_split_consistency(self, cifar_tiny):
        d = cifar_tiny
        assert d.n_train == 80 and d.n_query == 30 and d.n_database == 300
        assert d.train_images.shape[1:] == d.query_images.shape[1:]
        # Training images are database rows at train_indices.
        np.testing.assert_array_equal(
            d.train_images, d.database_images[d.train_indices]
        )
        np.testing.assert_array_equal(
            d.train_labels, d.database_labels[d.train_indices]
        )

    def test_cifar_single_label(self, cifar_tiny):
        assert not cifar_tiny.is_multilabel
        np.testing.assert_array_equal(cifar_tiny.train_labels.sum(axis=1), 1)

    def test_nuswide_multilabel(self, nuswide_tiny):
        assert nuswide_tiny.is_multilabel
        assert nuswide_tiny.n_classes == 21
        assert np.all(nuswide_tiny.database_labels.sum(axis=1) >= 1)

    def test_mirflickr_classes(self, mirflickr_tiny):
        assert mirflickr_tiny.n_classes == 24

    def test_nuswide_sky_frequent(self, nuswide_tiny):
        idx = nuswide_tiny.class_names.index("sky")
        freq = nuswide_tiny.database_labels[:, idx].mean()
        assert 0.2 < freq < 0.5

    def test_features_cached_and_shaped(self, cifar_tiny):
        f1 = cifar_tiny.features("train")
        f2 = cifar_tiny.features("train")
        assert f1 is f2  # cache hit
        assert f1.shape == (cifar_tiny.n_train, cifar_tiny.world.VGG_DIM)

    def test_labels_accessor(self, cifar_tiny):
        with pytest.raises(ConfigurationError):
            cifar_tiny.labels("validation")
        assert cifar_tiny.labels("query").shape == (30, 10)

    def test_determinism(self, world):
        sizes = SplitSizes(train=60, query=30, database=120)
        a = generate_dataset(dataset_spec("cifar10"), sizes, world=world, seed=3)
        b = generate_dataset(dataset_spec("cifar10"), sizes, world=world, seed=3)
        np.testing.assert_array_equal(a.database_images, b.database_images)
        np.testing.assert_array_equal(a.database_labels, b.database_labels)

    def test_seed_changes_data(self, world):
        sizes = SplitSizes(train=60, query=30, database=120)
        a = generate_dataset(dataset_spec("cifar10"), sizes, world=world, seed=3)
        b = generate_dataset(dataset_spec("cifar10"), sizes, world=world, seed=4)
        assert not np.array_equal(a.database_labels, b.database_labels)

    def test_load_dataset_entry_point(self):
        d = load_dataset("cifar10", scale=0.002, seed=1)
        assert d.name == "cifar10"
        with pytest.raises(ConfigurationError):
            load_dataset("svhn")

    def test_class_balance_cifar(self, cifar_tiny):
        counts = cifar_tiny.database_labels.sum(axis=0)
        assert counts.min() > 0
