"""Unit + property tests for repro.utils.mathops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.errors import ConfigurationError, ShapeError
from repro.utils.mathops import (
    blocked_topk_cosine,
    cosine_similarity_matrix,
    l2_normalize,
    pairwise_inner,
    sign,
    softmax,
    stable_exp,
)

finite_floats = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        out = softmax(x)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_uniform_for_equal_scores(self):
        out = softmax(np.zeros((2, 4)))
        np.testing.assert_allclose(out, 0.25)

    def test_temperature_sharpens(self):
        x = np.array([[0.1, 0.9]])
        soft = softmax(x, temperature=1.0)
        sharp = softmax(x, temperature=50.0)
        assert sharp[0, 1] > soft[0, 1]

    def test_large_values_stable(self):
        out = softmax(np.array([[1000.0, 1001.0]]))
        assert np.isfinite(out).all()

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            softmax(np.ones((1, 2)), temperature=0.0)

    @given(
        arrays(np.float64, array_shapes(min_dims=2, max_dims=2, min_side=1,
                                        max_side=6), elements=finite_floats),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_distribution(self, x, temp):
        out = softmax(x, temperature=temp)
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)


class TestL2Normalize:
    def test_unit_norm(self):
        out = l2_normalize(np.array([[3.0, 4.0]]))
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_zero_rows_stay_zero(self):
        out = l2_normalize(np.zeros((2, 3)))
        np.testing.assert_allclose(out, 0.0)


class TestCosineSimilarity:
    def test_self_similarity_is_one(self):
        x = np.random.default_rng(0).normal(size=(5, 8))
        sims = cosine_similarity_matrix(x)
        np.testing.assert_allclose(np.diag(sims), 1.0)

    def test_symmetric(self):
        x = np.random.default_rng(1).normal(size=(6, 4))
        sims = cosine_similarity_matrix(x)
        np.testing.assert_allclose(sims, sims.T)

    def test_orthogonal_vectors(self):
        sims = cosine_similarity_matrix(np.eye(3))
        np.testing.assert_allclose(sims, np.eye(3), atol=1e-12)

    def test_two_matrices(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 0.0]])
        sims = cosine_similarity_matrix(a, b)
        np.testing.assert_allclose(sims, [[0.0, 1.0]], atol=1e-12)

    @given(
        arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(1, 6)),
               elements=finite_floats)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_bounded(self, x):
        sims = cosine_similarity_matrix(x)
        assert np.all(sims <= 1.0 + 1e-9)
        assert np.all(sims >= -1.0 - 1e-9)


class TestSign:
    def test_zero_maps_to_minus_one(self):
        # Paper §3.2: sgn "returns 1 if the input is positive and returns
        # -1 otherwise".
        np.testing.assert_array_equal(sign(np.array([0.0])), [-1.0])

    def test_signs(self):
        np.testing.assert_array_equal(
            sign(np.array([-2.0, 3.0, -0.1])), [-1.0, 1.0, -1.0]
        )

    @given(arrays(np.float64, st.integers(1, 20), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_property_binary(self, x):
        out = sign(x)
        assert set(np.unique(out)) <= {-1.0, 1.0}


class TestPairwiseInner:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            pairwise_inner(np.ones((2, 3)), np.ones((2, 4)))

    def test_rank_check(self):
        with pytest.raises(ShapeError):
            pairwise_inner(np.ones(3))

    def test_matches_matmul(self):
        a = np.random.default_rng(2).normal(size=(3, 5))
        b = np.random.default_rng(3).normal(size=(4, 5))
        np.testing.assert_allclose(pairwise_inner(a, b), a @ b.T)

    def test_default_dtype_stays_float64(self):
        a = np.ones((2, 3), dtype=np.float32)
        assert pairwise_inner(a).dtype == np.float64

    def test_dtype_passthrough_avoids_upcast(self):
        a = np.random.default_rng(4).normal(size=(3, 5)).astype(np.float32)
        out = pairwise_inner(a, dtype=np.float32)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, (a @ a.T), rtol=1e-6)


class TestDtypePassthrough:
    def test_l2_normalize_float32(self):
        x = np.random.default_rng(5).normal(size=(4, 3)).astype(np.float32)
        out = l2_normalize(x, dtype=np.float32)
        assert out.dtype == np.float32
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0,
                                   rtol=1e-6)

    def test_cosine_matrix_float32(self):
        x = np.random.default_rng(6).normal(size=(5, 4)).astype(np.float32)
        out = cosine_similarity_matrix(x, dtype=np.float32)
        assert out.dtype == np.float32
        np.testing.assert_allclose(np.diag(out), 1.0, rtol=1e-6)

    def test_cosine_matrix_default_unchanged(self):
        x = np.random.default_rng(7).normal(size=(5, 4)).astype(np.float32)
        assert cosine_similarity_matrix(x).dtype == np.float64


class TestBlockedTopkCosine:
    def test_full_k_matches_dense(self):
        x = np.random.default_rng(8).normal(size=(20, 6))
        data, indices, indptr = blocked_topk_cosine(x, 19)
        dense = np.zeros((20, 20))
        rows = np.repeat(np.arange(20), np.diff(indptr))
        dense[rows, indices] = data
        np.testing.assert_array_equal(dense, cosine_similarity_matrix(x))

    def test_row_budget_and_sorted_columns(self):
        x = np.random.default_rng(9).normal(size=(20, 6))
        data, indices, indptr = blocked_topk_cosine(x, 4)
        assert np.all(np.diff(indptr) == 5)  # k strongest + diagonal
        for row in range(20):
            cols = indices[indptr[row]:indptr[row + 1]]
            assert np.all(np.diff(cols) > 0)
            assert row in cols

    def test_dtype_passthrough(self):
        x = np.random.default_rng(10).normal(size=(8, 3))
        data, _, _ = blocked_topk_cosine(x, 2, dtype=np.float32)
        assert data.dtype == np.float32

    def test_validation(self):
        x = np.zeros((4, 2))
        with pytest.raises(ConfigurationError):
            blocked_topk_cosine(x, 0)
        with pytest.raises(ConfigurationError):
            blocked_topk_cosine(x, 2, block_rows=-1)

    def test_empty_corpus_yields_empty_csr(self):
        # Mirrors cosine_similarity_matrix's graceful (0, 0) result.
        data, indices, indptr = blocked_topk_cosine(np.empty((0, 5)), 3)
        assert data.shape == (0,) and indices.shape == (0,)
        np.testing.assert_array_equal(indptr, [0])


class TestParallelTopkCosine:
    """PR 8: pooled tile dispatch is bit-identical to the serial oracle."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_blocked_parallel_matches_serial(self, workers):
        x = np.random.default_rng(20).normal(size=(97, 12))
        serial = blocked_topk_cosine(x, 9, block_rows=16, workers=1)
        parallel = blocked_topk_cosine(x, 9, block_rows=16, workers=workers)
        for s_arr, p_arr in zip(serial, parallel):
            np.testing.assert_array_equal(s_arr, p_arr)

    def test_streaming_parallel_matches_serial(self):
        from repro.utils.mathops import streaming_topk_cosine

        x = np.random.default_rng(21).normal(size=(64, 8))

        def build(workers):
            bufs = {}

            def create(name, shape, dtype):
                bufs[name] = np.empty(shape, dtype=dtype)
                return bufs[name]

            return streaming_topk_cosine(x, 5, create, block_rows=16,
                                         workers=workers)

        for s_arr, p_arr in zip(build(1), build(4)):
            np.testing.assert_array_equal(np.asarray(s_arr),
                                          np.asarray(p_arr))

    def test_shared_pool_instance_accepted(self, monkeypatch):
        # Kernels accept a caller-owned pool and leave it open; the tile
        # count is visible in the counters (ceil(97 / 16) = 7 tiles).
        # Fake the core count so the cpu clamp can't serialize the pool
        # on a small CI box.
        import os

        from repro.utils.parallel import WorkerPool

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        x = np.random.default_rng(22).normal(size=(97, 12))
        with WorkerPool(3, name="shared") as pool:
            blocked_topk_cosine(x, 4, block_rows=16, workers=pool)
            stats = pool.stats()
            assert stats == {"backend": "thread", "workers": 3,
                             "requested": 3, "serial": False, "submitted": 7,
                             "completed": 7, "rejected": 0,
                             "shm_published": 0, "shm_released": 0,
                             "shm_active": 0}
            # Still usable afterwards — the kernel did not close it.
            assert pool.submit(lambda: "alive").result() == "alive"

    def test_env_default_resolves_parallel(self, monkeypatch):
        # workers=None reads $REPRO_WORKERS; output stays bit-identical.
        x = np.random.default_rng(23).normal(size=(40, 6))
        serial = blocked_topk_cosine(x, 3, block_rows=8, workers=1)
        monkeypatch.setenv("REPRO_WORKERS", "4")
        from_env = blocked_topk_cosine(x, 3, block_rows=8, workers=None)
        for s_arr, e_arr in zip(serial, from_env):
            np.testing.assert_array_equal(s_arr, e_arr)


class TestStableExp:
    def test_no_overflow(self):
        out = stable_exp(np.array([1e4, 1e4 + 1]))
        assert np.isfinite(out).all()

    def test_max_element_is_one(self):
        out = stable_exp(np.array([1.0, 5.0, 3.0]))
        assert out.max() == pytest.approx(1.0)
