"""Tests for nn functional ops, optimizers, losses, init, and VGG nets."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import init
from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.layers import Linear
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    mse_loss,
    softmax_cross_entropy,
)
from repro.nn.optim import SGD, Adam
from repro.nn.parameter import Parameter
from repro.nn.vgg import VGG_CONFIGS, VGGHashNet, build_feature_hash_net
from tests.conftest import numerical_gradient


class TestFunctional:
    def test_output_size(self):
        assert conv_output_size(6, 3, 1, 1) == 6
        assert conv_output_size(6, 2, 2, 0) == 3
        with pytest.raises(ShapeError):
            conv_output_size(2, 5, 1, 0)

    def test_im2col_shape(self, rng):
        cols, oh, ow = im2col(rng.normal(size=(2, 3, 5, 5)), kernel=3,
                              stride=1, padding=1)
        assert (oh, ow) == (5, 5)
        assert cols.shape == (2 * 25, 3 * 9)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.normal(size=(2, 2, 4, 4))
        cols, _, _ = im2col(x, kernel=2, stride=2, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, kernel=2, stride=2, padding=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_shape_check(self, rng):
        with pytest.raises(ShapeError):
            col2im(rng.normal(size=(3, 3)), (1, 1, 4, 4), kernel=2)


class TestInit:
    def test_xavier_uniform_bound(self):
        w = init.xavier_uniform((100, 100), rng=0)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound

    def test_kaiming_std(self):
        w = init.kaiming_normal((1000, 50), rng=0)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_conv_fans(self):
        w = init.xavier_normal((8, 4, 3, 3), rng=0)
        assert w.shape == (8, 4, 3, 3)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((3,))


class TestOptimizers:
    def _quadratic_params(self):
        return [Parameter(np.array([5.0, -3.0]), name="w")]

    def test_sgd_converges_on_quadratic(self):
        params = self._quadratic_params()
        opt = SGD(params, learning_rate=0.1, momentum=0.9, weight_decay=0.0)
        for _ in range(300):
            opt.zero_grad()
            params[0].grad[...] = 2 * params[0].data
            opt.step()
        assert np.abs(params[0].data).max() < 1e-3

    def test_adam_converges_on_quadratic(self):
        params = self._quadratic_params()
        opt = Adam(params, learning_rate=0.2)
        for _ in range(200):
            opt.zero_grad()
            params[0].grad[...] = 2 * params[0].data
            opt.step()
        assert np.abs(params[0].data).max() < 1e-2

    def test_weight_decay_shrinks(self):
        params = [Parameter(np.array([1.0]), name="w")]
        opt = SGD(params, learning_rate=0.1, momentum=0.0, weight_decay=0.5)
        opt.step()  # zero gradient: only decay acts
        assert params[0].data[0] < 1.0

    def test_weight_decay_respects_flag(self):
        p = Parameter(np.array([1.0]), name="bn", weight_decay_enabled=False)
        opt = SGD([p], learning_rate=0.1, momentum=0.0, weight_decay=0.5)
        opt.step()
        assert p.data[0] == pytest.approx(1.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], learning_rate=0.1)

    @pytest.mark.parametrize("kwargs", [{"learning_rate": 0}, {"momentum": 1.0}])
    def test_bad_hyperparams(self, kwargs):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], **{"learning_rate": 0.1, **kwargs})


class TestLosses:
    def test_mse_value_and_gradient(self, rng):
        pred = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 4))
        value, grad = mse_loss(pred, target)
        assert value == pytest.approx(((pred - target) ** 2).mean())
        num = numerical_gradient(lambda p: mse_loss(p, target)[0], pred.copy())
        np.testing.assert_allclose(grad, num, atol=1e-7)

    def test_cross_entropy_gradient(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 1, 2, 1])
        _, grad = softmax_cross_entropy(logits, labels)
        num = numerical_gradient(
            lambda lg: softmax_cross_entropy(lg, labels)[0], logits.copy()
        )
        np.testing.assert_allclose(grad, num, atol=1e-7)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        value, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_bce_gradient(self, rng):
        logits = rng.normal(size=(3, 2))
        targets = (rng.random((3, 2)) > 0.5).astype(float)
        _, grad = binary_cross_entropy_with_logits(logits, targets)
        num = numerical_gradient(
            lambda lg: binary_cross_entropy_with_logits(lg, targets)[0],
            logits.copy(),
        )
        np.testing.assert_allclose(grad, num, atol=1e-7)

    def test_bce_stable_extremes(self):
        value, _ = binary_cross_entropy_with_logits(
            np.array([[1e4, -1e4]]), np.array([[1.0, 0.0]])
        )
        assert np.isfinite(value)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mse_loss(np.zeros((2, 2)), np.zeros((2, 3)))


class TestVGG:
    def test_configs_exist(self):
        assert set(VGG_CONFIGS) == {"tiny", "small", "vgg19"}
        assert VGG_CONFIGS["vgg19"].count("M") == 5
        assert sum(1 for c in VGG_CONFIGS["vgg19"] if isinstance(c, int)) == 16

    def test_tiny_forward_and_range(self, rng):
        net = VGGHashNet(8, image_size=8, profile="tiny", rng=0)
        out = net(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 8)
        assert np.all(np.abs(out) <= 1.0)

    def test_backward_runs(self, rng):
        net = VGGHashNet(4, image_size=8, profile="tiny", rng=0)
        out = net(rng.normal(size=(2, 3, 8, 8)))
        net.backward(np.ones_like(out))
        assert any(np.abs(p.grad).sum() > 0 for p in net.parameters())

    def test_shape_validation(self, rng):
        net = VGGHashNet(4, image_size=8, profile="tiny", rng=0)
        with pytest.raises(ShapeError):
            net(rng.normal(size=(2, 3, 16, 16)))

    def test_too_deep_for_image_raises(self):
        with pytest.raises(ConfigurationError):
            VGGHashNet(4, image_size=8, profile="vgg19")

    def test_paper_profile_structure(self):
        net = VGGHashNet.paper_profile(64)
        convs = sum(1 for m in net.stem.layers if m.__class__.__name__ == "Conv2d")
        linears = sum(
            1 for m in net.head.layers if isinstance(m, Linear)
        )
        assert convs == 16  # VGG19 = 16 conv + 3 FC layers
        assert linears == 3

    def test_feature_hash_net(self, rng):
        net = build_feature_hash_net(16, feature_dim=10, rng=0)
        out = net(rng.normal(size=(4, 10)))
        assert out.shape == (4, 16)
        assert np.all(np.abs(out) <= 1.0)

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            VGGHashNet(0, profile="tiny")
        with pytest.raises(ConfigurationError):
            VGGHashNet(8, profile="nope")
        with pytest.raises(ConfigurationError):
            build_feature_hash_net(8, feature_dim=0)
