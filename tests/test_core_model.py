"""Tests for the hashing network, trainer, UHSCM model, and variants."""

import numpy as np
import pytest

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.trainer import UHSCMTrainer
from repro.core.uhscm import UHSCM
from repro.core.variants import VARIANTS, get_variant
from repro.errors import ConfigurationError, NotFittedError
from repro.retrieval import evaluate_hashing
from repro.vlp.concepts import COCO_80, NUS_WIDE_81


def small_config(n_bits=16, **overrides):
    defaults = dict(
        n_bits=n_bits,
        train=TrainConfig(epochs=8, batch_size=40),
        seed=0,
    )
    defaults.update(overrides)
    return UHSCMConfig(**defaults)


class TestHashingNetwork:
    def test_feature_mode(self, world, cifar_tiny):
        net = HashingNetwork(
            8, mode="feature",
            feature_extractor=world.backbone_features,
            feature_dim=world.config.latent_dim,
        )
        codes = net.encode(cifar_tiny.train_images[:10])
        assert codes.shape == (10, 8)
        assert set(np.unique(codes)) <= {-1.0, 1.0}

    def test_conv_mode(self, cifar_tiny):
        net = HashingNetwork(8, mode="conv",
                             image_size=cifar_tiny.train_images.shape[-1])
        codes = net.encode(cifar_tiny.train_images[:4])
        assert codes.shape == (4, 8)

    def test_validation(self, world):
        with pytest.raises(ConfigurationError):
            HashingNetwork(8, mode="feature")  # missing extractor
        with pytest.raises(ConfigurationError):
            HashingNetwork(8, mode="magic")
        with pytest.raises(ConfigurationError):
            HashingNetwork(0, mode="conv")


class TestTrainer:
    def _network(self, world):
        return HashingNetwork(
            8, mode="feature",
            feature_extractor=world.backbone_features,
            feature_dim=world.config.latent_dim,
        )

    def test_loss_decreases(self, world, cifar_tiny):
        net = self._network(world)
        config = small_config(n_bits=8)
        trainer = UHSCMTrainer(net, config)
        inputs = net.prepare_inputs(cifar_tiny.train_images)
        labels = cifar_tiny.train_labels.astype(float)
        q = labels @ labels.T  # oracle similarity
        history = trainer.fit(inputs, q)
        assert history.n_epochs == config.train.epochs
        assert history.total[-1] < history.total[0]

    def test_cib_mode_runs(self, world, cifar_tiny):
        net = self._network(world)
        trainer = UHSCMTrainer(net, small_config(n_bits=8), contrastive="cib")
        inputs = net.prepare_inputs(cifar_tiny.train_images[:40])
        q = np.eye(40)
        history = trainer.fit(inputs, q, epochs=2)
        assert history.n_epochs == 2

    def test_bad_contrastive_mode(self, world):
        with pytest.raises(ConfigurationError):
            UHSCMTrainer(self._network(world), small_config(), contrastive="x")

    def test_similarity_shape_check(self, world, cifar_tiny):
        net = self._network(world)
        trainer = UHSCMTrainer(net, small_config(n_bits=8))
        inputs = net.prepare_inputs(cifar_tiny.train_images)
        with pytest.raises(ConfigurationError):
            trainer.fit(inputs, np.eye(3))

    def test_records_batches_per_epoch(self, world, cifar_tiny):
        net = self._network(world)
        trainer = UHSCMTrainer(net, small_config(n_bits=8))
        inputs = net.prepare_inputs(cifar_tiny.train_images)  # n=80, batch=40
        history = trainer.fit(inputs, np.eye(80), epochs=3)
        assert history.batches == [2, 2, 2]

    def test_zero_batch_epoch_raises(self, world, cifar_tiny):
        """n=1 means every mini-batch is skipped; the seed silently averaged
        an empty list into NaN + RuntimeWarning."""
        net = self._network(world)
        trainer = UHSCMTrainer(net, small_config(n_bits=8))
        inputs = net.prepare_inputs(cifar_tiny.train_images[:1])
        with pytest.raises(ConfigurationError, match="zero batches"):
            trainer.fit(inputs, np.eye(1))

    def test_float32_policy_casts_stack(self, world):
        net = self._network(world)
        config = small_config(
            n_bits=8, train=TrainConfig(epochs=2, batch_size=40,
                                        dtype="float32")
        )
        trainer = UHSCMTrainer(net, config)
        assert net.dtype == np.float32
        assert all(p.data.dtype == np.float32 for p in net.parameters())
        assert all(v.dtype == np.float32 for v in trainer.optimizer._velocity)

    @pytest.mark.parametrize("contrastive", ["mcl", "cib"])
    def test_float32_tracks_float64_trajectory(self, world, cifar_tiny,
                                               contrastive):
        """The dtype policy is a throughput knob, not a different model:
        the float32 loss trajectory must track float64 tightly."""
        labels = cifar_tiny.train_labels.astype(float)
        q = labels @ labels.T
        q /= max(q.max(), 1.0)
        np.fill_diagonal(q, 1.0)
        histories = {}
        for dtype in ("float64", "float32"):
            net = self._network(world)
            config = small_config(
                n_bits=8, train=TrainConfig(epochs=4, batch_size=40,
                                            dtype=dtype)
            )
            trainer = UHSCMTrainer(net, config, contrastive=contrastive)
            inputs = net.prepare_inputs(cifar_tiny.train_images)
            histories[dtype] = trainer.fit(inputs, q)
        f64, f32 = histories["float64"], histories["float32"]
        np.testing.assert_allclose(f32.total, f64.total, rtol=1e-3)
        assert abs(f32.total[-1] - f64.total[-1]) <= 1e-3 * abs(f64.total[-1])


class TestUHSCM:
    def test_fit_encode_cycle(self, clip, cifar_tiny):
        model = UHSCM(small_config(), clip=clip)
        model.fit(cifar_tiny.train_images)
        codes = model.encode(cifar_tiny.query_images)
        assert codes.shape == (cifar_tiny.n_query, 16)
        assert set(np.unique(codes)) <= {-1.0, 1.0}

    def test_encode_before_fit_raises(self, clip, cifar_tiny):
        model = UHSCM(small_config(), clip=clip)
        with pytest.raises(NotFittedError):
            model.encode(cifar_tiny.query_images)
        with pytest.raises(NotFittedError):
            _ = model.mined_concepts

    def test_mined_concepts_denoised(self, clip, cifar_tiny):
        model = UHSCM(small_config(), clip=clip)
        model.fit(cifar_tiny.train_images)
        assert 0 < len(model.mined_concepts) < len(NUS_WIDE_81)

    def test_injected_similarity_skips_mining(self, clip, cifar_tiny):
        model = UHSCM(small_config(), clip=clip)
        n = cifar_tiny.n_train
        model.fit(cifar_tiny.train_images, similarity=np.eye(n))
        assert model.mined_concepts == ()

    def test_relaxed_codes_in_range(self, clip, cifar_tiny):
        model = UHSCM(small_config(), clip=clip)
        model.fit(cifar_tiny.train_images)
        z = model.relaxed_codes(cifar_tiny.query_images[:5])
        assert np.all(np.abs(z) <= 1.0)

    def test_beats_random_codes(self, clip, cifar_tiny):
        model = UHSCM(small_config(n_bits=32), clip=clip)
        model.fit(cifar_tiny.train_images)
        report = evaluate_hashing(model, cifar_tiny, pn_points=(10,))
        assert report.map > 0.3  # random ~0.1 on 10 balanced classes


class TestVariants:
    def test_registry_has_15_rows(self):
        assert len(VARIANTS) == 15
        assert "ours" in VARIANTS

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            get_variant("nope")

    def test_coco_variant_uses_coco(self, clip):
        model = get_variant("coco")(small_config(), clip)
        assert model.concepts == COCO_80

    def test_nus_coco_has_153(self, clip):
        model = get_variant("nus&coco")(small_config(), clip)
        assert len(model.concepts) == 153

    def test_wo_mcl_sets_alpha_zero(self, clip):
        model = get_variant("wo_mcl")(small_config(alpha=0.2), clip)
        assert model.config.alpha == 0.0

    def test_wo_de_disables_denoise(self, clip):
        model = get_variant("wo_de")(small_config(), clip)
        assert model.config.denoise is False

    def test_cl_uses_cib_trainer(self, clip):
        model = get_variant("cl")(small_config(), clip)
        assert model.contrastive == "cib"

    def test_prompt_variants_change_template(self, clip):
        p1 = get_variant("p1")(small_config(), clip)
        assert p1.config.prompt_template == "the {concept}"

    @pytest.mark.parametrize("key", ["if", "c20", "avg"])
    def test_variants_fit_and_encode(self, key, clip, cifar_tiny):
        model = get_variant(key)(small_config(n_bits=8), clip)
        model.fit(cifar_tiny.train_images)
        codes = model.encode(cifar_tiny.query_images[:5])
        assert codes.shape == (5, 8)
