"""Tests for the UHSCM hashing losses (Eq. 7–11) — values and gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.losses import (
    cib_contrastive_loss,
    modified_contrastive_loss,
    pairwise_cosine,
    quantization_loss,
    similarity_preserving_loss,
    uhscm_objective,
)
from repro.errors import ShapeError
from tests.conftest import numerical_gradient


@pytest.fixture()
def batch(rng):
    z = rng.normal(size=(6, 8))
    q = rng.random((6, 6))
    q = (q + q.T) / 2
    np.fill_diagonal(q, 1.0)
    return z, q


class TestSimilarityPreservingLoss:
    def test_zero_when_codes_match_q(self):
        z = np.array([[1.0, 1.0], [1.0, 1.0], [-1.0, -1.0]]) * 3.0
        q = np.array([[1.0, 1.0, -1.0], [1.0, 1.0, -1.0], [-1.0, -1.0, 1.0]])
        loss, grad = similarity_preserving_loss(z, q)
        assert loss == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(grad, 0.0, atol=1e-12)

    def test_gradient_matches_numerical(self, batch):
        z, q = batch
        _, grad = similarity_preserving_loss(z, q)
        num = numerical_gradient(
            lambda zz: similarity_preserving_loss(zz, q)[0], z.copy()
        )
        np.testing.assert_allclose(grad, num, atol=1e-8)

    def test_shape_validation(self, batch):
        z, _ = batch
        with pytest.raises(ShapeError):
            similarity_preserving_loss(z, np.zeros((2, 2)))


class TestModifiedContrastiveLoss:
    def test_gradient_matches_numerical(self, batch):
        z, q = batch
        _, grad = modified_contrastive_loss(z, q, lam=0.5, gamma=0.3)
        num = numerical_gradient(
            lambda zz: modified_contrastive_loss(zz, q, lam=0.5, gamma=0.3)[0],
            z.copy(),
        )
        np.testing.assert_allclose(grad, num, atol=1e-8)

    def test_no_positives_gives_zero(self, batch):
        z, q = batch
        loss, grad = modified_contrastive_loss(z, q, lam=2.0, gamma=0.3)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_pulls_positives_together(self, rng):
        """Minimizing L_c must increase the positive pair's similarity —
        this is the direction the paper's printed Eq. 8 gets backwards."""
        z = rng.normal(size=(4, 16))
        q = np.eye(4)
        q[0, 1] = q[1, 0] = 1.0  # only positive pair: (0, 1)
        before = pairwise_cosine(z)[0][0, 1]
        for _ in range(50):
            _, grad = modified_contrastive_loss(z, q, lam=0.9, gamma=0.3)
            z = z - 0.5 * grad
        after = pairwise_cosine(z)[0][0, 1]
        assert after > before

    def test_gamma_validation(self, batch):
        z, q = batch
        with pytest.raises(ShapeError):
            modified_contrastive_loss(z, q, lam=0.5, gamma=0.0)


class TestQuantizationLoss:
    def test_zero_for_binary_codes(self):
        z = np.array([[1.0, -1.0], [-1.0, 1.0]])
        loss, grad = quantization_loss(z)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_value(self):
        z = np.array([[0.5, -0.5]])
        loss, _ = quantization_loss(z)
        assert loss == pytest.approx(0.5)

    def test_gradient(self, rng):
        z = rng.normal(size=(3, 4)) + 0.2  # keep away from sign flips
        _, grad = quantization_loss(z)
        num = numerical_gradient(lambda zz: quantization_loss(zz)[0], z.copy())
        np.testing.assert_allclose(grad, num, atol=1e-7)


class TestCibContrastive:
    def test_gradients_match_numerical(self, rng):
        z1 = rng.normal(size=(4, 6))
        z2 = rng.normal(size=(4, 6))
        _, g1, g2 = cib_contrastive_loss(z1, z2, gamma=0.4)
        n1 = numerical_gradient(
            lambda z: cib_contrastive_loss(z, z2, gamma=0.4)[0], z1.copy()
        )
        n2 = numerical_gradient(
            lambda z: cib_contrastive_loss(z1, z, gamma=0.4)[0], z2.copy()
        )
        np.testing.assert_allclose(g1, n1, atol=1e-8)
        np.testing.assert_allclose(g2, n2, atol=1e-8)

    def test_view_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            cib_contrastive_loss(rng.normal(size=(3, 4)),
                                 rng.normal(size=(4, 4)), gamma=0.3)


class TestObjective:
    def test_combines_terms(self, batch):
        z, q = batch
        breakdown, grad = uhscm_objective(z, q, alpha=0.2, beta=0.001,
                                          gamma=0.2, lam=0.6)
        expected = (
            breakdown.similarity
            + 0.2 * breakdown.contrastive
            + 0.001 * breakdown.quantization
        )
        assert breakdown.total == pytest.approx(expected)
        assert grad.shape == z.shape

    def test_alpha_zero_skips_contrastive(self, batch):
        z, q = batch
        breakdown, _ = uhscm_objective(z, q, alpha=0.0, beta=0.001,
                                       gamma=0.2, lam=0.6)
        assert breakdown.contrastive == 0.0

    def test_full_gradient(self, batch):
        z, q = batch
        _, grad = uhscm_objective(z, q, alpha=0.3, beta=0.01, gamma=0.25,
                                  lam=0.5)
        num = numerical_gradient(
            lambda zz: uhscm_objective(zz, q, alpha=0.3, beta=0.01,
                                       gamma=0.25, lam=0.5)[0].total,
            z.copy(),
        )
        np.testing.assert_allclose(grad, num, atol=1e-8)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_loss_finite_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        z = rng.normal(size=(5, 6)) * 3
        q = np.clip(rng.random((5, 5)), 0, 1)
        np.fill_diagonal(q, 1.0)
        breakdown, grad = uhscm_objective(z, q, alpha=0.2, beta=0.001,
                                          gamma=0.2, lam=0.7)
        assert np.isfinite(breakdown.total)
        assert breakdown.similarity >= 0
        assert breakdown.quantization >= 0
        assert np.isfinite(grad).all()
