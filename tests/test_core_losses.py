"""Tests for the UHSCM hashing losses (Eq. 7–11) — values and gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.losses import (
    _reference_cib_contrastive_loss,
    _reference_modified_contrastive_loss,
    cib_contrastive_loss,
    cib_objective,
    modified_contrastive_loss,
    pairwise_cosine,
    quantization_loss,
    similarity_preserving_loss,
    uhscm_objective,
)
from repro.errors import ShapeError
from tests.conftest import numerical_gradient


@pytest.fixture()
def batch(rng):
    z = rng.normal(size=(6, 8))
    q = rng.random((6, 6))
    q = (q + q.T) / 2
    np.fill_diagonal(q, 1.0)
    return z, q


class TestSimilarityPreservingLoss:
    def test_zero_when_codes_match_q(self):
        z = np.array([[1.0, 1.0], [1.0, 1.0], [-1.0, -1.0]]) * 3.0
        q = np.array([[1.0, 1.0, -1.0], [1.0, 1.0, -1.0], [-1.0, -1.0, 1.0]])
        loss, grad = similarity_preserving_loss(z, q)
        assert loss == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(grad, 0.0, atol=1e-12)

    def test_gradient_matches_numerical(self, batch):
        z, q = batch
        _, grad = similarity_preserving_loss(z, q)
        num = numerical_gradient(
            lambda zz: similarity_preserving_loss(zz, q)[0], z.copy()
        )
        np.testing.assert_allclose(grad, num, atol=1e-8)

    def test_shape_validation(self, batch):
        z, _ = batch
        with pytest.raises(ShapeError):
            similarity_preserving_loss(z, np.zeros((2, 2)))


class TestModifiedContrastiveLoss:
    def test_gradient_matches_numerical(self, batch):
        z, q = batch
        _, grad = modified_contrastive_loss(z, q, lam=0.5, gamma=0.3)
        num = numerical_gradient(
            lambda zz: modified_contrastive_loss(zz, q, lam=0.5, gamma=0.3)[0],
            z.copy(),
        )
        np.testing.assert_allclose(grad, num, atol=1e-8)

    def test_no_positives_gives_zero(self, batch):
        z, q = batch
        loss, grad = modified_contrastive_loss(z, q, lam=2.0, gamma=0.3)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_pulls_positives_together(self, rng):
        """Minimizing L_c must increase the positive pair's similarity —
        this is the direction the paper's printed Eq. 8 gets backwards."""
        z = rng.normal(size=(4, 16))
        q = np.eye(4)
        q[0, 1] = q[1, 0] = 1.0  # only positive pair: (0, 1)
        before = pairwise_cosine(z)[0][0, 1]
        for _ in range(50):
            _, grad = modified_contrastive_loss(z, q, lam=0.9, gamma=0.3)
            z = z - 0.5 * grad
        after = pairwise_cosine(z)[0][0, 1]
        assert after > before

    def test_gamma_validation(self, batch):
        z, q = batch
        with pytest.raises(ShapeError):
            modified_contrastive_loss(z, q, lam=0.5, gamma=0.0)


class TestQuantizationLoss:
    def test_zero_for_binary_codes(self):
        z = np.array([[1.0, -1.0], [-1.0, 1.0]])
        loss, grad = quantization_loss(z)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_value(self):
        z = np.array([[0.5, -0.5]])
        loss, _ = quantization_loss(z)
        assert loss == pytest.approx(0.5)

    def test_gradient(self, rng):
        z = rng.normal(size=(3, 4)) + 0.2  # keep away from sign flips
        _, grad = quantization_loss(z)
        num = numerical_gradient(lambda zz: quantization_loss(zz)[0], z.copy())
        np.testing.assert_allclose(grad, num, atol=1e-7)


class TestCibContrastive:
    def test_gradients_match_numerical(self, rng):
        z1 = rng.normal(size=(4, 6))
        z2 = rng.normal(size=(4, 6))
        _, g1, g2 = cib_contrastive_loss(z1, z2, gamma=0.4)
        n1 = numerical_gradient(
            lambda z: cib_contrastive_loss(z, z2, gamma=0.4)[0], z1.copy()
        )
        n2 = numerical_gradient(
            lambda z: cib_contrastive_loss(z1, z, gamma=0.4)[0], z2.copy()
        )
        np.testing.assert_allclose(g1, n1, atol=1e-8)
        np.testing.assert_allclose(g2, n2, atol=1e-8)

    def test_view_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            cib_contrastive_loss(rng.normal(size=(3, 4)),
                                 rng.normal(size=(4, 4)), gamma=0.3)


def _random_batch(rng, t, k):
    z = rng.normal(size=(t, k))
    q = rng.random((t, t))
    q = (q + q.T) / 2
    np.fill_diagonal(q, 1.0)
    return z, q


class TestVectorizedEquivalence:
    """The loop-free losses must reproduce the seed loop oracles exactly
    (<= 1e-9 in value and gradient, float64) — including the degenerate
    rows the loops handled by skipping."""

    @pytest.mark.parametrize("t,k,lam", [(2, 4, 0.5), (6, 8, 0.5),
                                         (33, 16, 0.3), (128, 64, 0.8)])
    def test_mcl_matches_reference(self, rng, t, k, lam):
        z, q = _random_batch(rng, t, k)
        loss, grad = modified_contrastive_loss(z, q, lam=lam, gamma=0.2)
        ref_loss, ref_grad = _reference_modified_contrastive_loss(
            z, q, lam=lam, gamma=0.2
        )
        assert loss == pytest.approx(ref_loss, abs=1e-9)
        np.testing.assert_allclose(grad, ref_grad, atol=1e-9, rtol=0)

    def test_mcl_mixed_empty_positive_rows(self, rng):
        """Rows with no positives must contribute nothing, exactly like the
        loop's ``continue``."""
        z, q = _random_batch(rng, 8, 6)
        q[0, 1:] = 0.0  # row 0 has no positives at lam=0.5
        q[1:, 0] = 0.0
        loss, grad = modified_contrastive_loss(z, q, lam=0.5, gamma=0.3)
        ref_loss, ref_grad = _reference_modified_contrastive_loss(
            z, q, lam=0.5, gamma=0.3
        )
        assert loss == pytest.approx(ref_loss, abs=1e-9)
        np.testing.assert_allclose(grad, ref_grad, atol=1e-9, rtol=0)

    def test_mcl_mixed_empty_negative_rows(self, rng):
        """Rows whose whole batch is positive (empty Φ_i) are skipped."""
        z, q = _random_batch(rng, 8, 6)
        q[0, :] = 0.99  # row 0: everything positive at lam=0.5
        q[:, 0] = 0.99
        q[0, 0] = 1.0
        loss, grad = modified_contrastive_loss(z, q, lam=0.5, gamma=0.3)
        ref_loss, ref_grad = _reference_modified_contrastive_loss(
            z, q, lam=0.5, gamma=0.3
        )
        assert loss == pytest.approx(ref_loss, abs=1e-9)
        np.testing.assert_allclose(grad, ref_grad, atol=1e-9, rtol=0)

    def test_mcl_all_rows_inactive(self, rng):
        z, q = _random_batch(rng, 5, 4)
        for lam in (2.0, -1.0):  # no positives anywhere / no negatives
            loss, grad = modified_contrastive_loss(z, q, lam=lam, gamma=0.3)
            ref_loss, ref_grad = _reference_modified_contrastive_loss(
                z, q, lam=lam, gamma=0.3
            )
            assert loss == ref_loss == 0.0
            np.testing.assert_array_equal(grad, ref_grad)

    @pytest.mark.parametrize("t,k", [(1, 3), (4, 6), (64, 32)])
    def test_cib_matches_reference(self, rng, t, k):
        z1 = rng.normal(size=(t, k))
        z2 = rng.normal(size=(t, k))
        loss, g1, g2 = cib_contrastive_loss(z1, z2, gamma=0.4)
        ref_loss, r1, r2 = _reference_cib_contrastive_loss(z1, z2, gamma=0.4)
        assert loss == pytest.approx(ref_loss, abs=1e-9)
        np.testing.assert_allclose(g1, r1, atol=1e-9, rtol=0)
        np.testing.assert_allclose(g2, r2, atol=1e-9, rtol=0)

    def test_fused_objective_matches_composition(self, rng):
        z, q = _random_batch(rng, 10, 8)
        breakdown, grad = uhscm_objective(z, q, alpha=0.3, beta=0.01,
                                          gamma=0.25, lam=0.5)
        ls, gs = similarity_preserving_loss(z, q)
        lc, gc = _reference_modified_contrastive_loss(z, q, lam=0.5,
                                                      gamma=0.25)
        lq, gq = quantization_loss(z)
        assert breakdown.total == pytest.approx(ls + 0.3 * lc + 0.01 * lq,
                                                abs=1e-9)
        np.testing.assert_allclose(grad, gs + 0.3 * gc + 0.01 * gq,
                                   atol=1e-9, rtol=0)

    def test_float32_stays_float32(self, rng):
        z, q = _random_batch(rng, 8, 6)
        z32, q32 = z.astype(np.float32), q.astype(np.float32)
        _, grad = modified_contrastive_loss(z32, q32, lam=0.5, gamma=0.3)
        assert grad.dtype == np.float32
        _, g1, g2 = cib_contrastive_loss(z32, z32 + 1, gamma=0.3)
        assert g1.dtype == g2.dtype == np.float32
        breakdown, grad = uhscm_objective(z32, q32, alpha=0.2, beta=0.001,
                                          gamma=0.2, lam=0.5)
        assert grad.dtype == np.float32
        assert np.isfinite(breakdown.total)

    def test_float32_close_to_float64(self, rng):
        z, q = _random_batch(rng, 16, 8)
        loss64, grad64 = modified_contrastive_loss(z, q, lam=0.5, gamma=0.3)
        loss32, grad32 = modified_contrastive_loss(
            z.astype(np.float32), q.astype(np.float32), lam=0.5, gamma=0.3
        )
        assert loss32 == pytest.approx(loss64, rel=1e-4)
        np.testing.assert_allclose(grad32, grad64, atol=1e-4)


class TestCibObjective:
    def test_matches_composition(self, rng):
        z1 = rng.normal(size=(6, 8))
        z2 = rng.normal(size=(6, 8))
        _, q = _random_batch(rng, 6, 8)
        breakdown, g1, g2 = cib_objective(z1, z2, q, alpha=0.2, beta=0.001,
                                          gamma=0.4)
        jc, c1, c2 = _reference_cib_contrastive_loss(z1, z2, gamma=0.4)
        ls, gs = similarity_preserving_loss(z1, q)
        lq, gq = quantization_loss(z1)
        assert breakdown.total == pytest.approx(
            ls + 0.2 * jc + 0.001 * lq, abs=1e-9
        )
        np.testing.assert_allclose(g1, gs + 0.001 * gq + 0.2 * c1,
                                   atol=1e-9, rtol=0)
        np.testing.assert_allclose(g2, 0.2 * c2, atol=1e-9, rtol=0)

    def test_gradients_match_numerical(self, rng):
        z1 = rng.normal(size=(4, 6))
        z2 = rng.normal(size=(4, 6))
        _, q = _random_batch(rng, 4, 6)

        def total(za, zb):
            return cib_objective(za, zb, q, alpha=0.3, beta=0.01,
                                 gamma=0.4)[0].total

        _, g1, g2 = cib_objective(z1, z2, q, alpha=0.3, beta=0.01, gamma=0.4)
        n1 = numerical_gradient(lambda za: total(za, z2), z1.copy())
        n2 = numerical_gradient(lambda zb: total(z1, zb), z2.copy())
        np.testing.assert_allclose(g1, n1, atol=1e-7)
        np.testing.assert_allclose(g2, n2, atol=1e-7)

    def test_alpha_zero_drops_contrastive(self, rng):
        z1 = rng.normal(size=(5, 4))
        z2 = rng.normal(size=(5, 4))
        _, q = _random_batch(rng, 5, 4)
        breakdown, g1, g2 = cib_objective(z1, z2, q, alpha=0.0, beta=0.001,
                                          gamma=0.4)
        assert breakdown.contrastive == 0.0
        np.testing.assert_array_equal(g2, 0.0)


class TestObjective:
    def test_combines_terms(self, batch):
        z, q = batch
        breakdown, grad = uhscm_objective(z, q, alpha=0.2, beta=0.001,
                                          gamma=0.2, lam=0.6)
        expected = (
            breakdown.similarity
            + 0.2 * breakdown.contrastive
            + 0.001 * breakdown.quantization
        )
        assert breakdown.total == pytest.approx(expected)
        assert grad.shape == z.shape

    def test_alpha_zero_skips_contrastive(self, batch):
        z, q = batch
        breakdown, _ = uhscm_objective(z, q, alpha=0.0, beta=0.001,
                                       gamma=0.2, lam=0.6)
        assert breakdown.contrastive == 0.0

    def test_full_gradient(self, batch):
        z, q = batch
        _, grad = uhscm_objective(z, q, alpha=0.3, beta=0.01, gamma=0.25,
                                  lam=0.5)
        num = numerical_gradient(
            lambda zz: uhscm_objective(zz, q, alpha=0.3, beta=0.01,
                                       gamma=0.25, lam=0.5)[0].total,
            z.copy(),
        )
        np.testing.assert_allclose(grad, num, atol=1e-8)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_loss_finite_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        z = rng.normal(size=(5, 6)) * 3
        q = np.clip(rng.random((5, 5)), 0, 1)
        np.fill_diagonal(q, 1.0)
        breakdown, grad = uhscm_objective(z, q, alpha=0.2, beta=0.001,
                                          gamma=0.2, lam=0.7)
        assert np.isfinite(breakdown.total)
        assert breakdown.similarity >= 0
        assert breakdown.quantization >= 0
        assert np.isfinite(grad).all()
