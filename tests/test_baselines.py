"""Tests for all ten baseline hashing methods."""

import numpy as np
import pytest

from repro.baselines import (
    AGH,
    BASELINES,
    EXTRA_BASELINES,
    ITQ,
    LSH,
    SSDH,
    BaseHasher,
    GreedyHash,
    SpectralHashing,
    make_baseline,
)
from repro.baselines.deep import DeepHasherBase, masked_pair_loss
from repro.errors import ConfigurationError, NotFittedError, ShapeError
from repro.retrieval import evaluate_hashing
from tests.conftest import numerical_gradient

DEEP_KW = dict(epochs=8)


def fit_method(name, dataset, bits=16, **kwargs):
    world = dataset.world
    if name in ("LSH", "SH", "ITQ", "AGH"):
        m = make_baseline(name, bits, world.vgg_features, seed=0, **kwargs)
    else:
        m = make_baseline(
            name, bits, world.backbone_features, seed=0,
            guidance_extractor=world.vgg_features,
            augment_fn=lambda f, rng: world.augment_features(f, rng),
            **{**DEEP_KW, **kwargs},
        )
    return m.fit(dataset.train_images)


class TestRegistry:
    def test_table1_has_nine_baselines(self):
        assert len(BASELINES) == 9
        assert list(BASELINES)[:4] == ["LSH", "SH", "ITQ", "AGH"]

    def test_uth_is_extra(self):
        assert "UTH" in EXTRA_BASELINES

    def test_aliases(self, cifar_tiny):
        m = make_baseline("greedyhash", 8, cifar_tiny.world.vgg_features)
        assert isinstance(m, GreedyHash)

    def test_unknown(self, cifar_tiny):
        with pytest.raises(ConfigurationError):
            make_baseline("DeepHash9000", 8, cifar_tiny.world.vgg_features)


@pytest.mark.parametrize("name", list(BASELINES) + list(EXTRA_BASELINES))
class TestAllBaselines:
    def test_fit_encode_contract(self, name, cifar_tiny):
        m = fit_method(name, cifar_tiny, bits=16)
        codes = m.encode(cifar_tiny.query_images)
        assert codes.shape == (cifar_tiny.n_query, 16)
        assert set(np.unique(codes)) <= {-1.0, 1.0}

    def test_encode_before_fit(self, name, cifar_tiny):
        world = cifar_tiny.world
        m = make_baseline(name, 8, world.vgg_features, seed=0)
        with pytest.raises(NotFittedError):
            m.encode(cifar_tiny.query_images)

    def test_deterministic_given_seed(self, name, cifar_tiny):
        a = fit_method(name, cifar_tiny, bits=8).encode(
            cifar_tiny.query_images[:10]
        )
        b = fit_method(name, cifar_tiny, bits=8).encode(
            cifar_tiny.query_images[:10]
        )
        np.testing.assert_array_equal(a, b)


class TestShallowSpecifics:
    def test_lsh_beats_nothing_but_works(self, cifar_tiny):
        m = fit_method("LSH", cifar_tiny, bits=32)
        report = evaluate_hashing(m, cifar_tiny, pn_points=(10,))
        assert report.map > 0.1  # above the random floor for 10 classes

    def test_itq_beats_lsh(self, cifar_tiny):
        lsh = evaluate_hashing(fit_method("LSH", cifar_tiny, bits=32),
                               cifar_tiny, pn_points=(10,))
        itq = evaluate_hashing(fit_method("ITQ", cifar_tiny, bits=32),
                               cifar_tiny, pn_points=(10,))
        assert itq.map > lsh.map

    def test_itq_rotation_orthogonal(self, cifar_tiny):
        m = fit_method("ITQ", cifar_tiny, bits=16)
        r = m._rotation
        np.testing.assert_allclose(r @ r.T, np.eye(16), atol=1e-8)

    def test_sh_modes_sorted_by_eigenvalue(self, cifar_tiny):
        m = fit_method("SH", cifar_tiny, bits=16)
        assert len(m._modes) == 16

    def test_agh_anchor_count(self, cifar_tiny):
        m = fit_method("AGH", cifar_tiny, bits=8, n_anchors=16)
        assert m._anchors.shape[0] == 16

    def test_agh_validation(self, cifar_tiny):
        with pytest.raises(ConfigurationError):
            AGH(8, cifar_tiny.world.vgg_features, n_anchors=0)


class TestDeepSpecifics:
    def test_loss_history_recorded(self, cifar_tiny):
        m = fit_method("SSDH", cifar_tiny, bits=8)
        assert len(m.loss_history) == DEEP_KW["epochs"]

    def test_ssdh_structure_values(self, cifar_tiny):
        m = fit_method("SSDH", cifar_tiny, bits=8)
        assert set(np.unique(m._structure)) <= {-1.0, 0.0, 1.0}

    def test_mls3rduh_structure_symmetric(self, cifar_tiny):
        m = fit_method("MLS3RDUH", cifar_tiny, bits=8)
        np.testing.assert_allclose(m._structure, m._structure.T, atol=1e-9)

    def test_bgan_has_extra_networks(self, cifar_tiny):
        m = fit_method("BGAN", cifar_tiny, bits=8)
        assert m._decoder is not None and m._disc is not None

    def test_cib_custom_augment_used(self, cifar_tiny):
        calls = []

        def augment(f, rng):
            calls.append(1)
            return f

        world = cifar_tiny.world
        m = make_baseline("CIB", 8, world.backbone_features, seed=0,
                          augment_fn=augment, epochs=2)
        m.fit(cifar_tiny.train_images)
        assert calls

    def test_guidance_extractor_defaults_to_inputs(self, cifar_tiny):
        world = cifar_tiny.world
        m = make_baseline("SSDH", 8, world.backbone_features, seed=0, epochs=2)
        m.fit(cifar_tiny.train_images)  # no guidance extractor: still works

    def test_epochs_validation(self, cifar_tiny):
        with pytest.raises(ValueError):
            SSDH(8, cifar_tiny.world.vgg_features, epochs=0)


class TestMaskedPairLoss:
    def test_gradient(self, rng):
        z = rng.normal(size=(5, 6))
        target = rng.random((5, 5))
        mask = rng.random((5, 5)) > 0.3
        _, grad = masked_pair_loss(z, target, mask)
        num = numerical_gradient(
            lambda zz: masked_pair_loss(zz, target, mask)[0], z.copy()
        )
        np.testing.assert_allclose(grad, num, atol=1e-8)

    def test_mask_excludes_pairs(self, rng):
        z = rng.normal(size=(4, 4))
        target = np.zeros((4, 4))
        loss_full, _ = masked_pair_loss(z, target, np.ones((4, 4), bool))
        loss_none, grad = masked_pair_loss(z, target, np.zeros((4, 4), bool))
        assert loss_none == 0.0
        np.testing.assert_array_equal(grad, 0.0)
        assert loss_full > 0

    def test_shape_check(self, rng):
        with pytest.raises(ShapeError):
            masked_pair_loss(rng.normal(size=(3, 4)), np.zeros((2, 2)),
                             np.ones((2, 2), bool))


class TestBaseClassContract:
    def test_feature_extractor_shape_check(self, cifar_tiny):
        def bad_extractor(images):
            return np.zeros(3)

        class Dummy(BaseHasher):
            name = "dummy"

            def _fit_features(self, features):
                pass

            def _encode_features(self, features):
                return features

        with pytest.raises(ConfigurationError):
            Dummy(8, bad_extractor).fit(cifar_tiny.train_images)

    def test_n_bits_validation(self, cifar_tiny):
        with pytest.raises(ConfigurationError):
            LSH(0, cifar_tiny.world.vgg_features)
