"""Tests for Hamming primitives, metrics, protocol, and the engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError, ShapeError
from repro.retrieval import (
    HammingIndex,
    PRCurve,
    average_precision,
    evaluate_codes,
    hamming_distance_matrix,
    mean_average_precision,
    pack_codes,
    packed_hamming_distance,
    pr_curve_hamming,
    precision_at_n,
    relevance_matrix,
    unpack_codes,
)

codes_strategy = st.integers(2, 40).flatmap(
    lambda k: st.integers(1, 12).flatmap(
        lambda n: st.lists(
            st.lists(st.sampled_from([-1.0, 1.0]), min_size=k, max_size=k),
            min_size=n, max_size=n,
        )
    )
)


def random_codes(n, k, seed=0):
    rng = np.random.default_rng(seed)
    return np.where(rng.random((n, k)) < 0.5, -1.0, 1.0)


class TestHammingDistances:
    def test_identity_zero(self):
        c = random_codes(5, 16)
        d = hamming_distance_matrix(c, c)
        np.testing.assert_array_equal(np.diag(d), 0.0)

    def test_opposite_full(self):
        c = random_codes(3, 8)
        d = hamming_distance_matrix(c, -c)
        np.testing.assert_array_equal(np.diag(d), 8.0)

    def test_manual_case(self):
        a = np.array([[1.0, 1.0, -1.0, -1.0]])
        b = np.array([[1.0, -1.0, -1.0, 1.0]])
        assert hamming_distance_matrix(a, b)[0, 0] == 2.0

    def test_rejects_nonbinary(self):
        with pytest.raises(ShapeError):
            hamming_distance_matrix(np.array([[0.5, 1.0]]), random_codes(1, 2))

    def test_rejects_mismatched_length(self):
        with pytest.raises(ShapeError):
            hamming_distance_matrix(random_codes(2, 8), random_codes(2, 16))

    @given(codes_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_packed_matches_blas(self, rows):
        codes = np.asarray(rows)
        blas = hamming_distance_matrix(codes, codes)
        packed = packed_hamming_distance(pack_codes(codes), pack_codes(codes))
        np.testing.assert_array_equal(blas, packed.astype(float))

    @given(codes_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_pack_roundtrip(self, rows):
        codes = np.asarray(rows)
        np.testing.assert_array_equal(unpack_codes(pack_codes(codes)), codes)

    def test_packed_storage_is_8x_smaller_than_bytes(self):
        codes = random_codes(100, 64)
        packed = pack_codes(codes)
        assert packed.nbytes == 100 * 8


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(np.array([1, 1, 0, 0]), top_n=4) == 1.0

    def test_worst_ranking(self):
        ap = average_precision(np.array([0, 0, 1, 1]), top_n=4)
        # Hits at ranks 3 and 4: (1/3 + 2/4) / 2.
        assert ap == pytest.approx((1 / 3 + 2 / 4) / 2)

    def test_no_relevant(self):
        assert average_precision(np.zeros(5), top_n=5) == 0.0

    def test_truncation(self):
        # Relevant item beyond top_n is invisible.
        assert average_precision(np.array([0, 0, 1]), top_n=2) == 0.0

    def test_eq12_hand_example(self):
        # ranked = [1, 0, 1]: AP = (1/1 + 2/3) / 2.
        ap = average_precision(np.array([1, 0, 1]), top_n=3)
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)


class TestMap:
    def test_perfect_codes(self):
        codes = random_codes(6, 16, seed=1)
        labels = np.eye(6, dtype=int)
        # Query = database: each query's only relevant item is itself at
        # distance 0 -> MAP 1.
        assert mean_average_precision(codes, codes, relevance_matrix(
            labels, labels)) == 1.0

    def test_map_bounds(self):
        q = random_codes(4, 8, seed=2)
        db = random_codes(20, 8, seed=3)
        rel = np.random.default_rng(0).random((4, 20)) > 0.5
        value = mean_average_precision(q, db, rel)
        assert 0.0 <= value <= 1.0

    def test_ties_broken_by_index(self):
        q = np.array([[1.0, 1.0]])
        db = np.array([[1.0, 1.0], [1.0, 1.0]])
        rel = np.array([[False, True]])
        # Both at distance 0; stable sort puts index 0 first.
        value = mean_average_precision(q, db, rel)
        assert value == pytest.approx(0.5)


class TestPrecisionAtN:
    def test_values(self):
        distances = np.array([[0.0, 1.0, 2.0, 3.0]])
        rel = np.array([[True, False, True, False]])
        pn = precision_at_n(distances, rel, points=(1, 2, 4))
        assert pn[1] == 1.0
        assert pn[2] == 0.5
        assert pn[4] == 0.5

    def test_requested_beyond_db_raises(self):
        with pytest.raises(ShapeError):
            precision_at_n(np.zeros((1, 3)), np.zeros((1, 3), bool), points=(5,))

    def test_empty_points_returns_empty_dict(self):
        assert precision_at_n(np.zeros((1, 3)), np.zeros((1, 3), bool),
                              points=()) == {}

    def test_unsorted_points(self):
        distances = np.array([[0.0, 1.0, 2.0, 3.0]])
        rel = np.array([[True, False, True, False]])
        pn = precision_at_n(distances, rel, points=(4, 1, 2))
        assert pn[1] == 1.0 and pn[2] == 0.5 and pn[4] == 0.5


class TestPRCurve:
    def test_monotone_recall(self):
        q = random_codes(5, 16, seed=4)
        db = random_codes(50, 16, seed=5)
        rel = np.random.default_rng(1).random((5, 50)) > 0.7
        curve = pr_curve_hamming(q, db, rel)
        assert curve.radii.size == 17
        assert np.all(np.diff(curve.recall) >= 0)
        assert curve.recall[-1] == pytest.approx(1.0)

    def test_precision_at_full_radius_is_base_rate(self):
        q = random_codes(3, 8, seed=6)
        db = random_codes(30, 8, seed=7)
        rel = np.random.default_rng(2).random((3, 30)) > 0.5
        curve = pr_curve_hamming(q, db, rel)
        assert curve.precision[-1] == pytest.approx(rel.mean())

    def test_no_relevant_raises(self):
        q = random_codes(2, 8)
        db = random_codes(5, 8)
        with pytest.raises(ShapeError):
            pr_curve_hamming(q, db, np.zeros((2, 5), bool))

    def test_prcurve_shape_validation(self):
        with pytest.raises(ShapeError):
            PRCurve(np.arange(3), np.zeros(2), np.zeros(3))


class TestProtocol:
    def test_share_one_label(self):
        q = np.array([[1, 0, 1]])
        db = np.array([[0, 0, 1], [0, 1, 0]])
        np.testing.assert_array_equal(
            relevance_matrix(q, db), [[True, False]]
        )

    def test_dim_mismatch(self):
        with pytest.raises(ShapeError):
            relevance_matrix(np.zeros((1, 2)), np.zeros((1, 3)))


class TestHammingIndex:
    def test_search_orders_by_distance(self):
        db = np.array([[1.0, 1.0, 1.0, 1.0],
                       [-1.0, -1.0, -1.0, -1.0],
                       [1.0, 1.0, 1.0, -1.0]])
        index = HammingIndex(4).add(db)
        idx, dist = index.search(np.array([[1.0, 1.0, 1.0, 1.0]]), top_k=3)
        np.testing.assert_array_equal(idx[0], [0, 2, 1])
        np.testing.assert_array_equal(dist[0], [0, 1, 4])

    def test_radius_search(self):
        db = np.array([[1.0, 1.0], [1.0, -1.0], [-1.0, -1.0]])
        index = HammingIndex(2).add(db)
        hits = index.radius_search(np.array([[1.0, 1.0]]), radius=1)
        np.testing.assert_array_equal(hits[0], [0, 1])

    def test_unbuilt_raises(self):
        with pytest.raises(NotFittedError):
            HammingIndex(4).search(random_codes(1, 4), top_k=1)

    def test_top_k_bounds(self):
        index = HammingIndex(4).add(random_codes(3, 4))
        with pytest.raises(ShapeError):
            index.search(random_codes(1, 4), top_k=10)

    def test_storage_bytes(self):
        index = HammingIndex(64).add(random_codes(10, 64))
        assert index.storage_bytes == 80
        assert len(index) == 10

    def test_add_rejects_1d_input_with_shape_error(self):
        # Regression: used to raise a raw IndexError from codes.shape[1].
        with pytest.raises(ShapeError):
            HammingIndex(4).add(np.array([1.0, -1.0, 1.0, -1.0]))

    def test_add_rejects_nonbinary_with_shape_error(self):
        with pytest.raises(ShapeError):
            HammingIndex(4).add(np.full((2, 4), 0.5))

    def test_search_rejects_malformed_queries(self):
        index = HammingIndex(4).add(random_codes(3, 4))
        with pytest.raises(ShapeError):
            index.search(np.array([1.0, -1.0, 1.0, -1.0]), top_k=1)
        with pytest.raises(ShapeError):
            index.search(random_codes(1, 8), top_k=1)
        with pytest.raises(ShapeError):
            index.radius_search(np.array([1.0, -1.0]), radius=1)

    def test_clear_empties_index(self):
        index = HammingIndex(4).add(random_codes(3, 4))
        index.clear()
        assert len(index) == 0
        with pytest.raises(NotFittedError):
            index.search(random_codes(1, 4), top_k=1)


class TestEvaluateCodes:
    def test_report_fields(self):
        q = random_codes(4, 16, seed=8)
        db = random_codes(40, 16, seed=9)
        ql = np.eye(4, dtype=int)[:, :2].repeat(1, axis=1)
        ql = np.random.default_rng(3).integers(0, 2, size=(4, 3))
        ql[ql.sum(axis=1) == 0, 0] = 1
        dl = np.random.default_rng(4).integers(0, 2, size=(40, 3))
        dl[dl.sum(axis=1) == 0, 0] = 1
        report = evaluate_codes(q, db, ql, dl, pn_points=(5, 10))
        assert 0 <= report.map <= 1
        assert set(report.precision_at_n) == {5, 10}
        assert report.n_bits == 16
        assert "MAP" in str(report)

    def test_unsorted_pn_points_fallback_clamps_to_db(self):
        # Regression: the fallback read pn_points[0], assuming sorted input;
        # it now clamps to the database size regardless of point order.
        q = random_codes(2, 8, seed=10)
        db = random_codes(6, 8, seed=11)
        labels_q = np.ones((2, 1), dtype=int)
        labels_db = np.ones((6, 1), dtype=int)
        report = evaluate_codes(q, db, labels_q, labels_db,
                                pn_points=(500, 100))
        assert set(report.precision_at_n) == {6}
