"""Tests for the SimilarityMatrix abstraction and the blocked sparse engine.

Covers the PR-5 acceptance matrix: dense/sparse equivalence (bit-identical
at k >= n-1, NumPy-oracle gathers at small k), CSR round trips through the
artifact store with fingerprint invalidation on ``sparse_topk``, chunked
vs monolithic inference identity, and the trainer consuming either Q form.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.similarity import (
    ImageFeatureSimilarityGenerator,
    SemanticSimilarityGenerator,
    similarity_from_distributions,
)
from repro.core.similarity_matrix import (
    DenseSimilarity,
    SimilarityMatrix,
    SparseTopKSimilarity,
    as_similarity_matrix,
    similarity_fingerprint,
    similarity_from_payload,
)
from repro.core.trainer import UHSCMTrainer
from repro.core.uhscm import UHSCM
from repro.errors import ConfigurationError, ShapeError
from repro.pipeline import ArtifactStore
from repro.utils.mathops import blocked_topk_cosine, cosine_similarity_matrix
from repro.vlp.concepts import NUS_WIDE_81


@pytest.fixture()
def features(rng):
    return rng.normal(size=(40, 16))


@pytest.fixture(scope="module")
def small_images(world):
    rng = np.random.default_rng(3)
    classes = ["cat"] * 10 + ["truck"] * 10 + ["flowers"] * 10
    latents = np.stack([world.image_latent([c], rng=rng) for c in classes])
    return world.render(latents, rng=rng)


def _sparse(features, k, **kwargs):
    return SparseTopKSimilarity.from_features(features, k, **kwargs)


class TestSparseDenseEquivalence:
    @pytest.mark.parametrize("block_rows", [8, 17, 40, 512])
    def test_full_k_bit_identical(self, features, block_rows):
        dense = cosine_similarity_matrix(features)
        sparse = _sparse(features, 39, block_rows=block_rows)
        assert np.array_equal(sparse.to_dense(), dense)

    def test_oversized_k_clamps_to_dense(self, features):
        dense = cosine_similarity_matrix(features)
        assert np.array_equal(_sparse(features, 10_000).to_dense(), dense)

    def test_small_k_keeps_strongest_plus_diagonal(self, features):
        dense = cosine_similarity_matrix(features)
        sparse = _sparse(features, 5)
        assert np.all(np.diff(sparse.indptr) == 6)  # k + diagonal
        for row in range(40):
            cols = sparse.indices[sparse.indptr[row]:sparse.indptr[row + 1]]
            vals = sparse.data[sparse.indptr[row]:sparse.indptr[row + 1]]
            assert row in cols
            assert np.array_equal(vals, dense[row, cols])
            off_kept = np.sort(dense[row, cols[cols != row]])
            off_all = np.sort(np.delete(dense[row], row))
            assert off_kept.min() >= off_all[-5:].min()

    def test_block_size_does_not_change_result(self, features):
        a = _sparse(features, 5, block_rows=4)
        b = _sparse(features, 5, block_rows=40)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.indices, b.indices)

    def test_gather_matches_numpy_oracle(self, features, rng):
        sparse = _sparse(features, 5)
        oracle = sparse.to_dense()
        for t in (1, 2, 17, 40):
            idx = rng.permutation(40)[:t]
            assert np.array_equal(sparse.gather(idx),
                                  oracle[np.ix_(idx, idx)])

    def test_dense_gather_matches_ix(self, features, rng):
        dense = cosine_similarity_matrix(features)
        wrapped = as_similarity_matrix(dense)
        idx = rng.permutation(40)[:13]
        assert np.array_equal(wrapped.gather(idx), dense[np.ix_(idx, idx)])

    def test_empty_gather(self, features):
        assert _sparse(features, 5).gather(np.array([], dtype=int)).shape == (0, 0)

    def test_kernel_validation(self, features):
        with pytest.raises(ConfigurationError):
            blocked_topk_cosine(features, 0)
        with pytest.raises(ConfigurationError):
            blocked_topk_cosine(features, 4, block_rows=0)

    def test_dtype_policy(self, features):
        sparse = _sparse(features, 5, dtype=np.float32)
        assert sparse.dtype == np.float32
        cast = sparse.astype(np.float64)
        assert cast.dtype == np.float64
        assert sparse.astype(np.float32) is sparse
        dense = as_similarity_matrix(cosine_similarity_matrix(features))
        assert dense.astype(np.float64) is dense

    def test_nbytes_linear_not_quadratic(self, rng):
        feats = rng.normal(size=(400, 8))
        sparse = _sparse(feats, 10)
        dense = DenseSimilarity(cosine_similarity_matrix(feats))
        assert sparse.nbytes < dense.nbytes / 8


class TestConstructionValidation:
    def test_dense_requires_square(self):
        with pytest.raises(ShapeError):
            DenseSimilarity(np.zeros((3, 4)))

    def test_csr_shape_checks(self):
        with pytest.raises(ShapeError):
            SparseTopKSimilarity(np.zeros(3), np.zeros(4, dtype=int),
                                 np.array([0, 3]), n=1, k=3)
        with pytest.raises(ShapeError):
            SparseTopKSimilarity(np.zeros(3), np.zeros(3, dtype=int),
                                 np.array([0, 2]), n=1, k=3)
        with pytest.raises(ConfigurationError):
            SparseTopKSimilarity(np.zeros(2), np.zeros(2, dtype=int),
                                 np.array([0, 2]), n=1, k=0)


class TestPayloadRoundTrip:
    def test_csr_store_round_trip(self, features, tmp_path):
        sparse = _sparse(features, 5)
        meta, arrays = sparse.payload()
        store = ArtifactStore(tmp_path / "cache")
        store.put("q-key", meta, arrays)
        # Fresh store instance: forces the disk round trip.
        replayed = ArtifactStore(tmp_path / "cache").get("q-key")
        restored = similarity_from_payload(replayed.meta, replayed.arrays)
        assert isinstance(restored, SparseTopKSimilarity)
        assert restored.k == 5 and restored.n == 40
        assert np.array_equal(restored.data, sparse.data)
        assert np.array_equal(restored.indices, sparse.indices)
        assert np.array_equal(restored.indptr, sparse.indptr)

    def test_dense_payload_keeps_legacy_layout(self, features):
        dense = cosine_similarity_matrix(features)
        meta, arrays = as_similarity_matrix(dense).payload()
        assert set(arrays) == {"matrix"}
        assert similarity_from_payload({}, arrays) is arrays["matrix"]

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError):
            similarity_from_payload({"q_format": "bogus"}, {})

    def test_fingerprint_distinguishes_forms(self, features):
        dense = cosine_similarity_matrix(features)
        fp_dense = similarity_fingerprint(dense)
        fp_sparse = similarity_fingerprint(_sparse(features, 5))
        assert fp_dense != fp_sparse
        assert fp_dense == similarity_fingerprint(dense.copy())
        assert fp_sparse == similarity_fingerprint(_sparse(features, 5))
        assert fp_sparse != similarity_fingerprint(_sparse(features, 6))


class TestGeneratorsSparse:
    def test_semantic_generator_sparse_full_k_matches_dense(
        self, clip, small_images
    ):
        dense = SemanticSimilarityGenerator(clip, NUS_WIDE_81).generate(
            small_images
        )
        n = small_images.shape[0]
        sparse = SemanticSimilarityGenerator(
            clip, NUS_WIDE_81, sparse_topk=n - 1
        ).generate(small_images)
        assert isinstance(sparse.matrix, SparseTopKSimilarity)
        assert np.array_equal(sparse.matrix.to_dense(), dense.matrix)

    def test_image_feature_generator_sparse(self, clip, small_images):
        dense = ImageFeatureSimilarityGenerator(clip).generate(small_images)
        n = small_images.shape[0]
        sparse = ImageFeatureSimilarityGenerator(
            clip, sparse_topk=n - 1
        ).generate(small_images)
        assert np.array_equal(sparse.matrix.to_dense(), dense.matrix)

    def test_sparse_rejects_template_averaging(self, clip):
        with pytest.raises(ConfigurationError):
            SemanticSimilarityGenerator(
                clip, NUS_WIDE_81, templates=("default", "p1"), sparse_topk=4
            )

    def test_staged_build_q_invalidates_on_sparse_topk(
        self, clip, small_images, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        key = {"dataset": "unit", "scale": 1.0, "seed": 0, "split": "train"}

        def build_q_stats():
            return dict(store.stats()["stages"].get("build_q", {}))

        SemanticSimilarityGenerator(clip, NUS_WIDE_81).generate(
            small_images, store=store, data_key=key
        )
        dense_stats = build_q_stats()
        assert dense_stats["puts"] == 1

        gen4 = SemanticSimilarityGenerator(clip, NUS_WIDE_81, sparse_topk=4)
        result = gen4.generate(small_images, store=store, data_key=key)
        after_sparse = build_q_stats()
        assert after_sparse["puts"] == 2  # new fingerprint, new artifact
        assert isinstance(result.matrix, SparseTopKSimilarity)

        SemanticSimilarityGenerator(
            clip, NUS_WIDE_81, sparse_topk=5
        ).generate(small_images, store=store, data_key=key)
        assert build_q_stats()["puts"] == 3  # k is part of the fingerprint

        replay = gen4.generate(small_images, store=store, data_key=key)
        assert build_q_stats()["puts"] == 3  # same k replays from the store
        assert isinstance(replay.matrix, SparseTopKSimilarity)
        assert np.array_equal(replay.matrix.data, result.matrix.data)
        assert np.array_equal(replay.matrix.indices, result.matrix.indices)

    def test_similarity_from_distributions_sparse(self, rng):
        dist = rng.dirichlet(np.ones(6), size=20)
        dense = similarity_from_distributions(dist)
        sparse = similarity_from_distributions(dist, sparse_topk=19)
        assert np.array_equal(sparse.to_dense(), dense)


class TestTrainerWithSparseQ:
    def _train(self, features, q, dtype="float64"):
        network = HashingNetwork(
            8, mode="feature", feature_extractor=lambda x: x,
            feature_dim=features.shape[1], rng=0, dtype=dtype,
        )
        config = UHSCMConfig(
            n_bits=8, train=TrainConfig(batch_size=16, epochs=2, dtype=dtype)
        )
        return UHSCMTrainer(network, config).fit(features, q, epochs=2)

    def test_sparse_full_k_trains_identically(self, rng):
        features = rng.normal(size=(40, 16))
        q_dense = cosine_similarity_matrix(features)
        h_dense = self._train(features, q_dense)
        h_sparse = self._train(features, _sparse(features, 39))
        assert h_dense.total == h_sparse.total
        assert h_dense.similarity == h_sparse.similarity

    def test_sparse_small_k_trains(self, rng):
        features = rng.normal(size=(40, 16))
        history = self._train(features, _sparse(features, 5))
        assert history.n_epochs == 2
        assert all(np.isfinite(history.total))

    def test_shape_mismatch_still_rejected(self, rng):
        features = rng.normal(size=(40, 16))
        with pytest.raises(ConfigurationError):
            self._train(features, _sparse(features[:30], 5))

    def test_float32_policy_casts_sparse_q(self, rng):
        features = rng.normal(size=(40, 16))
        history = self._train(features, _sparse(features, 39),
                              dtype="float32")
        assert history.n_epochs == 2


class TestUHSCMSparseInjection:
    def test_injected_sparse_q_fits_and_marks_unmined(
        self, clip, small_images
    ):
        config = UHSCMConfig(
            n_bits=8, train=TrainConfig(batch_size=16, epochs=2)
        )
        n = small_images.shape[0]
        q = SparseTopKSimilarity.from_features(
            clip.image_features(small_images), n - 1
        )
        model = UHSCM(config, clip=clip)
        model.fit(small_images, similarity=q)
        assert model.concepts_mined is False
        assert isinstance(model.similarity_.matrix, SimilarityMatrix)
        codes = model.encode(small_images)
        assert codes.shape == (n, 8)

    def test_config_sparse_topk_routes_default_generator(
        self, clip, small_images
    ):
        config = UHSCMConfig(
            n_bits=8,
            sparse_topk=6,
            train=TrainConfig(batch_size=16, epochs=1),
        )
        model = UHSCM(config, clip=clip)
        model.fit(small_images)
        assert isinstance(model.similarity_.matrix, SparseTopKSimilarity)
        assert model.similarity_.matrix.k == 6

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            UHSCMConfig(sparse_topk=0)
        with pytest.raises(ConfigurationError):
            UHSCMConfig(sparse_topk=-3)

    def test_fingerprint_payload_omits_none_sparse_topk(self):
        # Dense configs must hash exactly as they did before the field
        # existed, so pre-upgrade train/model artifacts stay addressable.
        assert "sparse_topk" not in UHSCMConfig().fingerprint_payload()
        assert UHSCMConfig(sparse_topk=8).fingerprint_payload()[
            "sparse_topk"
        ] == 8

    def test_avg_variant_stays_dense_under_sparse_config(self, clip):
        from repro.core.variants import get_variant

        config = UHSCMConfig(
            n_bits=8, sparse_topk=4, train=TrainConfig(batch_size=16,
                                                       epochs=1)
        )
        model = get_variant("avg")(config, clip)
        # Averaging needs dense per-template matrices; the variant must
        # clear sparse_topk (a sparse table2 sweep runs every row, and the
        # avg cell's train-stage fingerprint survives the toggle).
        assert model.similarity_generator.sparse_topk is None
        assert model.config.sparse_topk is None

    def test_baseline_encode_stage_ignores_sparse_topk(self):
        from repro.experiments.runner import ExperimentContext

        dense = ExperimentContext("cifar10", scale=0.01)
        sparse = ExperimentContext("cifar10", scale=0.01, sparse_topk=16)
        # Baselines never consume Q: their cached cells survive the toggle.
        assert (dense._fit_stage("ITQ", 16).fingerprint
                == sparse._fit_stage("ITQ", 16).fingerprint)
        assert (dense._fit_stage("UHSCM", 16).fingerprint
                != sparse._fit_stage("UHSCM", 16).fingerprint)
        assert (dense._fit_stage("variant:ours", 16).fingerprint
                != sparse._fit_stage("variant:ours", 16).fingerprint)
        # avg always builds dense Q, so its cell survives the toggle too.
        assert (dense._fit_stage("variant:avg", 16).fingerprint
                == sparse._fit_stage("variant:avg", 16).fingerprint)


class TestChunkedInference:
    @pytest.fixture()
    def fitted(self, clip, small_images):
        config = UHSCMConfig(
            n_bits=8, train=TrainConfig(batch_size=16, epochs=1)
        )
        model = UHSCM(config, clip=clip)
        model.fit(small_images)
        return model

    @pytest.mark.parametrize("chunk_size", [1, 7, 16, 30, 100])
    def test_chunked_encode_identity(self, fitted, small_images, chunk_size):
        # 30 rows: chunk sizes cover divisible, non-divisible, and > n.
        monolithic = fitted.encode(small_images)
        chunked = fitted.encode(small_images, chunk_size=chunk_size)
        assert np.array_equal(monolithic, chunked)

    @pytest.mark.parametrize("chunk_size", [7, 30])
    def test_chunked_relaxed_codes_identity(
        self, fitted, small_images, chunk_size
    ):
        # Relaxed (float) outputs: equal to BLAS summation-order noise —
        # degenerate tail chunks can take a different GEMM kernel (~1 ulp).
        np.testing.assert_allclose(
            fitted.relaxed_codes(small_images),
            fitted.relaxed_codes(small_images, chunk_size=chunk_size),
            rtol=0, atol=1e-12,
        )

    def test_invalid_chunk_size(self, fitted, small_images):
        with pytest.raises(ConfigurationError):
            fitted.encode(small_images, chunk_size=0)

    def test_encode_casts_to_network_dtype_once(self, fitted, small_images):
        # PR-2 dtype policy: a float32-trained network must receive float32
        # inputs (the old code hard-cast to float64 and the first layer cast
        # back, a double conversion).
        fitted.network.to("float32")
        seen: list[np.dtype] = []
        original = fitted.network.feature_extractor

        def spy(batch):
            seen.append(batch.dtype)
            return original(batch)

        fitted.network.feature_extractor = spy
        fitted.encode(small_images.astype(np.float64))
        assert seen and all(dt == np.float32 for dt in seen)
