"""Tests for the concept vocabularies and alias logic."""

import pytest

from repro.errors import VocabularyError
from repro.vlp.concepts import (
    ALIASES,
    CIFAR10_CLASSES,
    COCO_80,
    HYPERNYMS,
    MIRFLICKR_24,
    NUS_WIDE_21,
    NUS_WIDE_81,
    canonical,
    canonical_set,
    get_vocabulary,
    union_vocabulary,
)


class TestVocabularySizes:
    def test_nuswide_has_81(self):
        assert len(NUS_WIDE_81) == 81
        assert len(set(NUS_WIDE_81)) == 81

    def test_coco_has_80(self):
        assert len(COCO_80) == 80
        assert len(set(COCO_80)) == 80

    def test_cifar_has_10(self):
        assert len(CIFAR10_CLASSES) == 10

    def test_nuswide21_subset_of_81(self):
        assert set(NUS_WIDE_21) <= set(NUS_WIDE_81)
        assert len(NUS_WIDE_21) == 21

    def test_mirflickr_has_24(self):
        assert len(MIRFLICKR_24) == 24

    def test_union_is_153(self):
        # Paper §4.4.1: NUS-WIDE(81) ∪ COCO(80) = 153 distinct names.
        assert len(union_vocabulary(NUS_WIDE_81, COCO_80)) == 153


class TestCanonical:
    @pytest.mark.parametrize(
        "surface,expected",
        [
            ("birds", "bird"),
            ("automobile", "car"),
            ("cars", "car"),
            ("plane", "airplane"),
            ("ship", "boat"),
            ("sea", "ocean"),
            ("plant life", "plant"),
            ("cat", "cat"),
            ("  CAT ", "cat"),
        ],
    )
    def test_aliases(self, surface, expected):
        assert canonical(surface) == expected

    def test_empty_raises(self):
        with pytest.raises(VocabularyError):
            canonical("   ")

    def test_canonical_set(self):
        ids = canonical_set(("birds", "bird", "cat"))
        assert ids == frozenset({"bird", "cat"})

    def test_alias_values_are_canonical(self):
        # No alias should map to another alias's key (no chains).
        for target in ALIASES.values():
            assert target not in ALIASES


class TestCoverageStructure:
    def test_coco_covers_more_cifar_classes_than_nuswide(self):
        """The geometry behind ablation 4.4.1: COCO fits CIFAR10 better."""
        cifar = canonical_set(CIFAR10_CLASSES)
        coco_cover = len(cifar & canonical_set(COCO_80))
        nus_cover = len(cifar & canonical_set(NUS_WIDE_81))
        assert coco_cover > nus_cover

    def test_nuswide_covers_own_eval_classes(self):
        assert canonical_set(NUS_WIDE_21) <= canonical_set(NUS_WIDE_81)

    def test_nuswide_covers_more_mirflickr_than_coco(self):
        mir = canonical_set(MIRFLICKR_24)
        assert len(mir & canonical_set(NUS_WIDE_81)) > len(
            mir & canonical_set(COCO_80)
        )

    def test_hypernym_members_resolve(self):
        for members in HYPERNYMS.values():
            for m in members:
                assert canonical(m)  # no VocabularyError


class TestRegistry:
    def test_get_vocabulary(self):
        assert get_vocabulary("nuswide81") == NUS_WIDE_81
        assert len(get_vocabulary("nus&coco")) == 153

    def test_unknown(self):
        with pytest.raises(VocabularyError):
            get_vocabulary("imagenet")
