"""Property-based tests for the semantic world's structural invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vlp.concepts import NUS_WIDE_81
from repro.vlp.world import SemanticWorld, WorldConfig

concept_names = st.sampled_from(list(NUS_WIDE_81))


@settings(max_examples=25, deadline=None)
@given(concept_names)
def test_direction_unit_norm(name):
    world = SemanticWorld(WorldConfig(seed=3))
    assert np.linalg.norm(world.concept_direction(name)) == (
        __import__("pytest").approx(1.0)
    )


@settings(max_examples=20, deadline=None)
@given(concept_names, st.integers(0, 10_000))
def test_image_latent_deterministic_per_seed(name, seed):
    world = SemanticWorld(WorldConfig(seed=3))
    a = world.image_latent([name], rng=seed)
    b = world.image_latent([name], rng=seed)
    np.testing.assert_array_equal(a, b)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_render_is_linear_in_latents(seed):
    """render(a+b) - pixelnoise == render(a) + render(b) up to noise; with
    noiseless config the render map must be exactly additive."""
    world = SemanticWorld(WorldConfig(seed=3, pixel_noise=0.0))
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(1, world.config.latent_dim))
    b = rng.normal(size=(1, world.config.latent_dim))
    lhs = world.render(a + b, rng=0)
    rhs = world.render(a, rng=0) + world.render(b, rng=0)
    np.testing.assert_allclose(lhs, rhs, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_backbone_features_invert_render_exactly_without_noise(seed):
    world = SemanticWorld(WorldConfig(seed=3, pixel_noise=0.0))
    rng = np.random.default_rng(seed)
    z = rng.normal(size=(2, world.config.latent_dim))
    images = world.render(z, rng=0)
    np.testing.assert_allclose(world.backbone_features(images), z, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(concept_names, concept_names)
def test_scores_symmetric_in_world_geometry(name_a, name_b):
    """cos(u_a, u_b) == cos(u_b, u_a) and aliases collapse."""
    world = SemanticWorld(WorldConfig(seed=3))
    ua = world.concept_direction(name_a)
    ub = world.concept_direction(name_b)
    assert ua @ ub == __import__("pytest").approx(ub @ ua)
