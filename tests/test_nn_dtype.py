"""Tests for the nn dtype policy (``Module.to``) and activation-cache slots
(``capture_cache``/``restore_cache``) introduced by the vectorized training
engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    BatchNorm1d,
    Conv2d,
    Linear,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.functional import im2col
from repro.nn.optim import SGD
from repro.nn.parameter import Parameter, resolve_dtype
from repro.nn.vgg import build_feature_hash_net


def _mlp(rng_seed=0, dtype=None):
    net = Sequential(
        Linear(6, 5, rng=rng_seed),
        Tanh(),
        Linear(5, 3, rng=rng_seed + 1),
    )
    if dtype is not None:
        net.to(dtype)
    return net


class TestResolveDtype:
    def test_accepts_names_and_dtypes(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype("float64") == np.float64
        assert resolve_dtype(np.float32) == np.float32
        assert resolve_dtype(None) == np.float64

    def test_rejects_unsupported(self):
        for bad in ("float16", "int32", np.int64):
            with pytest.raises(ConfigurationError):
                resolve_dtype(bad)


class TestParameterDtype:
    def test_default_is_float64(self):
        p = Parameter(np.ones((2, 2), dtype=np.float32))
        assert p.dtype == np.float64

    def test_to_casts_data_and_grad(self):
        p = Parameter(np.ones((2, 2)))
        p.grad += 1.0
        p.to("float32")
        assert p.data.dtype == p.grad.dtype == np.float32
        np.testing.assert_array_equal(p.grad, 1.0)


class TestModuleTo:
    def test_casts_parameters_and_outputs(self):
        net = _mlp(dtype="float32")
        assert all(p.dtype == np.float32 for p in net.parameters())
        out = net(np.ones((4, 6), dtype=np.float64))
        assert out.dtype == np.float32
        grad_in = net.backward(np.ones_like(out))
        assert grad_in.dtype == np.float32
        assert all(p.grad.dtype == np.float32 for p in net.parameters())

    def test_batchnorm_buffers_stay_aliased(self):
        bn = BatchNorm1d(4)
        bn.to("float32")
        assert bn.running_mean.dtype == np.float32
        assert bn.running_mean is bn._buffers["running_mean"]
        assert bn.running_var is bn._buffers["running_var"]
        bn(np.random.default_rng(0).normal(size=(8, 4)))
        # The in-place running-stat update must hit the registered buffer.
        assert bn._buffers["running_mean"].any()

    def test_feature_net_float32_state_dict_roundtrip(self):
        net = build_feature_hash_net(4, 6, hidden_dims=(5,), rng=0)
        net.to("float32")
        state = net.state_dict()
        assert all(v.dtype == np.float32 for v in state.values())
        net2 = build_feature_hash_net(4, 6, hidden_dims=(5,), rng=1)
        net2.to("float32")
        net2.load_state_dict(state)
        x = np.random.default_rng(2).normal(size=(3, 6))
        net.eval(), net2.eval()
        np.testing.assert_array_equal(net(x), net2(x))

    def test_float32_forward_close_to_float64(self):
        net64 = _mlp(rng_seed=3)
        net32 = _mlp(rng_seed=3, dtype="float32")
        x = np.random.default_rng(0).normal(size=(4, 6))
        np.testing.assert_allclose(net32(x), net64(x), atol=1e-6)

    def test_sgd_after_cast_keeps_dtype(self):
        net = _mlp(dtype="float32")
        opt = SGD(net.parameters(), learning_rate=0.1)
        out = net(np.ones((4, 6)))
        net.backward(np.ones_like(out))
        opt.step()
        assert all(p.data.dtype == np.float32 for p in net.parameters())
        assert all(v.dtype == np.float32 for v in opt._velocity)


class TestCaptureCache:
    def _grads(self, net):
        return [p.grad.copy() for p in net.parameters()]

    def test_two_forwards_two_backwards(self):
        """backward(view2) then restore + backward(view1) must accumulate
        the same gradients as the seed's re-forward of view1."""
        rng = np.random.default_rng(0)
        x1 = rng.normal(size=(5, 6))
        x2 = rng.normal(size=(5, 6))
        g1 = rng.normal(size=(5, 3))
        g2 = rng.normal(size=(5, 3))

        captured = _mlp(rng_seed=7)
        captured.zero_grad()
        captured(x1)
        snapshot = captured.capture_cache()
        captured(x2)
        captured.backward(g2)
        captured.restore_cache(snapshot)
        captured.backward(g1)

        reforward = _mlp(rng_seed=7)
        reforward.zero_grad()
        reforward(x2)
        reforward.backward(g2)
        reforward(x1)
        reforward.backward(g1)

        for got, want in zip(self._grads(captured), self._grads(reforward)):
            np.testing.assert_allclose(got, want, atol=1e-12)

    def test_conv_ring_survives_two_live_forwards(self):
        """Conv2d's two-slot im2col ring must keep both captured forwards'
        column buffers intact."""
        rng = np.random.default_rng(1)
        x1 = rng.normal(size=(2, 3, 8, 8))
        x2 = rng.normal(size=(2, 3, 8, 8))

        def fresh():
            net = Sequential(Conv2d(3, 4, kernel_size=3, padding=1, rng=11),
                             ReLU())
            net.zero_grad()
            return net

        net = fresh()
        g = np.ones_like(net(x1))
        snapshot = net.capture_cache()
        net(x2)
        net.backward(g)
        net.restore_cache(snapshot)
        grad_x1 = net.backward(g)

        ref = fresh()
        ref(x1)
        ref_grad_x1 = ref.backward(g)
        np.testing.assert_allclose(grad_x1, ref_grad_x1, atol=1e-12)

    def test_restore_rejects_mismatched_snapshot(self):
        net = _mlp()
        with pytest.raises(ValueError):
            net.restore_cache([{}])

    def test_conv_detects_third_overlapping_forward(self):
        """A third live forward overwrites the oldest ring slot; backward
        off the stale capture must raise, not corrupt gradients."""
        rng = np.random.default_rng(2)
        conv = Conv2d(2, 3, kernel_size=3, rng=5)
        x = rng.normal(size=(1, 2, 5, 5))
        conv(x)
        stale = conv.capture_cache()
        conv(x)
        conv(x)  # reuses the first forward's buffer
        conv.restore_cache(stale)
        with pytest.raises(RuntimeError, match="overwritten"):
            conv.backward(np.ones((1, 3, 3, 3)))


class TestIm2colBufferReuse:
    def test_out_buffer_is_reused(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 6, 6))
        cols, oh, ow = im2col(x, kernel=3, stride=1, padding=1)
        buf = np.empty_like(cols)
        cols2, _, _ = im2col(x, kernel=3, stride=1, padding=1, out=buf)
        assert cols2 is buf
        np.testing.assert_array_equal(cols, cols2)

    def test_mismatched_out_is_reallocated(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 6, 6))
        bad = np.empty((1, 1))
        cols, _, _ = im2col(x, kernel=3, stride=1, padding=1, out=bad)
        assert cols is not bad

    def test_dtype_change_resets_conv_ring(self):
        conv = Conv2d(2, 3, kernel_size=3, rng=0)
        x = np.random.default_rng(0).normal(size=(1, 2, 5, 5))
        conv(x)
        assert conv._col_ring[0] is not None
        conv.to("float32")
        assert conv._col_ring == [None, None]
        out = conv(x)
        assert out.dtype == np.float32
