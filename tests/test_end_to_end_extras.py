"""Additional cross-module behaviours: conv-mode training, evaluate_hashing
wrapper, instance-diversity effects, and CLI table commands."""

import numpy as np
import pytest

from repro.cli import main
from repro.config import TrainConfig, UHSCMConfig
from repro.core.uhscm import UHSCM
from repro.datasets import SplitSizes, dataset_spec, generate_dataset
from repro.datasets.synthetic import DatasetSpec
from repro.retrieval import evaluate_hashing
from repro.vlp import SemanticWorld, WorldConfig


class TestConvModeEndToEnd:
    def test_uhscm_trains_a_real_cnn(self, clip, cifar_tiny):
        """The conv path exercises Conv2d/MaxPool backprop end to end."""
        config = UHSCMConfig(n_bits=8, train=TrainConfig(epochs=2,
                                                         batch_size=40))
        model = UHSCM(config, clip=clip, network_mode="conv",
                      conv_profile="tiny")
        model.fit(cifar_tiny.train_images)
        codes = model.encode(cifar_tiny.query_images[:6])
        assert codes.shape == (6, 8)
        assert model.history_.total[-1] <= model.history_.total[0] + 0.05


class TestEvaluateHashingWrapper:
    def test_wraps_model_encode(self, clip, cifar_tiny):
        config = UHSCMConfig(n_bits=16, train=TrainConfig(epochs=3))
        model = UHSCM(config, clip=clip)
        model.fit(cifar_tiny.train_images)
        report = evaluate_hashing(model, cifar_tiny, pn_points=(5, 20))
        assert report.n_bits == 16
        assert set(report.precision_at_n) == {5, 20}
        assert report.pr_curve.radii.size == 17


class TestInstanceDiversity:
    def test_higher_instance_scale_lowers_feature_similarity(self):
        """The DatasetSpec.instance_scale knob behind CIFAR's difficulty."""
        world = SemanticWorld(WorldConfig(seed=21))
        sizes = SplitSizes(train=60, query=30, database=120)

        def same_class_cos(instance_scale):
            spec = DatasetSpec(
                name="x",
                class_names=("cat", "dog"),
                class_probs=(0.5, 0.5),
                single_label=True,
                instance_scale=instance_scale,
            )
            data = generate_dataset(spec, sizes, world=world, seed=1)
            feats = data.world.encode_pixels(data.train_images)
            feats = feats / np.linalg.norm(feats, axis=1, keepdims=True)
            labels = data.train_labels.argmax(axis=1)
            same = labels[:, None] == labels[None, :]
            np.fill_diagonal(same, False)
            return (feats @ feats.T)[same].mean()

        assert same_class_cos(0.5) > same_class_cos(2.5)


class TestDatasetBackground:
    def test_background_concept_not_in_labels(self, nuswide_tiny):
        """'sun' is image content but never an evaluation label."""
        assert "sun" not in nuswide_tiny.class_names

    def test_background_visible_to_vlp(self, clip, nuswide_tiny):
        scores = clip.score_concepts(nuswide_tiny.train_images, ["sun"])
        baseline = clip.score_concepts(nuswide_tiny.train_images, ["computer"])
        assert scores.mean() > baseline.mean()


class TestCliTables:
    def test_table1_command(self, capsys):
        code = main([
            "table1", "--scale", "0.008", "--bits", "16",
            "--dataset", "cifar10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "UHSCM" in out and "LSH" in out

    def test_table2_command(self, capsys):
        code = main(["table2", "--scale", "0.008", "--bits", "16"])
        assert code == 0
        assert "ours" in capsys.readouterr().out
