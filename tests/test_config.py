"""Tests for the configuration objects."""

import pytest

from repro.config import (
    PAPER_BIT_LENGTHS,
    TrainConfig,
    UHSCMConfig,
    paper_config,
)
from repro.errors import ConfigurationError


class TestTrainConfig:
    def test_paper_defaults(self):
        cfg = TrainConfig()
        assert cfg.learning_rate == pytest.approx(0.006)
        assert cfg.momentum == pytest.approx(0.9)
        assert cfg.weight_decay == pytest.approx(1e-5)
        assert cfg.batch_size == 128
        assert cfg.dtype == "float64"  # bit-stable default; float32 opt-in

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"momentum": 1.0},
            {"weight_decay": -1.0},
            {"batch_size": 0},
            {"epochs": 0},
            {"dtype": "float16"},
            {"dtype": "double"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainConfig(**kwargs)


class TestUHSCMConfig:
    def test_with_bits(self):
        cfg = UHSCMConfig(n_bits=32).with_bits(128)
        assert cfg.n_bits == 128

    def test_tau(self):
        cfg = UHSCMConfig(tau_scale=3.0)
        assert cfg.tau(81) == pytest.approx(243.0)
        with pytest.raises(ConfigurationError):
            cfg.tau(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_bits": 0},
            {"alpha": -0.1},
            {"gamma": 0.0},
            {"lam": 1.5},
            {"tau_scale": 0.0},
            {"prompt_template": "no placeholder"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            UHSCMConfig(**kwargs)

    def test_paper_bit_lengths(self):
        assert PAPER_BIT_LENGTHS == (32, 64, 96, 128)


class TestPaperConfig:
    @pytest.mark.parametrize("name", ["cifar10", "CIFAR", "nus-wide", "MIRFlickr-25K"])
    def test_aliases(self, name):
        cfg = paper_config(name, n_bits=96)
        assert cfg.n_bits == 96

    def test_cifar_matches_paper(self):
        cfg = paper_config("cifar10")
        assert (cfg.alpha, cfg.lam, cfg.gamma, cfg.beta) == (0.2, 0.8, 0.2, 0.001)

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            paper_config("imagenet")
