"""Tests for rng plumbing, timer, tables, validation, and stable hashing."""

import time

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.utils.hashing import stable_seed
from repro.utils.rng import RngMixin, as_generator, spawn
from repro.utils.tables import format_float, render_table
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_array,
    check_binary_codes,
    check_in_range,
    check_positive,
    check_probability_rows,
)


class TestRng:
    def test_int_seed_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_spawn_independent(self):
        children = spawn(as_generator(0), 3)
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)

    def test_mixin(self):
        class Thing(RngMixin):
            pass

        t = Thing(seed=5)
        assert isinstance(t.rng, np.random.Generator)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed(1, "cat") == stable_seed(1, "cat")

    def test_distinct_inputs_distinct_seeds(self):
        seeds = {stable_seed(i, "x") for i in range(100)}
        assert len(seeds) == 100

    def test_type_sensitive(self):
        assert stable_seed(1) != stable_seed("1")

    def test_in_63_bit_range(self):
        s = stable_seed("anything", 123)
        assert 0 <= s < 2**63


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        assert t.elapsed > 0
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_minutes(self):
        t = Timer(elapsed=120.0)
        assert t.minutes == pytest.approx(2.0)

    def test_reset(self):
        t = Timer(elapsed=5.0)
        t.reset()
        assert t.elapsed == 0.0 and not t.running


class TestTables:
    def test_render_alignment(self):
        out = render_table(["a", "bb"], [["x", 1.23456], ["yy", 2.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.235" in out

    def test_title(self):
        out = render_table(["h"], [["v"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_format_float(self):
        assert format_float(0.8314) == "0.831"
        assert format_float(1.0, digits=1) == "1.0"


class TestValidation:
    def test_check_array_shape(self):
        arr = check_array([[1, 2]], "x", shape=(1, 2))
        assert arr.shape == (1, 2)

    def test_check_array_wildcard(self):
        check_array(np.zeros((3, 7)), "x", shape=(None, 7))

    def test_check_array_bad_rank(self):
        with pytest.raises(ShapeError):
            check_array(np.zeros(3), "x", ndim=2)

    def test_check_array_bad_axis(self):
        with pytest.raises(ShapeError):
            check_array(np.zeros((3, 4)), "x", shape=(3, 5))

    def test_check_positive(self):
        assert check_positive(1.5, "v") == 1.5
        with pytest.raises(ValueError):
            check_positive(0.0, "v")
        assert check_positive(0.0, "v", strict=False) == 0.0

    def test_check_in_range(self):
        assert check_in_range(0.5, "v", 0, 1) == 0.5
        with pytest.raises(ValueError):
            check_in_range(2.0, "v", 0, 1)
        with pytest.raises(ValueError):
            check_in_range(0.0, "v", 0, 1, inclusive=False)

    def test_check_binary_codes(self):
        check_binary_codes(np.array([[1.0, -1.0]]))
        with pytest.raises(ShapeError):
            check_binary_codes(np.array([[0.5, 1.0]]))

    def test_check_binary_codes_rejects_zero_and_nan(self):
        with pytest.raises(ShapeError):
            check_binary_codes(np.array([[0.0, 1.0]]))
        with pytest.raises(ShapeError):
            check_binary_codes(np.array([[np.nan, 1.0]]))
        with pytest.raises(ShapeError):
            check_binary_codes(np.array([1.0, -1.0]))  # 1-D

    def test_check_binary_codes_names_offending_values(self):
        with pytest.raises(ShapeError, match="0.5"):
            check_binary_codes(np.array([[0.5, 1.0]]), "mycodes")
        with pytest.raises(ShapeError, match="mycodes"):
            check_binary_codes(np.array([[3.0, 1.0]]), "mycodes")

    def test_check_probability_rows(self):
        check_probability_rows(np.array([[0.5, 0.5]]))
        with pytest.raises(ShapeError):
            check_probability_rows(np.array([[0.5, 0.6]]))
        with pytest.raises(ShapeError):
            check_probability_rows(np.array([[-0.1, 1.1]]))
