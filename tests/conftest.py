"""Shared fixtures: a small semantic world and tiny datasets.

Session-scoped so the expensive generation happens once per test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SplitSizes, dataset_spec, generate_dataset
from repro.vlp import SimCLIP, SemanticWorld, WorldConfig


@pytest.fixture(scope="session")
def world() -> SemanticWorld:
    return SemanticWorld(WorldConfig(seed=99))


@pytest.fixture(scope="session")
def clip(world: SemanticWorld) -> SimCLIP:
    return SimCLIP(world)


def _tiny(name: str, world: SemanticWorld):
    sizes = SplitSizes(train=80, query=30, database=300)
    return generate_dataset(dataset_spec(name), sizes, world=world, seed=7)


@pytest.fixture(scope="session")
def cifar_tiny(world: SemanticWorld):
    return _tiny("cifar10", world)


@pytest.fixture(scope="session")
def nuswide_tiny(world: SemanticWorld):
    return _tiny("nuswide", world)


@pytest.fixture(scope="session")
def mirflickr_tiny(world: SemanticWorld):
    return _tiny("mirflickr", world)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f(x)
        flat[i] = orig - eps
        lo = f(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad
