"""Tests for the out-of-core corpus lifecycle (PR 6).

Covers the raw memmapped artifact format and its threshold routing in the
store, the streaming artifact writer + ``run_stage_streaming``, the
streaming CSR Q kernel's bit-identity with the heap builder, memmap
consumption in the trainer / ``UHSCM.encode`` / the serving layer, the
eviction (mtime, key) tie-break, per-stage disk stats, and the CLI flags
that thread the policy through.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import numpy as np
import pytest

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.similarity_matrix import SparseTopKSimilarity
from repro.core.trainer import UHSCMTrainer
from repro.core.uhscm import UHSCM
from repro.errors import ConfigurationError, NotFittedError
from repro.pipeline import (
    ArtifactStore,
    Stage,
    read_raw_archive,
    run_stage_streaming,
    write_raw_archive,
)
from repro.serving import HashingService
from repro.utils.mathops import (
    blocked_topk_cosine,
    cosine_similarity_matrix,
    streaming_topk_cosine,
)


def save_memmap(path, array) -> np.memmap:
    """Write ``array`` to ``path`` and re-open it as a read-only memmap."""
    np.save(path, array)
    return np.load(str(path) + ".npy" if not str(path).endswith(".npy")
                   else path, mmap_mode="r")


@pytest.fixture()
def small_images(world):
    rng = np.random.default_rng(5)
    classes = ["cat"] * 10 + ["truck"] * 10 + ["flowers"] * 10
    latents = np.stack([world.image_latent([c], rng=rng) for c in classes])
    return world.render(latents, rng=rng)


# -- the raw archive format ---------------------------------------------------


class TestRawArchive:
    def test_round_trip_is_memmapped(self, tmp_path, rng):
        arrays = {"x": rng.normal(size=(8, 3)), "y": np.arange(5)}
        write_raw_archive(tmp_path / "k.raw", {"n": 8}, arrays)
        meta, back = read_raw_archive(tmp_path / "k.raw")
        assert meta == {"n": 8}
        for name in arrays:
            assert isinstance(back[name], np.memmap)
            np.testing.assert_array_equal(back[name], arrays[name])
            assert back[name].dtype == arrays[name].dtype

    def test_mmap_off_returns_heap_arrays(self, tmp_path, rng):
        write_raw_archive(tmp_path / "k.raw", {}, {"x": rng.normal(size=4)})
        _, back = read_raw_archive(tmp_path / "k.raw", mmap=False)
        assert not isinstance(back["x"], np.memmap)

    def test_array_names_with_slashes(self, tmp_path, rng):
        # State-dict names like param/w0 are illegal as filenames; the
        # manifest maps them to safe member files.
        arrays = {"param/w0": rng.normal(size=3), "param/b0": np.zeros(2)}
        write_raw_archive(tmp_path / "k.raw", {}, arrays)
        _, back = read_raw_archive(tmp_path / "k.raw")
        assert set(back) == set(arrays)
        np.testing.assert_array_equal(back["param/w0"], arrays["param/w0"])

    def test_non_raw_directory_rejected(self, tmp_path):
        (tmp_path / "k.raw").mkdir()
        with pytest.raises(ConfigurationError):
            read_raw_archive(tmp_path / "k.raw")

    def test_overwrite_replaces_atomically(self, tmp_path):
        write_raw_archive(tmp_path / "k.raw", {"v": 1}, {"x": np.zeros(3)})
        write_raw_archive(tmp_path / "k.raw", {"v": 2}, {"y": np.ones(2)})
        meta, back = read_raw_archive(tmp_path / "k.raw")
        assert meta == {"v": 2} and set(back) == {"y"}
        assert not list(tmp_path.glob("*.tmp"))


# -- store routing ------------------------------------------------------------


class TestStoreRawRouting:
    def test_threshold_routes_large_puts_to_raw(self, tmp_path, rng):
        store = ArtifactStore(tmp_path / "c", mmap_threshold_bytes=1000)
        small = store.put("a" * 64, {}, {"x": np.zeros(4)})
        large = store.put("b" * 64, {}, {"x": rng.normal(size=500)})
        assert not isinstance(small.arrays["x"], np.memmap)
        assert isinstance(large.arrays["x"], np.memmap)
        assert (tmp_path / "c/objects" / ("a" * 64 + ".npz")).exists()
        assert (tmp_path / "c/objects" / ("b" * 64 + ".raw")).is_dir()
        assert not (tmp_path / "c/objects" / ("b" * 64 + ".npz")).exists()

    def test_threshold_zero_routes_everything(self, tmp_path):
        store = ArtifactStore(tmp_path / "c", mmap_threshold_bytes=0)
        art = store.put("a" * 64, {"m": 1}, {"x": np.arange(3)})
        assert isinstance(art.arrays["x"], np.memmap)

    def test_raw_hit_replays_as_memmap_across_instances(self, tmp_path, rng):
        data = rng.normal(size=(16, 4))
        ArtifactStore(tmp_path / "c", mmap_threshold_bytes=0).put(
            "a" * 64, {"m": 1}, {"x": data}
        )
        # No threshold on the reader: the format, not the policy, decides.
        reader = ArtifactStore(tmp_path / "c")
        art = reader.get("a" * 64)
        assert art is not None and isinstance(art.arrays["x"], np.memmap)
        np.testing.assert_array_equal(art.arrays["x"], data)
        assert art.meta == {"m": 1}

    def test_format_switch_removes_twin(self, tmp_path, rng):
        store = ArtifactStore(tmp_path / "c", mmap_threshold_bytes=1000)
        key = "a" * 64
        store.put(key, {}, {"x": rng.normal(size=500)})  # raw
        store.put(key, {}, {"x": np.zeros(4)})  # rewrite below threshold
        assert (tmp_path / "c/objects" / (key + ".npz")).exists()
        assert not (tmp_path / "c/objects" / (key + ".raw")).exists()

    def test_corrupt_raw_treated_as_miss(self, tmp_path, rng):
        store = ArtifactStore(tmp_path / "c", mmap_threshold_bytes=0)
        key = "a" * 64
        store.put(key, {}, {"x": rng.normal(size=8)})
        store._memory.clear()
        (tmp_path / "c/objects" / (key + ".raw") / "meta.json").write_text(
            "not json"
        )
        assert store.get(key) is None
        assert not (tmp_path / "c/objects" / (key + ".raw")).exists()

    def test_threshold_requires_cache_dir(self):
        with pytest.raises(ConfigurationError):
            ArtifactStore(mmap_threshold_bytes=0)

    def test_negative_threshold_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ArtifactStore(tmp_path / "c", mmap_threshold_bytes=-1)

    def test_memmapped_artifacts_not_pinned_in_memory(self, tmp_path, rng):
        store = ArtifactStore(tmp_path / "c", mmap_threshold_bytes=0)
        store.put("a" * 64, {}, {"x": rng.normal(size=64)})
        assert store.stats()["memory_entries"] == 0

    def test_clear_removes_raw_entries(self, tmp_path, rng):
        store = ArtifactStore(tmp_path / "c", mmap_threshold_bytes=0)
        store.put("a" * 64, {}, {"x": rng.normal(size=8)})
        assert store.clear() == 1
        assert store.stats()["disk_entries"] == 0


# -- streaming writer + staged streaming --------------------------------------


class TestStreamingWriter:
    def test_create_commit_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "c")
        writer = store.streaming_writer("a" * 64, stage="build_q")
        dest = writer.create("x", (6,), np.float64)
        dest[:] = np.arange(6.0)
        art = writer.commit({"rows": 6})
        assert isinstance(art.arrays["x"], np.memmap)
        np.testing.assert_array_equal(art.arrays["x"], np.arange(6.0))
        assert art.meta == {"rows": 6}
        replay = ArtifactStore(tmp_path / "c").get("a" * 64)
        assert replay is not None
        np.testing.assert_array_equal(replay.arrays["x"], np.arange(6.0))
        assert store.stats()["stages"]["build_q"]["puts"] == 1

    def test_abort_discards_assembly(self, tmp_path):
        store = ArtifactStore(tmp_path / "c")
        writer = store.streaming_writer("a" * 64)
        writer.create("x", (3,), np.float64)
        writer.abort()
        writer.abort()  # idempotent
        assert not store.contains("a" * 64)
        assert not list((tmp_path / "c/objects").glob("*.tmp"))

    def test_create_guards(self, tmp_path):
        store = ArtifactStore(tmp_path / "c")
        writer = store.streaming_writer("a" * 64)
        writer.create("x", (2,), np.float64)
        with pytest.raises(ConfigurationError):
            writer.create("x", (2,), np.float64)
        writer.commit({})
        with pytest.raises(ConfigurationError):
            writer.create("y", (2,), np.float64)
        with pytest.raises(ConfigurationError):
            writer.commit({})

    def test_requires_cache_dir(self):
        with pytest.raises(ConfigurationError):
            ArtifactStore().streaming_writer("a" * 64)

    def test_crash_orphan_swept_on_next_construction(self, tmp_path):
        store = ArtifactStore(tmp_path / "c")
        writer = store.streaming_writer("a" * 64)
        writer.create("x", (3,), np.float64)
        # Simulate a crash: the writer never commits or aborts.
        assert list((tmp_path / "c/objects").glob("*.tmp"))
        del writer
        ArtifactStore(tmp_path / "c")
        assert not list((tmp_path / "c/objects").glob("*.tmp"))


class TestRunStageStreaming:
    def test_miss_builds_then_replays(self, tmp_path):
        store = ArtifactStore(tmp_path / "c")
        stage = Stage("build_q", params={"p": 1})
        calls = []

        def build(writer):
            calls.append(1)
            writer.create("x", (4,), np.int64)[:] = np.arange(4)
            return {"rows": 4}

        first = run_stage_streaming(store, stage, build)
        second = run_stage_streaming(store, stage, build)
        assert len(calls) == 1
        np.testing.assert_array_equal(first.arrays["x"], np.arange(4))
        np.testing.assert_array_equal(second.arrays["x"], np.arange(4))
        per = store.stats()["stages"]["build_q"]
        assert per["hits"] == 1 and per["misses"] == 1 and per["puts"] == 1

    def test_build_error_aborts_cleanly(self, tmp_path):
        store = ArtifactStore(tmp_path / "c")
        stage = Stage("build_q", params={"p": 2})

        def build(writer):
            writer.create("x", (4,), np.float64)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_stage_streaming(store, stage, build)
        assert not store.contains(stage.fingerprint)
        assert not list((tmp_path / "c/objects").glob("*.tmp"))


# -- eviction + per-stage disk stats ------------------------------------------


class TestEvictionAndStats:
    def test_same_mtime_evicts_in_key_order(self, tmp_path):
        store = ArtifactStore(tmp_path / "c", max_entries=3)
        keys = ["b" * 64, "a" * 64, "c" * 64]
        for key in keys:
            store.put(key, {}, {"x": np.zeros(2)})
        # Force identical LRU clocks: only the key tie-break remains.
        now = os.stat(tmp_path / "c/objects" / (keys[0] + ".npz")).st_mtime
        for key in keys:
            os.utime(tmp_path / "c/objects" / (key + ".npz"), (now, now))
        store.put("d" * 64, {}, {"x": np.zeros(2)})
        # The lexicographically smallest stem among the tied entries goes.
        assert not store.contains("a" * 64)
        assert store.contains("b" * 64)
        assert store.contains("c" * 64)
        assert store.contains("d" * 64)

    def test_per_stage_disk_and_eviction_counters(self, tmp_path, rng):
        store = ArtifactStore(tmp_path / "c", max_entries=2,
                              mmap_threshold_bytes=4000)
        store.put("a" * 64, {}, {"x": rng.normal(size=8)}, stage="mine")
        store.put("b" * 64, {}, {"x": rng.normal(size=1000)}, stage="build_q")
        stats = store.stats()
        assert stats["stages"]["mine"]["disk_entries"] == 1
        assert stats["stages"]["build_q"]["disk_entries"] == 1
        # The raw dir reports its real on-disk payload.
        assert stats["stages"]["build_q"]["disk_bytes"] >= 8000
        store.put("c" * 64, {}, {"x": rng.normal(size=8)}, stage="mine")
        stats = store.stats()
        assert stats["evictions"] == 1
        by_stage = {name: per["evictions"]
                    for name, per in stats["stages"].items()}
        assert sum(by_stage.values()) == 1

    def test_stage_counters_survive_restart(self, tmp_path, rng):
        store = ArtifactStore(tmp_path / "c", mmap_threshold_bytes=0)
        store.put("a" * 64, {}, {"x": rng.normal(size=8)}, stage="mine")
        stats = ArtifactStore(tmp_path / "c").stats()
        assert stats["stages"]["mine"]["disk_entries"] == 1
        assert stats["stages"]["mine"]["evictions"] == 0

    def test_old_stats_files_backfill(self, tmp_path):
        store = ArtifactStore(tmp_path / "c")
        store.put("a" * 64, {}, {"x": np.zeros(2)}, stage="mine")
        # Strip the new fields the way a pre-PR-6 stats.json looks.
        stats_path = tmp_path / "c/stats.json"
        loaded = json.loads(stats_path.read_text())
        del loaded["key_stages"]
        for per in loaded["stages"].values():
            per.pop("evictions", None)
        stats_path.write_text(json.dumps(loaded))
        reloaded = ArtifactStore(tmp_path / "c").stats()
        assert reloaded["stages"]["mine"]["evictions"] == 0
        assert reloaded["stages"]["mine"]["disk_entries"] == 0  # unowned


# -- the streaming kernel -----------------------------------------------------


def heap_create(name, shape, dtype):
    return np.empty(shape, dtype=dtype)


class TestStreamingKernel:
    def test_bit_identical_to_blocked(self, rng):
        features = rng.normal(size=(60, 9))
        ref = blocked_topk_cosine(features, 7)
        out = streaming_topk_cosine(features, 7, heap_create)
        for got, want in zip(out, ref):
            np.testing.assert_array_equal(got, want)
            assert got.dtype == want.dtype

    def test_exact_at_full_k(self, rng):
        features = rng.normal(size=(25, 6))
        data, indices, indptr = streaming_topk_cosine(
            features, 24, heap_create
        )
        q = SparseTopKSimilarity(data, indices, indptr, n=25, k=24)
        np.testing.assert_array_equal(
            q.to_dense(), cosine_similarity_matrix(features)
        )

    def test_memmap_features_and_destinations(self, tmp_path, rng):
        features = rng.normal(size=(40, 8))
        mapped = save_memmap(tmp_path / "f.npy", features)
        store = ArtifactStore(tmp_path / "c")
        writer = store.streaming_writer("a" * 64)
        q = SparseTopKSimilarity.from_features_streaming(
            mapped, 5, writer.create
        )
        art = writer.commit({"n": 40})
        assert q.memmapped
        ref = SparseTopKSimilarity.from_features(features, 5)
        np.testing.assert_array_equal(q.to_dense(), ref.to_dense())
        np.testing.assert_array_equal(art.arrays["q_data"], ref.data)

    def test_block_cap_shared_with_heap_builder(self, rng):
        # Both builders resolve the cap identically (floor of 16 rows
        # here), so tiny-tile runs stay bit-identical to each other.
        features = rng.normal(size=(50, 5))
        ref = blocked_topk_cosine(features, 4, max_block_bytes=1)
        out = streaming_topk_cosine(features, 4, heap_create,
                                    max_block_bytes=1)
        for got, want in zip(out, ref):
            np.testing.assert_array_equal(got, want)
        # And the capped run still selects the same entries as the
        # default-tile run, to floating-point tolerance.
        for got, want in zip(out, blocked_topk_cosine(features, 4)):
            np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_empty_features(self):
        data, indices, indptr = streaming_topk_cosine(
            np.zeros((0, 4)), 3, heap_create
        )
        assert data.size == 0 and indices.size == 0
        np.testing.assert_array_equal(indptr, [0])

    def test_validation(self, rng):
        features = rng.normal(size=(4, 2))
        with pytest.raises(ConfigurationError):
            streaming_topk_cosine(features, 0, heap_create)
        with pytest.raises(ConfigurationError):
            streaming_topk_cosine(features, 2, heap_create, block_rows=0)
        with pytest.raises(ConfigurationError):
            streaming_topk_cosine(features, 2, heap_create,
                                  max_block_bytes=0)


# -- memmap consumers: trainer, encode, serving -------------------------------


class TestTrainerMemmap:
    def make_trainer(self, dim, dtype="float32"):
        config = UHSCMConfig(
            n_bits=8, train=TrainConfig(batch_size=16, epochs=2, dtype=dtype)
        )
        network = HashingNetwork(
            8, mode="feature", feature_extractor=lambda x: x,
            feature_dim=dim, rng=0, dtype=dtype,
        )
        return UHSCMTrainer(network, config)

    def test_memmap_inputs_bit_identical(self, tmp_path, rng):
        features = rng.normal(size=(48, 12))
        q = SparseTopKSimilarity.from_features(features, 8)
        heap_trainer = self.make_trainer(12)
        heap_history = heap_trainer.fit(features, q)
        mapped = save_memmap(tmp_path / "f.npy", features)
        map_trainer = self.make_trainer(12)
        map_history = map_trainer.fit(mapped, q)
        assert heap_history.total == map_history.total
        for name, param in heap_trainer.network.net.state_dict().items():
            np.testing.assert_array_equal(
                param, map_trainer.network.net.state_dict()[name]
            )


class TestEncodeEdgeCases:
    @pytest.fixture()
    def fitted(self, clip, small_images):
        config = UHSCMConfig(
            n_bits=8, train=TrainConfig(batch_size=16, epochs=1)
        )
        model = UHSCM(config, clip=clip)
        model.fit(small_images)
        return model

    @pytest.mark.parametrize("chunk_size", [None, 4])
    def test_empty_input_raises(self, fitted, small_images, chunk_size):
        empty = small_images[:0]
        with pytest.raises(NotFittedError,
                           match="empty image batch"):
            fitted.encode(empty, chunk_size=chunk_size)

    def test_memmap_input_identity(self, fitted, small_images, tmp_path,
                                   monkeypatch):
        # Force the auto-chunk path to actually chunk at this tiny n.
        monkeypatch.setattr(UHSCM, "MEMMAP_CHUNK", 7)
        mapped = save_memmap(tmp_path / "imgs.npy", small_images)
        np.testing.assert_array_equal(
            fitted.encode(small_images), fitted.encode(mapped)
        )

    def test_memmap_explicit_chunk_identity(self, fitted, small_images,
                                            tmp_path):
        mapped = save_memmap(tmp_path / "imgs.npy", small_images)
        np.testing.assert_array_equal(
            fitted.encode(small_images, chunk_size=1),
            fitted.encode(mapped, chunk_size=1),
        )


class TestServiceOutOfCore:
    def make_service(self, dim=8, bits=16, store=None):
        network = HashingNetwork(
            bits, mode="feature", feature_extractor=lambda x: x,
            feature_dim=dim, rng=0,
        )
        return HashingService(network, store=store, n_shards=2, max_batch=64)

    def test_chunked_load_matches_monolithic(self, rng):
        db = rng.normal(size=(30, 8))
        mono = self.make_service()
        ids_mono = mono.load_database(db)
        chunked = self.make_service()
        ids_chunked = chunked.load_database(db, chunk_size=7)
        np.testing.assert_array_equal(ids_mono, ids_chunked)
        queries = rng.normal(size=(4, 8))
        for a, b in zip(mono.query(queries, top_k=3),
                        chunked.query(queries, top_k=3)):
            np.testing.assert_array_equal(a, b)

    def test_invalid_chunk_size(self, rng):
        service = self.make_service()
        with pytest.raises(ConfigurationError):
            service.load_database(rng.normal(size=(4, 8)), chunk_size=0)

    def test_memmap_database_auto_chunks(self, tmp_path, rng, monkeypatch):
        monkeypatch.setattr(HashingService, "DB_CHUNK", 8)
        db = rng.normal(size=(30, 8))
        mapped = save_memmap(tmp_path / "db.npy", db)
        heap_service = self.make_service()
        heap_service.load_database(db)
        map_service = self.make_service()
        map_service.load_database(mapped)
        queries = rng.normal(size=(4, 8))
        for a, b in zip(heap_service.query(queries, top_k=3),
                        map_service.query(queries, top_k=3)):
            np.testing.assert_array_equal(a, b)

    def test_warm_restart_mmaps_snapshot(self, tmp_path, rng):
        db = rng.normal(size=(40, 8))
        queries = rng.normal(size=(4, 8))
        store = ArtifactStore(tmp_path / "c", mmap_threshold_bytes=0)
        cold = self.make_service(store=store)
        cold.load_database(db, key={"name": "unit"})
        cold_ids, cold_dist = cold.query(queries, top_k=3)
        assert cold.stats()["database"]["encodes"] == 1

        warm = self.make_service(store=ArtifactStore(tmp_path / "c"))
        warm.load_database(db, key={"name": "unit"})
        warm_db = warm.stats()["database"]
        assert warm_db == {"encodes": 0, "warm_loads": 1,
                           "snapshot_mmapped": True}
        warm_ids, warm_dist = warm.query(queries, top_k=3)
        np.testing.assert_array_equal(cold_ids, warm_ids)
        np.testing.assert_array_equal(cold_dist, warm_dist)


# -- the staged out-of-core fit -----------------------------------------------


class TestStagedOutOfCoreFit:
    def test_fit_bit_identical_with_raw_q(self, clip, small_images,
                                          tmp_path):
        config = UHSCMConfig(
            n_bits=8, sparse_topk=8,
            train=TrainConfig(batch_size=16, epochs=1),
        )
        data_key = {"name": "unit", "n": int(small_images.shape[0])}

        memory_model = UHSCM(config, clip=clip)
        memory_model.fit(small_images,
                         store=ArtifactStore(tmp_path / "mem"),
                         data_key=data_key)

        ooc_store = ArtifactStore(tmp_path / "ooc", mmap_threshold_bytes=0)
        ooc_model = UHSCM(replace(config, out_of_core=True), clip=clip)
        ooc_model.fit(small_images, store=ooc_store, data_key=data_key)

        q = ooc_model.similarity_.matrix
        assert isinstance(q, SparseTopKSimilarity) and q.memmapped
        assert any(path.suffix == ".raw"
                   for path in (tmp_path / "ooc/objects").iterdir())
        # Same fingerprints: residency policy never enters stage addresses.
        assert (memory_model.similarity_.fingerprint
                == ooc_model.similarity_.fingerprint)
        np.testing.assert_array_equal(
            memory_model.encode(small_images),
            ooc_model.encode(small_images),
        )

    def test_out_of_core_replays_in_memory_artifacts(self, clip,
                                                     small_images, tmp_path):
        config = UHSCMConfig(
            n_bits=8, sparse_topk=8,
            train=TrainConfig(batch_size=16, epochs=1),
        )
        data_key = {"name": "unit"}
        store = ArtifactStore(tmp_path / "c")
        UHSCM(config, clip=clip).fit(small_images, store=store,
                                     data_key=data_key)
        replay_store = ArtifactStore(tmp_path / "c", mmap_threshold_bytes=0)
        model = UHSCM(replace(config, out_of_core=True), clip=clip)
        model.fit(small_images, store=replay_store, data_key=data_key)
        assert replay_store.stats()["stages"]["train"]["hits"] >= 1


# -- CLI ----------------------------------------------------------------------


class TestCliOutOfCore:
    def test_make_store_threshold_wiring(self, tmp_path):
        from repro.cli import DEFAULT_MMAP_THRESHOLD, _make_store, \
            build_parser

        base = ["train", "--cache-dir", str(tmp_path / "c")]
        parser = build_parser()
        assert _make_store(parser.parse_args(base)) \
            .mmap_threshold_bytes is None
        assert _make_store(parser.parse_args(base + ["--out-of-core"])) \
            .mmap_threshold_bytes == DEFAULT_MMAP_THRESHOLD
        assert _make_store(parser.parse_args(
            base + ["--out-of-core", "--mmap-threshold-bytes", "123"]
        )).mmap_threshold_bytes == 123

    def test_cache_stats_reports_stage_disk(self, tmp_path, capsys, rng):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        store = ArtifactStore(cache_dir, mmap_threshold_bytes=0)
        store.put("a" * 64, {}, {"x": rng.normal(size=64)}, stage="build_q")
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "stage build_q" in out
        assert "0 evictions" in out and "1 on disk" in out

    def test_train_out_of_core_cli(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        code = main([
            "train", "--dataset", "cifar10", "--scale", "0.008",
            "--bits", "16", "--seed", "1", "--cache-dir", str(cache_dir),
            "--sparse-topk", "8", "--out-of-core",
            "--mmap-threshold-bytes", "0",
        ])
        assert code == 0
        assert "cache:" in capsys.readouterr().out
        assert any(path.suffix == ".raw"
                   for path in (cache_dir / "objects").iterdir())
