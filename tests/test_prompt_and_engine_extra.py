"""Last-mile coverage: retrieval report rendering, engine radius bounds,
SH/AGH numeric edge cases, and hypothesis checks on the keep-band algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.denoising import keep_mask
from repro.retrieval import HammingIndex
from repro.retrieval.engine import RetrievalReport
from repro.retrieval.metrics import PRCurve


def random_codes(n, k, seed=0):
    rng = np.random.default_rng(seed)
    return np.where(rng.random((n, k)) < 0.5, -1.0, 1.0)


class TestReportRendering:
    def test_str_contains_all_metrics(self):
        report = RetrievalReport(
            map=0.5,
            precision_at_n={10: 0.6},
            pr_curve=PRCurve(np.arange(3), np.ones(3), np.linspace(0, 1, 3)),
            n_bits=16,
        )
        text = str(report)
        assert "MAP=0.500" in text and "P@10=0.600" in text and "k=16" in text


class TestEngineRadiusBounds:
    def test_radius_zero_returns_exact_matches_only(self):
        db = np.array([[1.0, 1.0], [1.0, -1.0]])
        index = HammingIndex(2).add(db)
        hits = index.radius_search(np.array([[1.0, 1.0]]), radius=0)
        np.testing.assert_array_equal(hits[0], [0])

    def test_radius_k_returns_everything(self):
        db = random_codes(20, 8, seed=1)
        index = HammingIndex(8).add(db)
        hits = index.radius_search(random_codes(1, 8, seed=2), radius=8)
        assert hits[0].size == 20

    def test_negative_radius_rejected(self):
        index = HammingIndex(8).add(random_codes(5, 8))
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            index.radius_search(random_codes(1, 8), radius=-1)


class TestKeepBandAlgebra:
    @given(st.integers(2, 500), st.integers(2, 120))
    @settings(max_examples=60, deadline=None)
    def test_band_always_admits_uniform_frequency(self, n, m):
        """A perfectly uniform concept (f = n/m) must always be kept:
        0.5 n/m <= n/m <= 0.5 n whenever m >= 2."""
        freq = np.full(m, n / m)
        assert keep_mask(freq, n).all()

    @given(st.integers(4, 500), st.integers(2, 120))
    @settings(max_examples=60, deadline=None)
    def test_band_rejects_all_or_nothing(self, n, m):
        freq = np.zeros(m)
        freq[0] = n  # one concept wins everything, the rest never win
        mask = keep_mask(freq, n)
        assert not mask[0]
        assert not mask[1:].any()


class TestShallowNumericEdges:
    def test_sh_handles_near_constant_direction(self, cifar_tiny):
        """A PCA direction with ~zero range must not divide by zero."""
        from repro.baselines.sh import SpectralHashing

        def features_with_constant_column(images):
            base = cifar_tiny.world.vgg_features(images)
            out = base.copy()
            out[:, 0] = 3.14  # constant column -> zero variance direction
            return out

        m = SpectralHashing(8, features_with_constant_column, seed=0)
        m.fit(cifar_tiny.train_images)
        codes = m.encode(cifar_tiny.query_images[:5])
        assert np.isfinite(codes).all()

    def test_agh_more_anchors_than_points_clamps(self, cifar_tiny):
        from repro.baselines.agh import AGH

        m = AGH(4, cifar_tiny.world.vgg_features, seed=0, n_anchors=10_000)
        m.fit(cifar_tiny.train_images[:30])
        assert m._anchors.shape[0] == 30
        codes = m.encode(cifar_tiny.query_images[:3])
        assert codes.shape == (3, 4)
