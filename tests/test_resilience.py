"""Tests for the PR 7 resilience layer: deterministic fault injection,
retry policies, circuit breakers, store integrity/quarantine, degraded
sharded serving, and the service's overload/deadline/health surface."""

import numpy as np
import pytest

from repro.core.hashing_network import HashingNetwork
from repro.errors import (
    ArtifactCorruptionError,
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ShardUnavailableError,
    TransientError,
)
from repro.pipeline import ArtifactStore, content_digest
from repro.retrieval import HammingIndex
from repro.serving import EncodeBatcher, HashingService, ShardedIndex
from repro.utils import CircuitBreaker, FaultInjector, RetryPolicy
from repro.utils.faults import NULL_INJECTOR
from repro.utils.retry import CLOSED, HALF_OPEN, OPEN


def random_codes(n, k, seed=0):
    rng = np.random.default_rng(seed)
    return np.where(rng.random((n, k)) < 0.5, -1.0, 1.0)


def identity_network(bits=16, dim=8, rng=0):
    return HashingNetwork(bits, mode="feature", feature_extractor=lambda x: x,
                          feature_dim=dim, rng=rng)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TickingClock:
    """Advances by ``step`` on every read — time passes inside a query."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def _raise_boom(*args, **kwargs):
    """Stand-in shard method that fails inside the probe itself."""
    raise RuntimeError("shard blew up mid-probe")


# -- fault injector -----------------------------------------------------------


class TestFaultInjector:
    def test_disarmed_is_a_noop(self):
        inj = FaultInjector()
        inj.rule("p")  # bare rule: would fire every call if armed
        inj.check("p")
        assert inj.stats()["calls"] == {}

    def test_null_injector_is_shared_and_disarmed(self):
        assert NULL_INJECTOR.armed is False
        NULL_INJECTOR.check("anything", shard=3)

    def test_nth_fires_exactly_once(self):
        inj = FaultInjector().arm()
        inj.rule("p", nth=2)
        inj.check("p")
        with pytest.raises(TransientError):
            inj.check("p")
        for _ in range(5):
            inj.check("p")
        assert inj.injected["p"] == 1

    def test_bare_rule_fires_until_times_budget(self):
        inj = FaultInjector().arm()
        inj.rule("p", times=2)
        for _ in range(2):
            with pytest.raises(TransientError):
                inj.check("p")
        inj.check("p")

    def test_rate_schedule_is_deterministic(self):
        def schedule():
            inj = FaultInjector(seed=5).arm()
            inj.rule("p", rate=0.5)
            fired = []
            for _ in range(32):
                try:
                    inj.check("p")
                    fired.append(False)
                except TransientError:
                    fired.append(True)
            return fired

        first, second = schedule(), schedule()
        assert first == second
        assert any(first) and not all(first)

    def test_match_filters_on_context(self):
        inj = FaultInjector().arm()
        inj.rule("shard.search", match={"shard": 1})
        inj.check("shard.search", shard=0)
        with pytest.raises(TransientError):
            inj.check("shard.search", shard=1)

    def test_custom_exception_type(self):
        inj = FaultInjector().arm()
        inj.rule("p", exc=ArtifactCorruptionError)
        with pytest.raises(ArtifactCorruptionError):
            inj.check("p")

    def test_disarm_preserves_counters(self):
        inj = FaultInjector().arm()
        inj.rule("p", nth=1)
        with pytest.raises(TransientError):
            inj.check("p")
        inj.disarm()
        inj.check("p")  # no-op, not counted
        assert inj.stats()["injected"] == {"p": 1}
        assert inj.stats()["calls"] == {"p": 1}

    def test_rule_validation(self):
        inj = FaultInjector()
        with pytest.raises(ConfigurationError):
            inj.rule("")
        with pytest.raises(ConfigurationError):
            inj.rule("p", nth=1, rate=0.5)
        with pytest.raises(ConfigurationError):
            inj.rule("p", nth=0)
        with pytest.raises(ConfigurationError):
            inj.rule("p", rate=1.5)
        with pytest.raises(ConfigurationError):
            inj.rule("p", times=-1)


# -- retry policy -------------------------------------------------------------


class TestRetryPolicy:
    def test_retries_transient_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, sleep=sleeps.append, seed=1)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("flaky")
            return "ok"

        assert policy.call(flaky, "unit") == "ok"
        assert calls["n"] == 3 and len(sleeps) == 2
        assert policy.stats()["retries"] == 2
        assert policy.stats()["exhausted"] == 0

    def test_exhaustion_reraises_the_original(self):
        policy = RetryPolicy(max_attempts=2, sleep=lambda s: None)
        boom = TransientError("always")
        with pytest.raises(TransientError) as err:
            policy.call(lambda: (_ for _ in ()).throw(boom), "unit")
        assert err.value is boom
        assert policy.stats()["retries"] == 1
        assert policy.stats()["exhausted"] == 1

    def test_non_retryable_raises_immediately(self):
        policy = RetryPolicy(sleep=lambda s: None)
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(fatal, "unit")
        assert calls["n"] == 1

    def test_backoff_is_exponential_and_deterministic(self):
        a = RetryPolicy(base_delay_s=0.01, multiplier=2.0, jitter=0.1, seed=9)
        b = RetryPolicy(base_delay_s=0.01, multiplier=2.0, jitter=0.1, seed=9)
        da = [a.delay_s(attempt) for attempt in range(2, 6)]
        db = [b.delay_s(attempt) for attempt in range(2, 6)]
        assert da == db
        for i, delay in enumerate(da):  # delay_s is 2-based
            base = 0.01 * 2.0**i
            assert base * 0.9 <= delay <= base * 1.1
        assert all(x < y for x, y in zip(da, da[1:]))

    def test_delay_capped(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=10.0,
                             max_delay_s=2.0, jitter=0.0)
        assert policy.delay_s(5) == 2.0


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()  # the single probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # others blocked while probing
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_failed_probe_reopens_and_restarts_timer(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()
        assert breaker.stats()["openings"] == 2


# -- store integrity ----------------------------------------------------------


class TestStoreIntegrity:
    def _put_one(self, store, key="k" * 64):
        arrays = {"x": np.arange(12, dtype=np.float64).reshape(3, 4)}
        store.put(key, {"n": 3}, arrays, stage="unit")
        return key, arrays

    def test_content_digest_is_order_insensitive(self):
        a = np.arange(4.0)
        b = np.ones(2)
        assert (content_digest({"m": 1}, {"a": a, "b": b})
                == content_digest({"m": 1}, {"b": b, "a": a}))
        assert (content_digest({"m": 1}, {"a": a})
                != content_digest({"m": 2}, {"a": a}))

    def test_corrupt_npz_is_quarantined_not_deleted(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key, _ = self._put_one(store)
        path = store.cache_dir / "objects" / f"{key}.npz"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

        fresh = ArtifactStore(tmp_path / "cache")
        assert fresh.get(key, stage="unit") is None
        assert not path.exists()
        assert (fresh.quarantine_dir / f"{key}.npz").exists()
        stats = fresh.stats()
        assert stats["corruptions"] == 1 and stats["quarantined"] == 1
        assert stats["quarantine_entries"] == 1
        assert stats["stages"]["unit"]["corruptions"] == 1

    def test_digest_mismatch_without_structural_damage(self, tmp_path):
        # Surgical bit flips that keep the zip intact are exactly what the
        # sha256 digest exists for; force the mismatch path directly by
        # rewriting a member with valid-but-different content.
        store = ArtifactStore(tmp_path / "cache")
        key, arrays = self._put_one(store)
        path = store.cache_dir / "objects" / f"{key}.npz"
        with np.load(path, allow_pickle=False) as archive:
            payload = dict(archive.items())
        payload["x"] = payload["x"] + 1.0  # content no longer matches digest
        np.savez(path, **payload)
        fresh = ArtifactStore(tmp_path / "cache")
        assert fresh.get(key, stage="unit") is None
        assert fresh.stats()["corruptions"] == 1

    def test_quarantined_artifact_rebuilds_once(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key, arrays = self._put_one(store)
        path = store.cache_dir / "objects" / f"{key}.npz"
        path.write_bytes(b"not a zip at all")
        fresh = ArtifactStore(tmp_path / "cache")
        assert fresh.get(key, stage="unit") is None  # quarantined
        fresh.put(key, {"n": 3}, arrays, stage="unit")  # the rebuild
        again = ArtifactStore(tmp_path / "cache")
        artifact = again.get(key, stage="unit")
        assert artifact is not None
        np.testing.assert_array_equal(artifact.arrays["x"], arrays["x"])
        # The counters persist across store instances: the one historical
        # corruption remains on record, but the rebuild reads clean.
        assert again.stats()["corruptions"] == 1
        assert again.stats()["stages"]["unit"]["hits"] >= 1

    def test_transient_read_faults_absorbed_by_retries(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key, arrays = self._put_one(store)
        faults = FaultInjector().arm()
        faults.rule("store.read", nth=1)
        flaky = ArtifactStore(tmp_path / "cache", faults=faults,
                              retry=RetryPolicy(sleep=lambda s: None))
        artifact = flaky.get(key, stage="unit")
        assert artifact is not None
        np.testing.assert_array_equal(artifact.arrays["x"], arrays["x"])
        assert flaky.stats()["retries"] == 1
        assert flaky.stats()["read_failures"] == 0

    def test_exhausted_read_is_a_miss_that_leaves_the_file(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key, _ = self._put_one(store)
        faults = FaultInjector().arm()
        faults.rule("store.read")  # permanently failing read
        flaky = ArtifactStore(tmp_path / "cache", faults=faults,
                              retry=RetryPolicy(sleep=lambda s: None))
        assert flaky.get(key, stage="unit") is None
        assert flaky.stats()["read_failures"] == 1
        assert (store.cache_dir / "objects" / f"{key}.npz").exists()
        faults.disarm()
        assert flaky.get(key, stage="unit") is not None  # recovers in place

    def test_exhausted_write_degrades_to_memory_only(self, tmp_path):
        faults = FaultInjector().arm()
        faults.rule("store.write")
        store = ArtifactStore(tmp_path / "cache", faults=faults,
                              retry=RetryPolicy(sleep=lambda s: None))
        key, arrays = self._put_one(store)
        assert store.stats()["put_failures"] == 1
        # The artifact still serves from memory for this process ...
        artifact = store.get(key, stage="unit")
        assert artifact is not None
        np.testing.assert_array_equal(artifact.arrays["x"], arrays["x"])
        # ... but never reached disk.
        assert not (store.cache_dir / "objects" / f"{key}.npz").exists()

    def test_clear_empties_the_quarantine(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key, _ = self._put_one(store)
        path = store.cache_dir / "objects" / f"{key}.npz"
        path.write_bytes(b"garbage")
        fresh = ArtifactStore(tmp_path / "cache")
        fresh.get(key, stage="unit")
        assert fresh.stats()["quarantine_entries"] == 1
        fresh.clear()
        assert fresh.stats()["quarantine_entries"] == 0


# -- degraded sharded serving -------------------------------------------------


class TestShardedDegradation:
    def make_index(self, faults=None, clock=None, **kwargs):
        kwargs.setdefault("n_shards", 3)
        kwargs.setdefault("breaker_threshold", 2)
        kwargs.setdefault("breaker_reset_s", 10.0)
        index = ShardedIndex(
            16, faults=faults or NULL_INJECTOR,
            clock=clock or FakeClock(), **kwargs,
        )
        return index.add(random_codes(30, 16))

    def test_dead_shard_degrades_instead_of_failing(self):
        faults = FaultInjector().arm()
        faults.rule("shard.search", match={"shard": 1})
        index = self.make_index(faults=faults)
        queries = random_codes(4, 16, seed=2)
        ids, dist = index.search(queries, top_k=5)
        assert index.last_query_degraded
        assert ids.shape == dist.shape == (4, 5)
        assert not np.any(ids % 3 == 1)  # nothing from the dead shard
        # Survivors match a healthy index restricted to the alive rows.
        alive = np.flatnonzero(np.arange(30) % 3 != 1)
        reference = HammingIndex(16).add(random_codes(30, 16)[alive])
        r_pos, r_dist = reference.search(queries, top_k=5)
        np.testing.assert_array_equal(ids, alive[r_pos])
        np.testing.assert_array_equal(dist, r_dist)

    def test_padding_when_survivors_run_short(self):
        faults = FaultInjector().arm()
        faults.rule("shard.search", match={"shard": 0})
        index = ShardedIndex(16, n_shards=2, faults=faults, clock=FakeClock())
        index.add(random_codes(4, 16))  # 2 rows per shard
        ids, dist = index.search(random_codes(1, 16, seed=3), top_k=4)
        assert ids.shape == (1, 4)
        assert list(ids[0][2:]) == [-1, -1]  # padded tail
        assert all(d == 17 for d in dist[0][2:])  # n_bits + 1 sentinel

    def test_all_shards_down_raises_typed(self):
        faults = FaultInjector().arm()
        faults.rule("shard.search")
        index = self.make_index(faults=faults)
        with pytest.raises(ShardUnavailableError):
            index.search(random_codes(1, 16), top_k=3)

    def test_breaker_opens_then_recovers(self):
        clock = FakeClock()
        faults = FaultInjector().arm()
        faults.rule("shard.search", match={"shard": 2})
        index = self.make_index(faults=faults, clock=clock)
        queries = random_codes(2, 16, seed=4)
        for _ in range(3):
            index.search(queries, top_k=3)
        states = {c["shard"]: c["state"] for c in index.circuit_states()}
        assert states[2] == OPEN and states[0] == states[1] == CLOSED
        # Open circuit short-circuits: the dead shard is not even consulted.
        calls_before = faults.calls["shard.search"]
        index.search(queries, top_k=3)
        assert index.last_query_degraded
        assert faults.calls["shard.search"] == calls_before + 2  # 2 alive
        # Recovery: faults stop, the reset timeout passes, a probe closes it.
        faults.disarm()
        clock.advance(11.0)
        ids, dist = index.search(queries, top_k=3)
        assert not index.last_query_degraded and not index.degraded
        healthy = ShardedIndex(16, n_shards=3).add(random_codes(30, 16))
        h_ids, h_dist = healthy.search(queries, top_k=3)
        np.testing.assert_array_equal(ids, h_ids)
        np.testing.assert_array_equal(dist, h_dist)

    def test_degraded_queries_bypass_and_clear_the_cache(self):
        clock = FakeClock()
        faults = FaultInjector().arm()
        rule = faults.rule("shard.search", match={"shard": 1}, times=6)
        index = self.make_index(faults=faults, clock=clock, cache_size=8)
        queries = random_codes(2, 16, seed=5)
        degraded_ids, _ = index.search(queries, top_k=3)
        assert index.last_query_degraded
        # Enough failures to keep failing through the breaker threshold.
        while rule.fired < 6 and index.degraded:
            index.search(queries, top_k=3)
        faults.disarm()
        clock.advance(11.0)
        healthy_ids, _ = index.search(queries, top_k=3)
        # The degraded answer must not have been served back from cache.
        assert not index.last_query_degraded
        repeat_ids, _ = index.search(queries, top_k=3)
        np.testing.assert_array_equal(healthy_ids, repeat_ids)
        healthy = ShardedIndex(16, n_shards=3).add(random_codes(30, 16))
        np.testing.assert_array_equal(
            healthy_ids, healthy.search(queries, top_k=3)[0]
        )

    def test_radius_search_degrades_too(self):
        faults = FaultInjector().arm()
        faults.rule("shard.search", match={"shard": 0})
        index = self.make_index(faults=faults)
        hits = index.radius_search(random_codes(2, 16, seed=6), radius=16)
        assert index.last_query_degraded
        for row in hits:
            assert not np.any(row % 3 == 0)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_injected_fault_on_pooled_probe_trips_breaker(self, workers):
        # PR 8: fault schedules are consulted serially at admission, so an
        # injected shard.search fault behaves identically whether the
        # admitted probes then run inline or on the worker pool.
        faults = FaultInjector().arm()
        faults.rule("shard.search", match={"shard": 1})
        index = self.make_index(faults=faults, workers=workers)
        queries = random_codes(3, 16, seed=7)
        ids, dist = index.search(queries, top_k=5)
        assert index.last_query_degraded
        assert ids.shape == dist.shape == (3, 5)
        kept = ids[ids >= 0]
        assert not np.any(kept % 3 == 1)  # nothing from the faulted shard
        for row in ids:  # no duplicated survivor in any merged row
            alive = row[row >= 0]
            assert len(set(alive.tolist())) == alive.size
        index.search(queries, top_k=5)  # second strike hits threshold=2
        states = {c["shard"]: c["state"] for c in index.circuit_states()}
        assert states[1] == OPEN
        # Same fault schedule, serial pool: byte-identical degraded answer.
        serial_faults = FaultInjector().arm()
        serial_faults.rule("shard.search", match={"shard": 1})
        serial = self.make_index(faults=serial_faults, workers=1)
        np.testing.assert_array_equal(ids, serial.search(queries, top_k=5)[0])

    @pytest.mark.parametrize("workers", [1, 4])
    def test_exception_inside_pooled_probe_trips_breaker(self, workers):
        # A shard blowing up INSIDE a pooled probe (not at admission) must
        # surface through the future, trip that shard's breaker, and leave
        # the merged answer degraded-but-complete — never hang or duplicate.
        index = self.make_index(workers=workers)
        index.shards[1].search = _raise_boom  # instance attr shadows method
        queries = random_codes(3, 16, seed=8)
        ids, dist = index.search(queries, top_k=5)
        assert index.last_query_degraded
        assert ids.shape == (3, 5)
        kept = ids[ids >= 0]
        assert not np.any(kept % 3 == 1)
        for row in ids:
            alive = row[row >= 0]
            assert len(set(alive.tolist())) == alive.size
        index.search(queries, top_k=5)
        states = {c["shard"]: c["state"] for c in index.circuit_states()}
        assert states[1] == OPEN
        serial = self.make_index(workers=1)
        serial.shards[1].search = _raise_boom
        np.testing.assert_array_equal(ids, serial.search(queries, top_k=5)[0])


# -- batcher poison isolation -------------------------------------------------


class PoisonEncoder:
    """Encoder that fails on rows whose first feature is negative."""

    def __init__(self, bits=8):
        self.n_bits = bits
        self.inner = identity_network(bits, bits)

    def encode(self, matrix):
        if np.any(matrix[:, 0] < 0):
            raise ValueError("poison row")
        return self.inner.encode(matrix)


class TestBatcherFaults:
    def test_no_ticket_left_unresolved_on_flush_failure(self):
        # Regression for the silent-hang bug class: a failing batched
        # forward must resolve EVERY pending ticket, one way or the other.
        batcher = EncodeBatcher(PoisonEncoder(), max_batch=64,
                                max_delay_s=100.0)
        rows = np.ones((5, 8))
        rows[2, 0] = -1.0  # one poisoned row in the cohort
        tickets = [batcher.submit(row) for row in rows]
        batcher.flush()
        assert all(ticket.ready for ticket in tickets)
        assert len(batcher) == 0

    def test_poison_isolated_to_its_own_ticket(self):
        encoder = PoisonEncoder()
        batcher = EncodeBatcher(encoder, max_batch=64, max_delay_s=100.0)
        rows = np.ones((4, 8))
        rows[1, 0] = -1.0
        tickets = [batcher.submit(row) for row in rows]
        batcher.flush()
        assert tickets[1].failed
        with pytest.raises(TransientError) as err:
            tickets[1].result()
        assert isinstance(err.value.__cause__, ValueError)
        clean = encoder.inner.encode(np.ones((1, 8)))[0]
        for ticket in (tickets[0], tickets[2], tickets[3]):
            assert not ticket.failed
            np.testing.assert_array_equal(ticket.result(), clean)
        stats = batcher.stats()
        assert stats["flush_failures"] == 1
        assert stats["isolation_flushes"] == 1
        assert stats["poisoned"] == 1

    def test_repro_errors_pass_through_untouched(self):
        def encode(matrix):
            raise ShardUnavailableError("typed already")

        batcher = EncodeBatcher(encode, max_batch=4, max_delay_s=100.0)
        ticket = batcher.submit(np.ones(8))
        batcher.flush()
        with pytest.raises(ShardUnavailableError):
            ticket.result()

    def test_injected_encode_faults_are_typed(self):
        faults = FaultInjector().arm()
        faults.rule("encode.forward", nth=1)
        batcher = EncodeBatcher(identity_network(8, 8), max_batch=4,
                                max_delay_s=100.0, faults=faults)
        ticket = batcher.submit(np.ones(8))
        batcher.flush()
        with pytest.raises(TransientError):
            ticket.result()
        # The schedule fired once; the next submit encodes cleanly.
        assert batcher.submit(np.ones(8)).result().shape == (8,)

    def test_wrong_row_count_from_encoder_poisons_typed(self):
        def encode(matrix):
            return np.ones((matrix.shape[0] + 1, 8))

        batcher = EncodeBatcher(encode, max_batch=4, max_delay_s=100.0)
        ticket = batcher.submit(np.ones(8))
        with pytest.raises(ReproError):
            ticket.result()


# -- service overload / deadline / health -------------------------------------


class TestServiceResilience:
    def make_service(self, **kwargs):
        kwargs.setdefault("n_shards", 3)
        service = HashingService(identity_network(), **kwargs)
        service.load_database(np.random.default_rng(7).normal(size=(12, 8)))
        return service

    def test_overload_sheds_the_whole_request(self):
        service = self.make_service(max_pending=4)
        queries = np.random.default_rng(8).normal(size=(5, 8))
        with pytest.raises(OverloadedError):
            service.query(queries, top_k=2)
        assert service.stats()["shed"] == 5
        assert service.batcher.stats()["pending"] == 0  # nothing enqueued
        ids, dist = service.query(queries[:4], top_k=2)  # under the bound
        assert ids.shape == (4, 2)

    def test_max_pending_validation(self):
        with pytest.raises(ConfigurationError):
            HashingService(identity_network(), max_pending=0)
        with pytest.raises(ConfigurationError):
            HashingService(identity_network(), default_deadline_s=-1.0)

    def test_deadline_budget_raises_typed(self):
        service = self.make_service(clock=TickingClock(step=1.0),
                                    default_deadline_s=0.5)
        with pytest.raises(DeadlineExceededError):
            service.query(np.ones(8), top_k=2)
        assert service.stats()["deadline_exceeded"] == 1

    def test_explicit_deadline_overrides_default(self):
        service = self.make_service(clock=TickingClock(step=1.0),
                                    default_deadline_s=0.5)
        ids, _ = service.query(np.ones(8), top_k=2, deadline_s=1e9)
        assert ids.shape == (1, 2)

    def test_no_deadline_by_default(self):
        service = self.make_service(clock=TickingClock(step=1.0))
        ids, _ = service.query(np.ones(8), top_k=2)
        assert ids.shape == (1, 2)

    def test_degraded_results_map_missing_to_external_minus_one(self):
        faults = FaultInjector().arm()
        faults.rule("shard.search", match={"shard": 0})
        service = HashingService(identity_network(), n_shards=2,
                                 faults=faults)
        # External ids offset by 100 so internal 0 and external MISSING_ID
        # can never be confused.
        vectors = np.random.default_rng(9).normal(size=(4, 8))
        service.add(vectors, ids=np.arange(100, 104))
        ids, dist = service.query(np.ones(8), top_k=4)
        assert service.last_query_degraded
        assert ids.shape == (1, 4)
        assert set(ids[0][2:]) == {-1}  # padded, not aliased to row 100
        assert all(i in (101, 103) for i in ids[0][:2])  # shard-1 rows

    def test_health_report_shapes(self, tmp_path):
        faults = FaultInjector().arm()
        faults.rule("shard.search", match={"shard": 1})
        store = ArtifactStore(tmp_path / "cache")
        service = HashingService(
            identity_network(), n_shards=3, store=store, faults=faults,
            backend_options={"breaker_threshold": 1},
        )
        service.load_database(
            np.random.default_rng(10).normal(size=(9, 8)),
            key={"name": "health"},
        )
        assert service.health()["status"] == "ok"
        service.query(np.ones(8), top_k=2)
        report = service.health()
        assert report["status"] == "degraded" and report["degraded"]
        assert [c["shard"] for c in report["circuits"]] == [0, 1, 2]
        assert report["store"]["corruptions"] == 0
        assert report["store"]["quarantine_entries"] == 0
        assert report["batcher"]["poisoned"] == 0
        assert report["shed"] == 0 and report["deadline_exceeded"] == 0

    def test_faulted_service_recovers_bit_identical(self):
        clock = FakeClock()
        faults = FaultInjector().arm()
        faults.rule("shard.search", match={"shard": 1})
        service = HashingService(
            identity_network(), n_shards=3, faults=faults, clock=clock,
            backend_options={"breaker_threshold": 2, "breaker_reset_s": 5.0},
        )
        rng = np.random.default_rng(11)
        db = rng.normal(size=(15, 8))
        service.load_database(db)
        reference = HashingService(identity_network(), n_shards=3)
        reference.load_database(db)
        queries = rng.normal(size=(3, 8))
        want_ids, want_dist = reference.query(queries, top_k=4)
        service.query(queries, top_k=4)
        assert service.last_query_degraded
        faults.disarm()
        clock.advance(6.0)
        got_ids, got_dist = service.query(queries, top_k=4)
        assert not service.last_query_degraded
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_dist, want_dist)


# -- cache stats CLI ----------------------------------------------------------


class TestCacheStatsCLI:
    def test_cache_stats_prints_resilience_counters(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        key = "a" * 64
        store = ArtifactStore(cache_dir)
        store.put(key, {}, {"x": np.arange(8.0)}, stage="unit")
        (cache_dir / "objects" / f"{key}.npz").write_bytes(b"garbage")
        fresh = ArtifactStore(cache_dir)
        assert fresh.get(key, stage="unit") is None  # quarantines + persists
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 corruptions" in out and "1 quarantined" in out
        assert "0 retries" in out and "0 read failures" in out
        assert "stage unit" in out
