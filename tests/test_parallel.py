"""Tests for the shared worker-pool layer (``repro.utils.parallel``).

The pool's contract is what every parallel kernel's bit-identity rests
on: deterministic index-ordered collection, a serial fallback that is a
plain inline call, exception transparency between the two modes, and a
single ``workers`` knob resolved argument → ``$REPRO_WORKERS`` → 1.
The kernels themselves are covered where they live
(``test_utils_mathops``, ``test_backend``, ``test_resilience``, the
parallel-scale bench); this file pins the substrate.
"""

import threading

import numpy as np
import pytest

from repro.config import UHSCMConfig
from repro.errors import ConfigurationError
from repro.utils.parallel import (
    WORKERS_ENV,
    WorkerPool,
    as_pool,
    resolve_workers,
)


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "6")
        assert resolve_workers(None) == 6

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_blank_env_is_serial(self, monkeypatch):
        # CI sets REPRO_WORKERS='' on non-parallel matrix entries.
        monkeypatch.setenv(WORKERS_ENV, "  ")
        assert resolve_workers(None) == 1

    @pytest.mark.parametrize("value", [0, -2, 1])
    def test_subunit_counts_clamp_to_serial(self, value):
        assert resolve_workers(value) == 1

    def test_invalid_env_raises_configuration_error(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError, match=WORKERS_ENV):
            resolve_workers(None)


class TestSerialPool:
    def test_submit_runs_inline_on_calling_thread(self):
        pool = WorkerPool(1)
        assert pool.serial
        seen = []
        pool.submit(lambda: seen.append(threading.current_thread()))
        assert seen == [threading.main_thread()]

    def test_result_available_before_close(self):
        pool = WorkerPool(1)
        future = pool.submit(lambda: 41 + 1)
        assert future.result() == 42

    def test_exception_captured_and_reraised_at_result(self):
        pool = WorkerPool(1)

        def boom():
            raise ValueError("inline failure")

        future = pool.submit(boom)  # must NOT raise here
        with pytest.raises(ValueError, match="inline failure"):
            future.result()
        assert pool.stats()["completed"] == 1  # failures still count

    def test_counters(self):
        pool = WorkerPool(0)  # clamps to serial
        pool.map(str, range(5))
        assert pool.stats() == {"workers": 1, "serial": True, "submitted": 5,
                                "completed": 5, "rejected": 0}


class TestThreadedPool:
    def test_map_preserves_item_order(self):
        # Delay inversely with index so later items finish first; the
        # collected results must still come back in submission order.
        import time

        def slow_identity(i):
            time.sleep((4 - i) * 0.01)
            return i

        with WorkerPool(4) as pool:
            assert not pool.serial
            assert pool.map(slow_identity, range(5)) == list(range(5))

    def test_exception_propagates_in_item_order(self):
        def maybe_boom(i):
            if i == 2:
                raise RuntimeError("task 2 failed")
            return i

        with WorkerPool(4) as pool:
            with pytest.raises(RuntimeError, match="task 2 failed"):
                pool.map(maybe_boom, range(6))
            stats = pool.stats()
        assert stats["submitted"] == 6  # all dispatched before the raise
        assert stats["completed"] == 6

    def test_work_runs_off_the_calling_thread(self):
        with WorkerPool(2, name="probe") as pool:
            names = pool.map(
                lambda _: threading.current_thread().name, range(4)
            )
        assert all(name.startswith("probe-worker") for name in names)


class TestLifecycle:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_closed_pool_rejects_submissions(self, workers):
        pool = WorkerPool(workers)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            pool.submit(lambda: None)
        assert pool.stats()["rejected"] == 1

    def test_context_manager_closes(self):
        with WorkerPool(2) as pool:
            pool.submit(lambda: None).result()
        with pytest.raises(ConfigurationError):
            pool.submit(lambda: None)


class TestAsPool:
    def test_instance_passes_through_unowned(self):
        shared = WorkerPool(1)
        pool, owned = as_pool(shared)
        assert pool is shared and not owned
        shared.close()

    @pytest.mark.parametrize("workers", [None, 1, 3])
    def test_counts_build_owned_pools(self, workers):
        pool, owned = as_pool(workers, name="kernel")
        assert owned
        assert pool.workers == resolve_workers(workers)
        pool.close()


class TestConfigIntegration:
    def test_workers_field_validated(self):
        assert UHSCMConfig(workers=4).workers == 4
        assert UHSCMConfig().workers is None
        with pytest.raises(ConfigurationError, match="workers"):
            UHSCMConfig(workers=0)

    def test_workers_excluded_from_fingerprint(self):
        # Execution policy, not semantics: artifacts built at any worker
        # count are bit-identical, so they must share cache keys.
        serial = UHSCMConfig().fingerprint_payload()
        parallel = UHSCMConfig(workers=8).fingerprint_payload()
        assert serial == parallel
        assert "workers" not in parallel

    def test_trainer_prefetch_bit_identical(self):
        # End-to-end pin at unit-test scale (the scale bench re-checks at
        # size): pooled one-slot prefetch reproduces serial loss history.
        from repro.config import TrainConfig
        from repro.core.hashing_network import HashingNetwork
        from repro.core.trainer import UHSCMTrainer

        rng = np.random.default_rng(11)
        features = rng.normal(size=(96, 16))
        labels = rng.integers(0, 4, size=96)
        q = (labels[:, None] == labels[None, :]).astype(np.float64)

        def history(workers):
            config = UHSCMConfig(
                n_bits=16, workers=workers,
                train=TrainConfig(batch_size=32, epochs=2),
            )
            network = HashingNetwork(
                16, mode="feature", feature_extractor=lambda x: x,
                feature_dim=16, rng=0,
            )
            return UHSCMTrainer(network, config).fit(features, q).total

        assert history(1) == history(4)
