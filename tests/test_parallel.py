"""Tests for the shared worker-pool layer (``repro.utils.parallel``).

The pool's contract is what every parallel kernel's bit-identity rests
on: deterministic index-ordered collection, a serial fallback that is a
plain inline call, exception transparency across all three modes
(inline, thread, process), and two knobs resolved argument → env →
default (``workers`` via ``$REPRO_WORKERS``, ``pool_backend`` via
``$REPRO_POOL``).  The process backend additionally owes spawn-safe
determinism (same CSR bytes as serial), original-type exception
propagation across the pickle boundary, and leak-free shared-memory
cleanup.  The kernels themselves are covered where they live
(``test_utils_mathops``, ``test_backend``, ``test_resilience``, the
parallel-scale bench); this file pins the substrate.
"""

import os
import threading

import numpy as np
import pytest

from repro.config import UHSCMConfig
from repro.errors import ConfigurationError
from repro.utils.parallel import (
    POOL_BACKEND_ENV,
    WORKERS_ENV,
    WorkerPool,
    as_pool,
    pool_worker_probe,
    require_thread_backend,
    resolve_pool_backend,
    resolve_workers,
)


@pytest.fixture(autouse=True)
def _isolated_pool_env(monkeypatch):
    """Eight fake cores + clean pool env for every test.

    The CI tier-1 runner may be a 1- or 2-core box; without the
    ``cpu_count`` patch the new oversubscription clamp would silently
    turn every ``WorkerPool(4)`` below into the serial fallback and the
    pooled assertions would test nothing.  Tests that probe the clamp
    itself re-patch ``cpu_count`` to a smaller value.
    """
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(POOL_BACKEND_ENV, raising=False)


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "6")
        assert resolve_workers(None) == 6

    def test_default_is_serial(self):
        assert resolve_workers(None) == 1

    def test_blank_env_is_serial(self, monkeypatch):
        # CI sets REPRO_WORKERS='' on non-parallel matrix entries.
        monkeypatch.setenv(WORKERS_ENV, "  ")
        assert resolve_workers(None) == 1

    @pytest.mark.parametrize("value", [0, -2, 1])
    def test_subunit_counts_clamp_to_serial(self, value):
        assert resolve_workers(value) == 1

    def test_invalid_env_raises_configuration_error(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError, match=WORKERS_ENV):
            resolve_workers(None)

    def test_clamps_to_cpu_count_with_warning(self, monkeypatch, caplog):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with caplog.at_level("WARNING", logger="repro.parallel"):
            assert resolve_workers(16) == 2
        assert any("clamping" in record.message for record in caplog.records)

    def test_requested_count_survives_clamp_in_stats(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with WorkerPool(16) as pool:
            stats = pool.stats()
        assert stats["workers"] == 2
        assert stats["requested"] == 16


class TestResolvePoolBackend:
    def test_default_is_thread(self):
        assert resolve_pool_backend(None) == "thread"

    def test_blank_env_is_thread(self, monkeypatch):
        monkeypatch.setenv(POOL_BACKEND_ENV, "  ")
        assert resolve_pool_backend(None) == "thread"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(POOL_BACKEND_ENV, "process")
        assert resolve_pool_backend(None) == "process"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(POOL_BACKEND_ENV, "process")
        assert resolve_pool_backend("thread") == "thread"

    @pytest.mark.parametrize("bad", ["fork", "THREAD", "procs"])
    def test_invalid_argument_raises(self, bad):
        with pytest.raises(ConfigurationError, match="pool backend"):
            resolve_pool_backend(bad)

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(POOL_BACKEND_ENV, "fork")
        with pytest.raises(ConfigurationError, match="pool backend"):
            resolve_pool_backend(None)


class TestRequireThreadBackend:
    def test_none_resolves_thread_without_consulting_env(self, monkeypatch):
        # An environment-wide process default must reach only the
        # process-safe Q-build kernels, never the thread-only sites.
        monkeypatch.setenv(POOL_BACKEND_ENV, "process")
        assert require_thread_backend(None, "test site") == "thread"

    def test_explicit_thread_passes(self):
        assert require_thread_backend("thread", "test site") == "thread"

    def test_explicit_process_raises_with_site_name(self):
        with pytest.raises(ConfigurationError, match="shard fan-out site"):
            require_thread_backend("process", "shard fan-out site")

    def test_sharded_index_rejects_process(self):
        from repro.retrieval.sharded import ShardedIndex

        with pytest.raises(ConfigurationError, match="thread-only"):
            ShardedIndex(16, pool_backend="process")

    def test_hashing_service_rejects_process(self):
        from repro.serving.service import HashingService

        with pytest.raises(ConfigurationError, match="thread-only"):
            HashingService(lambda x: x, n_bits=16, pool_backend="process")


class TestSerialPool:
    def test_submit_runs_inline_on_calling_thread(self):
        pool = WorkerPool(1)
        assert pool.serial
        seen = []
        pool.submit(lambda: seen.append(threading.current_thread()))
        assert seen == [threading.main_thread()]

    def test_result_available_before_close(self):
        pool = WorkerPool(1)
        future = pool.submit(lambda: 41 + 1)
        assert future.result() == 42

    def test_exception_captured_and_reraised_at_result(self):
        pool = WorkerPool(1)

        def boom():
            raise ValueError("inline failure")

        future = pool.submit(boom)  # must NOT raise here
        with pytest.raises(ValueError, match="inline failure"):
            future.result()
        assert pool.stats()["completed"] == 1  # failures still count

    def test_counters(self):
        pool = WorkerPool(0)  # clamps to serial
        pool.map(str, range(5))
        assert pool.stats() == {
            "backend": "thread", "workers": 1, "requested": 1,
            "serial": True, "submitted": 5, "completed": 5, "rejected": 0,
            "shm_published": 0, "shm_released": 0, "shm_active": 0,
        }


class TestThreadedPool:
    def test_map_preserves_item_order(self):
        # Delay inversely with index so later items finish first; the
        # collected results must still come back in submission order.
        import time

        def slow_identity(i):
            time.sleep((4 - i) * 0.01)
            return i

        with WorkerPool(4) as pool:
            assert not pool.serial
            assert pool.map(slow_identity, range(5)) == list(range(5))

    def test_exception_propagates_in_item_order(self):
        def maybe_boom(i):
            if i == 2:
                raise RuntimeError("task 2 failed")
            return i

        with WorkerPool(4) as pool:
            with pytest.raises(RuntimeError, match="task 2 failed"):
                pool.map(maybe_boom, range(6))
            stats = pool.stats()
        assert stats["submitted"] == 6  # all dispatched before the raise
        assert stats["completed"] == 6

    def test_work_runs_off_the_calling_thread(self):
        with WorkerPool(2, name="probe") as pool:
            names = pool.map(
                lambda _: threading.current_thread().name, range(4)
            )
        assert all(name.startswith("probe-worker") for name in names)


class TestProcessPool:
    """The spawn-backed pool: real child processes, pickled tasks."""

    def test_work_runs_in_child_processes_in_order(self):
        with WorkerPool(2, backend="process") as pool:
            assert not pool.serial
            assert pool.stats()["backend"] == "process"
            probes = pool.map(pool_worker_probe, range(4))
        pids = {probe["pid"] for probe in probes}
        assert os.getpid() not in pids

    def test_exception_crosses_pickle_boundary_with_original_type(self):
        with WorkerPool(2, backend="process") as pool:
            with pytest.raises(TypeError):
                pool.map(len, [3, 4])  # len(3) raises TypeError in a child

    def test_blocked_topk_bit_identical_across_backends(self):
        # Satellite: spawn-safe determinism.  Fixed tile geometry means
        # identical BLAS summation order at any worker count on any
        # backend, so the CSR bytes must match the serial oracle exactly.
        from repro.utils.mathops import blocked_topk_cosine

        rng = np.random.default_rng(7)
        features = rng.normal(size=(300, 24))
        serial = blocked_topk_cosine(features, 16, block_rows=64)
        for workers in (1, 4):
            for backend in ("thread", "process"):
                got = blocked_topk_cosine(
                    features, 16, block_rows=64,
                    workers=workers, pool_backend=backend,
                )
                for oracle, candidate in zip(serial, got):
                    assert oracle.tobytes() == candidate.tobytes(), (
                        workers, backend,
                    )

    def test_streaming_topk_bit_identical_under_process_pool(self, tmp_path):
        # The out-of-core build hands workers the scratch memmap by path
        # instead of a shared-memory segment; same bytes either way.
        from repro.utils.mathops import blocked_topk_cosine, streaming_topk_cosine

        rng = np.random.default_rng(7)
        features = rng.normal(size=(300, 24))
        serial = blocked_topk_cosine(features, 16, block_rows=64)

        def create(name, shape, dtype):
            return np.lib.format.open_memmap(
                tmp_path / f"{name}.npy", mode="w+", dtype=dtype, shape=shape
            )

        with WorkerPool(4, backend="process") as pool:
            streamed = streaming_topk_cosine(
                features, 16, create, block_rows=64, workers=pool
            )
            stats = pool.stats()
        assert stats["submitted"] == stats["completed"] > 0
        for oracle, candidate in zip(serial, streamed):
            assert oracle.tobytes() == np.asarray(candidate).tobytes()

    def test_shared_memory_released_by_kernel(self):
        # The heap-build path publishes the operand once and must release
        # it in its finally — balanced counters, nothing left in /dev/shm.
        from repro.utils.mathops import blocked_topk_cosine

        shm_dir = "/dev/shm"
        before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else set()
        rng = np.random.default_rng(7)
        features = rng.normal(size=(300, 24))
        with WorkerPool(2, backend="process") as pool:
            blocked_topk_cosine(features, 16, block_rows=64, workers=pool)
            stats = pool.stats()
        assert stats["shm_published"] == 1
        assert stats["shm_released"] == 1
        assert stats["shm_active"] == 0
        after = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else set()
        assert not (after - before)

    def test_close_unlinks_segments_a_failed_build_left_behind(self):
        # Abnormal-exit backstop: publish without release (as a kernel
        # that raised mid-build would), then close; the pool must unlink.
        shm_dir = "/dev/shm"
        before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else set()
        pool = WorkerPool(2, backend="process")
        handle = pool.publish(np.arange(32, dtype=np.float64))
        assert pool.stats()["shm_active"] == 1
        pool.close()
        assert handle.released
        assert pool.stats()["shm_released"] == 1
        after = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else set()
        assert not (after - before)

    def test_closed_pool_rejects_publish(self):
        pool = WorkerPool(2, backend="process")
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.publish(np.arange(4, dtype=np.float64))


class TestLifecycle:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_closed_pool_rejects_submissions(self, workers):
        pool = WorkerPool(workers)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            pool.submit(lambda: None)
        assert pool.stats()["rejected"] == 1

    def test_context_manager_closes(self):
        with WorkerPool(2) as pool:
            pool.submit(lambda: None).result()
        with pytest.raises(ConfigurationError):
            pool.submit(lambda: None)


class TestAsPool:
    def test_instance_passes_through_unowned(self):
        shared = WorkerPool(1)
        pool, owned = as_pool(shared)
        assert pool is shared and not owned
        shared.close()

    def test_instance_keeps_its_own_backend(self):
        shared = WorkerPool(1, backend="process")
        pool, _ = as_pool(shared, backend="thread")
        assert pool.backend == "process"  # backend applies only when built
        shared.close()

    @pytest.mark.parametrize("workers", [None, 1, 3])
    def test_counts_build_owned_pools(self, workers):
        pool, owned = as_pool(workers, name="kernel")
        assert owned
        assert pool.workers == resolve_workers(workers)
        pool.close()


class TestConfigIntegration:
    def test_workers_field_validated(self):
        assert UHSCMConfig(workers=4).workers == 4
        assert UHSCMConfig().workers is None
        with pytest.raises(ConfigurationError, match="workers"):
            UHSCMConfig(workers=0)

    def test_pool_backend_field_validated(self):
        assert UHSCMConfig(pool_backend="process").pool_backend == "process"
        assert UHSCMConfig(pool_backend="thread").pool_backend == "thread"
        assert UHSCMConfig().pool_backend is None
        with pytest.raises(ConfigurationError, match="pool_backend"):
            UHSCMConfig(pool_backend="fork")

    def test_execution_policy_excluded_from_fingerprint(self):
        # Execution policy, not semantics: artifacts built at any worker
        # count on any backend are bit-identical, so they must share
        # cache keys.
        serial = UHSCMConfig().fingerprint_payload()
        pooled = UHSCMConfig(workers=8,
                             pool_backend="process").fingerprint_payload()
        assert serial == pooled
        assert "workers" not in pooled
        assert "pool_backend" not in pooled

    def test_trainer_prefetch_bit_identical(self):
        # End-to-end pin at unit-test scale (the scale bench re-checks at
        # size): pooled one-slot prefetch reproduces serial loss history.
        from repro.config import TrainConfig
        from repro.core.hashing_network import HashingNetwork
        from repro.core.trainer import UHSCMTrainer

        rng = np.random.default_rng(11)
        features = rng.normal(size=(96, 16))
        labels = rng.integers(0, 4, size=96)
        q = (labels[:, None] == labels[None, :]).astype(np.float64)

        def history(workers):
            config = UHSCMConfig(
                n_bits=16, workers=workers,
                train=TrainConfig(batch_size=32, epochs=2),
            )
            network = HashingNetwork(
                16, mode="feature", feature_extractor=lambda x: x,
                feature_dim=16, rng=0,
            )
            return UHSCMTrainer(network, config).fit(features, q).total

        assert history(1) == history(4)

    def test_trainer_prefetch_stays_thread_backed(self):
        # config.pool_backend reaches only the Q-build kernels; a process
        # default must not break the (closure-heavy) training prefetch.
        from repro.config import TrainConfig
        from repro.core.hashing_network import HashingNetwork
        from repro.core.trainer import UHSCMTrainer

        rng = np.random.default_rng(11)
        features = rng.normal(size=(64, 16))
        labels = rng.integers(0, 4, size=64)
        q = (labels[:, None] == labels[None, :]).astype(np.float64)
        config = UHSCMConfig(
            n_bits=16, workers=2, pool_backend="process",
            train=TrainConfig(batch_size=32, epochs=1),
        )
        network = HashingNetwork(
            16, mode="feature", feature_extractor=lambda x: x,
            feature_dim=16, rng=0,
        )
        history = UHSCMTrainer(network, config).fit(features, q)
        assert len(history.total) == 1
