"""Focused tests for the reporting containers' less-travelled paths."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.experiments.reporting import (
    CurveFamily,
    MapTable,
    SweepResult,
    TimingTable,
)


class TestMapTableAccessors:
    def test_record_orders_axes_by_first_seen(self):
        t = MapTable(title="x")
        t.record("B", "d2", 64, 0.2)
        t.record("A", "d1", 32, 0.1)
        assert t.methods == ["B", "A"]
        assert t.datasets == ["d2", "d1"]
        assert t.bit_lengths == [64, 32]

    def test_value_roundtrip(self):
        t = MapTable(title="x")
        t.record("m", "d", 32, 0.777)
        assert t.value("m", "d", 32) == pytest.approx(0.777)

    def test_missing_value_raises(self):
        t = MapTable(title="x")
        t.record("m", "d", 32, 0.5)
        with pytest.raises(KeyError):
            t.value("m", "d", 64)


class TestSweepResult:
    def test_best_value_argmax(self):
        s = SweepResult(parameter="alpha", dataset="cifar10")
        for v, m in [(0.1, 0.5), (0.2, 0.9), (0.3, 0.7)]:
            s.record(v, m)
        assert s.best_value == pytest.approx(0.2)

    def test_render_contains_all_points(self):
        s = SweepResult(parameter="beta", dataset="d")
        s.record(0.001, 0.8)
        out = s.render()
        assert "beta" in out and "0.800" in out


class TestTimingTable:
    def test_render_sorted_datasets(self):
        t = TimingTable(title="Timing")
        t.record("m1", "zeta", 1.0)
        t.record("m1", "alpha", 2.0)
        out = t.render()
        assert out.index("alpha") < out.index("zeta")


class TestCurveFamilyValidation:
    def test_arrays_coerced_to_float(self):
        f = CurveFamily(title="t", x_label="x", y_label="y")
        f.record("m", [1, 2, 3], [0.1, 0.2, 0.3])
        assert f.x_values["m"].dtype == np.float64

    def test_methods_property(self):
        f = CurveFamily(title="t", x_label="x", y_label="y")
        f.record("a", [1], [1.0])
        f.record("b", [1], [0.5])
        assert f.methods == ["a", "b"]
