"""Tests for the semantic world: determinism, geometry, backbones."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.vlp.world import SemanticWorld, WorldConfig


class TestWorldConfig:
    def test_defaults_valid(self):
        WorldConfig()

    def test_render_needs_enough_pixels(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(latent_dim=1000, image_size=4)

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(style_noise=-0.1)


class TestDeterminism:
    def test_directions_stable_across_instances(self):
        a = SemanticWorld(WorldConfig(seed=5)).concept_direction("cat")
        b = SemanticWorld(WorldConfig(seed=5)).concept_direction("cat")
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SemanticWorld(WorldConfig(seed=5)).concept_direction("cat")
        b = SemanticWorld(WorldConfig(seed=6)).concept_direction("cat")
        assert not np.allclose(a, b)

    def test_alias_shares_direction(self, world):
        np.testing.assert_array_equal(
            world.concept_direction("birds"), world.concept_direction("bird")
        )


class TestGeometry:
    def test_directions_unit_norm(self, world):
        for name in ("cat", "animal", "sky", "unheard-of-concept"):
            assert np.linalg.norm(world.concept_direction(name)) == (
                pytest.approx(1.0)
            )

    def test_hypernym_overlaps_members(self, world):
        animal = world.concept_direction("animal")
        cat = world.concept_direction("cat")
        sky = world.concept_direction("sky")
        assert animal @ cat > 0.3
        assert abs(animal @ sky) < 0.3

    def test_members_share_core(self, world):
        cat = world.concept_direction("cat")
        dog = world.concept_direction("dog")
        assert cat @ dog > 0.1  # both blend the 'animal' core

    def test_unrelated_nearly_orthogonal(self, world):
        a = world.concept_direction("bridge")
        b = world.concept_direction("tattoo")
        assert abs(a @ b) < 0.4

    def test_concept_matrix_shape(self, world):
        mat = world.concept_matrix(["cat", "dog", "sky"])
        assert mat.shape == (3, world.config.latent_dim)


class TestImagePipeline:
    def test_latent_contains_concept(self, world, rng):
        z = world.image_latent(["cat"], rng=rng)
        assert z @ world.concept_direction("cat") > 0.5

    def test_weights_shift_latent(self, world):
        z = world.image_latent(["cat", "sky"], np.array([5.0, 0.1]), rng=1)
        cat_score = z @ world.concept_direction("cat")
        sky_score = z @ world.concept_direction("sky")
        assert cat_score > sky_score

    def test_render_encode_roundtrip(self, world, rng):
        latents = np.stack([world.image_latent(["dog"], rng=rng) for _ in range(4)])
        images = world.render(latents, rng=rng)
        recovered = world.backbone_features(images)
        # Orthonormal render: recovery error only from pixel noise.
        err = np.linalg.norm(recovered - latents, axis=1)
        assert err.max() < 0.5

    def test_render_shape(self, world, rng):
        img = world.render(world.image_latent(["cat"], rng=rng), rng=rng)
        c, s = world.config.channels, world.config.image_size
        assert img.shape == (1, c, s, s)

    def test_encode_rejects_bad_shape(self, world, rng):
        with pytest.raises(ConfigurationError):
            world.encode_pixels(rng.normal(size=(1, 3, 4, 4)))

    def test_weight_shape_mismatch(self, world):
        with pytest.raises(ConfigurationError):
            world.image_latent(["cat"], np.array([1.0, 2.0]))


class TestBackboneAsymmetry:
    """The CLIP-vs-VGG asymmetry the reproduction is built on."""

    def _latents(self, world, concept, n, rng):
        return np.stack([world.image_latent([concept], rng=rng) for _ in range(n)])

    def test_clip_suppresses_style_more_than_vgg(self, world, rng):
        lat = self._latents(world, "cat", 30, rng)
        images = world.render(lat, rng=rng)
        clip_feats = world.encode_pixels(images)
        # Style projection should be smaller (relatively) in CLIP features.
        style = world._style_basis
        raw = world.backbone_features(images)
        clip_style_ratio = np.linalg.norm(clip_feats @ style) / np.linalg.norm(
            clip_feats
        )
        raw_style_ratio = np.linalg.norm(raw @ style) / np.linalg.norm(raw)
        assert clip_style_ratio < raw_style_ratio

    def test_vgg_separability_worse_than_clip(self, world, rng):
        cats = world.render(self._latents(world, "cat", 25, rng), rng=rng)
        trucks = world.render(self._latents(world, "truck", 25, rng), rng=rng)

        def separation(feat_fn):
            a, b = feat_fn(cats), feat_fn(trucks)
            na = a / np.linalg.norm(a, axis=1, keepdims=True)
            nb = b / np.linalg.norm(b, axis=1, keepdims=True)
            within = (na @ na.T).mean()
            between = (na @ nb.T).mean()
            return within - between

        assert separation(world.encode_pixels) > separation(world.vgg_features)

    def test_augment_preserves_semantics(self, world, rng):
        lat = self._latents(world, "cat", 10, rng)
        images = world.render(lat, rng=rng)
        feats = world.backbone_features(images)
        aug = world.augment_features(feats, rng=rng)
        cat_dir = world.concept_direction("cat")
        np.testing.assert_allclose(
            aug @ cat_dir, feats @ cat_dir, atol=0.5
        )
        assert not np.allclose(aug, feats)
