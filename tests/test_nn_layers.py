"""Layer tests: forward shapes/semantics + numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from tests.conftest import numerical_gradient


def layer_input_grad_check(layer, x, atol=1e-6):
    """Check backward's input gradient against central differences."""
    def scalar(xx):
        return float(layer(xx).sum())

    layer(x)
    grad = layer.backward(np.ones_like(np.atleast_1d(layer(x))))
    num = numerical_gradient(scalar, x.copy())
    np.testing.assert_allclose(grad, num, atol=atol)


def layer_param_grad_check(layer, x, atol=1e-6):
    """Check accumulated parameter gradients against central differences."""
    layer.zero_grad()
    out = layer(x)
    layer.backward(np.ones_like(out))
    for p in layer.parameters():
        def scalar(_unused, p=p):
            return float(layer(x).sum())

        num = numerical_gradient(lambda _: scalar(None), p.data)
        np.testing.assert_allclose(p.grad, num, atol=atol,
                                   err_msg=f"param {p.name}")


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 3, rng=0)
        out = layer(rng.normal(size=(4, 5)))
        assert out.shape == (4, 3)

    def test_input_gradient(self, rng):
        layer_input_grad_check(Linear(4, 3, rng=0), rng.normal(size=(3, 4)))

    def test_param_gradient(self, rng):
        layer_param_grad_check(Linear(3, 2, rng=0), rng.normal(size=(2, 3)))

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            Linear(3, 2, rng=0)(rng.normal(size=(2, 4)))

    def test_bad_init_scheme(self):
        with pytest.raises(ValueError):
            Linear(3, 2, init_scheme="nope")


class TestConv2d:
    def test_forward_shape(self, rng):
        layer = Conv2d(2, 4, kernel_size=3, padding=1, rng=0)
        out = layer(rng.normal(size=(2, 2, 6, 6)))
        assert out.shape == (2, 4, 6, 6)

    def test_stride(self, rng):
        layer = Conv2d(1, 1, kernel_size=2, stride=2, rng=0)
        out = layer(rng.normal(size=(1, 1, 6, 6)))
        assert out.shape == (1, 1, 3, 3)

    def test_input_gradient(self, rng):
        layer_input_grad_check(
            Conv2d(2, 3, kernel_size=3, padding=1, rng=0),
            rng.normal(size=(2, 2, 4, 4)),
            atol=1e-5,
        )

    def test_param_gradient(self, rng):
        layer_param_grad_check(
            Conv2d(1, 2, kernel_size=2, rng=0),
            rng.normal(size=(2, 1, 3, 3)),
            atol=1e-5,
        )

    def test_matches_manual_convolution(self, rng):
        layer = Conv2d(1, 1, kernel_size=2, bias=False, rng=0)
        x = rng.normal(size=(1, 1, 3, 3))
        out = layer(x)
        w = layer.weight.data[0, 0]
        expected = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                expected[i, j] = (x[0, 0, i : i + 2, j : j + 2] * w).sum()
        np.testing.assert_allclose(out[0, 0], expected)


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient_routes_to_max(self, rng):
        layer = MaxPool2d(2)
        x = rng.normal(size=(2, 2, 4, 4))
        layer_input_grad_check(layer, x, atol=1e-6)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(3, 2, 4, 4))
        out = GlobalAvgPool2d()(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))

    def test_global_avg_pool_gradient(self, rng):
        layer_input_grad_check(GlobalAvgPool2d(), rng.normal(size=(2, 2, 3, 3)))


class TestActivations:
    @pytest.mark.parametrize("cls", [ReLU, LeakyReLU, Tanh, Sigmoid])
    def test_gradient(self, cls, rng):
        # Offset away from ReLU's kink at zero for clean finite differences.
        x = rng.normal(size=(3, 4)) + 0.05 * np.sign(rng.normal(size=(3, 4)))
        layer_input_grad_check(cls(), x, atol=1e-5)

    def test_relu_clamps(self):
        out = ReLU()(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_tanh_range(self, rng):
        out = Tanh()(rng.normal(size=(5, 5)) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_sigmoid_stable_extremes(self):
        out = Sigmoid()(np.array([[-1e3, 1e3]]))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)

    def test_leaky_slope(self):
        out = LeakyReLU(0.1)(np.array([[-10.0]]))
        np.testing.assert_allclose(out, [[-1.0]])


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        layer = BatchNorm1d(4)
        out = layer(rng.normal(loc=5.0, scale=3.0, size=(64, 4)))
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm1d(3)
        for _ in range(50):
            layer(rng.normal(loc=2.0, size=(32, 3)))
        layer.train(False)
        out = layer(np.full((4, 3), 2.0))
        assert np.abs(out).max() < 0.5

    def test_gradient(self, rng):
        layer = BatchNorm1d(3)
        x = rng.normal(size=(6, 3))

        def scalar(xx):
            return float((layer(xx) ** 2).sum())

        out = layer(x)
        layer.backward(2 * out)
        grad = layer.backward  # computed above; recompute explicitly:
        layer.zero_grad()
        out = layer(x)
        g = layer.backward(2 * out)
        num = numerical_gradient(scalar, x.copy())
        np.testing.assert_allclose(g, num, atol=1e-5)

    def test_2d_shape(self, rng):
        layer = BatchNorm2d(3)
        out = layer(rng.normal(size=(2, 3, 4, 4)))
        assert out.shape == (2, 3, 4, 4)

    def test_no_weight_decay_on_affine(self):
        layer = BatchNorm1d(2)
        assert all(not p.weight_decay_enabled for p in layer.parameters())


class TestDropout:
    def test_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=0)
        layer.train(False)
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(layer(x), x)

    def test_training_zeroes_and_rescales(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((1000, 10))
        out = layer(x)
        assert (out == 0).any()
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestContainers:
    def test_sequential_forward_backward(self, rng):
        net = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        x = rng.normal(size=(3, 4))
        layer_input_grad_check(net, x, atol=1e-5)

    def test_flatten_roundtrip(self, rng):
        f = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = f(x)
        assert out.shape == (2, 48)
        back = f.backward(out)
        assert back.shape == x.shape

    def test_indexing(self):
        net = Sequential(ReLU(), Tanh())
        assert len(net) == 2
        assert isinstance(net[1], Tanh)

    def test_state_dict_roundtrip(self, rng):
        net = Sequential(Linear(3, 4, rng=0), Linear(4, 2, rng=1))
        x = rng.normal(size=(2, 3))
        before = net(x)
        state = net.state_dict()
        net2 = Sequential(Linear(3, 4, rng=5), Linear(4, 2, rng=6))
        net2.load_state_dict(state)
        np.testing.assert_allclose(net2(x), before)
