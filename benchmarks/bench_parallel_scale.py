"""Parallel-scale benchmark: the shared worker-pool layer end to end.

Acceptance gates for the PR 8 parallel kernels and the PR 9 process
backend:

1. **Bit-identity everywhere** (asserted on any machine): the parallel
   Q build returns byte-identical CSR ``data``/``indices``/``indptr`` to
   the serial oracle (heap and streaming/out-of-core builders, thread
   *and* process backends), the concurrent shard fan-out merges
   byte-identical ``(ids, distances)`` top-k and radius results, and
   training with the one-slot prefetch reproduces the serial loss
   history exactly.
2. **Serial fallback + clean shutdown** (asserted on any machine):
   ``workers=1`` creates no threads — submissions run inline on the
   calling thread and the pool reports ``serial=True`` with matching
   submitted/completed counters.  Every pool closes with
   ``submitted == completed`` and ``shm_published == shm_released``
   (no shared-memory segment outlives its pool).
3. **In-worker BLAS pinning** (asserted whenever the process pool runs
   real children): a probe mapped over the spawned workers must see the
   single-thread BLAS environment the bench pinned before numpy loaded.
4. **Wall-clock** (gated only on machines with >= 4 cores, like the CI
   runners): the thread-parallel Q build and the concurrent shard
   fan-out must each clear ``REQUIRED_SPEEDUP`` (1.7x) over their
   serial oracles at 4 workers, and the process-backed Q build — which
   moves the GIL-bound tile remainder (clip, argpartition, sort) into
   spawned workers — must clear ``REQUIRED_PROCESS_SPEEDUP`` (2.5x),
   breaking the ~2x thread ceiling.

The combined report lands in ``results/BENCH_parallel.txt`` with a
machine-readable mirror in ``results/BENCH_parallel.json``.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread *before* numpy loads (a no-op if numpy is already
# imported, e.g. in a full-suite run): the gates measure the worker pool's
# thread-level parallelism, which BLAS's own threading would confound.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS",
             "VECLIB_MAXIMUM_THREADS", "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np  # noqa: E402

from repro.config import TrainConfig, UHSCMConfig  # noqa: E402
from repro.core.hashing_network import HashingNetwork  # noqa: E402
from repro.core.trainer import UHSCMTrainer  # noqa: E402
from repro.retrieval.sharded import ShardedIndex  # noqa: E402
from repro.utils.mathops import (  # noqa: E402
    blocked_topk_cosine,
    streaming_topk_cosine,
)
from repro.utils.parallel import (  # noqa: E402
    BLAS_ENV_VARS,
    WorkerPool,
    pool_worker_probe,
    resolve_workers,
)

from conftest import save_result, timed  # noqa: E402

#: Worker count the parallel legs run at (CI pins $REPRO_WORKERS to this).
WORKERS = 4
REQUIRED_SPEEDUP = 1.7
#: The process backend must beat the thread ceiling, not just serial.
REQUIRED_PROCESS_SPEEDUP = 2.5

# Q-build leg: big enough that per-tile GEMM dominates dispatch overhead.
Q_ROWS = 6_000
Q_DIM = 384
Q_TOPK = 128
Q_BLOCK_ROWS = 256

# Fan-out leg: a large sharded corpus probed by a query batch.
DB_ROWS = 160_000
N_BITS = 64
N_SHARDS = 4
N_QUERIES = 64
TOP_K = 10

# Training leg: identity of the loss history under the one-slot prefetch.
TRAIN_ROWS = 256
TRAIN_DIM = 64
TRAIN_BITS = 32
TRAIN_EPOCHS = 3


def _gate_active() -> bool:
    return (os.cpu_count() or 1) >= 4


def _q_build(features: np.ndarray, workers) -> tuple[np.ndarray, ...]:
    return blocked_topk_cosine(
        features, Q_TOPK, block_rows=Q_BLOCK_ROWS, workers=workers
    )


def _train_history(features, q, workers: int) -> list[float]:
    config = UHSCMConfig(
        n_bits=TRAIN_BITS, workers=workers,
        train=TrainConfig(batch_size=64, epochs=TRAIN_EPOCHS),
    )
    network = HashingNetwork(
        TRAIN_BITS, mode="feature", feature_extractor=lambda x: x,
        feature_dim=TRAIN_DIM, rng=0,
    )
    history = UHSCMTrainer(network, config).fit(features, q)
    return history.total


def _build_index(codes: np.ndarray, workers: int) -> ShardedIndex:
    index = ShardedIndex(N_BITS, n_shards=N_SHARDS, workers=workers)
    index.add(codes)
    return index


def test_bench_parallel_scale(results_dir):
    rng = np.random.default_rng(8)
    gate = _gate_active()
    lines: list[str] = [
        f"parallel scale: workers={WORKERS} cores={os.cpu_count()} "
        f"speedup gate {'ACTIVE' if gate else 'SKIPPED (< 4 cores)'}",
    ]
    payload: dict = {
        "workers": WORKERS,
        "cores": os.cpu_count(),
        "required_speedup": REQUIRED_SPEEDUP,
        "required_process_speedup": REQUIRED_PROCESS_SPEEDUP,
        "gate_active": gate,
    }

    # -- serial fallback (gate 2) -------------------------------------------
    pool = WorkerPool(1)
    assert pool.serial
    main_thread_results = pool.map(lambda i: i * i, range(8))
    assert main_thread_results == [i * i for i in range(8)]
    stats = pool.stats()
    assert stats == {"backend": "thread", "workers": 1, "requested": 1,
                     "serial": True, "submitted": 8, "completed": 8,
                     "rejected": 0, "shm_published": 0, "shm_released": 0,
                     "shm_active": 0}
    pool.close()
    assert resolve_workers(None) == resolve_workers(0) == 1 or \
        os.environ.get("REPRO_WORKERS")  # env may legitimately override None
    lines.append("serial fallback: workers=1 runs inline (no threads), "
                 "counters match")

    # -- Q build: identity + speedup (gates 1 and 3) ------------------------
    features = rng.normal(size=(Q_ROWS, Q_DIM))
    t_serial, serial_csr = timed(lambda: _q_build(features, 1), repeats=2)
    shared = WorkerPool(WORKERS, name="bench-topk")
    try:
        t_parallel, parallel_csr = timed(
            lambda: _q_build(features, shared), repeats=2
        )
        pool_stats = shared.stats()
    finally:
        shared.close()
    assert not pool_stats["rejected"]
    # On a < 4-core box the clamp turns the pool serial and the kernel
    # runs inline without submitting; with real workers every dispatched
    # tile must have drained (clean shutdown).
    assert pool_stats["serial"] or pool_stats["submitted"] > 0
    assert pool_stats["submitted"] == pool_stats["completed"]
    for s_arr, p_arr in zip(serial_csr, parallel_csr):
        assert np.array_equal(s_arr, p_arr)
    q_speedup = t_serial / t_parallel
    lines.append(f"Q build    : serial {t_serial * 1e3:8.1f} ms   "
                 f"thread x{WORKERS} {t_parallel * 1e3:8.1f} ms   "
                 f"speedup {q_speedup:.2f}x   CSR bit-identical")
    payload["q_build"] = {"serial_seconds": t_serial,
                          "parallel_seconds": t_parallel,
                          "speedup": q_speedup}

    # -- Q build, process backend: identity + pinning + speedup (1, 2, 3, 4) -
    shm_dir = "/dev/shm"
    shm_before = (set(os.listdir(shm_dir)) if os.path.isdir(shm_dir)
                  else set())
    proc_pool = WorkerPool(WORKERS, name="bench-topk-proc", backend="process")
    try:
        if not proc_pool.serial:
            # Warm every spawned worker and assert the BLAS pinning the
            # bench set before numpy loaded actually reached them.
            probes = proc_pool.map(pool_worker_probe, range(2 * WORKERS))
            assert os.getpid() not in {probe["pid"] for probe in probes}
            for probe in probes:
                for var in BLAS_ENV_VARS:
                    assert probe["env"][var] == "1", (var, probe)
                for entry in probe["threadpools"] or []:
                    assert entry["num_threads"] == 1, probe
        t_process, process_csr = timed(
            lambda: _q_build(features, proc_pool), repeats=2
        )
        proc_stats = proc_pool.stats()
    finally:
        proc_pool.close()
    for s_arr, p_arr in zip(serial_csr, process_csr):
        assert np.array_equal(s_arr, p_arr)
    final = proc_pool.stats()
    assert final["submitted"] == final["completed"]  # clean shutdown
    assert final["shm_published"] == final["shm_released"]  # no leaks
    assert final["shm_active"] == 0
    shm_after = (set(os.listdir(shm_dir)) if os.path.isdir(shm_dir)
                 else set())
    assert not (shm_after - shm_before), shm_after - shm_before
    process_speedup = t_serial / t_process
    lines.append(f"Q build    : serial {t_serial * 1e3:8.1f} ms   "
                 f"process x{WORKERS} {t_process * 1e3:8.1f} ms   "
                 f"speedup {process_speedup:.2f}x   CSR bit-identical, "
                 f"shm balanced ({proc_stats['shm_published']} published)")
    payload["q_build_process"] = {"serial_seconds": t_serial,
                                  "process_seconds": t_process,
                                  "speedup": process_speedup,
                                  "shm_published": final["shm_published"],
                                  "shm_released": final["shm_released"]}

    # Streaming (out-of-core) builder: same identity at 4 workers on both
    # backends (the process pool reads the scratch memmap by path instead
    # of a shared-memory segment).
    def stream(workers, backend=None):
        bufs: dict[str, np.ndarray] = {}

        def create(name, shape, dtype):
            bufs[name] = np.empty(shape, dtype=dtype)
            return bufs[name]

        return streaming_topk_cosine(
            features[:1500], Q_TOPK, create, block_rows=Q_BLOCK_ROWS,
            workers=workers, pool_backend=backend,
        )

    stream_serial = stream(1)
    for backend in ("thread", "process"):
        for s_arr, p_arr in zip(stream_serial, stream(WORKERS, backend)):
            assert np.array_equal(np.asarray(s_arr), np.asarray(p_arr)), backend
    lines.append("streaming  : out-of-core CSR bit-identical at "
                 f"{WORKERS} workers (thread and process)")

    # -- shard fan-out: identity + speedup (gates 1 and 3) ------------------
    codes = np.where(rng.random((DB_ROWS, N_BITS)) < 0.5, -1.0, 1.0)
    queries = np.where(rng.random((N_QUERIES, N_BITS)) < 0.5, -1.0, 1.0)
    serial_index = _build_index(codes, workers=1)
    parallel_index = _build_index(codes, workers=WORKERS)
    t_fan_serial, (ids_s, dist_s) = timed(
        lambda: serial_index.search(queries, top_k=TOP_K), repeats=3
    )
    t_fan_parallel, (ids_p, dist_p) = timed(
        lambda: parallel_index.search(queries, top_k=TOP_K), repeats=3
    )
    assert np.array_equal(ids_s, ids_p) and np.array_equal(dist_s, dist_p)
    radius = N_BITS // 3
    for serial_hits, parallel_hits in zip(
        serial_index.radius_search(queries[:8], radius),
        parallel_index.radius_search(queries[:8], radius),
    ):
        assert np.array_equal(serial_hits, parallel_hits)
    # ``requested`` survives the cpu-count clamp; on a >= 4-core box the
    # effective count matches it.
    assert parallel_index.pool_stats()["requested"] == WORKERS
    if gate:
        assert parallel_index.pool_stats()["workers"] == WORKERS
    fan_speedup = t_fan_serial / t_fan_parallel
    lines.append(f"shard fan-out: serial {t_fan_serial * 1e3:8.1f} ms   "
                 f"parallel {t_fan_parallel * 1e3:8.1f} ms   "
                 f"speedup {fan_speedup:.2f}x   merge bit-identical")
    payload["fan_out"] = {"serial_seconds": t_fan_serial,
                          "parallel_seconds": t_fan_parallel,
                          "speedup": fan_speedup}

    # -- training: loss-history identity under prefetch (gate 1) ------------
    train_features = rng.normal(size=(TRAIN_ROWS, TRAIN_DIM))
    labels = rng.integers(0, 8, size=TRAIN_ROWS)
    q = (labels[:, None] == labels[None, :]).astype(np.float64)
    serial_history = _train_history(train_features, q, workers=1)
    parallel_history = _train_history(train_features, q, workers=WORKERS)
    assert serial_history == parallel_history
    lines.append(f"training   : {TRAIN_EPOCHS}-epoch loss history "
                 f"bit-identical under one-slot prefetch")
    payload["training"] = {"epochs": TRAIN_EPOCHS,
                           "loss_history": serial_history,
                           "identical": True}

    if gate:
        lines.append(f"speedup gate: Q build {q_speedup:.2f}x, fan-out "
                     f"{fan_speedup:.2f}x (required >= "
                     f"{REQUIRED_SPEEDUP:.1f}x each); process Q build "
                     f"{process_speedup:.2f}x (required >= "
                     f"{REQUIRED_PROCESS_SPEEDUP:.1f}x)")
    report = "\n".join(lines)
    print("\n" + report)
    save_result(results_dir, "BENCH_parallel", report, payload=payload)
    if gate:
        assert q_speedup >= REQUIRED_SPEEDUP, report
        assert fan_speedup >= REQUIRED_SPEEDUP, report
        assert process_speedup >= REQUIRED_PROCESS_SPEEDUP, report
