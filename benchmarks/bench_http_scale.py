"""HTTP serving scale benchmark: concurrent micro-batched throughput.

Acceptance gates for the PR 10 async front end:

1. **Bit-identity** (asserted on any machine): responses decoded from
   the HTTP/JSON wire match a direct in-process
   ``HashingService.query`` exactly — same ids, bit-identical float64
   distances (Python's json serializes floats via repr, which round
   trips exactly).
2. **Clean shed** (asserted on any machine): flooding the server past
   its admission bound yields only 200s and typed 429s — no hung
   connections, no 5xx — and the server keeps serving afterwards.
3. **Zero-drop hot swap** (asserted on any machine): swapping the
   model under live traffic completes every in-flight and subsequent
   request (all 200s) while the served fingerprint switches to v2.
4. **Wall-clock** (gated only on machines with >= 4 cores, like the CI
   runners): 8 concurrent HTTP clients must push >=
   ``REQUIRED_SPEEDUP`` (3x) the throughput of one serial HTTP client
   over the same request set — concurrency is what lets independent
   connections coalesce in the shared micro-batcher — and the
   concurrent run's server-side query p99 must stay under
   ``P99_BOUND_S``.  The serial baseline runs its own server with a
   zero coalescing window (its auto-flush degenerates to an immediate
   flush), so it never pays a batching delay the concurrent server
   chose for itself.

The combined report lands in ``results/BENCH_http.txt`` with a
machine-readable mirror in ``results/BENCH_http.json``.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread *before* numpy loads (a no-op if numpy is already
# imported, e.g. in a full-suite run): the gate measures request-level
# concurrency, which BLAS's own threading would hand to the serial
# baseline for free.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS",
             "VECLIB_MAXIMUM_THREADS", "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import json  # noqa: E402
import threading  # noqa: E402
import time  # noqa: E402
import urllib.error  # noqa: E402
import urllib.request  # noqa: E402

import numpy as np  # noqa: E402

from repro.core.hashing_network import HashingNetwork  # noqa: E402
from repro.serving import HashingService  # noqa: E402
from repro.serving.http import ServingApp, run_server_in_thread  # noqa: E402

from conftest import save_result  # noqa: E402

#: Concurrent throughput must beat one serial client by this factor.
REQUIRED_SPEEDUP = 3.0
#: Server-side query p99 bound for the concurrent run (gate machines).
P99_BOUND_S = 0.5

DIM = 512
BITS = 64
DB_ROWS = 4000
TOP_K = 10
N_CLIENTS = 8
QUERIES_PER_CLIENT = 15
N_QUERIES = N_CLIENTS * QUERIES_PER_CLIENT
SEED = 0


def _gate() -> bool:
    return (os.cpu_count() or 1) >= 4


def _network(rng: int = SEED) -> HashingNetwork:
    return HashingNetwork(BITS, mode="feature", feature_extractor=lambda x: x,
                          feature_dim=DIM, rng=rng)


def _service(db: np.ndarray, *, rng: int = SEED,
             max_delay_s: float = 0.002) -> HashingService:
    service = HashingService(_network(rng), backend="sharded", n_shards=4,
                             max_batch=64, max_delay_s=max_delay_s)
    service.add(db)
    return service


def _post(port: int, path: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(port: int, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=60
        ) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _run_clients(port: int, queries: np.ndarray, n_clients: int):
    """Fan ``queries`` over ``n_clients`` threads; returns (seconds, rows).

    Row ``i`` of the result is the decoded response for query row ``i``
    regardless of which client carried it, so the caller can check every
    response against the direct-query oracle.
    """
    per_client = queries.shape[0] // n_clients
    outcomes: list = [None] * queries.shape[0]

    def client(c: int) -> None:
        for i in range(c * per_client, (c + 1) * per_client):
            outcomes[i] = _post(port, "/query",
                                {"vector": queries[i].tolist(),
                                 "top_k": TOP_K})

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(n_clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - t0, outcomes


def test_bench_http_scale(results_dir):
    gate = _gate()
    rng = np.random.default_rng(SEED)
    db = rng.standard_normal((DB_ROWS, DIM))
    queries = rng.standard_normal((N_QUERIES, DIM))
    lines = [
        f"http scale: cores={os.cpu_count()} clients={N_CLIENTS} "
        f"queries={N_QUERIES} db={DB_ROWS}x{DIM} bits={BITS} "
        f"gate={'on' if gate else 'off (needs >= 4 cores)'}",
    ]
    payload: dict = {
        "cores": os.cpu_count(),
        "gate": gate,
        "required_speedup": REQUIRED_SPEEDUP,
        "p99_bound_s": P99_BOUND_S,
        "n_queries": N_QUERIES,
        "n_clients": N_CLIENTS,
    }

    # -- oracle: direct in-process queries (no HTTP) ------------------------
    oracle_service = _service(db)
    oracle = [oracle_service.query(queries[i], top_k=TOP_K)
              for i in range(N_QUERIES)]
    oracle_service.close()

    # -- serial baseline: one client, zero coalescing window ----------------
    serial_service = _service(db, max_delay_s=0.0)
    serial_handle = run_server_in_thread(
        ServingApp(serial_service, max_inflight=N_CLIENTS * 2),
        concurrency=N_CLIENTS,
    )
    try:
        t_serial, serial_rows = _run_clients(serial_handle.port, queries,
                                             n_clients=1)
    finally:
        serial_handle.stop()
    assert all(status == 200 for status, _ in serial_rows)

    # -- concurrent run: N clients share the 2 ms batching window -----------
    concurrent_service = _service(db)
    concurrent_app = ServingApp(concurrent_service,
                                max_inflight=N_CLIENTS * 2)
    concurrent_handle = run_server_in_thread(concurrent_app,
                                             concurrency=N_CLIENTS)
    try:
        t_concurrent, concurrent_rows = _run_clients(
            concurrent_handle.port, queries, n_clients=N_CLIENTS
        )
        _, stats = _get(concurrent_handle.port, "/stats")
    finally:
        concurrent_handle.stop()
    assert all(status == 200 for status, _ in concurrent_rows)

    # -- gate 1: wire responses bit-identical to direct queries -------------
    for rows in (serial_rows, concurrent_rows):
        for i, (_, body) in enumerate(rows):
            ids, distances = oracle[i]
            assert body["ids"] == ids.tolist(), f"query {i}: ids diverge"
            assert body["distances"] == distances.tolist(), (
                f"query {i}: distances not bit-identical over the wire"
            )
    lines.append(f"bit-identity: {2 * N_QUERIES} wire responses match "
                 f"direct HashingService.query exactly")

    flushes = stats["service"]["batcher"]["flush_sizes"]
    coalesced = sum(int(count) for size, count in flushes.items()
                    if int(size) > 1)
    query_p99 = stats["server"]["latency"]["query"]["p99_s"]
    speedup = t_serial / t_concurrent
    serial_qps = N_QUERIES / t_serial
    concurrent_qps = N_QUERIES / t_concurrent
    lines.append(f"serial     : {t_serial * 1e3:8.1f} ms "
                 f"({serial_qps:8.0f} q/s, 1 client, no batch window)")
    lines.append(f"concurrent : {t_concurrent * 1e3:8.1f} ms "
                 f"({concurrent_qps:8.0f} q/s, {N_CLIENTS} clients)   "
                 f"speedup {speedup:.2f}x")
    lines.append(f"latency    : server-side query p99 "
                 f"{query_p99 * 1e3:.1f} ms   "
                 f"{coalesced} multi-row flush(es)")
    payload["serial"] = {"seconds": t_serial, "qps": serial_qps}
    payload["concurrent"] = {"seconds": t_concurrent,
                             "qps": concurrent_qps,
                             "speedup": speedup,
                             "p99_s": query_p99,
                             "coalesced_flushes": coalesced}

    # -- gate 2: clean shed past the admission bound ------------------------
    release = threading.Event()
    entered = threading.Event()
    network = _network()

    def gated_encode(matrix: np.ndarray) -> np.ndarray:
        entered.set()
        release.wait(30)
        return network.encode(matrix)

    shed_service = HashingService(gated_encode, n_bits=BITS,
                                  backend="bruteforce", max_batch=64,
                                  max_delay_s=0.0)
    release.set()
    shed_service.add(db[:64])
    release.clear()
    entered.clear()
    shed_app = ServingApp(shed_service, max_inflight=2)
    shed_handle = run_server_in_thread(shed_app, concurrency=N_CLIENTS)
    try:
        statuses: list = [None] * N_CLIENTS

        def flood(i: int) -> None:
            statuses[i] = _post(shed_handle.port, "/query",
                                {"vector": queries[i].tolist()})[0]

        threads = [threading.Thread(target=flood, args=(i,))
                   for i in range(N_CLIENTS)]
        for thread in threads:
            thread.start()
        entered.wait(30)
        time.sleep(0.2)  # let the rest reach the admission gate
        release.set()
        for thread in threads:
            thread.join(60)
        shed_count = sum(1 for status in statuses if status == 429)
        served = sum(1 for status in statuses if status == 200)
        assert served + shed_count == N_CLIENTS, statuses
        assert shed_count >= 1, "no request was shed past max_inflight=2"
        # The overload was transient: the server serves again immediately.
        assert _post(shed_handle.port, "/query",
                     {"vector": queries[0].tolist()})[0] == 200
    finally:
        release.set()
        shed_handle.stop()
    lines.append(f"admission  : {served}/{N_CLIENTS} served, "
                 f"{shed_count} shed with typed 429 at max_inflight=2, "
                 f"server healthy after")
    payload["shed"] = {"served": served, "shed": shed_count}

    # -- gate 3: hot swap under live traffic drops nothing ------------------
    v1 = _service(db, rng=SEED)
    v2 = _service(db, rng=SEED + 1)
    swap_app = ServingApp(v1, service_factory=lambda source: v2,
                          max_inflight=N_CLIENTS * 2)
    swap_handle = run_server_in_thread(swap_app, concurrency=N_CLIENTS)
    swap_statuses: list[int] = []
    swap_lock = threading.Lock()
    try:
        def traffic(c: int) -> None:
            for i in range(20):
                status, _ = _post(swap_handle.port, "/query",
                                  {"vector": queries[(c + i) % N_QUERIES]
                                   .tolist()})
                with swap_lock:
                    swap_statuses.append(status)

        threads = [threading.Thread(target=traffic, args=(c,))
                   for c in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # swap lands mid-traffic
        swap_status, swap_body = _post(swap_handle.port, "/swap",
                                       {"model": "v2"})
        for thread in threads:
            thread.join(120)
        assert swap_status == 200, swap_body
        assert swap_body["model_key"] == v2.model_key
        assert swap_app.service is v2
        assert v1.closed and not v2.closed
        dropped = [status for status in swap_statuses if status != 200]
        assert not dropped, (
            f"hot swap dropped {len(dropped)} request(s): {dropped}"
        )
        # Post-swap traffic is served by v2.
        _, post_swap_stats = _get(swap_handle.port, "/stats")
        assert post_swap_stats["model_key"] == v2.model_key
    finally:
        swap_handle.stop()
    lines.append(f"hot swap   : {len(swap_statuses)} live requests, "
                 f"0 dropped across the v1 -> v2 switch")
    payload["swap"] = {"live_requests": len(swap_statuses), "dropped": 0}

    if gate:
        lines.append(f"speedup gate: {speedup:.2f}x (required >= "
                     f"{REQUIRED_SPEEDUP:.1f}x), p99 "
                     f"{query_p99 * 1e3:.1f} ms (bound "
                     f"{P99_BOUND_S * 1e3:.0f} ms)")
    report = "\n".join(lines)
    print("\n" + report)
    save_result(results_dir, "BENCH_http", report, payload=payload)
    if gate:
        assert speedup >= REQUIRED_SPEEDUP, report
        assert query_p99 <= P99_BOUND_S, report
        assert coalesced >= 1, report
