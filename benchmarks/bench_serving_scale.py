"""Serving-scale benchmark: micro-batched service vs per-request serving.

Acceptance gates for the sharded online serving layer
(:mod:`repro.serving`), at a 10k-row 64-bit database across 4 shards:

1. **throughput** — answering the query stream through the micro-batched
   :class:`HashingService` (requests coalesce into one network forward per
   flush, one fan-out search per batch) must beat the same service driven
   one request at a time (``max_batch=1``: one forward + one search per
   query) by >= 3x;
2. **exactness** — merged sharded top-k results are bit-identical to the
   ``multi-index`` backend over the same codes, for both drive modes;
3. **warm snapshots** — a service restarted against the same
   (model, database) pair warm-loads its index from the
   :class:`~repro.pipeline.ArtifactStore` snapshot with **zero** database
   re-encodes, asserted via the store's per-stage counters.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashing_network import HashingNetwork
from repro.pipeline import ArtifactStore
from repro.retrieval import make_backend
from repro.serving import INDEX_STAGE, HashingService

from conftest import assert_speedup, timed

N_DB = 10_000
N_BITS = 64
DIM = 64
N_QUERIES = 256
TOP_K = 10
N_SHARDS = 4
MAX_BATCH = 256
REQUIRED_SPEEDUP = 3.0

DB_KEY = {"bench": "serving_scale", "n": N_DB, "dim": DIM, "seed": 21}


def _network() -> HashingNetwork:
    """A fresh but deterministic encoder (same params every construction)."""
    return HashingNetwork(
        N_BITS, mode="feature", feature_extractor=lambda x: x,
        feature_dim=DIM, rng=0,
    )


def _service(store: ArtifactStore, max_batch: int) -> HashingService:
    return HashingService(
        _network(), store=store, n_shards=N_SHARDS,
        shard_backend="bruteforce", max_batch=max_batch,
    )


def test_bench_serving_scale(results_dir, tmp_path):
    rng = np.random.default_rng(21)
    db = rng.normal(size=(N_DB, DIM))
    queries = rng.normal(size=(N_QUERIES, DIM))
    store = ArtifactStore(tmp_path / "serve-cache")

    # -- cold build: the database encodes exactly once into a store snapshot
    unbatched = _service(store, max_batch=1)
    unbatched.load_database(db, key=DB_KEY)
    cold = store.stats()["stages"][INDEX_STAGE]
    assert (cold["hits"], cold["misses"], cold["puts"]) == (0, 1, 1)
    db_cold = unbatched.stats()["database"]
    assert (db_cold["encodes"], db_cold["warm_loads"]) == (1, 0)

    def drive_unbatched():
        parts = [unbatched.query(queries[qi], top_k=TOP_K)
                 for qi in range(N_QUERIES)]
        return (np.concatenate([ids for ids, _ in parts]),
                np.concatenate([dist for _, dist in parts]))

    t_unbatched, (ids_u, dist_u) = timed(drive_unbatched, repeats=2)

    # -- warm build + micro-batched drive
    batched = _service(store, max_batch=MAX_BATCH)
    batched.load_database(db, key=DB_KEY)
    db_warm = batched.stats()["database"]
    assert (db_warm["encodes"], db_warm["warm_loads"]) == (0, 1)
    t_batched, (ids_b, dist_b) = timed(
        lambda: batched.query(queries, top_k=TOP_K), repeats=2
    )
    flush_sizes = batched.batcher.stats()["flush_sizes"]
    assert set(flush_sizes) == {MAX_BATCH}
    assert set(unbatched.batcher.stats()["flush_sizes"]) == {1}

    # -- gate 2: bit-identical to the multi-index backend over the same codes
    encoder = _network()
    reference = make_backend("multi-index", N_BITS, n_tables=N_SHARDS)
    reference.add(encoder.encode(db))
    ids_r, dist_r = reference.search(encoder.encode(queries), top_k=TOP_K)
    np.testing.assert_array_equal(ids_b, ids_r)
    np.testing.assert_array_equal(dist_b, dist_r)
    np.testing.assert_array_equal(ids_u, ids_r)
    np.testing.assert_array_equal(dist_u, dist_r)

    # -- gate 3: restart warm-loads the snapshot with zero re-encodes.
    # A fresh ArtifactStore over the same directory is the "new process":
    # it reloads the persisted counters, so its stats are the audit trail.
    before = store.stats()["stages"][INDEX_STAGE]
    restart_store = ArtifactStore(store.cache_dir)
    restarted = _service(restart_store, max_batch=MAX_BATCH)
    restarted.load_database(db, key=DB_KEY)
    after = restart_store.stats()["stages"][INDEX_STAGE]
    db_restart = restarted.stats()["database"]
    assert (db_restart["encodes"], db_restart["warm_loads"]) == (0, 1)
    assert after["misses"] == before["misses"]  # no new encode stage runs
    assert after["puts"] == before["puts"]
    assert after["hits"] == before["hits"] + 1
    ids_w, dist_w = restarted.query(queries, top_k=TOP_K)
    np.testing.assert_array_equal(ids_w, ids_r)
    np.testing.assert_array_equal(dist_w, dist_r)

    # -- gate 1: micro-batched throughput
    assert_speedup(
        results_dir,
        "serving_scale",
        t_unbatched,
        t_batched,
        REQUIRED_SPEEDUP,
        lines=[
            f"serving scale: n={N_DB} bits={N_BITS} dim={DIM} "
            f"queries={N_QUERIES} top_k={TOP_K} shards={N_SHARDS}",
            f"unbatched : {t_unbatched * 1e3:9.1f} ms  "
            f"({N_QUERIES / t_unbatched:8.0f} q/s)  flushes of 1",
            f"batched   : {t_batched * 1e3:9.1f} ms  "
            f"({N_QUERIES / t_batched:8.0f} q/s)  "
            f"flushes of {MAX_BATCH}",
            "agreement : bit-identical to multi-index backend "
            "(batched, unbatched, and warm-restarted)",
            "snapshots : warm restarts re-encoded 0 database rows "
            f"(serve_index stage: {after})",
        ],
    )
