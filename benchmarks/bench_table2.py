"""Benchmark: regenerate Table 2 (UHSCM + 14 ablation variants)."""

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.experiments import PAPER_TABLE2_64BITS, run_table2


def test_table2(benchmark, results_dir):
    table = benchmark.pedantic(
        run_table2,
        kwargs=dict(scale=BENCH_SCALE, bit_lengths=(32, 64)),
        rounds=1,
        iterations=1,
    )
    lines = [table.render(), "", "paper-vs-measured at 64 bits (MAP):"]
    for key in table.methods:
        for dataset in table.datasets:
            measured = table.value(key, dataset, 64)
            paper = PAPER_TABLE2_64BITS[key][dataset]
            lines.append(
                f"  {key:10s} {dataset:10s} measured={measured:.3f} "
                f"paper={paper:.3f}"
            )
    save_result(results_dir, "table2", "\n".join(lines))
    benchmark.extra_info["ours_cifar_64"] = table.value("ours", "cifar10", 64)
