"""Benchmark configuration: result persistence and timing/gating helpers.

Each benchmark regenerates one of the paper's tables/figures and writes the
rendered output to ``benchmarks/results/`` so the reproduced numbers survive
the run (pytest captures stdout).  The scale benchmarks
(``bench_retrieval_scale.py``, ``bench_train_scale.py``, …) share
:func:`timed` / :func:`assert_speedup` so every speedup gate measures and
reports the same way, and :func:`measure_peak_memory` so every memory gate
profiles the same way (tracemalloc tracks numpy buffers, so the peak
covers the arrays a build actually materializes).
"""

from __future__ import annotations

import json
import time
import tracemalloc
from collections.abc import Callable, Iterable
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Reproduction scale for benchmarks: fraction of the paper's split sizes.
#: 0.04 ≈ 400-420 training images per dataset; CPU-sized but large enough
#: for the method ordering to be stable.
BENCH_SCALE = 0.04


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(
    results_dir: Path, name: str, content: str, payload: dict | None = None
) -> None:
    """Persist one benchmark report as ``<name>.txt`` plus a JSON mirror.

    The txt file keeps the human-readable rendering (what EXPERIMENTS.md
    assembles); ``<name>.json`` carries the same lines in machine-readable
    form plus any structured ``payload`` the benchmark supplies (timings,
    speedups, gate thresholds), so the perf trajectory can be tracked
    across runs without parsing prose.
    """
    path = results_dir / f"{name}.txt"
    path.write_text(content + "\n")
    record = {"name": name, "lines": content.splitlines()}
    if payload:
        record.update(payload)
    (results_dir / f"{name}.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )


def timed(fn: Callable[[], object], repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time of ``fn()``; returns ``(seconds, result)``.

    Taking the minimum over a few repeats makes the speedup gates robust to
    load spikes on shared CI machines; the result of the fastest run is
    returned (every run must be deterministic for this to be meaningful).
    """
    best_dt = float("inf")
    best_out: object = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        if dt < best_dt:
            best_dt, best_out = dt, out
    return best_dt, best_out


def measure_peak_memory(fn: Callable[[], object]) -> tuple[int, object]:
    """Peak traced allocation (bytes) during ``fn()``; returns ``(peak, result)``.

    Uses :mod:`tracemalloc`, which numpy registers its buffer allocations
    with, so the peak reflects the arrays the measured code materializes —
    the quantity the similarity-scale gate bounds.  Tracing adds per-
    allocation overhead; time the same callable separately (see
    :func:`timed`) rather than reusing a traced run's wall clock.
    """
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, result


def assert_speedup(
    results_dir: Path,
    name: str,
    baseline_seconds: float,
    candidate_seconds: float,
    required: float,
    lines: Iterable[str] = (),
) -> float:
    """Gate ``baseline/candidate >= required``; print + persist the report.

    ``lines`` carries the benchmark-specific breakdown; the speedup line is
    appended so every scale benchmark reports its gate identically.  The
    report is written to ``results/<name>.txt`` (with a structured JSON
    mirror) before asserting so a failed gate still leaves the measured
    numbers behind.
    """
    speedup = baseline_seconds / candidate_seconds
    report = "\n".join(
        [*lines, f"speedup  : {speedup:.1f}x (required >= {required:.1f}x)"]
    )
    print("\n" + report)
    save_result(
        results_dir, name, report,
        payload={
            "baseline_seconds": baseline_seconds,
            "candidate_seconds": candidate_seconds,
            "speedup": speedup,
            "required_speedup": required,
            "passed": bool(speedup >= required),
        },
    )
    assert speedup >= required, report
    return speedup
