"""Benchmark configuration: result persistence helpers.

Each benchmark regenerates one of the paper's tables/figures and writes the
rendered output to ``benchmarks/results/`` so the reproduced numbers survive
the run (pytest captures stdout).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Reproduction scale for benchmarks: fraction of the paper's split sizes.
#: 0.04 ≈ 400-420 training images per dataset; CPU-sized but large enough
#: for the method ordering to be stable.
BENCH_SCALE = 0.04


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, content: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(content + "\n")
