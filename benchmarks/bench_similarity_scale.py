"""Similarity-scale benchmark: the blocked sparse top-k Q engine vs dense.

Acceptance gates for the sparse similarity engine at the gated scale
(12k rows × 512-dim features, k = 256, 512-row GEMM tiles):

1. the blocked CSR build must cut peak Q-build memory by >= 8x versus the
   dense ``cosine_similarity_matrix`` build (tracemalloc, which tracks
   numpy buffers);
2. the blocked CSR build must beat the dense build wall-clock;
3. with ``k >= n - 1`` the sparse form must densify bit-identically to the
   dense matrix, and at small k every stored entry must equal its dense
   counterpart with full per-row top-k coverage;
4. end to end, a UHSCM fit trained against sparse Q must land within
   ``MAP_TOL`` mAP of the dense-Q fit on the same data (sparse Q is a
   controlled approximation: only weak similarity entries are zeroed).

``python -m repro.cli bench-similarity`` is the quick interactive variant.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.config import paper_config
from repro.core.similarity_matrix import SparseTopKSimilarity
from repro.core.uhscm import UHSCM
from repro.datasets import load_dataset
from repro.retrieval import evaluate_hashing
from repro.utils.mathops import cosine_similarity_matrix
from repro.vlp import SimCLIP

from conftest import BENCH_SCALE, assert_speedup, measure_peak_memory, timed

N_ROWS = 12_000
FEATURE_DIM = 512
TOP_K = 256
BLOCK_ROWS = 512
REQUIRED_MEM_RATIO = 8.0
REQUIRED_SPEEDUP = 1.2
#: |mAP(sparse Q) - mAP(dense Q)| bound for the end-to-end fit (measured
#: drift is well below; the bound leaves room for platform BLAS noise).
MAP_TOL = 0.05
E2E_BITS = 32
E2E_EPOCHS = 10
E2E_TOPK = 64


def _sparse_build(features: np.ndarray) -> SparseTopKSimilarity:
    return SparseTopKSimilarity.from_features(
        features, TOP_K, block_rows=BLOCK_ROWS
    )


def _check_exactness(features: np.ndarray, dense: np.ndarray,
                     sparse: SparseTopKSimilarity) -> None:
    """Gate 3: k >= n-1 bit-identity plus stored-entry fidelity at scale."""
    # Full-k identity on a slice (building a full-k CSR at 12k rows would
    # just re-materialize n² under another name).
    small = features[:2000]
    full = SparseTopKSimilarity.from_features(small, small.shape[0] - 1)
    assert np.array_equal(full.to_dense(), cosine_similarity_matrix(small))

    # At the gated scale: sampled rows hold exactly the k strongest dense
    # entries (plus the diagonal, modulo ties at the cutoff) with values
    # bit-identical to the dense build.
    rng = np.random.default_rng(11)
    for row in rng.choice(N_ROWS, size=16, replace=False):
        start, stop = sparse.indptr[row], sparse.indptr[row + 1]
        cols = sparse.indices[start:stop]
        vals = sparse.data[start:stop]
        assert np.array_equal(vals, dense[row, cols])
        assert row in cols  # the diagonal is always kept
        kept = np.sort(dense[row, cols])
        strongest = np.sort(dense[row])[-(TOP_K + 1):]
        # Every kept value is >= the weakest of the true top-(k+1); ties at
        # the cutoff may swap which index is kept, values cannot be beaten.
        assert kept[-TOP_K:].min() >= strongest.min()


def test_bench_similarity_scale(results_dir):
    rng = np.random.default_rng(5)
    features = rng.normal(size=(N_ROWS, FEATURE_DIM))

    # Wall-clock first (untraced; tracemalloc adds per-allocation cost).
    t_dense, dense = timed(lambda: cosine_similarity_matrix(features))
    t_sparse, sparse = timed(lambda: _sparse_build(features))
    _check_exactness(features, dense, sparse)
    dense_bytes = dense.nbytes
    del dense  # keep the traced dense build from doubling resident memory

    peak_dense, out = measure_peak_memory(
        lambda: cosine_similarity_matrix(features)
    )
    del out
    peak_sparse, _ = measure_peak_memory(lambda: _sparse_build(features))
    mem_ratio = peak_dense / peak_sparse

    # Gate 4: end-to-end retrieval quality, dense Q vs sparse Q.
    data = load_dataset("cifar10", scale=BENCH_SCALE, seed=0)
    clip = SimCLIP(data.world)
    config = paper_config("cifar10", n_bits=E2E_BITS, seed=0)
    config = replace(config, train=replace(config.train, epochs=E2E_EPOCHS))
    map_dense = evaluate_hashing(
        UHSCM(config, clip=clip).fit(data.train_images), data
    ).map
    map_sparse = evaluate_hashing(
        UHSCM(replace(config, sparse_topk=E2E_TOPK), clip=clip).fit(
            data.train_images
        ),
        data,
    ).map
    map_drift = abs(map_dense - map_sparse)

    lines = [
        f"similarity engine scale: n={N_ROWS} dim={FEATURE_DIM} k={TOP_K} "
        f"block_rows={BLOCK_ROWS}",
        f"dense build : {t_dense * 1e3:9.1f} ms   "
        f"peak {peak_dense / 1e6:8.1f} MB   Q {dense_bytes / 1e6:8.1f} MB",
        f"sparse build: {t_sparse * 1e3:9.1f} ms   "
        f"peak {peak_sparse / 1e6:8.1f} MB   Q {sparse.nbytes / 1e6:8.1f} MB",
        f"peak memory : {mem_ratio:.1f}x lower "
        f"(required >= {REQUIRED_MEM_RATIO:.1f}x)",
        f"exactness   : k>=n-1 bit-identical; stored entries == dense; "
        f"per-row top-{TOP_K}+diagonal coverage",
        f"end-to-end  : mAP dense {map_dense:.4f} vs sparse(k={E2E_TOPK}) "
        f"{map_sparse:.4f} (|drift| {map_drift:.4f} <= {MAP_TOL})",
    ]
    assert mem_ratio >= REQUIRED_MEM_RATIO, "\n".join(lines)
    assert map_drift <= MAP_TOL, "\n".join(lines)
    assert_speedup(
        results_dir,
        "similarity_scale",
        t_dense,
        t_sparse,
        REQUIRED_SPEEDUP,
        lines=lines,
    )
