"""Extension ablation: CoOp-style prompt tuning vs. the fixed template.

Not in the paper's tables — its related-work section (§2.1) points at CoOp
as the natural next step for the prompting stage.  This bench measures
whether the learned context vector sharpens the mined concept distributions
and what that does to retrieval MAP.
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.core.uhscm import UHSCM
from repro.experiments.runner import ExperimentContext
from repro.vlp.concepts import NUS_WIDE_81
from repro.vlp.prompt_tuning import PromptTuner, tuned_concept_scores


def _run(scale: float):
    ctx = ExperimentContext("cifar10", scale=scale, seed=0)
    images = ctx.dataset.train_images

    # Baseline: fixed-template UHSCM.
    base_model = UHSCM(ctx.uhscm_config(64), clip=ctx.clip)
    base_model.fit(images)
    base_map = ctx.evaluate_model(base_model).map

    # Tuned prompts: inject tuned scores through a custom generator.
    tuner = PromptTuner(ctx.clip, n_steps=30)
    tuned = tuner.fit(images, NUS_WIDE_81)

    class TunedGenerator:
        def generate(self, imgs):
            from repro.core.denoising import denoise_concepts
            from repro.core.mining import concept_distributions
            from repro.core.similarity import (
                SimilarityResult,
                similarity_from_distributions,
            )

            scores = tuned_concept_scores(ctx.clip, imgs, NUS_WIDE_81, tuned)
            dist = concept_distributions(scores, tau=len(NUS_WIDE_81))
            den = denoise_concepts(NUS_WIDE_81, dist)
            scores2 = tuned_concept_scores(ctx.clip, imgs,
                                           den.kept_concepts, tuned)
            dist2 = concept_distributions(scores2, tau=den.n_kept)
            return SimilarityResult(
                matrix=similarity_from_distributions(dist2),
                concepts=den.kept_concepts,
                denoising=den,
            )

    tuned_model = UHSCM(ctx.uhscm_config(64), clip=ctx.clip,
                        similarity_generator=TunedGenerator())
    tuned_model.fit(images)
    tuned_map = ctx.evaluate_model(tuned_model).map
    objective_gain = tuned.history[-1] - tuned.history[0]
    return base_map, tuned_map, objective_gain


def test_prompt_tuning_ablation(benchmark, results_dir):
    base_map, tuned_map, gain = benchmark.pedantic(
        _run, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    lines = [
        "Extension ablation: CoOp-style prompt tuning (cifar10 @64 bits)",
        f"  fixed template   MAP = {base_map:.3f}",
        f"  tuned prompts    MAP = {tuned_map:.3f}",
        f"  tuning objective gain = {gain:.4f}",
    ]
    save_result(results_dir, "ablation_prompt_tuning", "\n".join(lines))
    benchmark.extra_info["base_map"] = round(base_map, 4)
    benchmark.extra_info["tuned_map"] = round(tuned_map, 4)
    assert np.isfinite(tuned_map)
