"""Benchmark: regenerate Figure 5 (t-SNE cluster separation on CIFAR10)."""

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.experiments import run_figure5


def test_figure5(benchmark, results_dir):
    result = benchmark.pedantic(
        run_figure5,
        kwargs=dict(scale=BENCH_SCALE, n_bits=64, max_points=300),
        rounds=1,
        iterations=1,
    )
    lines = [result.render(), ""]
    best = max(result.silhouettes, key=result.silhouettes.get)
    lines.append(f"-> best-separated code space: {best} (paper: UHSCM)")
    save_result(results_dir, "figure5", "\n".join(lines))
    benchmark.extra_info["best_silhouette_method"] = best
    for method, value in result.silhouettes.items():
        benchmark.extra_info[f"silhouette_{method}"] = round(value, 4)
