"""Benchmark: regenerate Figure 4 (hyper-parameter sensitivity sweeps)."""

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.experiments import run_figure4


def test_figure4(benchmark, results_dir):
    panels = benchmark.pedantic(
        run_figure4,
        kwargs=dict(scale=BENCH_SCALE, n_bits=64),
        rounds=1,
        iterations=1,
    )
    lines = []
    for (dataset, parameter), sweep in panels.items():
        lines.append(sweep.render())
        benchmark.extra_info[f"best_{parameter}_{dataset}"] = sweep.best_value
    save_result(results_dir, "figure4", "\n".join(lines))
