"""Out-of-core scale benchmark: disk-resident corpus lifecycle vs in-memory.

Acceptance gates for the out-of-core lifecycle (memmapped corpus, streaming
CSR Q build into store-backed buffers, memmap-fed training/encoding, and
mmapped serving snapshots):

1. peak traced memory of the out-of-core Q build stays ~flat (<= 1.5x) as
   the corpus grows 10x (4k -> 40k rows), while the in-memory build grows
   with n (its normalized copy and CSR outputs live on the heap; only the
   shared GEMM tile is constant);
2. the streamed artifacts are bit-identical to the in-memory path end to
   end: the CSR Q arrays match exactly, and a network trained + encoded
   from the memmapped corpus produces exactly the codes of the heap run;
3. a warm serving restart against the same store mmaps the packed-code
   snapshot (``snapshot_mmapped``) with zero re-encodes and answers
   queries identically to the cold service.

``python examples/large_corpus_sparse_q.py --out-of-core`` is the
interactive walkthrough of the same lifecycle.
"""

from __future__ import annotations

import numpy as np

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.similarity_matrix import SparseTopKSimilarity
from repro.core.trainer import UHSCMTrainer
from repro.pipeline import ArtifactStore
from repro.serving import HashingService
from repro.utils.mathops import blocked_topk_cosine

from conftest import measure_peak_memory, save_result

N_SMALL = 4_000
N_LARGE = 40_000  # 10x
FEATURE_DIM = 16
TOP_K = 16
#: Tile cap small enough to bind at both sizes (without hitting the 16-row
#: floor at N_LARGE), so the shared GEMM tile is the same few MB for every
#: build and the residency of the O(n) buffers is what the gate measures.
MAX_BLOCK_BYTES = 16 * 1024 * 1024
#: Gate 1 bound: 10x more rows may cost at most this much more peak heap.
MAX_OOC_GROWTH = 1.5
N_BITS = 32


def make_features(n_rows: int, seed: int, out=None) -> np.ndarray:
    """Clustered features; identical draws whether ``out`` is heap or disk."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(32, FEATURE_DIM))
    features = np.empty((n_rows, FEATURE_DIM)) if out is None else out
    step = 8192
    for start in range(0, n_rows, step):
        stop = min(start + step, n_rows)
        assignment = rng.integers(0, 32, size=stop - start)
        features[start:stop] = centers[assignment] + 0.5 * rng.normal(
            size=(stop - start, FEATURE_DIM)
        )
    return features


def memmap_features(path, n_rows: int, seed: int) -> np.memmap:
    out = np.lib.format.open_memmap(
        path, mode="w+", dtype=np.float64, shape=(n_rows, FEATURE_DIM)
    )
    make_features(n_rows, seed, out=out)
    out.flush()
    return np.load(path, mmap_mode="r")


def inmemory_build(n_rows: int, seed: int):
    """The heap lifecycle: materialize the corpus, build CSR Q on the heap."""
    features = make_features(n_rows, seed)
    return blocked_topk_cosine(features, TOP_K,
                               max_block_bytes=MAX_BLOCK_BYTES)


def outofcore_build(store: ArtifactStore, corpus: np.memmap, key: str):
    """The disk lifecycle: stream CSR Q from a memmapped corpus to a store."""
    writer = store.streaming_writer(key, stage="build_q")
    q = SparseTopKSimilarity.from_features_streaming(
        corpus, TOP_K, writer.create, max_block_bytes=MAX_BLOCK_BYTES
    )
    writer.commit({"rows": int(corpus.shape[0]), "k": TOP_K})
    return q


def make_network() -> HashingNetwork:
    return HashingNetwork(
        N_BITS, mode="feature", feature_extractor=lambda x: x,
        feature_dim=FEATURE_DIM, rng=0, dtype="float32",
    )


def test_bench_outofcore_scale(results_dir, tmp_path):
    corpora = {
        n: memmap_features(tmp_path / f"corpus_{n}.npy", n, seed=n)
        for n in (N_SMALL, N_LARGE)
    }
    store = ArtifactStore(tmp_path / "cache", mmap_threshold_bytes=0)

    # Gate 1: peak traced heap, in-memory vs out-of-core, 4k vs 40k rows.
    # (tracemalloc sees numpy heap buffers; memmapped pages are the OS's.)
    peak_mem = {}
    peak_ooc = {}
    q_small = None
    for n in (N_SMALL, N_LARGE):
        peak_mem[n], _ = measure_peak_memory(lambda n=n: inmemory_build(n, n))
        peak_ooc[n], q = measure_peak_memory(
            lambda n=n: outofcore_build(store, corpora[n], key=f"bench-q-{n}")
        )
        if n == N_SMALL:
            q_small = q
    ooc_growth = peak_ooc[N_LARGE] / peak_ooc[N_SMALL]
    mem_growth = peak_mem[N_LARGE] / peak_mem[N_SMALL]

    # Gate 2a: the streamed CSR arrays are bit-identical to the heap build.
    assert q_small is not None and q_small.memmapped
    heap_data, heap_indices, heap_indptr = blocked_topk_cosine(
        np.asarray(corpora[N_SMALL]), TOP_K, max_block_bytes=MAX_BLOCK_BYTES
    )
    assert np.array_equal(q_small.data, heap_data)
    assert np.array_equal(q_small.indices, heap_indices)
    assert np.array_equal(q_small.indptr, heap_indptr)

    # Gate 2b: training + encoding from the memmapped corpus reproduces the
    # heap run bit for bit.
    config = UHSCMConfig(
        n_bits=N_BITS,
        train=TrainConfig(batch_size=256, epochs=1, dtype="float32"),
    )
    heap_corpus = np.asarray(corpora[N_SMALL])
    heap_q = SparseTopKSimilarity(heap_data, heap_indices, heap_indptr,
                                  n=N_SMALL, k=TOP_K)
    heap_net, ooc_net = make_network(), make_network()
    heap_history = UHSCMTrainer(heap_net, config).fit(heap_corpus, heap_q)
    ooc_history = UHSCMTrainer(ooc_net, config).fit(corpora[N_SMALL], q_small)
    assert heap_history.total == ooc_history.total
    heap_codes = heap_net.encode(heap_corpus)
    ooc_codes = ooc_net.encode(corpora[N_SMALL])
    assert np.array_equal(heap_codes, ooc_codes)

    # Gate 3: a warm restart mmaps the packed-code snapshot — no re-encode.
    queries = make_features(8, seed=3)
    cold = HashingService(ooc_net, store=store, n_shards=4, max_batch=256)
    cold.load_database(corpora[N_SMALL], key={"bench": "outofcore"})
    cold_ids, cold_dists = cold.query(queries, top_k=5)
    assert cold.stats()["database"]["encodes"] == 1

    # Same trained weights, fresh process: only the snapshot is reused.
    warm = HashingService(ooc_net, store=ArtifactStore(
        tmp_path / "cache"), n_shards=4, max_batch=256)
    warm.load_database(corpora[N_SMALL], key={"bench": "outofcore"})
    warm_db = warm.stats()["database"]
    warm_ids, warm_dists = warm.query(queries, top_k=5)
    assert np.array_equal(cold_ids, warm_ids)
    assert np.array_equal(cold_dists, warm_dists)

    lines = [
        f"out-of-core scale: n={N_SMALL}->{N_LARGE} (10x) dim={FEATURE_DIM} "
        f"k={TOP_K} tile<=%.0f MB" % (MAX_BLOCK_BYTES / 1e6),
        f"in-memory  : peak {peak_mem[N_SMALL] / 1e6:8.1f} MB -> "
        f"{peak_mem[N_LARGE] / 1e6:8.1f} MB ({mem_growth:.2f}x, grows with n)",
        f"out-of-core: peak {peak_ooc[N_SMALL] / 1e6:8.1f} MB -> "
        f"{peak_ooc[N_LARGE] / 1e6:8.1f} MB ({ooc_growth:.2f}x, "
        f"required <= {MAX_OOC_GROWTH:.1f}x)",
        "identity   : CSR Q arrays, loss history, and codes bit-identical "
        "heap vs memmap",
        f"warm serve : encodes={warm_db['encodes']} "
        f"warm_loads={warm_db['warm_loads']} "
        f"snapshot_mmapped={warm_db['snapshot_mmapped']}",
    ]
    report = "\n".join(lines)
    print("\n" + report)
    save_result(results_dir, "outofcore_scale", report)
    assert ooc_growth <= MAX_OOC_GROWTH, report
    assert ooc_growth < mem_growth, report
    assert warm_db == {"encodes": 0, "warm_loads": 1,
                       "snapshot_mmapped": True}, report
