"""Train-scale benchmark: the vectorized training engine vs the seed loops.

Acceptance gate for the training-engine refactor, at the paper's batch size
(128) and code length (64 bits):

1. the vectorized contrastive losses must match the seed loop
   implementations (kept as ``_reference_*`` oracles in ``core/losses.py``)
   to <= 1e-9 in value and gradient in float64, both modes;
2. the new float64 engine's per-epoch loss trajectory must match a faithful
   replica of the seed trainer (loop losses, per-batch ``np.ix_`` gather,
   allocating SGD update, 3-forward CIB step) to tight tolerance;
3. float32 training must reach a final total loss within 1e-3 relative of
   float64;
4. end-to-end ``UHSCMTrainer.fit`` in the engine's throughput configuration
   (float32) must beat the seed trainer by >= 3x across both contrastive
   modes combined.

The seed classes below are frozen copies of the original implementation
(PR 1 state) and must not be "improved".
"""

from __future__ import annotations

import numpy as np

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.losses import (
    _EPS,
    _cosine_grad_to_z,
    _normalize_rows,
    _reference_cib_contrastive_loss,
    _reference_modified_contrastive_loss,
    cib_contrastive_loss,
    modified_contrastive_loss,
    quantization_loss,
    similarity_preserving_loss,
)
from repro.core.trainer import UHSCMTrainer
from repro.nn.optim import Optimizer
from repro.utils.rng import as_generator

from conftest import assert_speedup, timed

N_TRAIN = 512
FEATURE_DIM = 128
HIDDEN_DIMS = (64,)
N_BITS = 64
BATCH_SIZE = 128
EPOCHS = 3
REPEATS = 3
REQUIRED_SPEEDUP = 3.0
LOSS_TOL = 1e-9  # vectorized vs reference, float64
F32_REL_TOL = 1e-3  # float32 vs float64 final total loss


# -- faithful replica of the seed training engine (frozen for comparison) ------


def _seed_mcl_loss(z, q, lam, gamma):
    """The seed's per-row loop over Eq. 8 (per-anchor flatnonzero + fancy
    indexing), exactly as it shipped."""
    z = np.asarray(z, dtype=np.float64)
    t = z.shape[0]
    q = np.asarray(q, dtype=np.float64)
    z_hat, norms = _normalize_rows(z)
    h = z_hat @ z_hat.T
    off_diag = ~np.eye(t, dtype=bool)
    pos_mask = (q >= lam) & off_diag
    neg_mask = (q < lam) & off_diag
    exp_h = np.exp((h - h.max()) / gamma)
    neg_sum = (exp_h * neg_mask).sum(axis=1)
    loss = 0.0
    grad_h = np.zeros_like(h)
    active = 0
    for i in range(t):
        pos_idx = np.flatnonzero(pos_mask[i])
        if pos_idx.size == 0 or neg_sum[i] <= 0:
            continue
        active += 1
        a = exp_h[i, pos_idx]
        denom = a + neg_sum[i]
        r = a / denom
        loss += float(-np.log(np.maximum(r, _EPS)).mean())
        w = 1.0 / pos_idx.size
        grad_h[i, pos_idx] += w * (r - 1.0) / gamma
        neg_idx = np.flatnonzero(neg_mask[i])
        grad_h[i, neg_idx] += (w / gamma) * (1.0 / denom).sum() * exp_h[i, neg_idx]
    if active == 0:
        return 0.0, np.zeros_like(z)
    return loss / t, _cosine_grad_to_z(z_hat, norms, grad_h / t)


def _seed_cib_loss(z1, z2, gamma):
    """The seed's double loop over Eq. 10, including the per-anchor
    ``flatnonzero``-over-``arange(2t)`` negatives construction."""
    z1 = np.asarray(z1, dtype=np.float64)
    z2 = np.asarray(z2, dtype=np.float64)
    t = z1.shape[0]
    z = np.concatenate([z1, z2], axis=0)
    z_hat, norms = _normalize_rows(z)
    h = z_hat @ z_hat.T
    exp_h = np.exp((h - h.max()) / gamma)
    np.fill_diagonal(exp_h, 0.0)
    loss = 0.0
    grad_h = np.zeros_like(h)
    for i in range(t):
        j = i + t
        for anchor, positive in ((i, j), (j, i)):
            denom = exp_h[anchor].sum()
            r = exp_h[anchor, positive] / np.maximum(denom, _EPS)
            loss += float(-np.log(np.maximum(r, _EPS)))
            grad_h[anchor, positive] += (r - 1.0) / gamma
            others = np.flatnonzero(
                (np.arange(2 * t) != anchor) & (np.arange(2 * t) != positive)
            )
            grad_h[anchor, others] += exp_h[anchor, others] / denom / gamma
    loss /= 2 * t
    grad_h /= 2 * t
    grad_z = _cosine_grad_to_z(z_hat, norms, grad_h)
    return loss, grad_z[:t], grad_z[t:]


class _SeedSGD(Optimizer):
    """The seed SGD step: fresh ``grad + wd*w`` temporary every parameter."""

    def __init__(self, parameters, learning_rate, momentum, weight_decay):
        super().__init__(parameters, learning_rate)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay > 0 and p.weight_decay_enabled:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.learning_rate * v


class _SeedTrainer:
    """The seed ``UHSCMTrainer.fit`` loop: float64 only, per-batch
    ``np.ix_`` similarity gather, per-term cosine forward/backward in the
    objective, and a third forward in the CIB step."""

    AUGMENT_STD = UHSCMTrainer.AUGMENT_STD

    def __init__(self, network, config, contrastive):
        self.network = network
        self.config = config
        self.contrastive = contrastive
        self.rng = as_generator(config.seed)
        train = config.train
        self.optimizer = _SeedSGD(
            network.parameters(), train.learning_rate, train.momentum,
            train.weight_decay,
        )

    def fit(self, inputs, similarity, epochs):
        inputs = np.asarray(inputs, dtype=np.float64)
        n = inputs.shape[0]
        batch_size = min(self.config.train.batch_size, n)
        totals = []
        self.network.train()
        for _ in range(epochs):
            order = self.rng.permutation(n)
            epoch_totals = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                if idx.size < 2:
                    continue
                q_batch = similarity[np.ix_(idx, idx)]
                if self.contrastive == "mcl":
                    epoch_totals.append(self._step_mcl(inputs[idx], q_batch))
                else:
                    epoch_totals.append(self._step_cib(inputs[idx], q_batch))
            totals.append(float(np.mean(epoch_totals)))
        return totals

    def _step_mcl(self, batch, q_batch):
        cfg = self.config
        z = self.network.forward(batch)
        ls, grad_s = similarity_preserving_loss(z, q_batch)
        lc, grad_c = _seed_mcl_loss(z, q_batch, cfg.lam, cfg.gamma)
        lq, grad_q = quantization_loss(z)
        self.optimizer.zero_grad()
        self.network.backward(grad_s + cfg.alpha * grad_c + cfg.beta * grad_q)
        self.optimizer.step()
        return ls + cfg.alpha * lc + cfg.beta * lq

    def _step_cib(self, batch, q_batch):
        cfg = self.config
        view1 = batch + self.rng.normal(size=batch.shape) * self.AUGMENT_STD
        view2 = batch + self.rng.normal(size=batch.shape) * self.AUGMENT_STD
        z1 = self.network.forward(view1)
        ls, grad_s = similarity_preserving_loss(z1, q_batch)
        lq, grad_q = quantization_loss(z1)
        z2 = self.network.forward(view2)
        jc, grad_c1, grad_c2 = _seed_cib_loss(z1, z2, gamma=cfg.gamma)
        self.optimizer.zero_grad()
        self.network.backward(cfg.alpha * grad_c2)
        self.network.forward(view1)  # the redundant third forward
        self.network.backward(grad_s + cfg.beta * grad_q + cfg.alpha * grad_c1)
        self.optimizer.step()
        return ls + cfg.alpha * jc + cfg.beta * lq


# -- benchmark -----------------------------------------------------------------


def _make_data(seed=3):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(N_TRAIN, FEATURE_DIM))
    labels = rng.integers(0, 10, size=N_TRAIN)
    q = (labels[:, None] == labels[None, :]).astype(np.float64)
    return features, q

def _make_network(dtype):
    return HashingNetwork(
        N_BITS, mode="feature", feature_extractor=lambda x: x,
        feature_dim=FEATURE_DIM, hidden_dims=HIDDEN_DIMS, rng=0, dtype=dtype,
    )


def _make_config(dtype):
    return UHSCMConfig(
        n_bits=N_BITS,
        train=TrainConfig(batch_size=BATCH_SIZE, epochs=EPOCHS, dtype=dtype),
    )


def _check_loss_equivalence():
    """Vectorized losses vs the seed loop oracles: <= 1e-9, value + grad."""
    rng = np.random.default_rng(17)
    z = rng.normal(size=(BATCH_SIZE, N_BITS))
    q = rng.random((BATCH_SIZE, BATCH_SIZE))
    q = (q + q.T) / 2
    np.fill_diagonal(q, 1.0)
    value, grad = modified_contrastive_loss(z, q, lam=0.6, gamma=0.2)
    ref_value, ref_grad = _reference_modified_contrastive_loss(
        z, q, lam=0.6, gamma=0.2
    )
    assert abs(value - ref_value) <= LOSS_TOL
    np.testing.assert_allclose(grad, ref_grad, atol=LOSS_TOL, rtol=0)

    z2 = rng.normal(size=(BATCH_SIZE, N_BITS))
    value, g1, g2 = cib_contrastive_loss(z, z2, gamma=0.2)
    ref_value, r1, r2 = _reference_cib_contrastive_loss(z, z2, gamma=0.2)
    assert abs(value - ref_value) <= LOSS_TOL
    np.testing.assert_allclose(g1, r1, atol=LOSS_TOL, rtol=0)
    np.testing.assert_allclose(g2, r2, atol=LOSS_TOL, rtol=0)


def test_bench_train_scale(results_dir):
    _check_loss_equivalence()
    features, q = _make_data()

    lines = [
        f"training engine scale: n={N_TRAIN} dim={FEATURE_DIM} "
        f"hidden={HIDDEN_DIMS} bits={N_BITS} batch={BATCH_SIZE} "
        f"epochs={EPOCHS} best-of-{REPEATS}",
    ]
    seed_total = 0.0
    new_total = 0.0
    for mode in ("mcl", "cib"):
        t_seed, seed_history = timed(
            lambda m=mode: _SeedTrainer(
                _make_network("float64"), _make_config("float64"), m
            ).fit(features, q, EPOCHS),
            repeats=REPEATS,
        )
        t_f64, hist64 = timed(
            lambda m=mode: UHSCMTrainer(
                _make_network("float64"), _make_config("float64"), contrastive=m
            ).fit(features, q, epochs=EPOCHS),
            repeats=REPEATS,
        )
        t_f32, hist32 = timed(
            lambda m=mode: UHSCMTrainer(
                _make_network("float32"), _make_config("float32"), contrastive=m
            ).fit(features, q, epochs=EPOCHS),
            repeats=REPEATS,
        )

        # The float64 engine walks the seed's loss trajectory.
        np.testing.assert_allclose(
            hist64.total, seed_history, rtol=1e-9, atol=1e-12
        )
        # float32 lands on the same optimum to ~1e-3 relative.
        f32_rel = abs(hist32.total[-1] - hist64.total[-1]) / abs(hist64.total[-1])
        assert f32_rel <= F32_REL_TOL, (
            f"{mode}: float32 final loss off by {f32_rel:.2e} relative"
        )

        n_steps = sum(hist64.batches)
        lines += [
            f"{mode} seed loop : {t_seed * 1e3:9.1f} ms "
            f"({t_seed / n_steps * 1e3:6.2f} ms/step)",
            f"{mode} vec f64   : {t_f64 * 1e3:9.1f} ms "
            f"({t_f64 / n_steps * 1e3:6.2f} ms/step, "
            f"{t_seed / t_f64:.1f}x, trajectory matches seed <= 1e-9)",
            f"{mode} vec f32   : {t_f32 * 1e3:9.1f} ms "
            f"({t_f32 / n_steps * 1e3:6.2f} ms/step, {t_seed / t_f32:.1f}x, "
            f"final loss within {f32_rel:.1e} of f64)",
        ]
        seed_total += t_seed
        new_total += t_f32

    lines.append(
        "losses   : vectorized == reference oracles <= 1e-9 (value + grad)"
    )
    assert_speedup(
        results_dir,
        "train_scale",
        seed_total,
        new_total,
        REQUIRED_SPEEDUP,
        lines=lines,
    )
