"""Serving-scale retrieval benchmark: vectorized MIH vs the seed hot path.

Acceptance gate for the serving-layer refactor: at 10k database codes and
64 bits, the vectorized :class:`MultiIndexHammingIndex` (bulk-packbits
bucket build, packed-popcount candidate verification, build-time-only
validation) must beat a faithful replica of the seed implementation
(per-row Python keying, per-query float BLAS verification with repeated
``np.unique`` validation, double distance computation in the top-k loop)
by >= 5x on build + batch search — while staying bit-identical to the
brute-force :class:`HammingIndex` on the same queries.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.retrieval.engine import HammingIndex
from repro.retrieval.multi_index import (
    MultiIndexHammingIndex,
    _keys_within_radius,
    _split_points,
    _substring_key,
)

from conftest import assert_speedup, timed

N_DB = 10_000
N_BITS = 64
N_QUERIES = 50
TOP_K = 10
N_TABLES = 4
REQUIRED_SPEEDUP = 5.0


# -- faithful replica of the seed implementation (frozen for comparison) -------


def _seed_check_binary_codes(codes, name="codes"):
    arr = np.asarray(codes).astype(np.float64, copy=False)
    values = np.unique(arr)  # the per-call sort-scan the refactor removed
    assert np.all(np.isin(values, (-1.0, 1.0)))
    return arr


def _seed_hamming_distance_matrix(a, b):
    a = _seed_check_binary_codes(a, "a")
    b = _seed_check_binary_codes(b, "b")
    k = a.shape[1]
    return (k - a @ b.T) / 2.0


class _SeedMultiIndex:
    """The seed MultiIndexHammingIndex, trimmed to build + top-k search."""

    def __init__(self, n_bits, n_tables):
        self.n_bits = n_bits
        self.n_tables = n_tables
        self._spans = _split_points(n_bits, n_tables)
        self._tables = None
        self._codes = None

    def add(self, codes):
        codes = _seed_check_binary_codes(codes)
        bools = codes > 0
        tables = []
        for start, end in self._spans:
            table = defaultdict(list)
            for row, bits in enumerate(bools[:, start:end]):
                table[_substring_key(bits)].append(row)
            tables.append(dict(table))
        self._tables = tables
        self._codes = codes
        return self

    def _candidates(self, query_bits, radius):
        per_table_radius = radius // self.n_tables
        found = set()
        for (start, end), table in zip(self._spans, self._tables):
            width = end - start
            probe_radius = min(per_table_radius, width)
            key = _substring_key(query_bits[start:end])
            for candidate_key in _keys_within_radius(key, width, probe_radius):
                found.update(table.get(candidate_key, ()))
        return np.fromiter(found, dtype=np.int64, count=len(found))

    def search(self, query_codes, top_k):
        query_codes = _seed_check_binary_codes(query_codes)
        out_idx = np.empty((query_codes.shape[0], top_k), dtype=np.int64)
        out_dist = np.empty((query_codes.shape[0], top_k))
        query_bools = query_codes > 0
        for qi in range(query_codes.shape[0]):
            radius = self.n_tables
            candidates = self._candidates(query_bools[qi], 0)
            while True:
                if candidates.size >= top_k or radius > self.n_bits:
                    distances = (
                        _seed_hamming_distance_matrix(
                            query_codes[qi : qi + 1], self._codes[candidates]
                        )[0]
                        if candidates.size
                        else np.empty(0)
                    )
                    guaranteed = min(radius - 1, self.n_bits)
                    within = candidates[distances <= guaranteed]
                    if within.size >= top_k or radius > self.n_bits:
                        break
                candidates = self._candidates(query_bools[qi],
                                              min(radius, self.n_bits))
                radius += self.n_tables
            distances = _seed_hamming_distance_matrix(
                query_codes[qi : qi + 1], self._codes[candidates]
            )[0]
            order = np.lexsort((candidates, distances))[:top_k]
            out_idx[qi] = candidates[order]
            out_dist[qi] = distances[order]
        return out_idx, out_dist


# -- benchmark -----------------------------------------------------------------


def _random_codes(n, k, seed):
    rng = np.random.default_rng(seed)
    return np.where(rng.random((n, k)) < 0.5, -1.0, 1.0)


def test_bench_retrieval_scale(results_dir):
    db = _random_codes(N_DB, N_BITS, seed=11)
    queries = _random_codes(N_QUERIES, N_BITS, seed=12)

    seed_build, seed_index = timed(lambda: _SeedMultiIndex(N_BITS, N_TABLES).add(db))
    seed_search, (seed_idx, seed_dist) = timed(
        lambda: seed_index.search(queries, top_k=TOP_K)
    )

    new_build, mih = timed(
        lambda: MultiIndexHammingIndex(N_BITS, n_tables=N_TABLES).add(db)
    )
    new_search, (new_idx, new_dist) = timed(lambda: mih.search(queries, top_k=TOP_K))

    # Bit-identical to the brute-force reference (and to the seed MIH).
    brute_idx, brute_dist = HammingIndex(N_BITS).add(db).search(
        queries, top_k=TOP_K
    )
    np.testing.assert_array_equal(new_idx, brute_idx)
    np.testing.assert_array_equal(new_dist, brute_dist)
    np.testing.assert_array_equal(seed_idx, brute_idx)
    np.testing.assert_array_equal(seed_dist, brute_dist)

    seed_total = seed_build + seed_search
    new_total = new_build + new_search
    assert_speedup(
        results_dir,
        "retrieval_scale",
        seed_total,
        new_total,
        REQUIRED_SPEEDUP,
        lines=[
            f"retrieval serving scale: n={N_DB} bits={N_BITS} "
            f"queries={N_QUERIES} top_k={TOP_K} tables={N_TABLES}",
            f"seed MIH : build {seed_build * 1e3:9.1f} ms   "
            f"search {seed_search * 1e3:9.1f} ms   total {seed_total * 1e3:9.1f} ms",
            f"new  MIH : build {new_build * 1e3:9.1f} ms   "
            f"search {new_search * 1e3:9.1f} ms   total {new_total * 1e3:9.1f} ms",
            "agreement: bit-identical to brute-force HammingIndex",
        ],
    )
