"""Benchmark: regenerate Figure 3 (PR curves via Hamming-radius sweep)."""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.experiments import run_figure3


def _area_under_pr(recall: np.ndarray, precision: np.ndarray) -> float:
    return float(np.trapezoid(precision, recall))


def test_figure3(benchmark, results_dir):
    panels = benchmark.pedantic(
        run_figure3,
        kwargs=dict(scale=BENCH_SCALE),
        rounds=1,
        iterations=1,
    )
    lines = []
    for (dataset, bits), family in panels.items():
        lines.append(family.render())
        aucs = {
            m: _area_under_pr(family.x_values[m], family.y_values[m])
            for m in family.methods
        }
        ranked = sorted(aucs, key=aucs.get, reverse=True)
        lines.append(
            "  -> PR-AUC ranking: "
            + "  ".join(f"{m}={aucs[m]:.3f}" for m in ranked)
        )
        lines.append("")
        benchmark.extra_info[f"best_auc_{dataset}_{bits}"] = ranked[0]
    save_result(results_dir, "figure3", "\n".join(lines))
