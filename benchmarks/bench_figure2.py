"""Benchmark: regenerate Figure 2 (P@N curves at 64 and 128 bits)."""

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.experiments import run_figure2


def test_figure2(benchmark, results_dir):
    panels = benchmark.pedantic(
        run_figure2,
        kwargs=dict(scale=BENCH_SCALE),
        rounds=1,
        iterations=1,
    )
    lines = []
    for (dataset, bits), family in panels.items():
        lines.append(family.render())
        lines.append("")
        # Shape check: UHSCM's curve should dominate at small N.
        first_points = {
            m: family.y_values[m][0] for m in family.methods
        }
        best = max(first_points, key=first_points.get)
        lines.append(f"  -> best P@100 on {dataset}@{bits}: {best}")
        lines.append("")
        benchmark.extra_info[f"best_p100_{dataset}_{bits}"] = best
    save_result(results_dir, "figure2", "\n".join(lines))
