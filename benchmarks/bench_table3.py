"""Benchmark: regenerate Table 3 (time consumption per method).

The paper's relative claims: BGAN and MLS3RDUH are the expensive methods
(extra adversarial/generative updates; O(n^2) manifold diffusion), while
UHSCM's cost is comparable to SSDH / GH / CIB.
"""

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.experiments import PAPER_TABLE3_MINUTES, run_table3


def _guidance_scaling_probe() -> list[str]:
    """Time MLS3RDUH's manifold-diffusion guidance at two training-set sizes
    to exhibit the super-linear growth that dominates at paper scale."""
    import numpy as np

    from repro.baselines.mls3rduh import MLS3RDUH
    from repro.utils.timer import Timer

    lines = ["", "MLS3RDUH guidance-construction scaling (the paper-scale "
                 "bottleneck):"]
    rng = np.random.default_rng(0)
    times = {}
    for n in (400, 1600):
        features = rng.normal(size=(n, 64))
        method = MLS3RDUH.__new__(MLS3RDUH)  # probe only _manifold_similarity
        timer = Timer()
        from repro.utils.mathops import cosine_similarity_matrix

        cosine = cosine_similarity_matrix(features)
        with timer:
            method._manifold_similarity(cosine)
        times[n] = timer.elapsed
        lines.append(f"  n={n:5d}: {timer.elapsed:7.3f}s")
    ratio = times[1600] / max(times[400], 1e-9)
    lines.append(
        f"  4x training set -> {ratio:.1f}x guidance cost "
        f"(superlinear; extrapolates to the slowest method at n=10,500)"
    )
    return lines


def test_table3(benchmark, results_dir):
    table = benchmark.pedantic(
        run_table3,
        kwargs=dict(scale=BENCH_SCALE, n_bits=64),
        rounds=1,
        iterations=1,
    )
    lines = [table.render(), "", "paper-vs-measured (relative cost):"]
    for method, row in table.seconds.items():
        for dataset, seconds in row.items():
            paper = PAPER_TABLE3_MINUTES[method][dataset]
            lines.append(
                f"  {method:10s} {dataset:10s} measured={seconds:7.2f}s  "
                f"paper={paper:6.1f}min"
            )
    lines.extend(_guidance_scaling_probe())
    save_result(results_dir, "table3", "\n".join(lines))
    for method, row in table.seconds.items():
        benchmark.extra_info[f"seconds_{method}"] = round(
            sum(row.values()), 2
        )
