"""Benchmark: regenerate Figure 6 (top-10 retrieval quality on CIFAR10)."""

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.experiments import run_figure6


def test_figure6(benchmark, results_dir):
    result = benchmark.pedantic(
        run_figure6,
        kwargs=dict(scale=BENCH_SCALE, n_bits=64, n_queries=20),
        rounds=1,
        iterations=1,
    )
    lines = [result.render(max_queries=5), ""]
    best = max(result.precision_at_10, key=result.precision_at_10.get)
    lines.append(f"-> fewest fault images: {best} (paper: UHSCM)")
    save_result(results_dir, "figure6", "\n".join(lines))
    benchmark.extra_info["best_p10_method"] = best
    for method, value in result.precision_at_10.items():
        benchmark.extra_info[f"p10_{method}"] = round(value, 4)
