"""Fault-scale benchmark: availability and recovery under a seeded outage.

Acceptance gates for the PR 7 resilience layer, at a 4k-row 32-bit
database across 4 shards, driven through :class:`HashingService` with one
:class:`~repro.utils.faults.FaultInjector` schedule spanning every
component (store reads, shard fan-out, encode forwards):

1. **availability** — with shard 1 permanently dead and seeded encode
   failures injected, every query either answers (possibly flagged
   degraded) or raises a *typed* :class:`~repro.errors.ReproError`; zero
   requests hang (the batcher ends every phase with no pending ticket);
2. **exactness** — queries that hit no fault (before the outage and after
   recovery) return results bit-identical to an unfaulted run, and even
   *degraded* answers are bit-identical to a bruteforce search over the
   surviving shards' rows (padded tail positions excepted);
3. **recovery** — once the schedule disarms and the breaker reset timeout
   passes, the shard circuits close, ``health()`` returns to ``ok``, and
   answers are bit-identical to the unfaulted run again;
4. **integrity** — a corrupted on-disk snapshot is quarantined (not
   deleted) and rebuilt exactly once, and a transient read fault schedule
   is absorbed by the store's retry policy with zero re-encodes, both
   asserted via the store's persisted counters.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashing_network import HashingNetwork
from repro.errors import ReproError, TransientError
from repro.pipeline import ArtifactStore
from repro.retrieval import make_backend
from repro.serving import INDEX_STAGE, HashingService
from repro.utils import FaultInjector, RetryPolicy

from conftest import save_result

N_DB = 4096
N_BITS = 32
DIM = 32
N_QUERIES = 60  # per phase: healthy / faulted / recovered
TOP_K = 10
N_SHARDS = 4
DEAD_SHARD = 1
ENCODE_FAULT_RATE = 0.2
BREAKER_RESET_S = 30.0

DB_KEY = {"bench": "fault_scale", "n": N_DB, "dim": DIM, "seed": 23}


class FakeClock:
    """Injectable monotonic clock so breaker recovery needs no wall time."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _network() -> HashingNetwork:
    return HashingNetwork(
        N_BITS, mode="feature", feature_extractor=lambda x: x,
        feature_dim=DIM, rng=0,
    )


def _service(store, faults, clock) -> HashingService:
    return HashingService(
        _network(), store=store, n_shards=N_SHARDS,
        shard_backend="bruteforce", faults=faults, clock=clock,
        backend_options={"breaker_threshold": 3,
                         "breaker_reset_s": BREAKER_RESET_S},
    )


def _no_sleep_retry() -> RetryPolicy:
    return RetryPolicy(sleep=lambda s: None)


def test_bench_fault_scale(results_dir, tmp_path):
    rng = np.random.default_rng(23)
    db = rng.normal(size=(N_DB, DIM))
    queries = rng.normal(size=(3 * N_QUERIES, DIM))

    # -- unfaulted reference: bruteforce over the full database ---------------
    encoder = _network()
    db_codes = encoder.encode(db)
    reference = make_backend("bruteforce", N_BITS)
    reference.add(db_codes)
    ref_ids, ref_dist = reference.search(encoder.encode(queries), top_k=TOP_K)

    # The degraded-mode reference: bruteforce over the surviving shards'
    # rows only (hash partitioning assigns internal id i to shard i % 4).
    alive = np.flatnonzero(np.arange(N_DB) % N_SHARDS != DEAD_SHARD)
    partial = make_backend("bruteforce", N_BITS)
    partial.add(db_codes[alive])
    part_pos, part_dist = partial.search(
        encoder.encode(queries), top_k=TOP_K
    )
    part_ids = alive[part_pos]

    # -- the faulted service --------------------------------------------------
    clock = FakeClock()
    faults = FaultInjector(seed=7)
    faults.rule("shard.search", match={"shard": DEAD_SHARD})  # dead shard
    faults.rule("encode.forward", rate=ENCODE_FAULT_RATE)
    store = ArtifactStore(tmp_path / "cache", retry=_no_sleep_retry(),
                          faults=faults)
    service = _service(store, faults, clock)
    service.load_database(db, key=DB_KEY)  # builds the snapshot, unfaulted

    def drive(phase_queries):
        """One query at a time: (answers, errors) with no request lost."""
        answers, errors = [], []
        for qi, row in enumerate(phase_queries):
            clock.advance(0.001)
            try:
                ids, dist = service.query(row, top_k=TOP_K)
            except ReproError as exc:
                errors.append((qi, exc))
            else:
                answers.append((qi, service.last_query_degraded, ids, dist))
            assert service.batcher.stats()["pending"] == 0  # no hung ticket
        return answers, errors

    # -- phase 1: healthy -----------------------------------------------------
    ok, errs = drive(queries[:N_QUERIES])
    assert not errs and not any(degraded for _, degraded, _, _ in ok)
    for qi, _, ids, dist in ok:
        np.testing.assert_array_equal(ids[0], ref_ids[qi])
        np.testing.assert_array_equal(dist[0], ref_dist[qi])
    assert service.health()["status"] == "ok"

    # -- phase 2: armed outage ------------------------------------------------
    faults.arm()
    ok2, errs2 = drive(queries[N_QUERIES:2 * N_QUERIES])
    faults.disarm()
    # gate 1: every request resolved, every error typed, none hung.
    assert len(ok2) + len(errs2) == N_QUERIES
    assert all(isinstance(exc, TransientError) for _, exc in errs2)
    assert errs2, "the seeded schedule must inject encode failures"
    assert service.batcher.stats()["poisoned"] == len(errs2)
    # gate 2 (degraded exactness): answers under the dead shard match the
    # bruteforce reference over the surviving shards, bit for bit.
    assert ok2 and all(degraded for _, degraded, _, _ in ok2)
    for qi, _, ids, dist in ok2:
        np.testing.assert_array_equal(ids[0], part_ids[N_QUERIES + qi])
        np.testing.assert_array_equal(dist[0], part_dist[N_QUERIES + qi])
    health = service.health()
    assert health["status"] == "degraded"
    open_circuits = [c for c in health["circuits"] if c["state"] != "closed"]
    assert [c["shard"] for c in open_circuits] == [DEAD_SHARD]

    # -- phase 3: recovery ----------------------------------------------------
    clock.advance(BREAKER_RESET_S + 1.0)  # breaker timeout -> half-open probe
    ok3, errs3 = drive(queries[2 * N_QUERIES:])
    assert not errs3 and not any(degraded for _, degraded, _, _ in ok3)
    for qi, _, ids, dist in ok3:
        np.testing.assert_array_equal(ids[0], ref_ids[2 * N_QUERIES + qi])
        np.testing.assert_array_equal(dist[0], ref_dist[2 * N_QUERIES + qi])
    recovered = service.health()
    assert recovered["status"] == "ok" and not recovered["degraded"]

    # -- gate 4a: corrupt snapshot -> quarantined + rebuilt exactly once ------
    snapshot = next(p for p in (store.cache_dir / "objects").glob("*.npz"))
    blob = bytearray(snapshot.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    snapshot.write_bytes(bytes(blob))

    rebuild_store = ArtifactStore(store.cache_dir, retry=_no_sleep_retry())
    rebuilt = _service(rebuild_store, FaultInjector(), FakeClock())
    rebuilt.load_database(db, key=DB_KEY)
    rb = rebuild_store.stats()
    assert rebuilt.stats()["database"]["encodes"] == 1  # rebuilt once
    assert rb["corruptions"] == 1 and rb["quarantined"] == 1
    assert rb["quarantine_entries"] == 1  # preserved for forensics
    stage = rb["stages"][INDEX_STAGE]
    assert stage["corruptions"] == 1 and stage["quarantined"] == 1

    # -- gate 4b: transient read faults absorbed by retries, zero re-encodes -
    read_faults = FaultInjector(seed=11).arm()
    # A rule that fires short-circuits the later ones, so two nth=1 rules
    # fail exactly the first two attempts: attempt 3 reads clean.
    read_faults.rule("store.read", nth=1)
    read_faults.rule("store.read", nth=1)
    warm_store = ArtifactStore(store.cache_dir, retry=_no_sleep_retry(),
                               faults=read_faults)
    warm = _service(warm_store, FaultInjector(), FakeClock())
    warm.load_database(db, key=DB_KEY)
    ws = warm_store.stats()
    assert warm.stats()["database"]["warm_loads"] == 1  # no rebuild
    assert ws["retries"] == 2 and ws["read_failures"] == 0

    degraded_n = sum(1 for _, degraded, _, _ in ok2 if degraded)
    save_result(
        results_dir,
        "fault_scale",
        "\n".join([
            f"fault scale: n={N_DB} bits={N_BITS} shards={N_SHARDS} "
            f"queries={3 * N_QUERIES} top_k={TOP_K}",
            f"outage    : shard {DEAD_SHARD} dead + encode faults at "
            f"rate {ENCODE_FAULT_RATE} (seeded)",
            f"phase 2   : {len(ok2)} answered ({degraded_n} degraded) + "
            f"{len(errs2)} typed errors = {N_QUERIES} requests, 0 hung",
            "exactness : healthy + recovered phases bit-identical to the "
            "unfaulted run; degraded answers bit-identical to the "
            "surviving-shard reference",
            f"recovery  : circuits closed after {BREAKER_RESET_S:.0f}s "
            f"reset, health {recovered['status']!r}",
            f"integrity : corrupt snapshot quarantined+rebuilt once "
            f"(corruptions={rb['corruptions']} quarantined="
            f"{rb['quarantined']}), transient reads absorbed "
            f"(retries={ws['retries']})",
        ]) + "\n",
    )
