"""Pipeline-scale benchmark: the staged artifact store vs. from-scratch runs.

The workload is the multi-bit-width UHSCM sweep every table/figure runner
performs: 2 datasets × {16, 32, 64, 128} bits, each cell fitted and fully
evaluated (MAP + P@N).  Three passes run the identical sweep:

1. **uncached** — no store; every cell re-mines Q and trains from scratch
   (the pre-pipeline behaviour);
2. **cold store** — a fresh on-disk :class:`~repro.pipeline.ArtifactStore`;
   Q is mined once per dataset and shared across all four bit widths
   (asserted via the per-stage counters: one ``mine`` miss per dataset,
   hits for every other bit width);
3. **warm store** — the same store again; every (method, n_bits) cell
   replays from its encode artifact, which is exactly what a resumed
   ``table1 --resume`` run does per finished cell.

Gate: the warm-cache sweep must be **≥2x** faster than the uncached sweep,
and every pass's mAP / precision@N reports must be *bit-identical* — the
cache must never change a single reported number.  The cold-store pass is
reported alongside (its win is bounded by the mine/train cost ratio, so it
is informational, not gated).

Run::

    cd benchmarks && PYTHONPATH=../src python -m pytest -q bench_pipeline_scale.py
"""

from __future__ import annotations

from conftest import BENCH_SCALE, assert_speedup, timed

from repro.experiments.runner import ExperimentContext
from repro.pipeline import ArtifactStore

DATASETS: tuple[str, ...] = ("cifar10", "nuswide")
BIT_LENGTHS: tuple[int, ...] = (16, 32, 64, 128)
#: Epochs per fit; sized so training dominates the sweep the way it does at
#: full reproduction scale (whose default is 60).
EPOCHS = 40
REQUIRED_SPEEDUP = 2.0


def _run_sweep(store: ArtifactStore | None) -> dict:
    """Fit + evaluate every (dataset, bits) cell; returns the full reports."""
    reports: dict[tuple[str, int], dict] = {}
    for dataset in DATASETS:
        ctx = ExperimentContext(dataset, scale=BENCH_SCALE, seed=0,
                                epochs=EPOCHS, store=store)
        for bits in BIT_LENGTHS:
            fit = ctx.fit("UHSCM", bits)
            report = ctx.evaluate(fit)
            reports[(dataset, bits)] = {
                "map": report.map,
                "precision_at_n": dict(report.precision_at_n),
            }
    return reports


def _assert_bit_identical(reference: dict, candidate: dict, label: str) -> None:
    assert reference.keys() == candidate.keys(), label
    for cell, expected in reference.items():
        got = candidate[cell]
        assert got["map"] == expected["map"], (
            f"{label}: mAP differs at {cell}: {got['map']!r} vs "
            f"{expected['map']!r}"
        )
        assert got["precision_at_n"] == expected["precision_at_n"], (
            f"{label}: P@N differs at {cell}"
        )


def test_pipeline_scale_speedup(results_dir, tmp_path):
    t_uncached, reports_uncached = timed(lambda: _run_sweep(None))

    store = ArtifactStore(tmp_path / "artifact-cache")
    t_cold, reports_cold = timed(lambda: _run_sweep(store))
    cold_stats = store.stats()
    # Q reuse within one run: each dataset mines once, the other three bit
    # widths replay the mine -> denoise -> build_q chain from the store.
    assert cold_stats["stages"]["mine"]["misses"] == len(DATASETS)
    assert cold_stats["stages"]["mine"]["hits"] == (
        len(DATASETS) * (len(BIT_LENGTHS) - 1)
    )
    assert cold_stats["stages"]["train"]["misses"] == (
        len(DATASETS) * len(BIT_LENGTHS)
    )

    t_warm, reports_warm = timed(lambda: _run_sweep(store))
    warm_stats = store.stats()
    assert warm_stats["stages"]["encode"]["hits"] >= (
        len(DATASETS) * len(BIT_LENGTHS)
    )

    _assert_bit_identical(reports_uncached, reports_cold, "cold store")
    _assert_bit_identical(reports_uncached, reports_warm, "warm store")

    cells = len(DATASETS) * len(BIT_LENGTHS)
    assert_speedup(
        results_dir,
        "pipeline_scale",
        baseline_seconds=t_uncached,
        candidate_seconds=t_warm,
        required=REQUIRED_SPEEDUP,
        lines=[
            "pipeline scale: "
            f"{len(DATASETS)} datasets x {BIT_LENGTHS} bits "
            f"({cells} UHSCM cells, scale {BENCH_SCALE}, {EPOCHS} epochs)",
            f"uncached : {t_uncached * 1e3:8.1f} ms (mine+train per cell)",
            f"cold     : {t_cold * 1e3:8.1f} ms (Q mined once per dataset, "
            f"{t_uncached / t_cold:.2f}x vs uncached)",
            f"warm     : {t_warm * 1e3:8.1f} ms (every cell replayed)",
            "reports  : bit-identical across all three passes",
        ],
    )
