"""Benchmark: regenerate Table 1 (MAP, 10 methods x 3 datasets x 4 widths).

Shape claims checked against the paper: UHSCM best on every dataset at every
width; the CIFAR10 margin is the largest; the shallow methods trail.
"""

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.config import PAPER_BIT_LENGTHS
from repro.experiments import PAPER_TABLE1, run_table1


def test_table1(benchmark, results_dir):
    table = benchmark.pedantic(
        run_table1,
        kwargs=dict(scale=BENCH_SCALE, bit_lengths=PAPER_BIT_LENGTHS),
        rounds=1,
        iterations=1,
    )
    lines = [table.render(), "", "paper-vs-measured (MAP):"]
    for dataset in table.datasets:
        for method in table.methods:
            for i, bits in enumerate(table.bit_lengths):
                measured = table.value(method, dataset, bits)
                paper = PAPER_TABLE1[dataset][method][i]
                lines.append(
                    f"  {dataset:10s} {method:10s} {bits:4d} bits  "
                    f"measured={measured:.3f}  paper={paper:.3f}"
                )
    save_result(results_dir, "table1", "\n".join(lines))

    # Headline shape assertions.
    for dataset in table.datasets:
        for bits in table.bit_lengths:
            best = max(table.methods,
                       key=lambda m: table.value(m, dataset, bits))
            benchmark.extra_info[f"best_{dataset}_{bits}"] = best
    benchmark.extra_info["uhscm_cifar_64"] = table.value("UHSCM", "cifar10", 64)
