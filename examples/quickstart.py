"""Quickstart: train UHSCM on the synthetic CIFAR10 analogue and evaluate.

Run:  python examples/quickstart.py
"""

from repro import UHSCM, paper_config
from repro.datasets import load_dataset
from repro.retrieval import HammingIndex, evaluate_hashing
from repro.vlp import SimCLIP


def main() -> None:
    # 1. Load a dataset (5% of the paper's split sizes — CPU-friendly).
    data = load_dataset("cifar10", scale=0.05, seed=7)
    print(
        f"dataset: {data.name}  train={data.n_train} "
        f"query={data.n_query} database={data.n_database}"
    )

    # 2. Build the VLP model over the same semantic world as the dataset
    #    (the stand-in for downloading pretrained CLIP weights).
    clip = SimCLIP(data.world)

    # 3. Train UHSCM with the paper's CIFAR10 hyper-parameters at 64 bits.
    model = UHSCM(paper_config("cifar10", n_bits=64), clip=clip)
    model.fit(data.train_images)
    print(f"denoised concept set: {len(model.mined_concepts)} concepts kept")
    print(f"final training loss: {model.history_.total[-1]:.4f}")

    # 4. Evaluate with the paper's protocol (MAP, P@N, PR curve).
    report = evaluate_hashing(model, data)
    print(report)

    # 5. Serve queries through the bit-packed Hamming index.
    index = HammingIndex(64).add(model.encode(data.database_images))
    top_idx, top_dist = index.search(model.encode(data.query_images[:3]),
                                     top_k=5)
    for qi, (ids, dists) in enumerate(zip(top_idx, top_dist)):
        print(f"query {qi}: top-5 database ids {ids.tolist()} "
              f"at Hamming distances {dists.tolist()}")
    print(f"index stores {len(index)} codes in {index.storage_bytes} bytes")


if __name__ == "__main__":
    main()
