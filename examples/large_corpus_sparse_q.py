"""Large-corpus walkthrough: sparse Q → train → encode → serve, at 50k rows.

A dense semantic similarity matrix at 50,000 rows would be
50,000² × 8 bytes = 20 GB — far past what `cosine_similarity_matrix` can
materialize on a workstation.  The blocked sparse top-k engine keeps only
the k strongest entries per row (plus the diagonal) and never allocates
n², so the same corpus fits in a few hundred MB end to end:

1. build Q in top-k CSR form with `SparseTopKSimilarity.from_features`;
2. train the hashing network against it with `UHSCMTrainer` (batch blocks
   are gathered straight from the CSR rows);
3. encode the corpus in bounded-memory chunks;
4. stand the codes up behind the sharded `HashingService` and query it.

Run:  python examples/large_corpus_sparse_q.py [n_rows]
"""

import sys
import time

import numpy as np

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.similarity_matrix import SparseTopKSimilarity
from repro.core.trainer import UHSCMTrainer
from repro.serving import HashingService

N_ROWS = 50_000
FEATURE_DIM = 64
N_CLUSTERS = 25
TOP_K = 32
N_BITS = 32


def make_corpus(n_rows: int, rng: np.random.Generator) -> np.ndarray:
    """Clustered unit-norm features standing in for a mined corpus."""
    centers = rng.normal(size=(N_CLUSTERS, FEATURE_DIM))
    assignment = rng.integers(0, N_CLUSTERS, size=n_rows)
    features = centers[assignment] + 0.35 * rng.normal(
        size=(n_rows, FEATURE_DIM)
    )
    return features / np.linalg.norm(features, axis=1, keepdims=True)


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else N_ROWS
    rng = np.random.default_rng(0)
    features = make_corpus(n_rows, rng)
    dense_bytes = n_rows * n_rows * 8
    print(f"corpus: {n_rows} rows x {FEATURE_DIM} dims "
          f"(a dense Q would be {dense_bytes / 1e9:.1f} GB)")

    # 1. Sparse Q: k strongest cosine entries per row, built blockwise.
    t0 = time.perf_counter()
    q = SparseTopKSimilarity.from_features(features, TOP_K)
    print(f"sparse Q: built in {time.perf_counter() - t0:.1f}s, "
          f"{q.nbytes / 1e6:.1f} MB on the heap "
          f"({dense_bytes / q.nbytes:.0f}x smaller than dense)")

    # 2. Train the hash head against the CSR Q — the trainer gathers each
    #    batch's t×t block from the sparse rows, so training memory is
    #    O(batch²), independent of the corpus size.
    config = UHSCMConfig(
        n_bits=N_BITS,
        lam=0.5,
        train=TrainConfig(batch_size=128, epochs=1, dtype="float32"),
    )
    network = HashingNetwork(
        N_BITS, mode="feature", feature_extractor=lambda x: x,
        feature_dim=FEATURE_DIM, rng=0, dtype="float32",
    )
    trainer = UHSCMTrainer(network, config)
    t0 = time.perf_counter()
    history = trainer.fit(features, q)
    print(f"training: {sum(history.batches)} steps in "
          f"{time.perf_counter() - t0:.1f}s, "
          f"final loss {history.total[-1]:.4f}")

    # 3. Encode the corpus (the network batches internally, so encoding
    #    memory is bounded no matter how many rows stream through).
    t0 = time.perf_counter()
    codes = network.encode(features)
    print(f"encode: {codes.shape[0]} codes x {N_BITS} bits "
          f"in {time.perf_counter() - t0:.1f}s")

    # 4. Serve: shard the codes, answer nearest-neighbor queries.
    service = HashingService(network, n_shards=4, max_batch=256)
    service.load_database(features)
    queries = make_corpus(5, rng)
    ids, dists = service.query(queries, top_k=5)
    for qi in range(ids.shape[0]):
        pairs = ", ".join(
            f"{i}@{d:.0f}" for i, d in zip(ids[qi], dists[qi])
        )
        print(f"query {qi}: top-5 id@distance {pairs}")
    stats = service.stats()
    print(f"service: {stats['size']} rows across "
          f"{len(stats['shards'])} shards")


if __name__ == "__main__":
    main()
