"""Large-corpus walkthrough: sparse Q → train → encode → serve, at 50k rows.

A dense semantic similarity matrix at 50,000 rows would be
50,000² × 8 bytes = 20 GB — far past what `cosine_similarity_matrix` can
materialize on a workstation.  The blocked sparse top-k engine keeps only
the k strongest entries per row (plus the diagonal) and never allocates
n², so the same corpus fits in a few hundred MB end to end:

1. build Q in top-k CSR form with `SparseTopKSimilarity.from_features`;
2. train the hashing network against it with `UHSCMTrainer` (batch blocks
   are gathered straight from the CSR rows);
3. encode the corpus in bounded-memory chunks;
4. stand the codes up behind the sharded `HashingService` and query it.

With ``--out-of-core`` the walkthrough goes one step further: the corpus
itself lives in a memmapped file, Q streams straight into on-disk CSR
buffers through an `ArtifactStore` streaming writer, and training/encoding
copy only per-batch slices to RAM — peak heap stays roughly flat as
``--rows`` grows, and the results are bit-identical to the in-memory run.

Run:  python examples/large_corpus_sparse_q.py [--rows N] [--out-of-core]
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.similarity_matrix import SparseTopKSimilarity
from repro.core.trainer import UHSCMTrainer
from repro.pipeline import ArtifactStore
from repro.serving import HashingService

N_ROWS = 50_000
FEATURE_DIM = 64
N_CLUSTERS = 25
TOP_K = 32
N_BITS = 32


def make_corpus(
    n_rows: int, rng: np.random.Generator, out: np.ndarray | None = None
) -> np.ndarray:
    """Clustered unit-norm features standing in for a mined corpus.

    ``out`` optionally receives the rows in place (a writable memmap for
    the out-of-core path); generation streams in slices either way, so
    the draws — and therefore the corpus — are identical for both modes.
    """
    centers = rng.normal(size=(N_CLUSTERS, FEATURE_DIM))
    features = np.empty((n_rows, FEATURE_DIM)) if out is None else out
    step = 8192
    for start in range(0, n_rows, step):
        stop = min(start + step, n_rows)
        assignment = rng.integers(0, N_CLUSTERS, size=stop - start)
        rows = centers[assignment] + 0.35 * rng.normal(
            size=(stop - start, FEATURE_DIM)
        )
        features[start:stop] = rows / np.linalg.norm(rows, axis=1,
                                                     keepdims=True)
    return features


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="sparse-Q large-corpus walkthrough"
    )
    parser.add_argument("--rows", type=int, default=N_ROWS,
                        help=f"corpus rows (default {N_ROWS})")
    parser.add_argument("--out-of-core", action="store_true",
                        help="memmap the corpus and stream Q into on-disk "
                             "CSR buffers (flat peak memory, identical "
                             "results)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    n_rows = args.rows
    rng = np.random.default_rng(0)
    workdir = Path(tempfile.mkdtemp(prefix="repro-example-"))
    if args.out_of_core:
        corpus_map = np.lib.format.open_memmap(
            workdir / "corpus.npy", mode="w+", dtype=np.float64,
            shape=(n_rows, FEATURE_DIM),
        )
        features = make_corpus(n_rows, rng, out=corpus_map)
        features.flush()
        # Re-open read-only: downstream layers key chunking off np.memmap.
        features = np.load(workdir / "corpus.npy", mmap_mode="r")
    else:
        features = make_corpus(n_rows, rng)
    dense_bytes = n_rows * n_rows * 8
    mode = "out-of-core (memmapped)" if args.out_of_core else "in-memory"
    print(f"corpus: {n_rows} rows x {FEATURE_DIM} dims, {mode} "
          f"(a dense Q would be {dense_bytes / 1e9:.1f} GB)")

    # 1. Sparse Q: k strongest cosine entries per row, built blockwise.
    #    Out-of-core the CSR buffers are allocated by a store streaming
    #    writer, so Q lands on disk as a memmapped raw artifact.
    t0 = time.perf_counter()
    if args.out_of_core:
        store = ArtifactStore(workdir / "cache", mmap_threshold_bytes=0)
        writer = store.streaming_writer("example-q", stage="build_q")
        q = SparseTopKSimilarity.from_features_streaming(
            features, TOP_K, writer.create
        )
        artifact = writer.commit({"rows": n_rows, "k": TOP_K})
        q = SparseTopKSimilarity(
            artifact.arrays["q_data"], artifact.arrays["q_indices"],
            artifact.arrays["q_indptr"], n=n_rows, k=TOP_K,
        )
        residence = "on disk (memmapped)" if q.memmapped else "on the heap"
    else:
        q = SparseTopKSimilarity.from_features(features, TOP_K)
        residence = "on the heap"
    print(f"sparse Q: built in {time.perf_counter() - t0:.1f}s, "
          f"{q.nbytes / 1e6:.1f} MB {residence} "
          f"({dense_bytes / q.nbytes:.0f}x smaller than dense)")

    # 2. Train the hash head against the CSR Q — the trainer gathers each
    #    batch's t×t block from the sparse rows (and, for a memmapped
    #    corpus, copies only the batch's feature rows to the heap), so
    #    training memory is O(batch²), independent of the corpus size.
    config = UHSCMConfig(
        n_bits=N_BITS,
        lam=0.5,
        train=TrainConfig(batch_size=128, epochs=1, dtype="float32"),
    )
    network = HashingNetwork(
        N_BITS, mode="feature", feature_extractor=lambda x: x,
        feature_dim=FEATURE_DIM, rng=0, dtype="float32",
    )
    trainer = UHSCMTrainer(network, config)
    t0 = time.perf_counter()
    history = trainer.fit(features, q)
    print(f"training: {sum(history.batches)} steps in "
          f"{time.perf_counter() - t0:.1f}s, "
          f"final loss {history.total[-1]:.4f}")

    # 3. Encode the corpus (the network batches internally, so encoding
    #    memory is bounded no matter how many rows stream through).
    t0 = time.perf_counter()
    codes = network.encode(features)
    print(f"encode: {codes.shape[0]} codes x {N_BITS} bits "
          f"in {time.perf_counter() - t0:.1f}s")

    # 4. Serve: shard the codes, answer nearest-neighbor queries.  A
    #    memmapped database encodes + registers chunk by chunk.
    service = HashingService(network, n_shards=4, max_batch=256)
    service.load_database(features)
    queries = make_corpus(5, rng)
    ids, dists = service.query(queries, top_k=5)
    for qi in range(ids.shape[0]):
        pairs = ", ".join(
            f"{i}@{d:.0f}" for i, d in zip(ids[qi], dists[qi])
        )
        print(f"query {qi}: top-5 id@distance {pairs}")
    stats = service.stats()
    print(f"service: {stats['size']} rows across "
          f"{len(stats['shards'])} shards")


if __name__ == "__main__":
    main()
