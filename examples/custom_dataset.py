"""Use UHSCM on your own dataset and concept vocabulary.

Shows the extension points a downstream user needs: a custom
:class:`DatasetSpec` (here, a small "pets vs vehicles" corpus), a custom
candidate concept list, and a custom prompt template.

Run:  python examples/custom_dataset.py
"""

from repro import UHSCM, UHSCMConfig, TrainConfig
from repro.datasets import SplitSizes, generate_dataset
from repro.datasets.synthetic import DatasetSpec
from repro.retrieval import evaluate_hashing
from repro.vlp import SimCLIP, SemanticWorld, WorldConfig


def main() -> None:
    # A world with a custom seed — your "domain".
    world = SemanticWorld(WorldConfig(seed=2024))

    # Your dataset: 6 classes, multi-label, with unlabeled context clutter.
    spec = DatasetSpec(
        name="pets-vs-vehicles",
        class_names=("cat", "dog", "rabbit", "car", "bus", "bicycle"),
        class_probs=(0.25, 0.25, 0.10, 0.25, 0.10, 0.15),
        context_pool=("grass", "road", "window", "toy"),
        context_count_probs=(0.5, 0.3, 0.2),
    )
    data = generate_dataset(
        spec, SplitSizes(train=300, query=60, database=1200), world=world,
        seed=11,
    )
    print(f"built {data.name}: {data.n_train} train / {data.n_database} db")

    # Your candidate concepts: a noisy superset of what the data contains.
    candidates = (
        "cat", "dog", "rabbit", "horse", "car", "bus", "bicycle", "train",
        "grass", "road", "window", "toy", "computer", "pizza", "guitar",
    )

    config = UHSCMConfig(
        n_bits=48,
        alpha=0.2, lam=0.7, gamma=0.2, beta=0.001,
        prompt_template="a photo of the {concept}",
        train=TrainConfig(epochs=40),
        seed=0,
    )
    model = UHSCM(config, clip=SimCLIP(world), concepts=candidates)
    model.fit(data.train_images)

    kept = model.mined_concepts
    print(f"denoising kept {len(kept)}/{len(candidates)} candidates: {kept}")
    dropped = sorted(set(candidates) - set(kept))
    print(f"discarded (absent or useless): {dropped}")

    report = evaluate_hashing(model, data, pn_points=(10, 50))
    print(report)


if __name__ == "__main__":
    main()
