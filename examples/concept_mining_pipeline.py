"""Walk through UHSCM's semantic-similarity generator step by step.

Shows each stage of Figure 1's left half on the NUS-WIDE analogue:
raw VLP scores (Eq. 1), concept distributions (Eq. 2), frequency-based
denoising (Eq. 4-5), and the final similarity matrix Q (Eq. 6) — including
which concepts get discarded and why.

Run:  python examples/concept_mining_pipeline.py
"""

import numpy as np

from repro.core.denoising import denoise_concepts
from repro.core.mining import ConceptMiner
from repro.core.similarity import similarity_from_distributions
from repro.datasets import load_dataset
from repro.vlp import NUS_WIDE_81, SimCLIP


def main() -> None:
    data = load_dataset("nuswide", scale=0.03, seed=3)
    clip = SimCLIP(data.world)
    miner = ConceptMiner(clip, template="a photo of the {concept}",
                         tau_scale=1.0)
    images = data.train_images

    # Eq. 1-2: mine distributions over the 81 candidate concepts.
    distributions = miner.mine(images, NUS_WIDE_81)
    print(f"mined distributions: {distributions.shape} "
          f"(n={distributions.shape[0]} images, m={distributions.shape[1]})")

    # Eq. 4: argmax-win frequency per concept.
    result = denoise_concepts(NUS_WIDE_81, distributions)
    order = np.argsort(result.frequencies)[::-1]
    print("\nmost frequently winning concepts (Eq. 4):")
    n = distributions.shape[0]
    for idx in order[:8]:
        name = NUS_WIDE_81[idx]
        freq = result.frequencies[idx]
        status = "KEPT" if result.kept_mask[idx] else "DISCARDED"
        print(f"  {name:12s} f={freq:4d}  ({freq / n:5.1%} of images)  {status}")

    upper = 0.5 * n
    lower = 0.5 * n / len(NUS_WIDE_81)
    print(f"\nEq. 5 keep band: {lower:.1f} <= f(c) <= {upper:.1f}")
    print(f"kept {result.n_kept}/{len(NUS_WIDE_81)} concepts")
    print(f"discarded as too frequent: "
          f"{[c for c in result.discarded_concepts if result.frequencies[NUS_WIDE_81.index(c)] > upper]}")

    # Second prompting pass over the clean set + Eq. 6.
    clean_distributions = miner.mine(images, result.kept_concepts)
    q = similarity_from_distributions(clean_distributions)
    off = ~np.eye(q.shape[0], dtype=bool)
    print(f"\nsimilarity matrix Q: shape={q.shape}, "
          f"mean={q[off].mean():.3f}, std={q[off].std():.3f}")

    # How well does Q track the ground-truth label overlap?
    labels = data.train_labels.astype(float)
    ideal = (labels @ labels.T) > 0
    corr = np.corrcoef(q[off], ideal[off].astype(float))[0, 1]
    print(f"correlation of Q with true share-a-label relevance: {corr:.3f}")


if __name__ == "__main__":
    main()
