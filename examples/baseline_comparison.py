"""Compare UHSCM against all nine baselines on one dataset (mini Table 1).

Run:  python examples/baseline_comparison.py [dataset] [bits]
e.g.  python examples/baseline_comparison.py cifar10 32
"""

import sys

from repro.experiments import run_table1
from repro.experiments.table1 import PAPER_TABLE1
from repro.config import PAPER_BIT_LENGTHS


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "cifar10"
    bits = int(sys.argv[2]) if len(sys.argv) > 2 else 32

    table = run_table1(scale=0.04, bit_lengths=(bits,), datasets=(dataset,))
    print(table.render())

    bit_idx = PAPER_BIT_LENGTHS.index(bits) if bits in PAPER_BIT_LENGTHS else None
    print("\npaper-vs-measured (shape check):")
    for method in table.methods:
        measured = table.value(method, dataset, bits)
        paper = (
            PAPER_TABLE1[dataset][method][bit_idx]
            if bit_idx is not None
            else float("nan")
        )
        print(f"  {method:10s} measured={measured:.3f}  paper={paper:.3f}")

    best = max(table.methods, key=lambda m: table.value(m, dataset, bits))
    print(f"\nbest method at {bits} bits on {dataset}: {best} "
          f"(paper: UHSCM)")


if __name__ == "__main__":
    main()
