"""Run a focused ablation study (a slice of the paper's Table 2).

Compares full UHSCM against: no denoising, no modified contrastive loss,
raw CLIP-feature similarity, and the original view-based contrastive loss —
the four design decisions the paper argues matter most.

Run:  python examples/ablation_study.py [dataset]
"""

import sys

from repro.experiments import run_table2

VARIANTS = ("ours", "wo_de", "wo_mcl", "if", "cl")


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "cifar10"
    table = run_table2(
        scale=0.04,
        bit_lengths=(64,),
        datasets=(dataset,),
        variants=VARIANTS,
    )
    print(table.render())

    ours = table.value("ours", dataset, 64)
    print(f"\nfull UHSCM MAP: {ours:.3f}")
    for key, description in [
        ("wo_de", "without concept denoising (Eq. 4-5)"),
        ("wo_mcl", "without the modified contrastive loss (alpha=0)"),
        ("if", "similarity from raw CLIP image features"),
        ("cl", "with CIB's view contrastive loss instead of L_c"),
    ]:
        delta = ours - table.value(key, dataset, 64)
        print(f"  {description:55s} costs {delta:+.3f} MAP")


if __name__ == "__main__":
    main()
