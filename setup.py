"""Setup shim enabling legacy editable installs in offline environments.

The execution environment has no network access, so PEP 517 build isolation
(which downloads setuptools/wheel) cannot run.  ``pip install -e .
--no-build-isolation --no-use-pep517`` uses this shim instead; all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
