"""Analysis tools: k-means, t-SNE, and cluster-separation scoring."""

from repro.analysis.kmeans import KMeansResult, kmeans, kmeans_best_of
from repro.analysis.separation import class_separation_ratio, silhouette_score
from repro.analysis.tsne import tsne

__all__ = [
    "KMeansResult",
    "class_separation_ratio",
    "kmeans",
    "kmeans_best_of",
    "silhouette_score",
    "tsne",
]
