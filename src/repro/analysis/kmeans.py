"""K-means clustering (Lloyd's algorithm with k-means++ seeding).

Used by the ``UHSCM_cN`` ablation variants (Table 2 rows 8–12), which the
paper builds with "clustering the original randomly selected concepts into n
clusters by K-means [MacQueen 1967]".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class KMeansResult:
    """Clustering outcome: centroids (k, d), hard labels (n,), inertia."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int


def _kmeanspp_init(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D² sampling."""
    n = x.shape[0]
    centroids = np.empty((k, x.shape[1]))
    centroids[0] = x[rng.integers(n)]
    closest_sq = ((x - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:  # all points identical to chosen centroids
            centroids[i:] = centroids[0]
            break
        probs = closest_sq / total
        centroids[i] = x[rng.choice(n, p=probs)]
        dist_sq = ((x - centroids[i]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centroids


def kmeans(
    x: np.ndarray,
    k: int,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: int | np.random.Generator | None = 0,
) -> KMeansResult:
    """Cluster rows of ``x`` into ``k`` groups.

    Empty clusters are re-seeded with the point farthest from its centroid,
    so the result always has exactly ``k`` non-degenerate clusters when the
    data allows it.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ConfigurationError(f"x must be (n, d), got {x.shape}")
    n = x.shape[0]
    if not 1 <= k <= n:
        raise ConfigurationError(f"k must be in [1, {n}], got {k}")
    rng = as_generator(seed)
    centroids = _kmeanspp_init(x, k, rng)

    labels = np.zeros(n, dtype=np.int64)
    for iteration in range(1, max_iter + 1):
        # Assignment step.
        sq_dist = (
            (x**2).sum(axis=1, keepdims=True)
            - 2 * x @ centroids.T
            + (centroids**2).sum(axis=1)
        )
        labels = sq_dist.argmin(axis=1)
        # Update step, re-seeding empty clusters.
        new_centroids = centroids.copy()
        for c in range(k):
            members = x[labels == c]
            if members.shape[0] > 0:
                new_centroids[c] = members.mean(axis=0)
            else:
                farthest = sq_dist[np.arange(n), labels].argmax()
                new_centroids[c] = x[farthest]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift < tol:
            break
    else:
        iteration = max_iter

    sq_dist = ((x - centroids[labels]) ** 2).sum(axis=1)
    return KMeansResult(
        centroids=centroids,
        labels=labels,
        inertia=float(sq_dist.sum()),
        n_iter=iteration,
    )


def kmeans_best_of(
    x: np.ndarray,
    k: int,
    n_init: int = 4,
    seed: int | np.random.Generator | None = 0,
    **kwargs,
) -> KMeansResult:
    """Run :func:`kmeans` ``n_init`` times and keep the lowest inertia."""
    if n_init <= 0:
        raise ConfigurationError(f"n_init must be positive: {n_init}")
    rng = as_generator(seed)
    best: KMeansResult | None = None
    for _ in range(n_init):
        result = kmeans(x, k, seed=rng, **kwargs)
        if best is None or result.inertia < best.inertia:
            best = result
    if best is None:  # pragma: no cover - unreachable
        raise ConvergenceError("k-means produced no result")
    return best
