"""Quantitative cluster-separation scores.

The paper's Figures 5 (t-SNE) and 6 (retrieval grids) are visual; the
reproduction replaces them with numbers that measure the same claims:

- :func:`silhouette_score` on embedded hash codes — "clusters of each class
  are separated from each other" (Figure 5's claim);
- :func:`class_separation_ratio` — mean inter-class Hamming distance over
  mean intra-class distance, the code-space analogue.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from repro.errors import ConfigurationError


def _check_inputs(x: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    if x.ndim != 2:
        raise ConfigurationError(f"x must be (n, d), got {x.shape}")
    if labels.shape != (x.shape[0],):
        raise ConfigurationError(
            f"labels must be ({x.shape[0]},), got {labels.shape}"
        )
    if np.unique(labels).size < 2:
        raise ConfigurationError("need at least two classes")
    return x, labels


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points (Euclidean)."""
    x, labels = _check_inputs(x, labels)
    dist = cdist(x, x)
    classes = np.unique(labels)
    n = x.shape[0]
    scores = np.zeros(n)
    for i in range(n):
        own = labels[i]
        own_mask = labels == own
        n_own = own_mask.sum()
        if n_own <= 1:
            scores[i] = 0.0
            continue
        a = dist[i, own_mask].sum() / (n_own - 1)
        b = min(
            dist[i, labels == other].mean()
            for other in classes
            if other != own and (labels == other).any()
        )
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def class_separation_ratio(codes: np.ndarray, labels: np.ndarray) -> float:
    """Mean inter-class distance / mean intra-class distance (>1 is good)."""
    codes, labels = _check_inputs(codes, labels)
    dist = cdist(codes, codes)
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    off_diag = ~np.eye(labels.size, dtype=bool)
    intra = dist[same]
    inter = dist[off_diag & ~same]
    if intra.size == 0 or inter.size == 0:
        raise ConfigurationError("labels give no intra- or inter-class pairs")
    intra_mean = float(intra.mean())
    if intra_mean == 0:
        return float("inf")
    return float(inter.mean()) / intra_mean
