"""t-SNE (van der Maaten & Hinton, 2008), implemented from scratch.

Used to reproduce Figure 5 — the 2-D visualization of hash codes on CIFAR10.
Exact (O(n²)) implementation with perplexity calibration via binary search,
early exaggeration, and momentum gradient descent; sized for the few
thousand points the figure uses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator

_EPS = 1e-12


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sq = (x**2).sum(axis=1)
    d = sq[:, None] - 2 * x @ x.T + sq[None, :]
    np.fill_diagonal(d, 0.0)
    return np.maximum(d, 0.0)


def _conditional_probs(sq_dists: np.ndarray, perplexity: float,
                       tol: float = 1e-5, max_iter: int = 50) -> np.ndarray:
    """Row-wise P(j|i) with per-row bandwidth tuned to hit the perplexity."""
    n = sq_dists.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta_lo, beta_hi = 0.0, np.inf
        beta = 1.0
        row = sq_dists[i].copy()
        row[i] = np.inf  # exclude self
        for _ in range(max_iter):
            logits = -row * beta
            logits -= logits.max()
            expd = np.exp(logits)
            expd[i] = 0.0
            total = expd.sum()
            if total <= 0:
                beta /= 2
                continue
            probs = expd / total
            entropy = -(probs * np.log(np.maximum(probs, _EPS))).sum()
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> sharpen
                beta_lo = beta
                beta = beta * 2 if beta_hi == np.inf else (beta + beta_hi) / 2
            else:
                beta_hi = beta
                beta = beta / 2 if beta_lo == 0.0 else (beta + beta_lo) / 2
        p[i] = probs
    return p


def tsne(
    x: np.ndarray,
    n_components: int = 2,
    perplexity: float = 30.0,
    n_iter: int = 300,
    learning_rate: float = 100.0,
    early_exaggeration: float = 4.0,
    exaggeration_iters: int = 60,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Embed rows of ``x`` into ``n_components`` dimensions.

    Returns the (n, n_components) embedding.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ConfigurationError(f"x must be (n, d), got {x.shape}")
    n = x.shape[0]
    if n < 5:
        raise ConfigurationError(f"t-SNE needs at least 5 points, got {n}")
    if not 1 < perplexity < n:
        raise ConfigurationError(
            f"perplexity must be in (1, {n}), got {perplexity}"
        )
    rng = as_generator(seed)

    cond = _conditional_probs(_pairwise_sq_dists(x), perplexity)
    p = (cond + cond.T) / (2.0 * n)
    p = np.maximum(p, _EPS)

    y = rng.normal(scale=1e-4, size=(n, n_components))
    velocity = np.zeros_like(y)
    momentum = 0.5
    for iteration in range(n_iter):
        exaggeration = early_exaggeration if iteration < exaggeration_iters else 1.0
        if iteration == exaggeration_iters:
            momentum = 0.8
        sq = _pairwise_sq_dists(y)
        inv = 1.0 / (1.0 + sq)
        np.fill_diagonal(inv, 0.0)
        q = np.maximum(inv / inv.sum(), _EPS)
        # Gradient: 4 Σ_j (p_ij - q_ij)(y_i - y_j)(1 + |y_i - y_j|²)^-1
        coeff = (exaggeration * p - q) * inv
        grad = 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ y)
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y
