"""The ``SimilarityMatrix`` abstraction over the paper's Q (Eq. 3 / Eq. 6).

Every layer of Algorithm 1 that touches the semantic similarity matrix only
ever needs three operations: the t×t sub-block for a training mini-batch
(:meth:`SimilarityMatrix.gather`), a dtype cast at ``fit`` time, and a
serializable payload for the artifact store.  This module provides two
interchangeable implementations behind that contract:

- :class:`DenseSimilarity` — the existing (n, n) array, bit-identical to
  the seed behavior and the default everywhere (paper parity);
- :class:`SparseTopKSimilarity` — a top-k CSR form built by the blocked
  kernel :func:`repro.utils.mathops.blocked_topk_cosine`, which keeps only
  the k strongest entries per row (plus the diagonal) and never
  materializes n².  At 1M rows a dense float64 Q is ~8 TB; the CSR form is
  ``n · (k + 1)`` values + indices, linear in n.

With ``k >= n - 1`` the sparse form holds every entry and densifies
bit-identically to the dense matrix, which is the correctness anchor gated
by ``benchmarks/bench_similarity_scale.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.utils.mathops import blocked_topk_cosine, streaming_topk_cosine

#: ``meta`` key identifying the payload layout of a stored Q.
PAYLOAD_FORMAT_KEY = "q_format"
DENSE_FORMAT = "dense"
CSR_FORMAT = "csr-topk"


class SimilarityMatrix:
    """Contract shared by both Q representations.

    Subclasses expose ``shape``/``dtype``/``nbytes``, batch gathering,
    casting, densification, and the store payload.  ``nbytes`` is the
    memory model documented in the README: ``n² · itemsize`` dense versus
    ``n · (k + 1)`` values + indices sparse.
    """

    @property
    def shape(self) -> tuple[int, int]:
        raise NotImplementedError

    @property
    def dtype(self) -> np.dtype:
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        raise NotImplementedError

    @property
    def n(self) -> int:
        return self.shape[0]

    def astype(self, dtype: np.dtype | str) -> "SimilarityMatrix":
        """Cast values to ``dtype``; a no-op (returns self) when already there."""
        raise NotImplementedError

    def gather(self, idx: np.ndarray) -> np.ndarray:
        """Dense ``Q[idx][:, idx]`` block for a mini-batch (``idx`` unique)."""
        raise NotImplementedError

    def to_dense(self) -> np.ndarray:
        """The full (n, n) array; O(n²) — for tests and small matrices only."""
        raise NotImplementedError

    def payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``(meta, arrays)`` fragments for the artifact-store archive."""
        raise NotImplementedError


class DenseSimilarity(SimilarityMatrix):
    """The paper-parity dense (n, n) similarity matrix."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(
                f"similarity matrix must be square 2-D, got {matrix.shape}"
            )
        self.matrix = matrix

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def dtype(self) -> np.dtype:
        return self.matrix.dtype

    @property
    def nbytes(self) -> int:
        return self.matrix.nbytes

    def astype(self, dtype: np.dtype | str) -> "DenseSimilarity":
        dtype = np.dtype(dtype)
        if self.matrix.dtype == dtype:
            return self
        return DenseSimilarity(self.matrix.astype(dtype))

    def gather(self, idx: np.ndarray) -> np.ndarray:
        # One flat take instead of np.ix_'s open-mesh fancy-index: gathers
        # only the t² sub-block (O(n·t) per epoch, no O(n²) permuted copy)
        # and measures fastest at the gated training scale.  intp keeps the
        # idx*n flat offsets from wrapping when a caller hands int32 ids.
        idx = np.asarray(idx, dtype=np.intp)
        return self.matrix.take(idx[:, None] * self.n + idx[None, :])

    def to_dense(self) -> np.ndarray:
        return self.matrix

    def payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        return {PAYLOAD_FORMAT_KEY: DENSE_FORMAT}, {"matrix": self.matrix}


class SparseTopKSimilarity(SimilarityMatrix):
    """Top-k CSR similarity: the k strongest entries per row + the diagonal.

    ``data``/``indices``/``indptr`` follow the canonical CSR convention
    (column indices sorted ascending within each row).  Entries absent from
    a row read as 0.0 — for a cosine Q over concept distributions the weak
    entries are near zero anyway, which is what makes the truncation a
    controlled approximation (and exact once ``k >= n - 1``).

    The CSR components may be memmaps (a Q replayed from a raw-format
    store artifact): every operation works unchanged, and because
    :meth:`gather` touches only the O(t · k) entries of a batch, training
    streams Q from disk page by page instead of holding it on the heap.
    """

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        n: int,
        k: int,
    ) -> None:
        # np.asarray would silently strip the memmap subclass (the view
        # would stay disk-backed, but residency reporting relies on the
        # type); only coerce things that are not already ndarrays.
        data = data if isinstance(data, np.ndarray) else np.asarray(data)
        indices = (indices if isinstance(indices, np.ndarray)
                   else np.asarray(indices))
        indptr = (indptr if isinstance(indptr, np.ndarray)
                  else np.asarray(indptr))
        if data.ndim != 1 or indices.ndim != 1 or indptr.ndim != 1:
            raise ShapeError("CSR components must be 1-D arrays")
        if data.shape != indices.shape:
            raise ShapeError(
                f"data/indices length mismatch: {data.shape} vs {indices.shape}"
            )
        if indptr.shape != (n + 1,):
            raise ShapeError(
                f"indptr must have length n + 1 = {n + 1}, got {indptr.shape}"
            )
        if int(indptr[-1]) != data.shape[0]:
            raise ShapeError(
                f"indptr[-1] ({int(indptr[-1])}) must equal nnz ({data.shape[0]})"
            )
        if k <= 0:
            raise ConfigurationError(f"k must be positive: {k}")
        self.data = data
        self.indices = indices
        self.indptr = indptr
        self.k = int(k)
        self._n = int(n)
        self._col_pos: np.ndarray | None = None  # lazily built gather scratch

    @classmethod
    def from_features(
        cls,
        features: np.ndarray,
        k: int,
        block_rows: int = 512,
        dtype: np.dtype | str | None = None,
        workers: int | None = None,
        pool_backend: str | None = None,
    ) -> "SparseTopKSimilarity":
        """Build from raw feature rows via the blocked pairwise-cosine kernel.

        ``workers`` dispatches the kernel's row-block tiles to the shared
        worker pool (``None`` = ``$REPRO_WORKERS``); ``pool_backend``
        selects its execution mode (``None`` = ``$REPRO_POOL`` → thread,
        ``"process"`` for spawned workers over shared memory).  Results
        are bit-identical at any worker count on either backend.
        """
        features = np.atleast_2d(features)
        data, indices, indptr = blocked_topk_cosine(
            features, k, block_rows=block_rows, dtype=dtype, workers=workers,
            pool_backend=pool_backend,
        )
        return cls(data, indices, indptr, n=features.shape[0], k=k)

    @classmethod
    def from_features_streaming(
        cls,
        features: np.ndarray,
        k: int,
        create_array,
        block_rows: int = 512,
        dtype: np.dtype | str | None = None,
        max_block_bytes: int = 256 * 1024 * 1024,
        workers: int | None = None,
        pool_backend: str | None = None,
    ) -> "SparseTopKSimilarity":
        """Out-of-core build: CSR buffers allocated via ``create_array``.

        ``create_array(name, shape, dtype)`` supplies the (typically
        disk-resident) destination arrays — see
        :func:`repro.utils.mathops.streaming_topk_cosine`, which this
        wraps.  Values are bit-identical to :meth:`from_features` at equal
        effective block height (and, via ``workers``/``pool_backend``, at
        any worker count on either backend — pooled tiles GEMM against
        the one scratch memmap, which process workers open by path, and
        the disjoint CSR row ranges are written exactly once).
        """
        features = np.atleast_2d(features)
        data, indices, indptr = streaming_topk_cosine(
            features, k, create_array, block_rows=block_rows, dtype=dtype,
            max_block_bytes=max_block_bytes, workers=workers,
            pool_backend=pool_backend,
        )
        return cls(data, indices, indptr, n=features.shape[0], k=k)

    @property
    def memmapped(self) -> bool:
        """Whether the CSR value array is a disk-backed memmap view."""
        return isinstance(self.data, np.memmap)

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes + self.indices.nbytes + self.indptr.nbytes

    def astype(self, dtype: np.dtype | str) -> "SparseTopKSimilarity":
        dtype = np.dtype(dtype)
        if self.data.dtype == dtype:
            return self
        return SparseTopKSimilarity(
            self.data.astype(dtype), self.indices, self.indptr,
            n=self._n, k=self.k,
        )

    def gather(self, idx: np.ndarray) -> np.ndarray:
        """CSR row-slice + column-select, densified at batch size.

        O(t · (k + 1)) per batch after a one-time O(n) scratch allocation:
        the selected rows' stored entries are scattered into a zero (t, t)
        block wherever their column also belongs to ``idx``.  ``idx`` must
        be duplicate-free (mini-batch permutation slices always are).
        """
        idx = np.asarray(idx)
        t = idx.shape[0]
        out = np.zeros((t, t), dtype=self.dtype)
        if t == 0:
            return out
        if self._col_pos is None:
            self._col_pos = np.full(self._n, -1, dtype=np.int64)
        pos = self._col_pos
        pos[idx] = np.arange(t)
        starts = self.indptr[idx].astype(np.int64, copy=False)
        counts = (self.indptr[idx + 1] - self.indptr[idx]).astype(
            np.int64, copy=False
        )
        ends = np.cumsum(counts)
        # Flat data positions of every stored entry in the selected rows.
        flat = np.arange(ends[-1], dtype=np.int64)
        flat += np.repeat(starts - (ends - counts), counts)
        cols = pos[self.indices[flat]]
        keep = cols >= 0
        rows = np.repeat(np.arange(t), counts)[keep]
        out[rows, cols[keep]] = self.data[flat[keep]]
        pos[idx] = -1  # reset the scratch for the next batch
        return out

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self._n, self._n), dtype=self.dtype)
        rows = np.repeat(np.arange(self._n), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    def payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        meta = {
            PAYLOAD_FORMAT_KEY: CSR_FORMAT,
            "n": self._n,
            "sparse_topk": self.k,
        }
        arrays = {
            "q_data": self.data,
            "q_indices": self.indices,
            "q_indptr": self.indptr,
        }
        return meta, arrays


def as_similarity_matrix(
    value: "np.ndarray | SimilarityMatrix",
) -> SimilarityMatrix:
    """Wrap a raw array as :class:`DenseSimilarity`; pass wrappers through."""
    if isinstance(value, SimilarityMatrix):
        return value
    return DenseSimilarity(np.asarray(value))


def similarity_from_payload(
    meta: dict, arrays: dict[str, np.ndarray]
) -> "np.ndarray | SparseTopKSimilarity":
    """Reconstruct a stored Q from its archive body.

    The dense layout (also every pre-sparse artifact, which carries no
    format marker) comes back as the raw array so downstream consumers of
    the historical contract are untouched; the CSR layout comes back as a
    :class:`SparseTopKSimilarity`.
    """
    layout = meta.get(PAYLOAD_FORMAT_KEY, DENSE_FORMAT)
    if layout == DENSE_FORMAT:
        return arrays["matrix"]
    if layout == CSR_FORMAT:
        return SparseTopKSimilarity(
            arrays["q_data"], arrays["q_indices"], arrays["q_indptr"],
            n=int(meta["n"]), k=int(meta["sparse_topk"]),
        )
    raise ConfigurationError(f"unknown similarity payload format {layout!r}")


def similarity_fingerprint(value: "np.ndarray | SimilarityMatrix") -> str:
    """Content hash of either Q form (used for injected-Q train stages)."""
    from repro.pipeline.fingerprint import array_fingerprint, fingerprint

    matrix = as_similarity_matrix(value)
    if isinstance(matrix, SparseTopKSimilarity):
        return fingerprint(
            {
                "kind": CSR_FORMAT,
                "k": matrix.k,
                "n": matrix.n,
                "data": array_fingerprint(matrix.data),
                "indices": array_fingerprint(matrix.indices),
                "indptr": array_fingerprint(matrix.indptr),
            }
        )
    return array_fingerprint(matrix.to_dense())
