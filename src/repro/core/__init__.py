"""The paper's primary contribution: UHSCM and its components."""

from repro.core.denoising import (
    DenoisingResult,
    concept_frequencies,
    denoise_concepts,
    keep_mask,
)
from repro.core.hashing_network import HashingNetwork
from repro.core.losses import (
    LossBreakdown,
    cib_contrastive_loss,
    cib_objective,
    modified_contrastive_loss,
    quantization_loss,
    similarity_preserving_loss,
    uhscm_objective,
)
from repro.core.mining import ConceptMiner, concept_distributions
from repro.core.persistence import load_uhscm, save_uhscm
from repro.core.similarity import (
    ClusteredConceptSimilarityGenerator,
    ImageFeatureSimilarityGenerator,
    SemanticSimilarityGenerator,
    SimilarityResult,
    similarity_from_distributions,
)
from repro.core.similarity_matrix import (
    DenseSimilarity,
    SimilarityMatrix,
    SparseTopKSimilarity,
    as_similarity_matrix,
    similarity_fingerprint,
    similarity_from_payload,
)
from repro.core.trainer import TrainHistory, UHSCMTrainer
from repro.core.uhscm import UHSCM
from repro.core.variants import VARIANTS, get_variant, make_uhscm

__all__ = [
    "ClusteredConceptSimilarityGenerator",
    "ConceptMiner",
    "DenoisingResult",
    "DenseSimilarity",
    "HashingNetwork",
    "ImageFeatureSimilarityGenerator",
    "LossBreakdown",
    "SemanticSimilarityGenerator",
    "SimilarityMatrix",
    "SimilarityResult",
    "SparseTopKSimilarity",
    "TrainHistory",
    "UHSCM",
    "UHSCMTrainer",
    "VARIANTS",
    "as_similarity_matrix",
    "cib_contrastive_loss",
    "cib_objective",
    "concept_distributions",
    "concept_frequencies",
    "denoise_concepts",
    "get_variant",
    "keep_mask",
    "load_uhscm",
    "make_uhscm",
    "save_uhscm",
    "modified_contrastive_loss",
    "quantization_loss",
    "similarity_fingerprint",
    "similarity_from_distributions",
    "similarity_from_payload",
    "similarity_preserving_loss",
    "uhscm_objective",
]
