"""Factories for UHSCM and the 14 ablation variants of Table 2.

Every factory takes ``(config, clip)`` and returns a ready-to-fit model, so
the Table 2 experiment is a loop over this registry.  Row numbers follow the
paper:

====  ==================  ============================================
row   key                 change vs. full UHSCM
====  ==================  ============================================
1     coco                candidate concepts = 80 MS COCO categories
2     nus&coco            candidate concepts = 153-name union
3     if                  Q from raw CLIP image features (no mining)
4     p1                  prompt template "the {concept}"
5     p2                  prompt template "it contains the {concept}"
6     avg                 Q averaged over the three templates
7     wo_de               no concept denoising
8–12  c20 … c60           k-means concept clustering instead of Eq. 4–5
13    wo_mcl              no modified contrastive loss (α = 0)
14    cl                  CIB's view contrastive loss J_c instead of L_c
—     ours                the full method
====  ==================  ============================================
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace

from repro.config import UHSCMConfig
from repro.core.similarity import (
    ClusteredConceptSimilarityGenerator,
    ImageFeatureSimilarityGenerator,
    SemanticSimilarityGenerator,
)
from repro.core.uhscm import UHSCM
from repro.errors import ConfigurationError
from repro.vlp.clip import SimCLIP
from repro.vlp.concepts import COCO_80, NUS_WIDE_81, union_vocabulary
from repro.vlp.prompts import PAPER_TEMPLATES

VariantFactory = Callable[[UHSCMConfig, SimCLIP], UHSCM]


def make_uhscm(config: UHSCMConfig, clip: SimCLIP) -> UHSCM:
    """Row 'Ours': the full method (NUS-WIDE-81 candidates, denoising, MCL)."""
    return UHSCM(config, clip=clip, concepts=NUS_WIDE_81)


def make_coco(config: UHSCMConfig, clip: SimCLIP) -> UHSCM:
    """Row 1: MS COCO categories as the candidate concept set."""
    return UHSCM(config, clip=clip, concepts=COCO_80)


def make_nus_coco(config: UHSCMConfig, clip: SimCLIP) -> UHSCM:
    """Row 2: the 153-concept NUS-WIDE ∪ COCO candidate set."""
    return UHSCM(config, clip=clip,
                 concepts=union_vocabulary(NUS_WIDE_81, COCO_80))


def make_if(config: UHSCMConfig, clip: SimCLIP) -> UHSCM:
    """Row 3 (UHSCM_IF): similarity from raw CLIP image features."""
    return UHSCM(
        config,
        clip=clip,
        similarity_generator=ImageFeatureSimilarityGenerator(
            clip, sparse_topk=config.sparse_topk
        ),
    )


def _make_prompt_variant(template_key: str) -> VariantFactory:
    template = PAPER_TEMPLATES[template_key]

    def factory(config: UHSCMConfig, clip: SimCLIP) -> UHSCM:
        return UHSCM(
            replace(config, prompt_template=template), clip=clip,
            concepts=NUS_WIDE_81,
        )

    factory.__doc__ = f"Prompt-template variant: {template!r}."
    return factory


make_p1 = _make_prompt_variant("p1")
make_p2 = _make_prompt_variant("p2")


def make_avg(config: UHSCMConfig, clip: SimCLIP) -> UHSCM:
    """Row 6 (UHSCM_avg): Q averaged across the three prompt templates.

    Template averaging needs dense per-template matrices to mix, so this
    variant always builds dense Q — ``config.sparse_topk`` is deliberately
    cleared, keeping sparse Table 2 sweeps able to run every row and its
    cached cells valid across the toggle (constructing a multi-template
    generator with ``sparse_topk`` directly still raises).
    """
    config = replace(config, sparse_topk=None)
    generator = SemanticSimilarityGenerator(
        clip,
        NUS_WIDE_81,
        templates=tuple(PAPER_TEMPLATES.values()),
        tau_scale=config.tau_scale,
        denoise=config.denoise,
    )
    return UHSCM(config, clip=clip, concepts=NUS_WIDE_81,
                 similarity_generator=generator)


def make_wo_de(config: UHSCMConfig, clip: SimCLIP) -> UHSCM:
    """Row 7 (UHSCM_w/o de): skip Eq. 4–5 concept denoising."""
    return UHSCM(replace(config, denoise=False), clip=clip, concepts=NUS_WIDE_81)


def _make_cluster_variant(n_clusters: int) -> VariantFactory:
    def factory(config: UHSCMConfig, clip: SimCLIP) -> UHSCM:
        generator = ClusteredConceptSimilarityGenerator(
            clip,
            NUS_WIDE_81,
            n_clusters=n_clusters,
            template=config.prompt_template,
            tau_scale=config.tau_scale,
            seed=config.seed,
            sparse_topk=config.sparse_topk,
        )
        return UHSCM(config, clip=clip, similarity_generator=generator)

    factory.__doc__ = f"Rows 8–12 (UHSCM_c{n_clusters}): k-means clustering."
    return factory


make_c20 = _make_cluster_variant(20)
make_c30 = _make_cluster_variant(30)
make_c40 = _make_cluster_variant(40)
make_c50 = _make_cluster_variant(50)
make_c60 = _make_cluster_variant(60)


def make_wo_mcl(config: UHSCMConfig, clip: SimCLIP) -> UHSCM:
    """Row 13 (UHSCM_w/o MCL): drop the contrastive regularizer (α = 0)."""
    return UHSCM(replace(config, alpha=0.0), clip=clip, concepts=NUS_WIDE_81)


def make_cl(config: UHSCMConfig, clip: SimCLIP) -> UHSCM:
    """Row 14 (UHSCM_CL): replace L_c with CIB's view-based J_c (Eq. 10)."""
    return UHSCM(config, clip=clip, concepts=NUS_WIDE_81, contrastive="cib")


#: Table 2 registry in paper row order ("ours" last, as printed).
VARIANTS: dict[str, VariantFactory] = {
    "coco": make_coco,
    "nus&coco": make_nus_coco,
    "if": make_if,
    "p1": make_p1,
    "p2": make_p2,
    "avg": make_avg,
    "wo_de": make_wo_de,
    "c20": make_c20,
    "c30": make_c30,
    "c40": make_c40,
    "c50": make_c50,
    "c60": make_c60,
    "wo_mcl": make_wo_mcl,
    "cl": make_cl,
    "ours": make_uhscm,
}


def get_variant(key: str) -> VariantFactory:
    """Look up a Table 2 variant factory by key."""
    normalized = key.strip().lower()
    if normalized not in VARIANTS:
        raise ConfigurationError(
            f"unknown variant {key!r}; options: {sorted(VARIANTS)}"
        )
    return VARIANTS[normalized]
