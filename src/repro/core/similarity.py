"""Semantic similarity matrix construction (paper §3.3, Eq. 3 and Eq. 6).

:class:`SemanticSimilarityGenerator` runs the full pipeline of Figure 1's
left half: mine concept distributions over the candidate set, denoise the
set (Eq. 4–5), re-mine over the clean set, and return the cosine-similarity
matrix Q of the final distributions (Eq. 6).  Flags expose every Table 2
similarity-side ablation: denoising off (row 7), raw image features
(row 3, ``UHSCM_IF``), alternative prompt templates (rows 4–5), template
averaging (row 6), and k-means concept clustering (rows 8–12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.denoising import DenoisingResult, denoise_concepts
from repro.core.mining import ConceptMiner, concept_distributions
from repro.core.similarity_matrix import (
    SimilarityMatrix,
    SparseTopKSimilarity,
    as_similarity_matrix,
    similarity_from_payload,
)
from repro.errors import ConfigurationError
from repro.pipeline import (
    BUILD_Q,
    DENOISE,
    MINE,
    ArtifactStore,
    Stage,
    canonical,
    run_stage,
    run_stage_streaming,
)
from repro.utils.mathops import cosine_similarity_matrix
from repro.vlp.clip import SimCLIP
from repro.vlp.prompts import PromptTemplate


def similarity_from_distributions(
    distributions: np.ndarray,
    sparse_topk: int | None = None,
    dtype: np.dtype | str | None = None,
    workers: int | None = None,
    pool_backend: str | None = None,
) -> "np.ndarray | SparseTopKSimilarity":
    """Eq. 3 / Eq. 6: pairwise cosine similarity of concept distributions.

    ``sparse_topk=None`` (default) returns the dense (n, n) array exactly
    as before; a positive k routes through the blocked kernel and returns
    the top-k CSR form, never materializing n².  ``workers`` parallelizes
    the blocked kernel's row tiles and ``pool_backend`` picks thread or
    process execution (bit-identical either way at any count; the dense
    route ignores both — one GEMM, BLAS threads as it likes).
    """
    dist = np.asarray(
        distributions, dtype=np.float64 if dtype is None else dtype
    )
    if dist.ndim != 2:
        raise ConfigurationError(
            f"distributions must be (n, m), got {dist.shape}"
        )
    if sparse_topk is None:
        return cosine_similarity_matrix(dist, dtype=dist.dtype)
    return SparseTopKSimilarity.from_features(
        dist, sparse_topk, dtype=dist.dtype, workers=workers,
        pool_backend=pool_backend,
    )


def _q_payload(
    matrix: "np.ndarray | SimilarityMatrix", concepts
) -> tuple[dict, dict[str, np.ndarray]]:
    """The build_q artifact body for either Q form (dense layout unchanged)."""
    q_meta, q_arrays = as_similarity_matrix(matrix).payload()
    return {"concepts": list(concepts), **q_meta}, q_arrays


def _run_build_q(
    store: ArtifactStore,
    stage,
    get_features,
    concepts,
    sparse_topk: int | None,
    out_of_core: bool,
    workers: int | None = None,
    pool_backend: str | None = None,
):
    """Execute a build_q stage, streaming CSR buffers to disk when asked.

    ``get_features`` is a zero-arg callable returning the (n, m) feature
    rows Q is built from; it only runs on a cache miss.  The streaming
    route needs the sparse form and a disk-backed store; anything else
    falls back to the heap build.  Both routes share the stage fingerprint
    and produce bit-identical payloads, so they replay each other's cached
    artifacts freely.  ``workers``/``pool_backend`` fan the kernel's row
    tiles out to the pool on both routes without changing a single output
    bit — like ``workers`` and ``out_of_core``, the backend never enters
    stage fingerprints.
    """
    if (out_of_core and sparse_topk is not None
            and store.cache_dir is not None):

        def build(writer) -> dict:
            matrix = SparseTopKSimilarity.from_features_streaming(
                get_features(), sparse_topk, writer.create, workers=workers,
                pool_backend=pool_backend,
            )
            meta, _ = matrix.payload()
            return {"concepts": list(concepts), **meta}

        return run_stage_streaming(store, stage, build)
    return run_stage(
        store,
        stage,
        lambda: _q_payload(
            similarity_from_distributions(
                get_features(), sparse_topk=sparse_topk, workers=workers,
                pool_backend=pool_backend,
            ),
            concepts,
        ),
    )


def _sparsity_params(sparse_topk: int | None) -> dict:
    """Fingerprint fragment for the sparsity settings.

    Only present when sparsity is on, so every dense build_q fingerprint —
    and with it every artifact cached before the sparse engine existed —
    stays valid.
    """
    return {} if sparse_topk is None else {"sparse_topk": int(sparse_topk)}


@dataclass
class SimilarityResult:
    """The similarity matrix Q plus provenance from the mining pipeline.

    ``mined`` distinguishes a Q produced by the §3.3 pipeline (where
    ``concepts`` is the post-denoising set, possibly empty) from a Q that
    was *injected* by the caller and never mined at all; the two used to be
    indistinguishable after a save/load round trip.  ``fingerprint`` is the
    build_q stage address when the result came through an
    :class:`~repro.pipeline.ArtifactStore`, letting downstream train
    stages chain on it without re-hashing the matrix.
    """

    matrix: "np.ndarray | SimilarityMatrix"
    concepts: tuple[str, ...]
    denoising: DenoisingResult | None = None
    distributions: np.ndarray | None = field(default=None, repr=False)
    mined: bool = True
    fingerprint: str | None = None


class SemanticSimilarityGenerator:
    """Builds the paper's semantic similarity matrix Q from images.

    Parameters
    ----------
    clip:
        The (simulated) VLP model.
    concepts:
        Candidate concept set C (the paper uses the 81 NUS-WIDE names).
    templates:
        One or more prompt templates.  With several templates the per-
        template similarity matrices are averaged (the ``UHSCM_avg``
        ablation).
    tau_scale:
        τ multiplier for Eq. 2 (τ = tau_scale · m).
    denoise:
        Apply Eq. 4–5 between the two mining passes.
    sparse_topk:
        ``None`` (default) builds the dense (n, n) Q; a positive k builds
        the top-k CSR form via the blocked kernel instead (exact for
        ``k >= n - 1``, a weak-pair truncation below that).  Incompatible
        with template averaging, which needs dense matrices to mix.
    out_of_core:
        Residency policy for staged sparse builds: the CSR Q streams
        straight into on-disk artifact buffers (and comes back as memmap
        views) instead of passing through the heap.  Ignored — with
        identical outputs — on the dense, unstaged, or memory-only-store
        paths.
    workers:
        Worker count for the sparse kernel's row-tile fan-out (``None``
        reads ``$REPRO_WORKERS``).  Pure execution policy: outputs are
        bit-identical at any value, so it never enters stage fingerprints.
    pool_backend:
        Pool execution mode for that fan-out — ``"thread"`` (default via
        ``None`` → ``$REPRO_POOL``) or ``"process"`` for spawned workers
        over shared-memory operands.  Execution policy like ``workers``:
        bit-identical outputs, never fingerprinted.
    """

    def __init__(
        self,
        clip: SimCLIP,
        concepts: tuple[str, ...] | list[str],
        templates: tuple[PromptTemplate | str | None, ...] = (None,),
        tau_scale: float = 1.0,
        denoise: bool = True,
        sparse_topk: int | None = None,
        out_of_core: bool = False,
        workers: int | None = None,
        pool_backend: str | None = None,
    ) -> None:
        if not concepts:
            raise ConfigurationError("candidate concept set is empty")
        if not templates:
            raise ConfigurationError("at least one prompt template is required")
        if sparse_topk is not None and len(templates) > 1:
            raise ConfigurationError(
                "sparse_topk cannot be combined with template averaging: "
                "averaged Q requires dense per-template matrices"
            )
        self.clip = clip
        self.concepts = tuple(concepts)
        self.templates = templates
        self.tau_scale = tau_scale
        self.denoise = denoise
        self.sparse_topk = sparse_topk
        self.out_of_core = out_of_core
        self.workers = workers
        self.pool_backend = pool_backend

    def _generate_single(
        self, images: np.ndarray, template: PromptTemplate | str | None
    ) -> SimilarityResult:
        miner = ConceptMiner(self.clip, template=template, tau_scale=self.tau_scale)
        distributions = miner.mine(images, self.concepts)
        denoising: DenoisingResult | None = None
        concepts = self.concepts
        if self.denoise:
            denoising = denoise_concepts(self.concepts, distributions)
            concepts = denoising.kept_concepts
            # Second prompting pass over the clean set C' (Algorithm 1 step 4).
            distributions = miner.mine(images, concepts)
        return SimilarityResult(
            matrix=similarity_from_distributions(
                distributions, sparse_topk=self.sparse_topk,
                workers=self.workers, pool_backend=self.pool_backend,
            ),
            concepts=concepts,
            denoising=denoising,
            distributions=distributions,
        )

    # -- staged execution over an artifact store ---------------------------

    def _template_key(self, template: PromptTemplate | str | None) -> str:
        from repro.vlp.clip import resolve_template

        return resolve_template(template).template

    def _stage_params(self, data_key: dict) -> dict:
        """Everything upstream of mining that can change its output."""
        return {
            "data": dict(data_key),
            "world": canonical(self.clip.world.config),
            "tau_scale": self.tau_scale,
        }

    def _generate_single_staged(
        self,
        images: np.ndarray,
        template: PromptTemplate | str | None,
        store: ArtifactStore,
        data_key: dict,
    ) -> SimilarityResult:
        """mine → denoise → build_q, each step replayed from the store."""
        miner = ConceptMiner(self.clip, template=template, tau_scale=self.tau_scale)
        mine_stage = Stage(
            MINE,
            params={
                **self._stage_params(data_key),
                "concepts": list(self.concepts),
                "template": self._template_key(template),
            },
        )
        mine_art = run_stage(
            store,
            mine_stage,
            lambda: (
                {"concepts": list(self.concepts)},
                {"distributions": miner.mine(images, self.concepts)},
            ),
        )
        distributions = mine_art.arrays["distributions"]
        concepts = self.concepts
        denoising: DenoisingResult | None = None
        upstream = mine_stage
        if self.denoise:
            denoise_stage = Stage(DENOISE, inputs=(mine_stage.fingerprint,))

            def build_denoise() -> tuple[dict, dict[str, np.ndarray]]:
                result = denoise_concepts(self.concepts, distributions)
                kept = result.kept_concepts
                # Second prompting pass over the clean set C'.
                return (
                    {"kept_concepts": list(kept)},
                    {
                        "distributions": miner.mine(images, kept),
                        "kept_mask": result.kept_mask,
                        "frequencies": result.frequencies,
                    },
                )

            den_art = run_stage(store, denoise_stage, build_denoise)
            concepts = tuple(den_art.meta["kept_concepts"])
            denoising = DenoisingResult(
                original_concepts=self.concepts,
                kept_mask=den_art.arrays["kept_mask"].astype(bool),
                frequencies=den_art.arrays["frequencies"],
            )
            distributions = den_art.arrays["distributions"]
            upstream = denoise_stage
        q_stage = Stage(
            BUILD_Q,
            params=_sparsity_params(self.sparse_topk),
            inputs=(upstream.fingerprint,),
        )
        final_distributions = distributions
        q_art = _run_build_q(
            store, q_stage, lambda: final_distributions, concepts,
            self.sparse_topk, self.out_of_core, workers=self.workers,
            pool_backend=self.pool_backend,
        )
        return SimilarityResult(
            matrix=similarity_from_payload(q_art.meta, q_art.arrays),
            concepts=concepts,
            denoising=denoising,
            distributions=distributions,
            fingerprint=q_art.key,
        )

    def generate(
        self,
        images: np.ndarray,
        store: ArtifactStore | None = None,
        data_key: dict | None = None,
    ) -> SimilarityResult:
        """Full §3.3 pipeline; averages matrices across templates if several.

        With a ``store`` and a ``data_key`` (the provenance of ``images``,
        see :func:`repro.pipeline.dataset_key`) the pipeline runs staged:
        mine, denoise, and Q construction each replay from the store when a
        matching artifact exists, and the results are bit-identical to the
        direct path.  The caller owns the contract that ``data_key``
        uniquely identifies ``images``.
        """
        if store is not None and data_key is not None:
            results = [
                self._generate_single_staged(images, t, store, data_key)
                for t in self.templates
            ]
        else:
            results = [self._generate_single(images, t) for t in self.templates]
        if len(results) == 1:
            return results[0]
        if store is not None and data_key is not None:
            avg_stage = Stage(
                BUILD_Q,
                params={"op": "average"},
                inputs=tuple(r.fingerprint or "" for r in results),
            )
            avg_art = run_stage(
                store,
                avg_stage,
                lambda: (
                    {"concepts": list(results[0].concepts)},
                    {"matrix": np.mean([r.matrix for r in results], axis=0)},
                ),
            )
            return SimilarityResult(
                matrix=avg_art.arrays["matrix"],
                concepts=results[0].concepts,
                denoising=results[0].denoising,
                distributions=None,
                fingerprint=avg_art.key,
            )
        averaged = np.mean([r.matrix for r in results], axis=0)
        return SimilarityResult(
            matrix=averaged,
            concepts=results[0].concepts,
            denoising=results[0].denoising,
            distributions=None,
        )


class ImageFeatureSimilarityGenerator:
    """The ``UHSCM_IF`` ablation: Q from raw VLP image-feature cosine.

    Skips concept mining entirely — this is the strategy of prior work
    (SSDH / MLS3RDUH style) that the paper argues against.  ``sparse_topk``
    selects the top-k CSR form exactly as in
    :class:`SemanticSimilarityGenerator` — raw-feature Q is the generator
    large corpora actually hit (no mining bottleneck), so it scales too —
    and ``out_of_core`` additionally streams the staged sparse build into
    disk-resident CSR buffers, as in
    :class:`SemanticSimilarityGenerator`.
    """

    def __init__(
        self,
        clip: SimCLIP,
        sparse_topk: int | None = None,
        out_of_core: bool = False,
        workers: int | None = None,
        pool_backend: str | None = None,
    ) -> None:
        self.clip = clip
        self.sparse_topk = sparse_topk
        self.out_of_core = out_of_core
        self.workers = workers
        self.pool_backend = pool_backend

    def _build_matrix(
        self, images: np.ndarray
    ) -> "np.ndarray | SparseTopKSimilarity":
        features = self.clip.image_features(images)
        if self.sparse_topk is None:
            return cosine_similarity_matrix(features)
        return SparseTopKSimilarity.from_features(
            features, self.sparse_topk, workers=self.workers,
            pool_backend=self.pool_backend,
        )

    def generate(
        self,
        images: np.ndarray,
        store: ArtifactStore | None = None,
        data_key: dict | None = None,
    ) -> SimilarityResult:
        if store is not None and data_key is not None:
            stage = Stage(
                BUILD_Q,
                params={
                    "kind": "image-features",
                    "data": dict(data_key),
                    "world": canonical(self.clip.world.config),
                    **_sparsity_params(self.sparse_topk),
                },
            )
            if (self.out_of_core and self.sparse_topk is not None
                    and store.cache_dir is not None):
                art = _run_build_q(
                    store, stage,
                    lambda: self.clip.image_features(images), (),
                    self.sparse_topk, self.out_of_core, workers=self.workers,
                    pool_backend=self.pool_backend,
                )
            else:
                art = run_stage(
                    store, stage,
                    lambda: _q_payload(self._build_matrix(images), ()),
                )
            return SimilarityResult(
                matrix=similarity_from_payload(art.meta, art.arrays),
                concepts=(),
                fingerprint=art.key,
            )
        return SimilarityResult(
            matrix=self._build_matrix(images),
            concepts=(),
            denoising=None,
            distributions=None,
        )


class ClusteredConceptSimilarityGenerator:
    """The ``UHSCM_cN`` ablations: k-means concept clusters as final concepts.

    The candidate concepts' *text embeddings* are clustered; each centroid
    acts as one final concept, and images are scored against centroids
    directly (the clustering replacement for Eq. 4–5 denoising studied in
    Table 2 rows 8–12).
    """

    def __init__(
        self,
        clip: SimCLIP,
        concepts: tuple[str, ...] | list[str],
        n_clusters: int,
        template: PromptTemplate | str | None = None,
        tau_scale: float = 1.0,
        seed: int = 0,
        sparse_topk: int | None = None,
    ) -> None:
        if n_clusters <= 0:
            raise ConfigurationError(f"n_clusters must be positive: {n_clusters}")
        if n_clusters > len(concepts):
            raise ConfigurationError(
                f"n_clusters ({n_clusters}) exceeds concept count ({len(concepts)})"
            )
        self.clip = clip
        self.concepts = tuple(concepts)
        self.n_clusters = n_clusters
        self.template = template
        self.tau_scale = tau_scale
        self.seed = seed
        self.sparse_topk = sparse_topk

    def generate(
        self,
        images: np.ndarray,
        store: ArtifactStore | None = None,
        data_key: dict | None = None,
    ) -> SimilarityResult:
        from repro.analysis.kmeans import kmeans  # local: avoids import cycle
        from repro.vlp.clip import resolve_template

        template = resolve_template(self.template)
        concepts = tuple(f"cluster_{i}" for i in range(self.n_clusters))

        def build() -> tuple[dict, dict[str, np.ndarray]]:
            # Embed the concept prompts, cluster them, use centroids as
            # concepts.
            text_emb = self.clip.encode_texts(
                template.format_all(list(self.concepts))
            )
            result = kmeans(text_emb, self.n_clusters, seed=self.seed)
            centroids = result.centroids / np.maximum(
                np.linalg.norm(result.centroids, axis=1, keepdims=True), 1e-12
            )
            image_emb = self.clip.encode_images(images)
            scores = (np.clip(image_emb @ centroids.T, -1.0, 1.0) + 1.0) / 2.0
            tau = self.tau_scale * self.n_clusters
            distributions = concept_distributions(scores, tau)
            meta, arrays = _q_payload(
                similarity_from_distributions(
                    distributions, sparse_topk=self.sparse_topk
                ),
                concepts,
            )
            arrays["distributions"] = distributions
            return meta, arrays

        if store is not None and data_key is not None:
            stage = Stage(
                BUILD_Q,
                params={
                    "kind": "clustered",
                    "data": dict(data_key),
                    "world": canonical(self.clip.world.config),
                    "concepts": list(self.concepts),
                    "template": template.template,
                    "n_clusters": self.n_clusters,
                    "tau_scale": self.tau_scale,
                    "seed": self.seed,
                    **_sparsity_params(self.sparse_topk),
                },
            )
            art = run_stage(store, stage, build)
            return SimilarityResult(
                matrix=similarity_from_payload(art.meta, art.arrays),
                concepts=concepts,
                distributions=art.arrays["distributions"],
                fingerprint=art.key,
            )
        meta, arrays = build()
        return SimilarityResult(
            matrix=similarity_from_payload(meta, arrays),
            concepts=concepts,
            denoising=None,
            distributions=arrays["distributions"],
        )
