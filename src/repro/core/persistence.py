"""Save / load fitted hashing models.

A fitted UHSCM (or any feature-mode hashing network) is fully described by
its configuration, the mined concept set, and the network parameters; this
module serializes all three to a single ``.npz`` archive so a trained model
can be shipped and served without retraining.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.config import TrainConfig, UHSCMConfig
from repro.core.uhscm import UHSCM
from repro.errors import ConfigurationError, NotFittedError
from repro.vlp.clip import SimCLIP

_FORMAT_VERSION = 1


def save_uhscm(model: UHSCM, path: str | Path) -> Path:
    """Serialize a fitted UHSCM model to ``path`` (.npz archive)."""
    if model.network is None:
        raise NotFittedError("cannot save an unfitted UHSCM model")
    path = Path(path)
    config = asdict(model.config)
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": config,
        "concepts": list(model.concepts),
        "mined_concepts": list(model.mined_concepts)
        if model.similarity_ is not None
        else [],
        "network_mode": model.network_mode,
        "world_seed": model.clip.world.config.seed,
    }
    state = model.network.net.state_dict()
    np.savez(
        path,
        __meta__=np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ),
        **{f"param/{k}": v for k, v in state.items()},
    )
    return path


def load_uhscm(path: str | Path, clip: SimCLIP) -> UHSCM:
    """Reload a model saved by :func:`save_uhscm`.

    The caller supplies the :class:`SimCLIP` (it owns the world / feature
    extractor, which is configuration, not learned state).  The world seed is
    checked against the one recorded at save time.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such model file: {path}")
    archive = np.load(path)
    meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported model format {meta.get('format_version')!r}"
        )
    if meta["world_seed"] != clip.world.config.seed:
        raise ConfigurationError(
            f"model was trained on world seed {meta['world_seed']}, but the "
            f"supplied SimCLIP uses seed {clip.world.config.seed}"
        )

    config_dict = dict(meta["config"])
    config_dict["train"] = TrainConfig(**config_dict["train"])
    config = UHSCMConfig(**config_dict)
    model = UHSCM(config, clip=clip, concepts=tuple(meta["concepts"]),
                  network_mode=meta["network_mode"])

    # Rebuild the network shell, then load parameters into it.
    feature_dim = clip.world.backbone_features(
        np.zeros(
            (1, clip.world.config.channels, clip.world.config.image_size,
             clip.world.config.image_size)
        )
    ).shape[1]
    from repro.core.hashing_network import HashingNetwork

    model.network = HashingNetwork(
        config.n_bits,
        mode="feature",
        feature_extractor=clip.world.backbone_features,
        feature_dim=feature_dim,
        rng=config.seed,
    )
    state = {
        key[len("param/"):]: archive[key]
        for key in archive.files
        if key.startswith("param/")
    }
    model.network.net.load_state_dict(state)

    from repro.core.similarity import SimilarityResult

    model.similarity_ = SimilarityResult(
        matrix=np.zeros((0, 0)),
        concepts=tuple(meta["mined_concepts"]),
    )
    return model
