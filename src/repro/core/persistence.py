"""Save / load fitted hashing models.

A fitted UHSCM is fully described by its configuration, the mined concept
set, the network construction metadata, and the network parameters; this
module serializes all of it to a single archive so a trained model can be
shipped and served without retraining.  The archive format (``__meta__``
JSON + named arrays in one ``.npz``) is the
:mod:`repro.pipeline.store` format — persistence is a thin serialization
client of the same machinery that backs the artifact cache.

Format history:

- **v1** saved only the config + feature-mode parameters: a conv-mode model
  silently reloaded as a feature-mode network fed mismatched parameters,
  and ``contrastive`` / ``conv_profile`` / the mined-vs-injected Q
  distinction were lost on round trip.
- **v2** records ``network_mode``, ``conv_profile``, ``image_size``,
  ``contrastive``, and ``concepts_mined``, and reconstructs conv networks
  faithfully.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.uhscm import UHSCM
from repro.errors import ConfigurationError, NotFittedError
from repro.pipeline import read_archive, write_archive
from repro.vlp.clip import SimCLIP

_FORMAT_VERSION = 2

_PARAM_PREFIX = "param/"


def model_payload(model: UHSCM) -> tuple[dict, dict[str, np.ndarray]]:
    """The ``(meta, arrays)`` archive body describing a fitted UHSCM.

    This is the single serialization seam: :func:`save_uhscm` writes it to a
    file, and the serving layer (:func:`repro.serving.publish_model`) puts
    it in an :class:`~repro.pipeline.ArtifactStore` under a content
    fingerprint.  Both round-trip through :func:`restore_uhscm`.
    """
    if model.network is None or model.similarity_ is None:
        raise NotFittedError("cannot save an unfitted UHSCM model")
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(model.config),
        "concepts": list(model.concepts),
        "concepts_mined": bool(model.similarity_.mined),
        "mined_concepts": (
            list(model.similarity_.concepts) if model.similarity_.mined
            else None
        ),
        "network_mode": model.network_mode,
        "conv_profile": model.conv_profile,
        "image_size": model.network.image_size,
        "contrastive": model.contrastive,
        "world_seed": model.clip.world.config.seed,
    }
    state = model.network.net.state_dict()
    return meta, {f"{_PARAM_PREFIX}{k}": v for k, v in state.items()}


def save_uhscm(model: UHSCM, path: str | Path) -> Path:
    """Serialize a fitted UHSCM model to ``path`` (.npz archive)."""
    meta, arrays = model_payload(model)
    return write_archive(Path(path), meta, arrays)


def restore_uhscm(
    meta: dict, arrays: dict[str, np.ndarray], clip: SimCLIP
) -> UHSCM:
    """Rebuild a fitted UHSCM from a :func:`model_payload` archive body.

    The caller supplies the :class:`SimCLIP` (it owns the world / feature
    extractor, which is configuration, not learned state).  The world seed is
    checked against the one recorded at save time.
    """
    version = meta.get("format_version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported model format {version!r}: this build reads format "
            f"{_FORMAT_VERSION}; format-1 archives predate the conv-mode and "
            f"contrastive metadata and must be re-trained and re-saved"
        )
    if meta["world_seed"] != clip.world.config.seed:
        raise ConfigurationError(
            f"model was trained on world seed {meta['world_seed']}, but the "
            f"supplied SimCLIP uses seed {clip.world.config.seed}"
        )

    config_dict = dict(meta["config"])
    config_dict["train"] = TrainConfig(**config_dict["train"])
    config = UHSCMConfig(**config_dict)
    model = UHSCM(
        config,
        clip=clip,
        concepts=tuple(meta["concepts"]),
        network_mode=meta["network_mode"],
        conv_profile=meta["conv_profile"],
        contrastive=meta["contrastive"],
    )

    # Rebuild the network shell exactly as it was constructed at fit time,
    # then load the trained parameters into it.
    if meta["network_mode"] == "conv":
        model.network = HashingNetwork(
            config.n_bits,
            mode="conv",
            image_size=meta["image_size"],
            conv_profile=meta["conv_profile"],
            rng=config.seed,
        )
    else:
        feature_dim = clip.world.backbone_features(
            np.zeros(
                (1, clip.world.config.channels, clip.world.config.image_size,
                 clip.world.config.image_size)
            )
        ).shape[1]
        model.network = HashingNetwork(
            config.n_bits,
            mode="feature",
            feature_extractor=clip.world.backbone_features,
            feature_dim=feature_dim,
            rng=config.seed,
        )
    if config.train.dtype != "float64":
        # A fitted network lives in the training dtype (the trainer casts it
        # at construction); reload into the same dtype for identical codes.
        model.network.to(config.train.dtype)
    model.network.net.load_state_dict(
        {
            key[len(_PARAM_PREFIX):]: value
            for key, value in arrays.items()
            if key.startswith(_PARAM_PREFIX)
        }
    )

    from repro.core.similarity import SimilarityResult

    model.similarity_ = SimilarityResult(
        matrix=np.zeros((0, 0)),
        concepts=tuple(meta["mined_concepts"] or ()),
        mined=bool(meta["concepts_mined"]),
    )
    return model


def load_uhscm(path: str | Path, clip: SimCLIP) -> UHSCM:
    """Reload a model saved by :func:`save_uhscm`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such model file: {path}")
    meta, arrays = read_archive(path)
    return restore_uhscm(meta, arrays, clip)
