"""UHSCM — the paper's full method, end to end (Algorithm 1).

Pipeline (Figure 1):

1. mine concept distributions of the training images over a candidate
   concept set via the VLP model with prompting (Eq. 1–2);
2. denoise the concept set (Eq. 4–5) and re-mine over the clean set;
3. build the semantic similarity matrix Q (Eq. 6);
4. train the hashing network against Q with the Eq. 11 objective;
5. ``encode`` maps images to ±1 hash codes via ``sign``.

Usage::

    from repro import UHSCM, paper_config
    model = UHSCM(paper_config("cifar10", n_bits=64))
    model.fit(train_images)
    codes = model.encode(query_images)
"""

from __future__ import annotations

import numpy as np

from repro.config import UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.similarity import (
    SemanticSimilarityGenerator,
    SimilarityResult,
)
from repro.core.similarity_matrix import (
    SimilarityMatrix,
    similarity_fingerprint,
)
from repro.core.trainer import TrainHistory, UHSCMTrainer
from repro.errors import ConfigurationError, NotFittedError
from repro.pipeline import (
    TRAIN,
    ArtifactStore,
    Stage,
    canonical,
    run_stage,
)
from repro.vlp.clip import SimCLIP
from repro.vlp.concepts import NUS_WIDE_81


class UHSCM:
    """Unsupervised Hashing with Semantic Concept Mining.

    Parameters
    ----------
    config:
        Hyper-parameters (see :func:`repro.paper_config` for the per-dataset
        values selected in §4.6).
    clip:
        The VLP model; a default :class:`SimCLIP` is created if omitted.
        Pass the SimCLIP built over your dataset's world for meaningful
        scores.
    concepts:
        Candidate concept set C; the paper's default is the 81 NUS-WIDE
        names for every dataset.
    similarity_generator:
        Override for the Q-construction strategy (used by the Table 2
        ablation variants); defaults to the full §3.3 pipeline honouring
        ``config.denoise`` and ``config.prompt_template``.
    network_mode / conv_profile:
        ``feature`` (default; MLP head over frozen pretrained features) or
        ``conv`` (end-to-end VGG-style training on raw images).
    """

    #: Default inference chunk for memmapped inputs (rows per heap slice).
    MEMMAP_CHUNK = 8192

    def __init__(
        self,
        config: UHSCMConfig | None = None,
        clip: SimCLIP | None = None,
        concepts: tuple[str, ...] = NUS_WIDE_81,
        similarity_generator=None,
        network_mode: str = "feature",
        conv_profile: str = "tiny",
        contrastive: str = "mcl",
        store: ArtifactStore | None = None,
    ) -> None:
        self.config = config or UHSCMConfig()
        self.clip = clip or SimCLIP()
        self.concepts = tuple(concepts)
        self.similarity_generator = similarity_generator or (
            SemanticSimilarityGenerator(
                self.clip,
                self.concepts,
                templates=(self.config.prompt_template,),
                tau_scale=self.config.tau_scale,
                denoise=self.config.denoise,
                sparse_topk=self.config.sparse_topk,
                out_of_core=self.config.out_of_core,
                workers=self.config.workers,
                pool_backend=self.config.pool_backend,
            )
        )
        self.network_mode = network_mode
        self.conv_profile = conv_profile
        self.contrastive = contrastive
        self.store = store
        self.network: HashingNetwork | None = None
        self.similarity_: SimilarityResult | None = None
        self.history_: TrainHistory | None = None

    # -- construction helpers -------------------------------------------------

    def _build_network(self, images: np.ndarray) -> HashingNetwork:
        if self.network_mode == "feature":
            # The paper fine-tunes the whole VGG19; the equivalent here is a
            # head over the lossless trainable-backbone features (see
            # SemanticWorld.backbone_features).
            extractor = self.clip.world.backbone_features
            feature_dim = extractor(images[:1]).shape[1]
            return HashingNetwork(
                self.config.n_bits,
                mode="feature",
                feature_extractor=extractor,
                feature_dim=feature_dim,
                rng=self.config.seed,
            )
        return HashingNetwork(
            self.config.n_bits,
            mode="conv",
            image_size=images.shape[-1],
            conv_profile=self.conv_profile,
            rng=self.config.seed,
        )

    # -- the public API ---------------------------------------------------------

    def fit(
        self,
        images: np.ndarray,
        similarity: "np.ndarray | SimilarityMatrix | SimilarityResult | None" = None,
        epochs: int | None = None,
        store: ArtifactStore | None = None,
        data_key: dict | None = None,
    ) -> "UHSCM":
        """Run Algorithm 1 on unlabeled training images.

        ``similarity`` lets callers inject a precomputed Q (used by
        hyper-parameter sweeps to avoid re-mining); by default it is
        generated by the §3.3 pipeline.  An injected raw matrix is
        recorded with ``similarity_.mined = False`` so it cannot
        masquerade as "mined zero concepts" after a save/load round trip;
        an injected :class:`SimilarityResult` keeps its provenance (and
        its Q fingerprint, so staged fits chain on it without re-hashing
        the matrix).

        With a ``store`` (or one passed at construction) and a ``data_key``
        identifying ``images`` (see :func:`repro.pipeline.dataset_key`),
        Algorithm 1 runs as fingerprinted pipeline stages: the mine /
        denoise / build_q chain is shared across every fit with the same
        similarity settings (Q does not depend on ``n_bits``), and the
        training stage itself replays from the store when an identical
        configuration already trained to completion.
        """
        store = store if store is not None else self.store
        if not isinstance(images, np.memmap):
            # A memmapped corpus stays disk-resident; downstream consumers
            # (feature extraction, the trainer) slice and cast per batch.
            images = np.asarray(images, dtype=np.float64)
        staged = store is not None and data_key is not None
        if similarity is None:
            if staged:
                self.similarity_ = self.similarity_generator.generate(
                    images, store=store, data_key=data_key
                )
            else:
                self.similarity_ = self.similarity_generator.generate(images)
            q = self.similarity_.matrix
        elif isinstance(similarity, SimilarityResult):
            self.similarity_ = similarity
            q = similarity.matrix
            if not isinstance(q, SimilarityMatrix):
                q = np.asarray(q, dtype=np.float64)
        elif isinstance(similarity, SimilarityMatrix):
            q = similarity
            self.similarity_ = SimilarityResult(matrix=q, concepts=(),
                                                mined=False)
        else:
            q = np.asarray(similarity, dtype=np.float64)
            self.similarity_ = SimilarityResult(matrix=q, concepts=(),
                                                mined=False)
        if not staged:
            self._train(images, q, epochs)
            return self

        self.network = None  # a prior fit must not mask a train-stage hit
        self.history_ = None
        q_fingerprint = self.similarity_.fingerprint
        params = {
            "data": dict(data_key),
            "world": canonical(self.clip.world.config),
            "config": canonical(self.config.fingerprint_payload()),
            "contrastive": self.contrastive,
            "network_mode": self.network_mode,
            "conv_profile": self.conv_profile,
            "epochs": epochs,
        }
        if q_fingerprint is None:
            # Injected or unstaged Q: fold its content hash in directly
            # (works for both the dense and the CSR form).
            params["q"] = similarity_fingerprint(q)
        stage = Stage(
            TRAIN,
            params=params,
            inputs=(q_fingerprint,) if q_fingerprint is not None else (),
        )

        def build() -> tuple[dict, dict[str, np.ndarray]]:
            self._train(images, q, epochs)
            assert self.network is not None and self.history_ is not None
            history = self.history_
            return (
                {
                    "history": {
                        "total": history.total,
                        "similarity": history.similarity,
                        "contrastive": history.contrastive,
                        "quantization": history.quantization,
                        "batches": history.batches,
                    },
                },
                {f"param/{k}": v
                 for k, v in self.network.net.state_dict().items()},
            )

        artifact = run_stage(store, stage, build)
        if self.network is None:  # cache hit: rebuild the net, skip training
            self.network = self._build_network(images)
            if self.config.train.dtype != "float64":
                # A fitted network lives in the training dtype; match it so
                # replayed codes are bit-identical to the trained ones.
                self.network.to(self.config.train.dtype)
            self.network.net.load_state_dict(
                {key[len("param/"):]: value
                 for key, value in artifact.arrays.items()
                 if key.startswith("param/")}
            )
            self.history_ = TrainHistory(**artifact.meta["history"])
        return self

    def _train(
        self,
        images: np.ndarray,
        q: "np.ndarray | SimilarityMatrix",
        epochs: int | None,
    ) -> None:
        """Steps 5–12 of Algorithm 1: build the network and optimize it."""
        self.network = self._build_network(images)
        trainer = UHSCMTrainer(self.network, self.config,
                               contrastive=self.contrastive)
        inputs = self.network.prepare_inputs(images)
        self.history_ = trainer.fit(inputs, q, epochs=epochs)

    def _infer_blocks(
        self, fn, images: np.ndarray, chunk_size: int | None
    ) -> np.ndarray:
        """Run an inference helper over ``images`` in bounded-memory chunks.

        Inputs are cast to the network's configured dtype — once, per
        chunk — so a float32-trained network never pays the old
        unconditional float64 round trip.  ``chunk_size=None`` processes
        everything in one call (the network still micro-batches
        internally) — unless ``images`` is a memmap, which defaults to
        :attr:`MEMMAP_CHUNK` rows per chunk so a disk-resident corpus is
        never materialized whole.  Chunked and monolithic results are
        identical because every row's forward pass is independent in eval
        mode.
        """
        assert self.network is not None
        dtype = self.network.dtype
        if not isinstance(images, np.memmap):
            images = np.asarray(images)
        elif chunk_size is None:
            chunk_size = self.MEMMAP_CHUNK
        if chunk_size is None or images.shape[0] == 0:
            return fn(np.asarray(images, dtype=dtype))
        if chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be positive (or None): {chunk_size}"
            )
        return np.concatenate(
            [
                fn(np.asarray(images[start : start + chunk_size], dtype=dtype))
                for start in range(0, images.shape[0], chunk_size)
            ]
        )

    def encode(
        self, images: np.ndarray, chunk_size: int | None = None
    ) -> np.ndarray:
        """Binary ±1 hash codes of shape (n, k).

        ``chunk_size`` bounds inference memory for large corpora: images
        are cast and forwarded ``chunk_size`` rows at a time, with output
        identical to the monolithic call for any chunk size.
        """
        if self.network is None:
            raise NotFittedError("UHSCM.encode called before fit")
        return self._infer_blocks(self.network.encode, images, chunk_size)

    def relaxed_codes(
        self, images: np.ndarray, chunk_size: int | None = None
    ) -> np.ndarray:
        """Tanh outputs z in [-1, 1]^k (before binarization)."""
        if self.network is None:
            raise NotFittedError("UHSCM.relaxed_codes called before fit")
        return self._infer_blocks(self.network.relaxed_codes, images,
                                  chunk_size)

    @property
    def mined_concepts(self) -> tuple[str, ...]:
        """The concept set actually used for Q (post-denoising).

        Empty both when mining genuinely kept zero concepts and when Q was
        injected; check :attr:`concepts_mined` to tell the two apart.
        """
        if self.similarity_ is None:
            raise NotFittedError("UHSCM not fitted yet")
        return self.similarity_.concepts

    @property
    def concepts_mined(self) -> bool:
        """Whether Q came from the §3.3 mining pipeline (vs. injected)."""
        if self.similarity_ is None:
            raise NotFittedError("UHSCM not fitted yet")
        return self.similarity_.mined
