"""UHSCM hashing losses (paper §3.4, Eq. 7–11) with analytic gradients.

Every function takes the batch's relaxed codes ``z`` (the tanh outputs of
the hashing network, shape (t, k)) plus the batch sub-block of the semantic
similarity matrix ``q`` and returns ``(loss_value, grad_wrt_z)`` so the
trainer can feed the gradient straight into ``network.backward``.

Notation: ``ĥ_ij = cos(z_i, z_j)`` is the relaxed Hamming similarity of
Eq. 11; the binary ``b_i = sign(z_i)``.

One deliberate correction to the paper's formulas: Eq. 8 (and the quoted
CIB loss Eq. 10) are printed *without* the ``-log`` of a standard InfoNCE
objective — minimizing them exactly as printed would push positive pairs
*apart*.  The surrounding text ("the Hamming similarity between b_i and b_j
will be larger than ...") describes the standard contrastive behaviour, so
this implementation uses the conventional ``-log`` form.  DESIGN.md records
the discrepancy.

The contrastive losses are computed as loop-free masked-matrix expressions
(one log-sum-exp style denominator per anchor row, gradients assembled with
one scatter per term).  The original per-row loop implementations are kept
as ``_reference_modified_contrastive_loss`` / ``_reference_cib_contrastive_loss``
equivalence oracles for the test suite and the train-scale benchmark.

Dtype policy: inputs keep their floating dtype (float32 or float64; anything
else is promoted to float64), so a float32 training run stays float32 through
the loss and its gradient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

_EPS = 1e-12


def _check_z(z: np.ndarray) -> np.ndarray:
    z = np.asarray(z)
    if z.dtype not in (np.float32, np.float64):
        z = z.astype(np.float64)
    if z.ndim != 2:
        raise ShapeError(f"codes must be (t, k), got {z.shape}")
    return z


def _check_q(q: np.ndarray, t: int, dtype: np.dtype) -> np.ndarray:
    q = np.asarray(q, dtype=dtype)
    if q.shape != (t, t):
        raise ShapeError(f"q must be ({t}, {t}), got {q.shape}")
    return q


def _normalize_rows(z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    norms = np.maximum(np.linalg.norm(z, axis=1, keepdims=True), _EPS)
    return z / norms, norms


def pairwise_cosine(z: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Relaxed Hamming similarity ``ĥ = Ẑ Ẑᵀ`` plus the pieces its gradient
    needs; returns ``(h, z_hat, norms)``.  Shared by the deep baselines."""
    z = _check_z(z)
    z_hat, norms = _normalize_rows(z)
    return z_hat @ z_hat.T, z_hat, norms


def cosine_backward(
    z_hat: np.ndarray, norms: np.ndarray, grad_h: np.ndarray
) -> np.ndarray:
    """Public alias of the ``dL/dĥ -> dL/dz`` backward used by every loss."""
    return _cosine_grad_to_z(z_hat, norms, grad_h)


def _cosine_grad_to_z(
    z_hat: np.ndarray, norms: np.ndarray, grad_h: np.ndarray
) -> np.ndarray:
    """Backprop ``dL/dĥ`` (t, t) through ``ĥ = Ẑ Ẑᵀ`` and row normalization.

    ``dL/dẐ = (G + Gᵀ) Ẑ`` and the normalization Jacobian projects out the
    radial component: ``dL/dz_i = (g_i - (g_i·ẑ_i) ẑ_i) / ||z_i||``.
    """
    g_zhat = (grad_h + grad_h.T) @ z_hat
    radial = (g_zhat * z_hat).sum(axis=1, keepdims=True)
    return (g_zhat - radial * z_hat) / norms


def _similarity_terms(h: np.ndarray, q: np.ndarray) -> tuple[float, np.ndarray]:
    """Eq. 7 value and ``dL_s/dĥ`` given a precomputed similarity matrix."""
    t = h.shape[0]
    diff = h - q
    loss = float((diff**2).mean())
    return loss, 2.0 * diff / (t * t)


def similarity_preserving_loss(
    z: np.ndarray, q: np.ndarray
) -> tuple[float, np.ndarray]:
    """Eq. 7 (relaxed per Eq. 11): ``L_s = (1/t²) Σ_ij (ĥ_ij − q_ij)²``."""
    z = _check_z(z)
    t = z.shape[0]
    q = _check_q(q, t, z.dtype)
    z_hat, norms = _normalize_rows(z)
    loss, grad_h = _similarity_terms(z_hat @ z_hat.T, q)
    return loss, _cosine_grad_to_z(z_hat, norms, grad_h)


#: Read-only off-diagonal masks keyed by batch size (batch sizes repeat every
#: step, so the eye allocation is paid once per size instead of per call).
_OFF_DIAG_CACHE: dict[int, np.ndarray] = {}


def _off_diagonal(t: int) -> np.ndarray:
    mask = _OFF_DIAG_CACHE.get(t)
    if mask is None:
        mask = ~np.eye(t, dtype=bool)
        mask.flags.writeable = False
        if len(_OFF_DIAG_CACHE) > 64:  # unbounded batch sizes stay bounded
            _OFF_DIAG_CACHE.clear()
        _OFF_DIAG_CACHE[t] = mask
    return mask


def _contrastive_masks(
    q: np.ndarray, lam: float
) -> tuple[np.ndarray, np.ndarray]:
    """Positive/negative batch masks Ψ/Φ of Eq. 8 (both exclude the diagonal)."""
    off_diag = _off_diagonal(q.shape[0])
    return (q >= lam) & off_diag, (q < lam) & off_diag


def modified_contrastive_loss(
    z: np.ndarray,
    q: np.ndarray,
    lam: float,
    gamma: float,
) -> tuple[float, np.ndarray]:
    """Eq. 8 (−log form): similarity-mined contrastive regularizer ``L_c``.

    Positives of image i are Ψ_i = {j ≠ i | q_ij >= λ}; negatives are the
    rest of the batch Φ_i.  For each positive pair:

        ℓ_ij = −log [ e^{ĥ_ij/γ} / (e^{ĥ_ij/γ} + Σ_{l∈Φ_i} e^{ĥ_il/γ}) ]

    and ``L_c`` averages ℓ over positives (1/|Ψ_i|) and images (1/t).
    Images with empty Ψ_i or empty Φ_i contribute nothing.

    Loop-free formulation: with ``E = exp(ĥ/γ)`` (max-shifted) and
    ``S_i = Σ_{l∈Φ_i} E_il``, every per-pair ratio is one entry of the
    masked matrix ``R = E / (E + S)``, so the loss and both gradient terms
    reduce to masked row-sums over R — one scatter back into grad_h per term.
    """
    z = _check_z(z)
    t = z.shape[0]
    q = _check_q(q, t, z.dtype)
    if gamma <= 0:
        raise ShapeError(f"gamma must be positive: {gamma}")
    z_hat, norms = _normalize_rows(z)
    loss, grad_h = _mcl_terms(z_hat @ z_hat.T, q, lam, gamma)
    if grad_h is None:
        return 0.0, np.zeros_like(z)
    return loss, _cosine_grad_to_z(z_hat, norms, grad_h)


def _mcl_terms(
    h: np.ndarray, q: np.ndarray, lam: float, gamma: float, weight: float = 1.0
) -> tuple[float, np.ndarray | None]:
    """Eq. 8 value and ``weight · dL_c/dĥ`` given a precomputed similarity
    matrix (the weight is folded into the per-row scale so callers combining
    loss terms pay no extra full-matrix pass).

    Returns ``(0.0, None)`` when no image has both positives and negatives.
    """
    t = h.shape[0]
    pos_mask, neg_mask = _contrastive_masks(q, lam)
    # exp((ĥ − max ĥ)/γ) built in one scratch array; the shared shift
    # cancels in every ratio.
    exp_h = h * (1.0 / gamma)
    exp_h -= exp_h.max()
    np.exp(exp_h, out=exp_h)
    neg_sum = (exp_h * neg_mask).sum(axis=1)  # Σ_{l∈Φ_i} e^{ĥ_il/γ}
    pos_count = pos_mask.sum(axis=1)
    active = np.flatnonzero((pos_count > 0) & (neg_sum > 0))
    if active.size == 0:
        return 0.0, None

    if active.size == t:  # the common case: skip the whole-matrix gathers
        exp_a, pos_a, neg_a, act_neg_sum = exp_h, pos_mask, neg_mask, neg_sum
        inv_psi = 1.0 / pos_count
    else:
        exp_a = exp_h[active]  # (m, t) rows with both positives and negatives
        pos_a = pos_mask[active]
        neg_a = neg_mask[active]
        act_neg_sum = neg_sum[active]
        inv_psi = 1.0 / pos_count[active]  # 1/|Ψ_i| averaging weights
    # int division promoted to float64; stay in the working dtype.
    inv_psi = inv_psi.astype(h.dtype, copy=False)
    denom = exp_a + act_neg_sum[:, None]  # > 0 on every active row
    r = exp_a / denom

    row_loss = (-np.log(np.maximum(r, _EPS)) * pos_a).sum(axis=1)
    loss = float((row_loss * inv_psi).sum()) / t

    # d(−log r)/dĥ_ij = (r − 1)/γ for the positive j;
    # d(−log r)/dĥ_il = e^{ĥ_il/γ}/denom/γ summed over positives for each l;
    # the 1/t average and the caller's term weight ride along in w.
    w = inv_psi[:, None] * (weight / (gamma * t))
    grad_rows = np.where(pos_a, w * (r - 1.0), 0.0)
    inv_denom_sum = ((1.0 / denom) * pos_a).sum(axis=1, keepdims=True)
    grad_rows += np.where(neg_a, w * inv_denom_sum * exp_a, 0.0)

    if active.size == t:
        return loss, grad_rows
    grad_h = np.zeros_like(h)
    grad_h[active] = grad_rows
    return loss, grad_h


def _reference_modified_contrastive_loss(
    z: np.ndarray,
    q: np.ndarray,
    lam: float,
    gamma: float,
) -> tuple[float, np.ndarray]:
    """Original per-row loop implementation of Eq. 8, kept as the equivalence
    oracle for :func:`modified_contrastive_loss` (tests + train benchmark)."""
    z = _check_z(z)
    t = z.shape[0]
    q = _check_q(q, t, z.dtype)
    if gamma <= 0:
        raise ShapeError(f"gamma must be positive: {gamma}")
    z_hat, norms = _normalize_rows(z)
    h = z_hat @ z_hat.T

    pos_mask, neg_mask = _contrastive_masks(q, lam)
    exp_h = np.exp((h - h.max()) / gamma)
    neg_sum = (exp_h * neg_mask).sum(axis=1)

    loss = 0.0
    grad_h = np.zeros_like(h)
    active_images = 0
    for i in range(t):
        pos_idx = np.flatnonzero(pos_mask[i])
        if pos_idx.size == 0 or neg_sum[i] <= 0:
            continue
        active_images += 1
        a = exp_h[i, pos_idx]
        denom = a + neg_sum[i]
        r = a / denom
        loss += float(-np.log(np.maximum(r, _EPS)).mean())
        w = 1.0 / pos_idx.size
        grad_h[i, pos_idx] += w * (r - 1.0) / gamma
        neg_idx = np.flatnonzero(neg_mask[i])
        contrib = (w / gamma) * (1.0 / denom).sum() * exp_h[i, neg_idx]
        grad_h[i, neg_idx] += contrib

    if active_images == 0:
        return 0.0, np.zeros_like(z)
    loss /= t
    grad_h /= t
    return loss, _cosine_grad_to_z(z_hat, norms, grad_h)


def quantization_loss(z: np.ndarray) -> tuple[float, np.ndarray]:
    """Eq. 11's β-term: ``(1/t) Σ_i ||z_i − b_i||²`` with ``b_i = sign(z_i)``."""
    z = _check_z(z)
    t = z.shape[0]
    one = z.dtype.type(1.0)
    diff = z - np.where(z > 0, one, -one)  # b_i = sign(z_i), in dtype
    loss = float((diff**2).sum() / t)
    return loss, 2.0 * diff / t


def _cib_setup(
    z1: np.ndarray, z2: np.ndarray, gamma: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared validation + similarity pieces for both CIB implementations.

    Returns ``(z_hat, norms, h, exp_h)`` over the stacked (2t, k) views,
    with the diagonal of ``exp_h`` zeroed (a code is never its own negative).
    """
    z1 = _check_z(z1)
    z2 = _check_z(z2)
    if z1.shape != z2.shape:
        raise ShapeError(f"view shapes differ: {z1.shape} vs {z2.shape}")
    if gamma <= 0:
        raise ShapeError(f"gamma must be positive: {gamma}")
    z = np.concatenate([z1, z2], axis=0)  # (2t, k)
    z_hat, norms = _normalize_rows(z)
    h = z_hat @ z_hat.T  # (2t, 2t)
    exp_h = h * (1.0 / gamma)
    exp_h -= exp_h.max()
    np.exp(exp_h, out=exp_h)
    np.fill_diagonal(exp_h, 0.0)
    return z_hat, norms, h, exp_h


def cib_contrastive_loss(
    z1: np.ndarray,
    z2: np.ndarray,
    gamma: float,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Eq. 10 (−log form): CIB's view-based contrastive loss ``J_c``.

    ``z1``/``z2`` are codes of two augmented views of the same batch.  The
    positive of view-1 code i is view-2 code i; negatives are all other
    codes of both views.  Used by the ``UHSCM_CL`` ablation (Table 2 row 14)
    and the CIB baseline.  Returns ``(loss, grad_z1, grad_z2)``.

    Loop-free formulation: with the diagonal of ``E = exp(ĥ/γ)`` zeroed,
    every anchor row is a softmax cross-entropy against its partner column
    ``p(i) = (i + t) mod 2t``, so ``grad_ĥ = P/γ`` with the positive column
    overwritten by ``(r − 1)/γ`` — a single scatter.
    """
    z_hat, norms, h, exp_h = _cib_setup(z1, z2, gamma)
    t = h.shape[0] // 2
    loss, grad_h = _cib_terms(exp_h, gamma)
    grad_z = _cosine_grad_to_z(z_hat, norms, grad_h)
    return loss, grad_z[:t], grad_z[t:]


def _cib_terms(
    exp_h: np.ndarray, gamma: float, weight: float = 1.0
) -> tuple[float, np.ndarray]:
    """Eq. 10 value and ``weight · dJ_c/dĥ`` from the zero-diagonal
    ``exp(ĥ/γ)`` (the weight rides in the shared scale, costing nothing)."""
    t = exp_h.shape[0] // 2
    rows = np.arange(2 * t)
    partner = np.concatenate([rows[t:], rows[:t]])  # (view1_i <-> view2_i)

    denom = np.maximum(exp_h.sum(axis=1), _EPS)  # (2t,)
    r = exp_h[rows, partner] / denom
    loss = float(-np.log(np.maximum(r, _EPS)).sum()) / (2 * t)

    scale = weight / (gamma * 2 * t)
    # One divide: E / (denom/scale) == (E/denom)·scale, diagonal stays 0.
    grad_h = exp_h / (denom * (gamma * 2 * t / weight))[:, None]  # negatives
    grad_h[rows, partner] = (r - 1.0) * scale  # positive-column scatter
    return loss, grad_h


def _reference_cib_contrastive_loss(
    z1: np.ndarray,
    z2: np.ndarray,
    gamma: float,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Original per-anchor loop implementation of Eq. 10, kept as the
    equivalence oracle for :func:`cib_contrastive_loss`.

    The negatives of each anchor are read from one precomputed boolean mask
    (rather than a per-anchor ``flatnonzero`` over ``arange(2t)``, the O(t²)
    allocation the vectorized rewrite eliminates).
    """
    z_hat, norms, h, exp_h = _cib_setup(z1, z2, gamma)
    t = h.shape[0] // 2

    rows = np.arange(2 * t)
    partner = np.concatenate([rows[t:], rows[:t]])
    others_mask = ~np.eye(2 * t, dtype=bool)
    others_mask[rows, partner] = False  # neither the anchor nor its positive

    loss = 0.0
    grad_h = np.zeros_like(h)
    for i in range(t):
        j = i + t  # the positive pair (view1_i, view2_i)
        for anchor, positive in ((i, j), (j, i)):
            denom = exp_h[anchor].sum()
            r = exp_h[anchor, positive] / np.maximum(denom, _EPS)
            loss += float(-np.log(np.maximum(r, _EPS)))
            grad_h[anchor, positive] += (r - 1.0) / gamma
            others = others_mask[anchor]
            grad_h[anchor, others] += exp_h[anchor, others] / denom / gamma
    loss /= 2 * t
    grad_h /= 2 * t
    grad_z = _cosine_grad_to_z(z_hat, norms, grad_h)
    return loss, grad_z[:t], grad_z[t:]


@dataclass(frozen=True)
class LossBreakdown:
    """Per-term values of the Eq. 11 objective for one batch."""

    total: float
    similarity: float
    contrastive: float
    quantization: float


def uhscm_objective(
    z: np.ndarray,
    q: np.ndarray,
    alpha: float,
    beta: float,
    gamma: float,
    lam: float,
) -> tuple[LossBreakdown, np.ndarray]:
    """Full Eq. 11: ``L = L_s + β·L_quant + α·L_c``; returns grad wrt z.

    Fused: the cosine similarity matrix is built once and ``dL/dĥ`` of the
    similarity and contrastive terms are combined before a single backward
    through the normalization — the seed ran the whole cosine forward and
    backward once per term.
    """
    z = _check_z(z)
    t = z.shape[0]
    q = _check_q(q, t, z.dtype)
    if gamma <= 0:
        raise ShapeError(f"gamma must be positive: {gamma}")
    z_hat, norms = _normalize_rows(z)
    h = z_hat @ z_hat.T

    ls, grad_h = _similarity_terms(h, q)
    lc = 0.0
    if alpha > 0:
        lc, grad_h_c = _mcl_terms(h, q, lam, gamma, weight=alpha)
        if grad_h_c is not None:
            grad_h += grad_h_c
    lq, grad_q = quantization_loss(z)
    total = ls + alpha * lc + beta * lq
    grad = _cosine_grad_to_z(z_hat, norms, grad_h) + beta * grad_q
    return (
        LossBreakdown(
            total=total, similarity=ls, contrastive=lc, quantization=lq
        ),
        grad,
    )


def cib_objective(
    z1: np.ndarray,
    z2: np.ndarray,
    q: np.ndarray,
    alpha: float,
    beta: float,
    gamma: float,
) -> tuple[LossBreakdown, np.ndarray, np.ndarray]:
    """Fused objective of the ``UHSCM_CL`` ablation step:
    ``L_s(z1) + β·L_quant(z1) + α·J_c(z1, z2)``.

    The (2t, 2t) view similarity matrix already contains the (t, t) matrix
    the Eq. 7 term needs as its top-left block, so one cosine forward and
    one normalization backward serve both losses.  Returns
    ``(breakdown, grad_z1, grad_z2)`` with the α/β weights applied.
    """
    z_hat, norms, h, exp_h = _cib_setup(z1, z2, gamma)
    t = h.shape[0] // 2
    q = _check_q(q, t, h.dtype)

    if alpha > 0:
        jc, grad_h = _cib_terms(exp_h, gamma, weight=alpha)
    else:  # mirror uhscm_objective: a zero-weight term is skipped entirely
        jc, grad_h = 0.0, np.zeros_like(h)
    ls, grad_h_s = _similarity_terms(h[:t, :t], q)
    grad_h[:t, :t] += grad_h_s
    grad_z = _cosine_grad_to_z(z_hat, norms, grad_h)

    lq, grad_q = quantization_loss(np.asarray(z1))
    grad_z1 = grad_z[:t] + beta * grad_q
    breakdown = LossBreakdown(
        total=ls + alpha * jc + beta * lq,
        similarity=ls,
        contrastive=jc,
        quantization=lq,
    )
    return breakdown, grad_z1, grad_z[t:]
