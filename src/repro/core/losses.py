"""UHSCM hashing losses (paper §3.4, Eq. 7–11) with analytic gradients.

Every function takes the batch's relaxed codes ``z`` (the tanh outputs of
the hashing network, shape (t, k)) plus the batch sub-block of the semantic
similarity matrix ``q`` and returns ``(loss_value, grad_wrt_z)`` so the
trainer can feed the gradient straight into ``network.backward``.

Notation: ``ĥ_ij = cos(z_i, z_j)`` is the relaxed Hamming similarity of
Eq. 11; the binary ``b_i = sign(z_i)``.

One deliberate correction to the paper's formulas: Eq. 8 (and the quoted
CIB loss Eq. 10) are printed *without* the ``-log`` of a standard InfoNCE
objective — minimizing them exactly as printed would push positive pairs
*apart*.  The surrounding text ("the Hamming similarity between b_i and b_j
will be larger than ...") describes the standard contrastive behaviour, so
this implementation uses the conventional ``-log`` form.  DESIGN.md records
the discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.utils.mathops import sign

_EPS = 1e-12


def _check_z(z: np.ndarray) -> np.ndarray:
    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 2:
        raise ShapeError(f"codes must be (t, k), got {z.shape}")
    return z


def _check_q(q: np.ndarray, t: int) -> np.ndarray:
    q = np.asarray(q, dtype=np.float64)
    if q.shape != (t, t):
        raise ShapeError(f"q must be ({t}, {t}), got {q.shape}")
    return q


def _normalize_rows(z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    norms = np.maximum(np.linalg.norm(z, axis=1, keepdims=True), _EPS)
    return z / norms, norms


def pairwise_cosine(z: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Relaxed Hamming similarity ``ĥ = Ẑ Ẑᵀ`` plus the pieces its gradient
    needs; returns ``(h, z_hat, norms)``.  Shared by the deep baselines."""
    z = _check_z(z)
    z_hat, norms = _normalize_rows(z)
    return z_hat @ z_hat.T, z_hat, norms


def cosine_backward(
    z_hat: np.ndarray, norms: np.ndarray, grad_h: np.ndarray
) -> np.ndarray:
    """Public alias of the ``dL/dĥ -> dL/dz`` backward used by every loss."""
    return _cosine_grad_to_z(z_hat, norms, grad_h)


def _cosine_grad_to_z(
    z_hat: np.ndarray, norms: np.ndarray, grad_h: np.ndarray
) -> np.ndarray:
    """Backprop ``dL/dĥ`` (t, t) through ``ĥ = Ẑ Ẑᵀ`` and row normalization.

    ``dL/dẐ = (G + Gᵀ) Ẑ`` and the normalization Jacobian projects out the
    radial component: ``dL/dz_i = (g_i - (g_i·ẑ_i) ẑ_i) / ||z_i||``.
    """
    g_zhat = (grad_h + grad_h.T) @ z_hat
    radial = (g_zhat * z_hat).sum(axis=1, keepdims=True)
    return (g_zhat - radial * z_hat) / norms


def similarity_preserving_loss(
    z: np.ndarray, q: np.ndarray
) -> tuple[float, np.ndarray]:
    """Eq. 7 (relaxed per Eq. 11): ``L_s = (1/t²) Σ_ij (ĥ_ij − q_ij)²``."""
    z = _check_z(z)
    t = z.shape[0]
    q = _check_q(q, t)
    z_hat, norms = _normalize_rows(z)
    h = z_hat @ z_hat.T
    diff = h - q
    loss = float((diff**2).mean())
    grad_h = 2.0 * diff / (t * t)
    return loss, _cosine_grad_to_z(z_hat, norms, grad_h)


def modified_contrastive_loss(
    z: np.ndarray,
    q: np.ndarray,
    lam: float,
    gamma: float,
) -> tuple[float, np.ndarray]:
    """Eq. 8 (−log form): similarity-mined contrastive regularizer ``L_c``.

    Positives of image i are Ψ_i = {j ≠ i | q_ij >= λ}; negatives are the
    rest of the batch Φ_i.  For each positive pair:

        ℓ_ij = −log [ e^{ĥ_ij/γ} / (e^{ĥ_ij/γ} + Σ_{l∈Φ_i} e^{ĥ_il/γ}) ]

    and ``L_c`` averages ℓ over positives (1/|Ψ_i|) and images (1/t).
    Images with empty Ψ_i or empty Φ_i contribute nothing.
    """
    z = _check_z(z)
    t = z.shape[0]
    q = _check_q(q, t)
    if gamma <= 0:
        raise ShapeError(f"gamma must be positive: {gamma}")
    z_hat, norms = _normalize_rows(z)
    h = z_hat @ z_hat.T

    off_diag = ~np.eye(t, dtype=bool)
    pos_mask = (q >= lam) & off_diag
    neg_mask = (q < lam) & off_diag

    exp_h = np.exp((h - h.max()) / gamma)  # shared shift cancels in ratios
    neg_sum = (exp_h * neg_mask).sum(axis=1)  # Σ_{l∈Φ_i} e^{ĥ_il/γ}

    loss = 0.0
    grad_h = np.zeros_like(h)
    active_images = 0
    for i in range(t):
        pos_idx = np.flatnonzero(pos_mask[i])
        if pos_idx.size == 0 or neg_sum[i] <= 0:
            continue
        active_images += 1
        a = exp_h[i, pos_idx]
        denom = a + neg_sum[i]
        r = a / denom
        loss += float(-np.log(np.maximum(r, _EPS)).mean())
        w = 1.0 / pos_idx.size
        # d(−log r)/dĥ_ij = (r − 1)/γ for the positive j;
        # d(−log r)/dĥ_il = e^{ĥ_il/γ}/denom/γ for each negative l.
        grad_h[i, pos_idx] += w * (r - 1.0) / gamma
        neg_idx = np.flatnonzero(neg_mask[i])
        contrib = (w / gamma) * (1.0 / denom).sum() * exp_h[i, neg_idx]
        grad_h[i, neg_idx] += contrib

    if active_images == 0:
        return 0.0, np.zeros_like(z)
    loss /= t
    grad_h /= t
    return loss, _cosine_grad_to_z(z_hat, norms, grad_h)


def quantization_loss(z: np.ndarray) -> tuple[float, np.ndarray]:
    """Eq. 11's β-term: ``(1/t) Σ_i ||z_i − b_i||²`` with ``b_i = sign(z_i)``."""
    z = _check_z(z)
    t = z.shape[0]
    b = sign(z)
    diff = z - b
    loss = float((diff**2).sum() / t)
    return loss, 2.0 * diff / t


def cib_contrastive_loss(
    z1: np.ndarray,
    z2: np.ndarray,
    gamma: float,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Eq. 10 (−log form): CIB's view-based contrastive loss ``J_c``.

    ``z1``/``z2`` are codes of two augmented views of the same batch.  The
    positive of view-1 code i is view-2 code i; negatives are all other
    codes of both views.  Used by the ``UHSCM_CL`` ablation (Table 2 row 14)
    and the CIB baseline.  Returns ``(loss, grad_z1, grad_z2)``.
    """
    z1 = _check_z(z1)
    z2 = _check_z(z2)
    if z1.shape != z2.shape:
        raise ShapeError(f"view shapes differ: {z1.shape} vs {z2.shape}")
    if gamma <= 0:
        raise ShapeError(f"gamma must be positive: {gamma}")
    t = z1.shape[0]
    z = np.concatenate([z1, z2], axis=0)  # (2t, k)
    z_hat, norms = _normalize_rows(z)
    h = z_hat @ z_hat.T  # (2t, 2t)

    exp_h = np.exp((h - h.max()) / gamma)
    np.fill_diagonal(exp_h, 0.0)  # a code is never its own negative

    loss = 0.0
    grad_h = np.zeros_like(h)
    for i in range(t):
        j = i + t  # the positive pair (view1_i, view2_i)
        for anchor, positive in ((i, j), (j, i)):
            denom = exp_h[anchor].sum()
            r = exp_h[anchor, positive] / np.maximum(denom, _EPS)
            loss += float(-np.log(np.maximum(r, _EPS)))
            grad_h[anchor, positive] += (r - 1.0) / gamma
            others = np.flatnonzero(
                (np.arange(2 * t) != anchor) & (np.arange(2 * t) != positive)
            )
            grad_h[anchor, others] += exp_h[anchor, others] / denom / gamma
    loss /= 2 * t
    grad_h /= 2 * t
    grad_z = _cosine_grad_to_z(z_hat, norms, grad_h)
    return loss, grad_z[:t], grad_z[t:]


@dataclass(frozen=True)
class LossBreakdown:
    """Per-term values of the Eq. 11 objective for one batch."""

    total: float
    similarity: float
    contrastive: float
    quantization: float


def uhscm_objective(
    z: np.ndarray,
    q: np.ndarray,
    alpha: float,
    beta: float,
    gamma: float,
    lam: float,
) -> tuple[LossBreakdown, np.ndarray]:
    """Full Eq. 11: ``L = L_s + β·L_quant + α·L_c``; returns grad wrt z."""
    ls, grad_s = similarity_preserving_loss(z, q)
    lc, grad_c = (0.0, np.zeros_like(np.asarray(z, dtype=np.float64)))
    if alpha > 0:
        lc, grad_c = modified_contrastive_loss(z, q, lam=lam, gamma=gamma)
    lq, grad_q = quantization_loss(z)
    total = ls + alpha * lc + beta * lq
    grad = grad_s + alpha * grad_c + beta * grad_q
    return (
        LossBreakdown(
            total=total, similarity=ls, contrastive=lc, quantization=lq
        ),
        grad,
    )
