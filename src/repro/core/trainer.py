"""UHSCM training loop (paper Algorithm 1, steps 6–12).

Mini-batches are sampled uniformly from the training set; each step forwards
the batch through the hashing network, evaluates the Eq. 11 objective
against the corresponding sub-block of the semantic similarity matrix Q, and
updates the network with SGD (momentum 0.9, lr 0.006, weight decay 1e-5 —
the paper's §4.1 settings, carried by :class:`~repro.config.TrainConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.losses import (
    LossBreakdown,
    cib_contrastive_loss,
    quantization_loss,
    similarity_preserving_loss,
    uhscm_objective,
)
from repro.errors import ConfigurationError
from repro.nn.optim import SGD
from repro.utils.rng import as_generator


@dataclass
class TrainHistory:
    """Per-epoch averages of every loss term."""

    total: list[float] = field(default_factory=list)
    similarity: list[float] = field(default_factory=list)
    contrastive: list[float] = field(default_factory=list)
    quantization: list[float] = field(default_factory=list)

    def append_epoch(self, breakdowns: list[LossBreakdown]) -> None:
        self.total.append(float(np.mean([b.total for b in breakdowns])))
        self.similarity.append(float(np.mean([b.similarity for b in breakdowns])))
        self.contrastive.append(float(np.mean([b.contrastive for b in breakdowns])))
        self.quantization.append(
            float(np.mean([b.quantization for b in breakdowns]))
        )

    @property
    def n_epochs(self) -> int:
        return len(self.total)


class UHSCMTrainer:
    """Optimizes a hashing network against a fixed similarity matrix Q."""

    #: Std of the Gaussian feature augmentation used to build the two views
    #: of the CIB-style contrastive mode (stand-in for image augmentation).
    AUGMENT_STD = 0.1

    def __init__(
        self,
        network: HashingNetwork,
        config: UHSCMConfig,
        rng: int | np.random.Generator | None = None,
        contrastive: str = "mcl",
    ) -> None:
        if contrastive not in ("mcl", "cib"):
            raise ConfigurationError(
                f"contrastive must be 'mcl' or 'cib', got {contrastive!r}"
            )
        self.network = network
        self.config = config
        self.contrastive = contrastive
        self.rng = as_generator(config.seed if rng is None else rng)
        train: TrainConfig = config.train
        self.optimizer = SGD(
            network.parameters(),
            learning_rate=train.learning_rate,
            momentum=train.momentum,
            weight_decay=train.weight_decay,
        )

    def fit(
        self,
        inputs: np.ndarray,
        similarity: np.ndarray,
        epochs: int | None = None,
    ) -> TrainHistory:
        """Run Algorithm 1's optimization loop.

        Parameters
        ----------
        inputs:
            Network-ready training inputs (features or raw images), length n.
        similarity:
            The (n, n) semantic similarity matrix Q.
        epochs:
            Override for ``config.train.epochs``.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        n = inputs.shape[0]
        if similarity.shape != (n, n):
            raise ConfigurationError(
                f"similarity must be ({n}, {n}), got {similarity.shape}"
            )
        epochs = self.config.train.epochs if epochs is None else epochs
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive: {epochs}")
        batch_size = min(self.config.train.batch_size, n)

        cfg = self.config
        history = TrainHistory()
        self.network.train()
        for _ in range(epochs):
            order = self.rng.permutation(n)
            breakdowns: list[LossBreakdown] = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                if idx.size < 2:
                    continue  # pairwise losses need at least two images
                q_batch = similarity[np.ix_(idx, idx)]
                if self.contrastive == "mcl":
                    breakdown = self._step_mcl(inputs[idx], q_batch)
                else:
                    breakdown = self._step_cib(inputs[idx], q_batch)
                breakdowns.append(breakdown)
            history.append_epoch(breakdowns)
        return history

    def _step_mcl(self, batch: np.ndarray, q_batch: np.ndarray) -> LossBreakdown:
        """One Eq. 11 step with the paper's modified contrastive loss."""
        cfg = self.config
        z = self.network.forward(batch)
        breakdown, grad_z = uhscm_objective(
            z, q_batch,
            alpha=cfg.alpha, beta=cfg.beta, gamma=cfg.gamma, lam=cfg.lam,
        )
        self.optimizer.zero_grad()
        self.network.backward(grad_z)
        self.optimizer.step()
        return breakdown

    def _step_cib(self, batch: np.ndarray, q_batch: np.ndarray) -> LossBreakdown:
        """One step of the ``UHSCM_CL`` ablation: Eq. 10's J_c replaces L_c.

        Two augmented views share the network, so the batch is forwarded
        twice and the second view's gradient is applied before re-forwarding
        the first (layer caches hold one activation set at a time).
        """
        cfg = self.config
        view1 = batch + self.rng.normal(size=batch.shape) * self.AUGMENT_STD
        view2 = batch + self.rng.normal(size=batch.shape) * self.AUGMENT_STD
        z1 = self.network.forward(view1)
        ls, grad_s = similarity_preserving_loss(z1, q_batch)
        lq, grad_q = quantization_loss(z1)
        z2 = self.network.forward(view2)
        jc, grad_c1, grad_c2 = cib_contrastive_loss(z1, z2, gamma=cfg.gamma)

        self.optimizer.zero_grad()
        self.network.backward(cfg.alpha * grad_c2)  # cache holds view2
        self.network.forward(view1)  # re-populate caches for view1
        self.network.backward(grad_s + cfg.beta * grad_q + cfg.alpha * grad_c1)
        self.optimizer.step()
        return LossBreakdown(
            total=ls + cfg.alpha * jc + cfg.beta * lq,
            similarity=ls,
            contrastive=jc,
            quantization=lq,
        )
