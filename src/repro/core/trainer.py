"""UHSCM training loop (paper Algorithm 1, steps 6–12).

Mini-batches are sampled uniformly from the training set; each step forwards
the batch through the hashing network, evaluates the Eq. 11 objective
against the corresponding sub-block of the semantic similarity matrix Q, and
updates the network with SGD (momentum 0.9, lr 0.006, weight decay 1e-5 —
the paper's §4.1 settings, carried by :class:`~repro.config.TrainConfig`).

The whole step runs under the :attr:`TrainConfig.dtype` policy: the network
is cast once at construction and inputs/similarity once per ``fit``, so a
float32 run never round-trips through float64 on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import TrainConfig, UHSCMConfig
from repro.core.hashing_network import HashingNetwork
from repro.core.losses import LossBreakdown, cib_objective, uhscm_objective
from repro.core.similarity_matrix import SimilarityMatrix, as_similarity_matrix
from repro.errors import ConfigurationError
from repro.nn.optim import SGD
from repro.nn.parameter import resolve_dtype
from repro.utils.parallel import as_pool
from repro.utils.rng import as_generator


@dataclass
class TrainHistory:
    """Per-epoch averages of every loss term.

    ``batches`` records how many mini-batches actually trained in each epoch
    (batches with fewer than two images are skipped by the pairwise losses).
    An epoch in which *every* batch was skipped raises
    :class:`~repro.errors.ConfigurationError` instead of silently averaging
    an empty list into NaN.
    """

    total: list[float] = field(default_factory=list)
    similarity: list[float] = field(default_factory=list)
    contrastive: list[float] = field(default_factory=list)
    quantization: list[float] = field(default_factory=list)
    batches: list[int] = field(default_factory=list)

    def append_epoch(self, breakdowns: list[LossBreakdown]) -> None:
        if not breakdowns:
            raise ConfigurationError(
                "epoch trained on zero batches: every mini-batch was skipped "
                "(the pairwise losses need at least two images per batch)"
            )
        self.batches.append(len(breakdowns))
        self.total.append(float(np.mean([b.total for b in breakdowns])))
        self.similarity.append(float(np.mean([b.similarity for b in breakdowns])))
        self.contrastive.append(float(np.mean([b.contrastive for b in breakdowns])))
        self.quantization.append(
            float(np.mean([b.quantization for b in breakdowns]))
        )

    @property
    def n_epochs(self) -> int:
        return len(self.total)


class UHSCMTrainer:
    """Optimizes a hashing network against a fixed similarity matrix Q."""

    #: Std of the Gaussian feature augmentation used to build the two views
    #: of the CIB-style contrastive mode (stand-in for image augmentation).
    AUGMENT_STD = 0.1

    def __init__(
        self,
        network: HashingNetwork,
        config: UHSCMConfig,
        rng: int | np.random.Generator | None = None,
        contrastive: str = "mcl",
    ) -> None:
        if contrastive not in ("mcl", "cib"):
            raise ConfigurationError(
                f"contrastive must be 'mcl' or 'cib', got {contrastive!r}"
            )
        self.network = network
        self.config = config
        self.contrastive = contrastive
        self.rng = as_generator(config.seed if rng is None else rng)
        train: TrainConfig = config.train
        self.dtype = resolve_dtype(train.dtype)
        if network.dtype != self.dtype:
            network.to(self.dtype)
        # After the cast, so velocity/scratch inherit the training dtype.
        self.optimizer = SGD(
            network.parameters(),
            learning_rate=train.learning_rate,
            momentum=train.momentum,
            weight_decay=train.weight_decay,
        )

    def fit(
        self,
        inputs: np.ndarray,
        similarity: "np.ndarray | SimilarityMatrix",
        epochs: int | None = None,
    ) -> TrainHistory:
        """Run Algorithm 1's optimization loop.

        Parameters
        ----------
        inputs:
            Network-ready training inputs (features or raw images), length
            n.  A memmap is consumed in place: only each mini-batch's rows
            are copied (and cast) to the heap, so a disk-resident corpus
            trains in O(batch) memory.
        similarity:
            The (n, n) semantic similarity matrix Q — a dense array or any
            :class:`~repro.core.similarity_matrix.SimilarityMatrix` (the
            top-k CSR form trains without ever densifying beyond the t×t
            batch block; its CSR components may themselves be memmaps).
        epochs:
            Override for ``config.train.epochs``.

        With ``config.workers > 1`` the next batch's Q-gather/densify and
        input-row copy run on the shared pool while the current optimizer
        step executes (a one-slot prefetch).  The gather is a pure
        function of ``(similarity, inputs, idx)`` — no RNG, no network
        state — and consecutive gathers never overlap (slot i+1 is
        submitted only after slot i was consumed), so the loss history is
        bit-identical to the serial loop, which remains the oracle path.
        """
        if not isinstance(inputs, np.memmap):
            # The historical path: one upfront cast.  For a memmap this
            # would materialize the whole corpus on the heap; instead each
            # batch gather below casts its own rows (bit-identical — a
            # dtype cast is elementwise, so cast-then-slice == slice-then-
            # cast).
            inputs = np.asarray(inputs, dtype=self.dtype)
        n = inputs.shape[0]
        if similarity.shape != (n, n):
            raise ConfigurationError(
                f"similarity must be ({n}, {n}), got {similarity.shape}"
            )
        similarity = as_similarity_matrix(similarity).astype(self.dtype)
        epochs = self.config.train.epochs if epochs is None else epochs
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive: {epochs}")
        batch_size = min(self.config.train.batch_size, n)

        def gather(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            # Dense Q gathers the t² sub-block with one flat take; sparse Q
            # densifies its stored batch entries into a zero block.  Either
            # way only O(t²) is materialized per step.  Fancy indexing
            # copies the input rows to the heap either way; the explicit
            # cast only matters for the memmap path, whose rows still carry
            # the on-disk dtype.
            return similarity.gather(idx), np.asarray(inputs[idx],
                                                      dtype=self.dtype)

        def step(batch: np.ndarray, q_batch: np.ndarray) -> LossBreakdown:
            if self.contrastive == "mcl":
                return self._step_mcl(batch, q_batch)
            return self._step_cib(batch, q_batch)

        history = TrainHistory()
        self.network.train()
        # Always thread-backed: the prefetch closure captures the model's
        # inputs and Q in-process (unpicklable, and latency-bound anyway).
        # config.pool_backend deliberately reaches only the Q-build
        # kernels, so a process-backend training config still trains.
        pool, owned = as_pool(self.config.workers, name="train",
                              backend="thread")
        try:
            for _ in range(epochs):
                order = self.rng.permutation(n)
                breakdowns: list[LossBreakdown] = []
                if pool.serial:
                    # The oracle path: gather and step strictly interleaved.
                    for start in range(0, n, batch_size):
                        idx = order[start:start + batch_size]
                        if idx.size < 2:
                            continue  # pairwise losses need >= 2 images
                        q_batch, batch = gather(idx)
                        breakdowns.append(step(batch, q_batch))
                else:
                    # One-slot prefetch: slot i+1 gathers on the pool while
                    # step i runs; gathers therefore never overlap, which
                    # keeps SparseTopKSimilarity's shared scratch safe.
                    batches = [
                        order[start:start + batch_size]
                        for start in range(0, n, batch_size)
                        if order[start:start + batch_size].size >= 2
                    ]
                    pending = (
                        pool.submit(gather, batches[0]) if batches else None
                    )
                    for i, _idx in enumerate(batches):
                        q_batch, batch = pending.result()
                        if i + 1 < len(batches):
                            pending = pool.submit(gather, batches[i + 1])
                        breakdowns.append(step(batch, q_batch))
                history.append_epoch(breakdowns)
        finally:
            if owned:
                pool.close()
        return history

    def _step_mcl(self, batch: np.ndarray, q_batch: np.ndarray) -> LossBreakdown:
        """One Eq. 11 step with the paper's modified contrastive loss."""
        cfg = self.config
        z = self.network.forward(batch)
        breakdown, grad_z = uhscm_objective(
            z, q_batch,
            alpha=cfg.alpha, beta=cfg.beta, gamma=cfg.gamma, lam=cfg.lam,
        )
        self.optimizer.zero_grad()
        self.network.backward(grad_z)
        self.optimizer.step()
        return breakdown

    def _augment(self, batch: np.ndarray) -> np.ndarray:
        # Draws stay float64 regardless of policy so float32 and float64
        # runs see the same augmentation stream; the arithmetic happens in
        # the training dtype, in place on the fresh noise array.
        noise = self.rng.normal(size=batch.shape).astype(self.dtype, copy=False)
        noise *= self.AUGMENT_STD
        noise += batch
        return noise

    def _step_cib(self, batch: np.ndarray, q_batch: np.ndarray) -> LossBreakdown:
        """One step of the ``UHSCM_CL`` ablation: Eq. 10's J_c replaces L_c.

        Two augmented views share the network; view 1's activation caches
        are captured before view 2's forward, so both backwards run off
        their own forward — 2 forwards + 2 backwards per step (the seed
        re-forwarded view 1 a third time, which also redrew dropout masks
        between a forward and its backward).
        """
        cfg = self.config
        view1 = self._augment(batch)
        view2 = self._augment(batch)
        z1 = self.network.forward(view1)
        view1_cache = self.network.capture_cache()
        z2 = self.network.forward(view2)
        breakdown, grad_z1, grad_z2 = cib_objective(
            z1, z2, q_batch, alpha=cfg.alpha, beta=cfg.beta, gamma=cfg.gamma
        )

        self.optimizer.zero_grad()
        self.network.backward(grad_z2)  # cache holds view2
        self.network.restore_cache(view1_cache)
        self.network.backward(grad_z1)
        self.optimizer.step()
        return breakdown
