"""Semantic concept denoising (paper §3.3.2, Eq. 4–5).

A concept's *frequency* f(c_i) is the number of training images whose mined
distribution puts c_i first (Eq. 4).  A concept is discarded (Eq. 5) when

- ``f(c_i) > 0.5 n``   — it dominates more than half the corpus, so it cannot
  distinguish images (the big-sky failure mode), or
- ``f(c_i) < 0.5 n/m`` — it wins for almost nothing, so it probably is not in
  the dataset at all and only injects VLP misjudgement noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def concept_frequencies(distributions: np.ndarray) -> np.ndarray:
    """Eq. 4: argmax-win counts per concept, shape (m,)."""
    dist = np.asarray(distributions, dtype=np.float64)
    if dist.ndim != 2:
        raise ConfigurationError(
            f"distributions must be (n, m), got {dist.shape}"
        )
    winners = dist.argmax(axis=1)
    return np.bincount(winners, minlength=dist.shape[1]).astype(np.int64)


def keep_mask(frequencies: np.ndarray, n_images: int) -> np.ndarray:
    """Eq. 5: boolean mask of concepts to keep.

    Keeps c_i iff ``0.5 n/m <= f(c_i) <= 0.5 n``.
    """
    freq = np.asarray(frequencies, dtype=np.float64)
    if freq.ndim != 1:
        raise ConfigurationError(f"frequencies must be 1-D, got {freq.shape}")
    if n_images <= 0:
        raise ConfigurationError(f"n_images must be positive: {n_images}")
    m = freq.size
    lower = 0.5 * n_images / m
    upper = 0.5 * n_images
    return (freq >= lower) & (freq <= upper)


@dataclass(frozen=True)
class DenoisingResult:
    """Outcome of one denoising pass over a candidate concept set."""

    original_concepts: tuple[str, ...]
    kept_mask: np.ndarray
    frequencies: np.ndarray

    @property
    def kept_concepts(self) -> tuple[str, ...]:
        return tuple(
            c for c, keep in zip(self.original_concepts, self.kept_mask) if keep
        )

    @property
    def discarded_concepts(self) -> tuple[str, ...]:
        return tuple(
            c for c, keep in zip(self.original_concepts, self.kept_mask) if not keep
        )

    @property
    def n_kept(self) -> int:
        return int(self.kept_mask.sum())


def denoise_concepts(
    concepts: list[str] | tuple[str, ...],
    distributions: np.ndarray,
) -> DenoisingResult:
    """Apply Eq. 4–5 and return the retained concept subset C'.

    If the filter would discard everything (pathological tiny inputs), the
    original set is kept unchanged — an empty concept set would make Eq. 6
    undefined.
    """
    concepts = tuple(concepts)
    dist = np.asarray(distributions, dtype=np.float64)
    if dist.shape[1] != len(concepts):
        raise ConfigurationError(
            f"distributions have {dist.shape[1]} columns for "
            f"{len(concepts)} concepts"
        )
    freq = concept_frequencies(dist)
    mask = keep_mask(freq, n_images=dist.shape[0])
    if not mask.any():
        mask = np.ones(len(concepts), dtype=bool)
    return DenoisingResult(
        original_concepts=concepts, kept_mask=mask, frequencies=freq
    )
