"""The hashing network H(x; W) (paper §3.2).

Two operating modes mirror the paper's VGG19 setup on CPU:

- ``feature`` (default): an MLP hash head over *frozen pretrained backbone
  features* — the reproduction of "the first eighteen layers are initialized
  with pretrained VGG19" (the frozen stem is the simulated pretrained
  encoder, only the replaced top layers train);
- ``conv``: a true convolutional VGG-style network trained end-to-end on raw
  images (profiles ``tiny`` / ``small`` / ``vgg19``).

Both end in a k-dim Xavier-initialized linear layer + tanh, and both expose
``encode`` returning binary ±1 codes via ``sign``.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.nn.module import Module
from repro.nn.parameter import resolve_dtype
from repro.nn.vgg import VGGHashNet, build_feature_hash_net
from repro.utils.mathops import sign
from repro.utils.rng import as_generator

#: Feature extractor signature: raw NCHW images -> (n, feature_dim) array.
FeatureExtractor = Callable[[np.ndarray], np.ndarray]

_ENCODE_BATCH = 1024


class HashingNetwork:
    """Unified wrapper around the two hashing-network modes."""

    def __init__(
        self,
        n_bits: int,
        mode: str = "feature",
        feature_extractor: FeatureExtractor | None = None,
        feature_dim: int | None = None,
        image_size: int = 16,
        conv_profile: str = "tiny",
        hidden_dims: tuple[int, ...] = (256,),
        rng: int | np.random.Generator | None = 0,
        dtype: str | np.dtype = "float64",
    ) -> None:
        if n_bits <= 0:
            raise ConfigurationError(f"n_bits must be positive: {n_bits}")
        gen = as_generator(rng)
        self.n_bits = n_bits
        self.mode = mode
        self.dtype = resolve_dtype(dtype)
        self.feature_extractor = feature_extractor
        self.feature_dim = feature_dim if mode == "feature" else None
        self.image_size = image_size if mode == "conv" else None
        self.conv_profile = conv_profile if mode == "conv" else None
        self.hidden_dims = tuple(hidden_dims)
        if mode == "feature":
            if feature_extractor is None or feature_dim is None:
                raise ConfigurationError(
                    "feature mode requires feature_extractor and feature_dim"
                )
            self.net: Module = build_feature_hash_net(
                n_bits, feature_dim, hidden_dims=hidden_dims, rng=gen
            )
        elif mode == "conv":
            self.net = VGGHashNet(
                n_bits,
                image_size=image_size,
                profile=conv_profile,
                hidden_dims=hidden_dims,
                rng=gen,
            )
        else:
            raise ConfigurationError(
                f"unknown mode {mode!r}; options: 'feature' or 'conv'"
            )
        if self.dtype != np.dtype(np.float64):
            self.net.to(self.dtype)

    # -- training interface --------------------------------------------------

    def to(self, dtype: str | np.dtype) -> "HashingNetwork":
        """Cast the underlying net to the given training dtype."""
        self.dtype = resolve_dtype(dtype)
        self.net.to(self.dtype)
        return self

    def capture_cache(self):
        """Snapshot layer activations (see :meth:`Module.capture_cache`)."""
        return self.net.capture_cache()

    def restore_cache(self, snapshot) -> None:
        self.net.restore_cache(snapshot)

    def prepare_inputs(self, images: np.ndarray) -> np.ndarray:
        """Map raw images to whatever the underlying net consumes."""
        if self.mode == "feature":
            assert self.feature_extractor is not None
            return self.feature_extractor(images)
        return images

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Relaxed codes z in [-1, 1]^k for already-prepared inputs."""
        return self.net(inputs)

    def backward(self, grad_z: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_z)

    def parameters(self):
        return self.net.parameters()

    def train(self) -> None:
        self.net.train(True)

    def eval(self) -> None:
        self.net.train(False)

    # -- inference -------------------------------------------------------------

    def relaxed_codes(self, images: np.ndarray) -> np.ndarray:
        """Eval-mode tanh outputs z for raw images, batched."""
        if images.shape[0] == 0:
            raise NotFittedError("cannot encode an empty image batch")
        self.net.train(False)
        outputs = []
        for start in range(0, images.shape[0], _ENCODE_BATCH):
            batch = images[start : start + _ENCODE_BATCH]
            outputs.append(self.net(self.prepare_inputs(batch)))
        self.net.train(True)
        return np.concatenate(outputs)

    def encode(self, images: np.ndarray) -> np.ndarray:
        """Binary ±1 hash codes B = sign(z) for raw images."""
        return sign(self.relaxed_codes(images))
