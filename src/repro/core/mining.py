"""Semantic concept mining (paper §3.3.1, Eq. 1–2).

Given training images and a candidate concept set, score every (image,
concept) pair with the VLP model under a prompt template (Eq. 1), then turn
each image's score vector into a *concept distribution* with a temperature
softmax (Eq. 2):

    d_ij = exp(τ s_ij) / Σ_k exp(τ s_ik)

The paper's τ is a multiplier proportional to the concept count (best value
τ = 3m, §4.6).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.mathops import softmax
from repro.vlp.clip import SimCLIP
from repro.vlp.prompts import PromptTemplate


def concept_distributions(scores: np.ndarray, tau: float) -> np.ndarray:
    """Eq. 2: row-wise temperature softmax of an (n, m) score matrix."""
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ConfigurationError(f"scores must be (n, m), got {scores.shape}")
    if tau <= 0:
        raise ConfigurationError(f"tau must be positive: {tau}")
    return softmax(scores, temperature=tau, axis=1)


class ConceptMiner:
    """Mines per-image concept distributions through a VLP model.

    Parameters
    ----------
    clip:
        The (simulated) VLP model.
    template:
        Prompt template used to textualize concepts.
    tau_scale:
        τ = tau_scale · m (the paper reports 1m and 3m as the best values).
    """

    def __init__(
        self,
        clip: SimCLIP,
        template: PromptTemplate | str | None = None,
        tau_scale: float = 1.0,
    ) -> None:
        if tau_scale <= 0:
            raise ConfigurationError(f"tau_scale must be positive: {tau_scale}")
        self.clip = clip
        self.template = template
        self.tau_scale = tau_scale

    def scores(
        self, images: np.ndarray, concepts: list[str] | tuple[str, ...]
    ) -> np.ndarray:
        """Eq. 1: raw (n, m) VLP image-concept scores in [0, 1]."""
        return self.clip.score_concepts(images, concepts, template=self.template)

    def mine(
        self, images: np.ndarray, concepts: list[str] | tuple[str, ...]
    ) -> np.ndarray:
        """Eq. 1 + Eq. 2: concept distributions D, shape (n, m)."""
        if not concepts:
            raise ConfigurationError("cannot mine over an empty concept set")
        tau = self.tau_scale * len(concepts)
        return concept_distributions(self.scores(images, concepts), tau)
