"""Reproduction of *Unsupervised Hashing with Semantic Concept Mining* (UHSCM).

The package is organized as the paper's system plus every substrate it
depends on:

- :mod:`repro.nn` — a from-scratch numpy neural-network framework.
- :mod:`repro.vlp` — SimCLIP, a simulated vision-language pre-training model.
- :mod:`repro.datasets` — synthetic analogues of CIFAR10 / NUS-WIDE / MIRFlickr.
- :mod:`repro.core` — the UHSCM method (mining, denoising, similarity, losses,
  trainer) and its ablation variants.
- :mod:`repro.baselines` — the nine unsupervised hashing baselines of Table 1.
- :mod:`repro.retrieval` — Hamming retrieval engine and evaluation metrics.
- :mod:`repro.serving` — the online serving layer: sharded indexes,
  micro-batched encoding, and store-backed model/index snapshots.
- :mod:`repro.analysis` — k-means, t-SNE, and cluster-separation analysis.
- :mod:`repro.pipeline` — staged Algorithm-1 execution over a
  content-addressed artifact store (Q reuse, resumable experiment runs).
- :mod:`repro.experiments` — runners regenerating every table and figure.

Quickstart::

    from repro import UHSCM, paper_config
    from repro.datasets import load_dataset
    from repro.retrieval import evaluate_hashing

    data = load_dataset("cifar10", scale=0.05, seed=7)
    model = UHSCM(paper_config("cifar10", n_bits=64))
    model.fit(data.train_images)
    report = evaluate_hashing(model, data)
    print(report.map)
"""

from repro.config import (
    DEFAULT_PROMPT_TEMPLATE,
    PAPER_BIT_LENGTHS,
    TrainConfig,
    UHSCMConfig,
    paper_config,
)
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    NotFittedError,
    ReproError,
    ShapeError,
    VocabularyError,
)
from repro.pipeline import ArtifactStore, dataset_key

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_PROMPT_TEMPLATE",
    "PAPER_BIT_LENGTHS",
    "ArtifactStore",
    "ConfigurationError",
    "ConvergenceError",
    "DenseSimilarity",
    "NotFittedError",
    "ReproError",
    "ShapeError",
    "SimilarityMatrix",
    "SparseTopKSimilarity",
    "TrainConfig",
    "UHSCM",
    "UHSCMConfig",
    "VocabularyError",
    "dataset_key",
    "paper_config",
]


def __getattr__(name: str):
    # Lazy import so `import repro` stays light and avoids import cycles.
    if name == "UHSCM":
        from repro.core.uhscm import UHSCM

        return UHSCM
    if name in ("SimilarityMatrix", "DenseSimilarity", "SparseTopKSimilarity"):
        from repro.core import similarity_matrix

        return getattr(similarity_matrix, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
