"""Command-line interface for the reproduction.

Subcommands::

    python -m repro.cli train   --dataset cifar10 --bits 64 --out model.npz
    python -m repro.cli eval    --dataset cifar10 --model model.npz
    python -m repro.cli table1  --scale 0.03 --bits 32 64
    python -m repro.cli table1  --resume           # continue a killed run
    python -m repro.cli table2  --scale 0.03
    python -m repro.cli cache   stats              # artifact-store counters
    python -m repro.cli cache   clear
    python -m repro.cli export  --results benchmarks/results --out EXPERIMENTS.md
    python -m repro.cli serve   --dataset cifar10 --model model.npz --queries 3
    python -m repro.cli serve   --dataset cifar10 --model <fingerprint> --repl
    python -m repro.cli serve-http --dataset cifar10 --port 8035
    python -m repro.cli bench-retrieval --n 10000 --bits 64
    python -m repro.cli bench-train --n 512 --bits 64 --batch 128
    python -m repro.cli bench-serve --n 10000 --bits 64 --shards 4
    python -m repro.cli bench-similarity --n 6000 --dim 256 --topk 128

``eval`` accepts ``--backend`` to route retrieval through any registered
serving backend (see :mod:`repro.retrieval.backend`); ``bench-retrieval``
times every backend's build + batch-search path on random codes and checks
them against each other (``--cache-size`` additionally reports each
backend's query-result cache counters over a repeated pass);
``bench-train`` times ``UHSCMTrainer.fit`` steps for both contrastive
modes (mcl/cib) under both dtype policies (float64/float32);
``bench-serve`` times the micro-batched vs unbatched single-query
encode+search path of :class:`~repro.serving.HashingService`;
``bench-similarity`` times + peak-memory-profiles the blocked sparse
top-k Q build against the dense O(n²) build.  All commands run fully
offline on the simulated substrate.

``--sparse-topk K`` on ``train`` / ``table1`` / ``table2`` builds the
semantic similarity matrix Q in top-k CSR form (K strongest entries per
row plus the diagonal) via the blocked pairwise-cosine kernel — O(n·K)
memory instead of O(n²), exact when K >= n-1.

``--out-of-core`` (on ``train`` / ``table1`` / ``table2`` / ``serve``)
makes disk the primary residence of the large arrays: store artifacts at
or above ``--mmap-threshold-bytes`` (default 32 MB when out-of-core is
on) are written in the raw per-array format and come back as read-only
memmaps, the sparse Q build streams straight into on-disk CSR buffers,
and ``serve`` encodes + registers its database in bounded-memory chunks.
Outputs are bit-identical to the in-memory paths and share their
fingerprints, so the two modes replay each other's caches.

``--workers N`` (on ``train`` / ``table1`` / ``table2`` / ``serve`` and
the bench subcommands; default ``$REPRO_WORKERS``, else 1) runs the
parallel kernels — the sparse Q build's row tiles, the sharded search
fan-out, the trainer's one-slot batch prefetch — on N workers through
the shared :class:`~repro.utils.parallel.WorkerPool`.  Every parallel
output is bit-identical to the serial path, so ``--workers`` composes
freely with caching, ``--sparse-topk``, and ``--out-of-core``.

``--pool-backend {thread,process}`` (default ``$REPRO_POOL``, else
``thread``) picks the pool's execution mode for the sparse Q build:
``process`` spawns worker interpreters that attach the normalized
features zero-copy through shared memory, sidestepping the GIL on the
non-BLAS tile work.  Outputs are bit-identical across backends.  The
trainer's prefetch and the serving fan-out are thread-only — they keep
threads under ``--pool-backend process`` on ``train``, and ``serve``
rejects an explicit ``process`` with a configuration error.

``serve`` stands up the online serving facade over a dataset's database
split: the model comes from a persistence archive (``--model model.npz``),
a store fingerprint published with ``--publish``, or a fresh in-process
training run; with ``--cache-dir`` the encoded database persists as a
store snapshot, so a restarted ``serve`` warm-loads its index without
re-encoding.  One-shot mode answers ``--queries N`` query-split rows and
exits; ``--repl`` reads ``q <i> [k]`` / ``remove <id...>`` / ``stats`` /
``quit`` from stdin.

``serve-http`` runs the same facade as a network daemon: an asyncio
HTTP/JSON front end (``POST /query /add /remove /swap``, ``GET /stats
/health``) whose concurrent connections coalesce in the shared
micro-batcher (``--batch`` rows / ``--max-delay-ms`` window), with
bounded admission (``--max-inflight``, shed as HTTP 429), per-endpoint
latency percentiles in ``/stats``, zero-drop model hot swap via
``POST /swap`` (needs ``--cache-dir``; target is a published
fingerprint), and graceful SIGTERM/SIGINT drain.

``--cache-dir`` on ``train`` / ``table1`` / ``table2`` (or ``--resume``,
which implies the default cache dir) attaches a content-addressed
:class:`~repro.pipeline.ArtifactStore` to
the run: UHSCM mines each dataset's Q once for every bit width, finished
(method, n_bits) cells persist on disk, and an interrupted ``table1`` /
``table2`` run resumes where it died.  The default location is
``$REPRO_CACHE_DIR`` or ``.repro-cache``.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.config import PAPER_BIT_LENGTHS, paper_config
from repro.datasets import DATASET_NAMES, load_dataset
from repro.vlp import SimCLIP


#: Raw-format routing threshold used by ``--out-of-core`` when the caller
#: does not pick one explicitly with ``--mmap-threshold-bytes``.
DEFAULT_MMAP_THRESHOLD = 32 * 1024 * 1024


def default_cache_dir() -> Path:
    """The artifact-store location used when none is given explicitly."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def _make_store(args: argparse.Namespace):
    """Build the run's ArtifactStore, or None when caching is off."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None and getattr(args, "resume", False):
        cache_dir = default_cache_dir()
    if cache_dir is None:
        return None
    from repro.pipeline import ArtifactStore

    threshold = getattr(args, "mmap_threshold_bytes", None)
    if threshold is None and getattr(args, "out_of_core", False):
        threshold = DEFAULT_MMAP_THRESHOLD
    return ArtifactStore(cache_dir, mmap_threshold_bytes=threshold)


def _print_store_summary(store) -> None:
    if store is None:
        return
    stats = store.stats()
    print(f"cache: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['disk_entries']} artifacts on disk "
          f"({stats['disk_bytes'] / 1e6:.1f} MB) in {store.cache_dir}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=DATASET_NAMES, default="cifar10")
    parser.add_argument("--scale", type=float, default=0.04,
                        help="fraction of the paper's split sizes")
    parser.add_argument("--seed", type=int, default=0)


def _add_cache_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact-store directory enabling Q reuse and "
                             "resumable fits (default: caching off)")


def _add_sparse_topk(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sparse-topk", type=int, default=None, metavar="K",
                        help="build Q in top-k sparse CSR form via the "
                             "blocked cosine kernel (K strongest entries "
                             "per row + diagonal; exact when K >= n-1, "
                             "default: dense paper-parity Q)")


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="workers for the parallel kernels "
                             "(Q-build tiles, shard fan-out, training "
                             "prefetch); outputs are bit-identical at any "
                             "count (default: $REPRO_WORKERS, else serial)")
    parser.add_argument("--pool-backend", choices=("thread", "process"),
                        default=None,
                        help="pool execution mode for the Q-build kernels: "
                             "process spawns workers over shared-memory "
                             "operands to beat the thread GIL ceiling; "
                             "outputs are bit-identical either way "
                             "(default: $REPRO_POOL, else thread)")


def _add_out_of_core(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out-of-core", action="store_true",
                        help="disk-resident large arrays: big store "
                             "artifacts become memmapped raw archives, the "
                             "sparse Q build streams into on-disk CSR "
                             "buffers, and serving encodes in chunks "
                             "(bit-identical outputs; most effective with "
                             "--cache-dir and --sparse-topk)")
    parser.add_argument("--mmap-threshold-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="route store artifacts at or above this many "
                             "bytes to the memmapped raw format (0 = all; "
                             "default: 32 MB when --out-of-core, else off)")


def _cmd_train(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.core.persistence import save_uhscm
    from repro.core.uhscm import UHSCM
    from repro.pipeline import dataset_key

    store = _make_store(args)
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    clip = SimCLIP(data.world)
    config = paper_config(args.dataset, n_bits=args.bits, seed=args.seed)
    if args.sparse_topk is not None:
        config = replace(config, sparse_topk=args.sparse_topk)
    if args.out_of_core:
        config = replace(config, out_of_core=True)
    if args.workers is not None:
        config = replace(config, workers=args.workers)
    if args.pool_backend is not None:
        config = replace(config, pool_backend=args.pool_backend)
    model = UHSCM(config, clip=clip)
    model.fit(data.train_images, store=store,
              data_key=dataset_key(args.dataset, args.scale, args.seed))
    print(f"trained UHSCM ({args.bits} bits) on {args.dataset}; "
          f"kept {len(model.mined_concepts)} concepts")
    _print_store_summary(store)
    if args.out:
        save_uhscm(model, args.out)
        print(f"saved model to {args.out}")
    from repro.retrieval import evaluate_hashing

    print(evaluate_hashing(model, data))
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.core.persistence import load_uhscm
    from repro.retrieval import evaluate_hashing

    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    clip = SimCLIP(data.world)
    model = load_uhscm(args.model, clip)
    print(evaluate_hashing(model, data, backend=args.backend))
    return 0


def _cmd_bench_retrieval(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.retrieval import backend_names, make_backend

    rng = np.random.default_rng(args.seed)
    db = np.where(rng.random((args.n, args.bits)) < 0.5, -1.0, 1.0)
    queries = np.where(rng.random((args.queries, args.bits)) < 0.5, -1.0, 1.0)
    names = [args.backend] if args.backend else list(backend_names())
    reference = None
    print(f"retrieval bench: n={args.n} bits={args.bits} "
          f"queries={args.queries} top_k={args.top_k} "
          f"cache_size={args.cache_size}")
    for name in names:
        kwargs = {"cache_size": args.cache_size} if args.cache_size else {}
        index = make_backend(name, args.bits, **kwargs)
        t0 = time.perf_counter()
        index.add(db)
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        ids, dist = index.search(queries, top_k=args.top_k)
        t_search = time.perf_counter() - t0
        agree = "n/a"
        if reference is None:
            reference = (ids, dist)
        else:
            same = (np.array_equal(reference[0], ids)
                    and np.array_equal(reference[1], dist))
            agree = "exact" if same else "MISMATCH"
            if not same:
                print(f"  {name}: results diverge from {names[0]}")
                return 1
        print(f"  {name:<12} build {t_build * 1e3:8.1f} ms   "
              f"search {t_search * 1e3:8.1f} ms   agreement: {agree}")
        if args.cache_size:
            t0 = time.perf_counter()
            index.search(queries, top_k=args.top_k)  # repeat pass: all hits
            t_cached = time.perf_counter() - t0
            cache = index.cache
            print(f"  {'':<12} cached {t_cached * 1e3:8.1f} ms   "
                  f"cache: {cache.hits} hits / {cache.misses} misses "
                  f"(hit rate {cache.hit_rate:.0%})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.pipeline import dataset_key
    from repro.serving import HashingService, load_model, publish_model

    store = _make_store(args)
    if args.publish and store is None:
        print("--publish requires --cache-dir")
        return 1
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    clip = SimCLIP(data.world)
    if args.model is not None:
        model = load_model(args.model, clip, store=store)
        print(f"loaded model {args.model}")
    else:
        from dataclasses import replace

        from repro.core.uhscm import UHSCM

        config = paper_config(args.dataset, n_bits=args.bits, seed=args.seed)
        if args.epochs is not None:
            config = replace(config, train=replace(config.train,
                                                   epochs=args.epochs))
        model = UHSCM(config, clip=clip)
        model.fit(data.train_images, store=store,
                  data_key=dataset_key(args.dataset, args.scale, args.seed))
        print(f"trained fresh UHSCM ({args.bits} bits) on {args.dataset}")
    if args.publish:
        print(f"published model snapshot: {publish_model(store, model)}")

    service = HashingService(
        model, store=store, n_shards=args.shards,
        shard_backend=args.shard_backend, cache_size=args.cache_size,
        max_batch=args.batch, workers=args.workers,
        pool_backend=args.pool_backend,
    )
    service.load_database(
        data.database_images,
        key=dataset_key(args.dataset, args.scale, args.seed,
                        split="database"),
        chunk_size=HashingService.DB_CHUNK if args.out_of_core else None,
    )
    db_stats = service.stats()["database"]
    how = "warm snapshot load" if db_stats["warm_loads"] else "cold encode"
    if db_stats["snapshot_mmapped"]:
        how += ", codes memmapped"
    print(f"index ready: {len(service)} rows in {args.shards} shard(s), "
          f"{service.stats()['workers']} fan-out worker(s) ({how})")

    def answer(rows: np.ndarray, top_k: int) -> None:
        ids, dist = service.query(rows, top_k=top_k)
        for qi in range(ids.shape[0]):
            pairs = ", ".join(f"{i}@{d:.0f}" for i, d in zip(ids[qi], dist[qi]))
            print(f"  hit(id@dist): {pairs}")

    def print_stats() -> None:
        stats = service.stats()
        print(f"  size={stats['size']} shards={stats['shards']}")
        batcher = stats["batcher"]
        print(f"  batcher: {batcher['requests']} requests in "
              f"{batcher['flushes']} flushes "
              f"(sizes {batcher['flush_sizes']})")
        for label, cache in stats["caches"].items():
            print(f"  cache[{label}]: {cache['hits']} hits / "
                  f"{cache['misses']} misses "
                  f"(hit rate {cache['hit_rate']:.0%})")
        for stage, counts in sorted(stats.get("store_stages", {}).items()):
            print(f"  stage {stage}: {counts}")

    if not args.repl:
        n = min(args.queries, data.query_images.shape[0])
        print(f"one-shot: answering {n} query-split rows (top_k={args.topk})")
        if n:
            answer(data.query_images[:n], args.topk)
        print_stats()
        return 0

    print("serve REPL — commands: q <i> [k] | remove <id...> | stats | quit")
    for line in sys.stdin:
        parts = line.split()
        if not parts:
            continue
        cmd = parts[0].lower()
        try:
            if cmd in ("quit", "exit"):
                break
            elif cmd == "q":
                i = int(parts[1])
                k = int(parts[2]) if len(parts) > 2 else args.topk
                answer(data.query_images[i:i + 1], k)
            elif cmd == "remove":
                removed = service.remove([int(p) for p in parts[1:]])
                print(f"  removed {removed} row(s); {len(service)} remain")
            elif cmd == "stats":
                print_stats()
            else:
                print(f"  unknown command {cmd!r}")
        except Exception as exc:  # REPL: report, keep serving
            print(f"  error: {exc}")
    return 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.pipeline import dataset_key
    from repro.serving import HashingService, load_model, publish_model
    from repro.serving.http import ServerThread, ServingApp

    store = _make_store(args)
    if args.publish and store is None:
        print("--publish requires --cache-dir")
        return 1
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    clip = SimCLIP(data.world)
    if args.model is not None:
        model = load_model(args.model, clip, store=store)
        print(f"loaded model {args.model}")
    else:
        from dataclasses import replace

        from repro.core.uhscm import UHSCM

        config = paper_config(args.dataset, n_bits=args.bits, seed=args.seed)
        if args.epochs is not None:
            config = replace(config, train=replace(config.train,
                                                   epochs=args.epochs))
        model = UHSCM(config, clip=clip)
        model.fit(data.train_images, store=store,
                  data_key=dataset_key(args.dataset, args.scale, args.seed))
        print(f"trained fresh UHSCM ({args.bits} bits) on {args.dataset}")
    if args.publish:
        print(f"published model snapshot: {publish_model(store, model)}")

    db_key = dataset_key(args.dataset, args.scale, args.seed,
                         split="database")

    def build_service(encoder) -> HashingService:
        service = HashingService(
            encoder, store=store, n_shards=args.shards,
            shard_backend=args.shard_backend, cache_size=args.cache_size,
            max_batch=args.batch, max_delay_s=args.max_delay_ms / 1e3,
            workers=args.workers, pool_backend=args.pool_backend,
        )
        service.load_database(
            data.database_images, key=db_key,
            chunk_size=HashingService.DB_CHUNK if args.out_of_core else None,
        )
        return service

    def swap_factory(source: str) -> HashingService:
        # POST /swap: load the replacement model (store fingerprint or
        # archive path) and stand up its index while v1 keeps serving.
        return build_service(load_model(source, clip, store=store))

    service = build_service(model)
    app = ServingApp(service, service_factory=swap_factory,
                     max_inflight=args.max_inflight)
    handle = ServerThread(app, host=args.host, port=args.port,
                          concurrency=args.concurrency)
    handle.start()
    print(f"index ready: {len(service)} rows in {args.shards} shard(s)")
    print(f"serving on http://{args.host}:{handle.port}  "
          f"(concurrency={args.concurrency} "
          f"max_inflight={args.max_inflight} "
          f"batch={args.batch}@{args.max_delay_ms:g}ms)")
    print("endpoints: POST /query /add /remove /swap   GET /stats /health")

    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        print(f"received {signal.Signals(signum).name}: draining in-flight "
              "requests, refusing new work ...")
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        stop.wait()
    finally:
        handle.stop()
        hist = app.metrics["query"]
        if hist.count:
            snap = hist.snapshot()
            print(f"served {snap['count']} queries: "
                  f"p50 {snap['p50_s'] * 1e3:.1f} ms, "
                  f"p95 {snap['p95_s'] * 1e3:.1f} ms, "
                  f"p99 {snap['p99_s'] * 1e3:.1f} ms")
        print("shutdown complete: batcher flushed, shard pool joined")
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.core.hashing_network import HashingNetwork
    from repro.retrieval import make_backend
    from repro.serving import HashingService

    rng = np.random.default_rng(args.seed)
    db = rng.normal(size=(args.n, args.dim))
    queries = rng.normal(size=(args.queries, args.dim))

    def make_service(max_batch: int) -> HashingService:
        network = HashingNetwork(
            args.bits, mode="feature", feature_extractor=lambda x: x,
            feature_dim=args.dim, rng=args.seed,
        )
        service = HashingService(network, n_shards=args.shards,
                                 shard_backend=args.shard_backend,
                                 max_batch=max_batch, workers=args.workers,
                                 pool_backend=args.pool_backend)
        service.load_database(db)
        return service

    print(f"serving bench: n={args.n} dim={args.dim} bits={args.bits} "
          f"queries={args.queries} top_k={args.top_k} shards={args.shards}")
    unbatched = make_service(max_batch=1)
    t0 = time.perf_counter()
    parts = [unbatched.query(queries[qi], top_k=args.top_k)
             for qi in range(args.queries)]
    t_unbatched = time.perf_counter() - t0
    ids_u = np.concatenate([p[0] for p in parts])

    batched = make_service(max_batch=args.batch)
    t0 = time.perf_counter()
    ids_b, dist_b = batched.query(queries, top_k=args.top_k)
    t_batched = time.perf_counter() - t0

    reference = make_backend("multi-index", args.bits)
    reference.add(batched.encoder.encode(db))
    ids_r, dist_r = reference.search(batched.encoder.encode(queries),
                                     top_k=args.top_k)
    agree = (np.array_equal(ids_b, ids_r) and np.array_equal(dist_b, dist_r)
             and np.array_equal(ids_u, ids_r))
    flushes = batched.batcher.stats()["flush_sizes"]
    print(f"  unbatched: {t_unbatched * 1e3:8.1f} ms  "
          f"({args.queries / t_unbatched:8.0f} q/s)")
    print(f"  batched  : {t_batched * 1e3:8.1f} ms  "
          f"({args.queries / t_batched:8.0f} q/s)  flush sizes {flushes}")
    print(f"  speedup  : {t_unbatched / t_batched:.1f}x   "
          f"agreement vs multi-index: {'exact' if agree else 'MISMATCH'}")
    return 0 if agree else 1


def _cmd_bench_similarity(args: argparse.Namespace) -> int:
    import time
    import tracemalloc

    import numpy as np

    from repro.core.similarity_matrix import SparseTopKSimilarity
    from repro.utils.mathops import cosine_similarity_matrix

    rng = np.random.default_rng(args.seed)
    features = rng.normal(size=(args.n, args.dim))

    def measure(fn):
        """Wall-clock an untraced run, then trace a second run for the peak
        (tracemalloc's per-allocation overhead would distort the timing)."""
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        tracemalloc.start()
        try:
            fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return elapsed, peak, out

    print(f"similarity bench: n={args.n} dim={args.dim} k={args.topk} "
          f"block_rows={args.block_rows}")
    t_dense, peak_dense, dense = measure(
        lambda: cosine_similarity_matrix(features)
    )
    t_sparse, peak_sparse, sparse = measure(
        lambda: SparseTopKSimilarity.from_features(
            features, args.topk, block_rows=args.block_rows,
            workers=args.workers, pool_backend=args.pool_backend,
        )
    )
    print(f"  dense  : {t_dense * 1e3:9.1f} ms   peak {peak_dense / 1e6:8.1f} MB"
          f"   Q bytes {dense.nbytes / 1e6:8.1f} MB")
    print(f"  sparse : {t_sparse * 1e3:9.1f} ms   peak {peak_sparse / 1e6:8.1f} MB"
          f"   Q bytes {sparse.nbytes / 1e6:8.1f} MB")
    print(f"  build speedup {t_dense / t_sparse:.1f}x   "
          f"peak-memory ratio {peak_dense / peak_sparse:.1f}x   "
          f"Q-bytes ratio {dense.nbytes / sparse.nbytes:.1f}x")

    # Correctness spot checks at a small, affordable n.
    n_small = min(args.n, 512)
    small = features[:n_small]
    exact = np.array_equal(
        SparseTopKSimilarity.from_features(small, n_small - 1).to_dense(),
        cosine_similarity_matrix(small),
    )
    sp = SparseTopKSimilarity.from_features(small, min(args.topk, n_small - 1))
    oracle = sp.to_dense()
    idx = rng.permutation(n_small)[: min(128, n_small)]
    gathers = np.array_equal(sp.gather(idx), oracle[np.ix_(idx, idx)])
    print(f"  exact at k=n-1 (n={n_small}): "
          f"{'bit-identical' if exact else 'MISMATCH'}   "
          f"batch gather vs oracle: {'exact' if gathers else 'MISMATCH'}")
    return 0 if exact and gathers else 1


def _cmd_bench_train(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.config import TrainConfig, UHSCMConfig
    from repro.core.hashing_network import HashingNetwork
    from repro.core.trainer import UHSCMTrainer

    rng = np.random.default_rng(args.seed)
    features = rng.normal(size=(args.n, args.dim))
    labels = rng.integers(0, 10, size=args.n)
    q = (labels[:, None] == labels[None, :]).astype(np.float64)
    print(f"training bench: n={args.n} dim={args.dim} bits={args.bits} "
          f"batch={args.batch} epochs={args.epochs}")
    for mode in ("mcl", "cib"):
        reference_final = None
        for dtype in ("float64", "float32"):
            config = UHSCMConfig(
                n_bits=args.bits,
                workers=args.workers,
                train=TrainConfig(batch_size=args.batch, epochs=args.epochs,
                                  dtype=dtype),
            )
            network = HashingNetwork(
                args.bits, mode="feature", feature_extractor=lambda x: x,
                feature_dim=args.dim, rng=args.seed, dtype=dtype,
            )
            trainer = UHSCMTrainer(network, config, contrastive=mode)
            t0 = time.perf_counter()
            history = trainer.fit(features, q, epochs=args.epochs)
            elapsed = time.perf_counter() - t0
            n_steps = sum(history.batches)
            final = history.total[-1]
            drift = ("n/a" if reference_final is None
                     else f"{abs(final - reference_final) / abs(reference_final):.1e}")
            if reference_final is None:
                reference_final = final
            print(f"  {mode:<4} {dtype:<8} {elapsed * 1e3:8.1f} ms   "
                  f"{elapsed / n_steps * 1e3:6.2f} ms/step   "
                  f"final loss {final:.6f}   drift vs f64: {drift}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import run_table1

    store = _make_store(args)
    table = run_table1(scale=args.scale, bit_lengths=tuple(args.bits),
                       datasets=(args.dataset,), seed=args.seed,
                       epochs=args.epochs, store=store,
                       sparse_topk=args.sparse_topk,
                       out_of_core=args.out_of_core,
                       workers=args.workers,
                       pool_backend=args.pool_backend)
    print(table.render())
    _print_store_summary(store)
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments import run_table2

    store = _make_store(args)
    table = run_table2(scale=args.scale, bit_lengths=tuple(args.bits),
                       datasets=(args.dataset,), seed=args.seed,
                       epochs=args.epochs, store=store,
                       sparse_topk=args.sparse_topk,
                       out_of_core=args.out_of_core,
                       workers=args.workers,
                       pool_backend=args.pool_backend)
    print(table.render())
    _print_store_summary(store)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.pipeline import ArtifactStore

    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    if args.action == "clear":
        if not cache_dir.exists():
            print(f"cache {cache_dir} does not exist; nothing to clear")
            return 0
        removed = ArtifactStore(cache_dir).clear()
        print(f"cleared {removed} artifacts from {cache_dir}")
        return 0
    if not cache_dir.exists():
        print(f"cache {cache_dir} does not exist")
        return 0
    stats = ArtifactStore(cache_dir).stats()
    print(f"artifact store at {cache_dir}")
    print(f"  hits      : {stats['hits']}")
    print(f"  misses    : {stats['misses']}")
    print(f"  puts      : {stats['puts']}")
    print(f"  evictions : {stats['evictions']}")
    print(f"  on disk   : {stats['disk_entries']} artifacts, "
          f"{stats['disk_bytes'] / 1e6:.1f} MB")
    print(f"  integrity : {stats['corruptions']} corruptions, "
          f"{stats['quarantined']} quarantined "
          f"({stats['quarantine_entries']} held, "
          f"{stats['quarantine_bytes'] / 1e6:.1f} MB)")
    print(f"  resilience: {stats['retries']} retries, "
          f"{stats['read_failures']} read failures, "
          f"{stats['put_failures']} put failures")
    for stage, counts in sorted(stats["stages"].items()):
        print(f"  stage {stage:<8}: {counts['hits']} hits, "
              f"{counts['misses']} misses, "
              f"{counts['evictions']} evictions, "
              f"{counts['corruptions']} corruptions, "
              f"{counts['quarantined']} quarantined, "
              f"{counts['disk_entries']} on disk "
              f"({counts['disk_bytes'] / 1e6:.1f} MB)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import write_experiments_md

    write_experiments_md(args.results, args.out)
    print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train UHSCM on one dataset")
    _add_common(p_train)
    _add_cache_dir(p_train)
    _add_sparse_topk(p_train)
    _add_out_of_core(p_train)
    _add_workers(p_train)
    p_train.add_argument("--bits", type=int, default=64)
    p_train.add_argument("--out", default=None, help="save model here (.npz)")
    p_train.set_defaults(func=_cmd_train)

    p_eval = sub.add_parser("eval", help="evaluate a saved model")
    _add_common(p_eval)
    p_eval.add_argument("--model", required=True)
    p_eval.add_argument("--backend", default=None,
                        help="serving backend for retrieval "
                             "(e.g. bruteforce, multi-index); "
                             "default: direct BLAS distances")
    p_eval.set_defaults(func=_cmd_eval)

    p_bench = sub.add_parser(
        "bench-retrieval",
        help="time serving backends on random codes and cross-check them",
    )
    p_bench.add_argument("--n", type=int, default=10_000,
                         help="database size")
    p_bench.add_argument("--bits", type=int, default=64)
    p_bench.add_argument("--queries", type=int, default=100)
    p_bench.add_argument("--top-k", type=int, default=10)
    p_bench.add_argument("--backend", default=None,
                         help="bench a single backend (default: all)")
    p_bench.add_argument("--cache-size", type=int, default=0,
                         help="per-backend query-result cache size; when "
                              "positive a repeated search pass reports each "
                              "backend's cache counters")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.set_defaults(func=_cmd_bench_retrieval)

    p_serve = sub.add_parser(
        "serve",
        help="stand up the online serving facade (one-shot or REPL)",
    )
    _add_common(p_serve)
    _add_cache_dir(p_serve)
    _add_out_of_core(p_serve)
    _add_workers(p_serve)
    p_serve.add_argument("--model", default=None,
                         help="model source: persistence archive path or "
                              "store fingerprint (default: train fresh)")
    p_serve.add_argument("--bits", type=int, default=64,
                         help="code length when training fresh")
    p_serve.add_argument("--epochs", type=int, default=None,
                         help="epoch override when training fresh")
    p_serve.add_argument("--publish", action="store_true",
                         help="publish the model snapshot to the store and "
                              "print its fingerprint (requires --cache-dir)")
    p_serve.add_argument("--shards", type=int, default=4)
    p_serve.add_argument("--shard-backend", default="bruteforce",
                         help="backend each shard runs "
                              "(bruteforce, multi-index)")
    p_serve.add_argument("--cache-size", type=int, default=0,
                         help="merged query-result cache entries")
    p_serve.add_argument("--batch", type=int, default=256,
                         help="encode micro-batch size")
    p_serve.add_argument("--topk", type=int, default=5)
    p_serve.add_argument("--queries", type=int, default=3,
                         help="one-shot mode: answer this many query rows")
    p_serve.add_argument("--repl", action="store_true",
                         help="interactive driver on stdin")
    p_serve.set_defaults(func=_cmd_serve)

    p_http = sub.add_parser(
        "serve-http",
        help="serve the hashing index over HTTP/JSON (asyncio daemon)",
    )
    _add_common(p_http)
    _add_cache_dir(p_http)
    _add_out_of_core(p_http)
    _add_workers(p_http)
    p_http.add_argument("--model", default=None,
                        help="persistence archive path or store fingerprint "
                             "(default: train a fresh model in-process)")
    p_http.add_argument("--bits", type=int, default=64,
                        help="code length when training fresh")
    p_http.add_argument("--epochs", type=int, default=None,
                        help="override training epochs when training fresh")
    p_http.add_argument("--publish", action="store_true",
                        help="publish the model snapshot to the store "
                             "(swap targets need a fingerprint)")
    p_http.add_argument("--shards", type=int, default=4)
    p_http.add_argument("--shard-backend", default="bruteforce",
                        help="child backend for the sharded index")
    p_http.add_argument("--cache-size", type=int, default=0,
                        help="per-shard query-result LRU capacity")
    p_http.add_argument("--batch", type=int, default=256,
                        help="micro-batcher flush size")
    p_http.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="micro-batcher coalescing window: concurrent "
                             "requests arriving within it share one encode "
                             "flush (0 = flush immediately)")
    p_http.add_argument("--host", default="127.0.0.1")
    p_http.add_argument("--port", type=int, default=8035,
                        help="bind port (0 = pick a free one)")
    p_http.add_argument("--concurrency", type=int, default=8,
                        help="handler worker threads")
    p_http.add_argument("--max-inflight", type=int, default=64,
                        help="admission bound: concurrent requests beyond "
                             "it are shed with HTTP 429")
    p_http.set_defaults(func=_cmd_serve_http)

    p_bserve = sub.add_parser(
        "bench-serve",
        help="time micro-batched vs unbatched single-query encode+search",
    )
    p_bserve.add_argument("--n", type=int, default=10_000,
                          help="database size")
    p_bserve.add_argument("--dim", type=int, default=64,
                          help="feature dimensionality")
    p_bserve.add_argument("--bits", type=int, default=64)
    p_bserve.add_argument("--queries", type=int, default=200)
    p_bserve.add_argument("--top-k", type=int, default=10)
    p_bserve.add_argument("--shards", type=int, default=4)
    p_bserve.add_argument("--shard-backend", default="bruteforce")
    p_bserve.add_argument("--batch", type=int, default=256,
                          help="encode micro-batch size for the batched run")
    p_bserve.add_argument("--seed", type=int, default=0)
    _add_workers(p_bserve)
    p_bserve.set_defaults(func=_cmd_bench_serve)

    p_btrain = sub.add_parser(
        "bench-train",
        help="time UHSCMTrainer.fit per contrastive mode and dtype policy",
    )
    p_btrain.add_argument("--n", type=int, default=512,
                          help="training set size")
    p_btrain.add_argument("--dim", type=int, default=128,
                          help="feature dimensionality")
    p_btrain.add_argument("--bits", type=int, default=64)
    p_btrain.add_argument("--batch", type=int, default=128)
    p_btrain.add_argument("--epochs", type=int, default=3)
    p_btrain.add_argument("--seed", type=int, default=0)
    _add_workers(p_btrain)
    p_btrain.set_defaults(func=_cmd_bench_train)

    p_bsim = sub.add_parser(
        "bench-similarity",
        help="time + peak-memory the blocked sparse top-k Q build vs the "
             "dense build, with exactness spot checks",
    )
    p_bsim.add_argument("--n", type=int, default=6000,
                        help="corpus rows")
    p_bsim.add_argument("--dim", type=int, default=256,
                        help="feature dimensionality")
    p_bsim.add_argument("--topk", type=int, default=128,
                        help="kept entries per Q row (plus the diagonal)")
    p_bsim.add_argument("--block-rows", type=int, default=512,
                        help="row-block height of the tiled GEMM")
    p_bsim.add_argument("--seed", type=int, default=0)
    _add_workers(p_bsim)
    p_bsim.set_defaults(func=_cmd_bench_similarity)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1")
    _add_common(p_t1)
    _add_cache_dir(p_t1)
    _add_sparse_topk(p_t1)
    _add_out_of_core(p_t1)
    _add_workers(p_t1)
    p_t1.add_argument("--bits", type=int, nargs="+",
                      default=list(PAPER_BIT_LENGTHS))
    p_t1.add_argument("--epochs", type=int, default=None,
                      help="override training epochs (reproduction scale)")
    p_t1.add_argument("--resume", action="store_true",
                      help="replay finished cells from the artifact store "
                           "(implies --cache-dir, default location)")
    p_t1.set_defaults(func=_cmd_table1)

    p_t2 = sub.add_parser("table2", help="regenerate Table 2 (ablations)")
    _add_common(p_t2)
    _add_cache_dir(p_t2)
    _add_sparse_topk(p_t2)
    _add_out_of_core(p_t2)
    _add_workers(p_t2)
    p_t2.add_argument("--bits", type=int, nargs="+", default=[32, 64])
    p_t2.add_argument("--epochs", type=int, default=None,
                      help="override training epochs (reproduction scale)")
    p_t2.add_argument("--resume", action="store_true",
                      help="replay finished cells from the artifact store "
                           "(implies --cache-dir, default location)")
    p_t2.set_defaults(func=_cmd_table2)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the pipeline artifact store"
    )
    p_cache.add_argument("action", choices=("stats", "clear"))
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="artifact-store directory "
                              "(default: $REPRO_CACHE_DIR or .repro-cache)")
    p_cache.set_defaults(func=_cmd_cache)

    p_exp = sub.add_parser("export", help="assemble EXPERIMENTS.md")
    p_exp.add_argument("--results", default="benchmarks/results")
    p_exp.add_argument("--out", default="EXPERIMENTS.md")
    p_exp.set_defaults(func=_cmd_export)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
