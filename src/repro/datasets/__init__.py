"""Synthetic analogues of the paper's three benchmark datasets.

:func:`load_dataset` is the main entry point::

    from repro.datasets import load_dataset
    data = load_dataset("cifar10", scale=0.05, seed=7)

``scale=1.0`` reproduces the paper's split sizes exactly; the default 0.05 is
sized for CPU runs.  Passing the same :class:`~repro.vlp.world.SemanticWorld`
instance used by SimCLIP is handled automatically when you leave ``world``
as ``None`` (both default to the same seeded world).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import HashingDataset
from repro.datasets.cifar10 import cifar10_spec
from repro.datasets.mirflickr import mirflickr_spec
from repro.datasets.nuswide import nuswide_spec
from repro.datasets.splits import PAPER_SPLITS, SplitSizes, paper_splits
from repro.datasets.synthetic import DatasetSpec, generate_dataset
from repro.errors import ConfigurationError
from repro.vlp.world import SemanticWorld

_SPECS = {
    "cifar10": cifar10_spec,
    "nuswide": nuswide_spec,
    "mirflickr": mirflickr_spec,
}

#: Canonical dataset order used by every experiment table.
DATASET_NAMES: tuple[str, ...] = ("cifar10", "nuswide", "mirflickr")


def dataset_spec(name: str) -> DatasetSpec:
    """The generation spec for a benchmark dataset."""
    key = name.strip().lower()
    if key not in _SPECS:
        raise ConfigurationError(
            f"unknown dataset {name!r}; options: {sorted(_SPECS)}"
        )
    return _SPECS[key]()


def load_dataset(
    name: str,
    scale: float = 0.05,
    seed: int | np.random.Generator | None = 0,
    world: SemanticWorld | None = None,
    sizes: SplitSizes | None = None,
) -> HashingDataset:
    """Generate a benchmark dataset at the requested scale.

    Parameters
    ----------
    name:
        ``cifar10`` / ``nuswide`` / ``mirflickr``.
    scale:
        Fraction of the paper's split sizes (ignored when ``sizes`` given).
    seed:
        Controls label sampling and image noise (not world geometry).
    world:
        Semantic world shared with SimCLIP; a default world is created if
        omitted.
    sizes:
        Explicit split sizes overriding ``scale``.
    """
    spec = dataset_spec(name)
    if sizes is None:
        sizes = paper_splits(spec.name, scale)
    return generate_dataset(spec, sizes, world=world, seed=seed)


__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "HashingDataset",
    "PAPER_SPLITS",
    "SplitSizes",
    "cifar10_spec",
    "dataset_spec",
    "generate_dataset",
    "load_dataset",
    "mirflickr_spec",
    "nuswide_spec",
    "paper_splits",
]
