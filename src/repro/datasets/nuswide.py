"""Synthetic NUS-WIDE analogue: multi-label over the 21 most frequent classes.

Real NUS-WIDE properties this spec preserves (all of which the paper's method
interacts with):

- skewed multi-label marginals (``sky`` and ``person`` tag large corpus
  shares), giving Hamming retrieval the high relevance base rate the paper's
  Table 1 shows (LSH already scores 0.54);
- a ubiquitous, visually dominant *unlabeled* background (``sun`` — bright
  sky / sunlight, an NUS-WIDE-81 candidate concept but not one of the 21
  evaluation classes).  It wins the VLP argmax for most images and must be
  discarded by the ``f(c) > 0.5 n`` rule — the paper's motivating case of a
  concept "useless for distinguishing the images";
- image content beyond the 21 evaluation labels: the candidate vocabulary is
  the full 81-concept list, so 60 candidates are retrieval-irrelevant noise
  (the situation §4.1 explicitly calls out).
"""

from __future__ import annotations

from repro.datasets.synthetic import DatasetSpec
from repro.vlp.concepts import NUS_WIDE_21, NUS_WIDE_81, canonical, canonical_set

#: Marginal label frequencies (share of images carrying each tag).
_FREQUENCIES: dict[str, float] = {
    "animal": 0.12, "beach": 0.08, "buildings": 0.15, "cars": 0.10,
    "clouds": 0.22, "flowers": 0.08, "grass": 0.12, "lake": 0.06,
    "mountain": 0.09, "ocean": 0.10, "person": 0.28, "plants": 0.12,
    "reflection": 0.06, "road": 0.08, "rocks": 0.07, "sky": 0.34,
    "snow": 0.05, "street": 0.09, "sunset": 0.08, "tree": 0.16,
    "water": 0.22,
}

#: Visual weight of a class when present (sky fills the frame).
_DOMINANCE: dict[str, float] = {
    "sky": 1.0, "water": 1.05, "person": 1.05, "clouds": 1.0,
}


def nuswide_spec() -> DatasetSpec:
    """Spec for the synthetic NUS-WIDE dataset (21 evaluation classes)."""
    eval_canonicals = canonical_set(NUS_WIDE_21)
    context_pool = tuple(
        name for name in NUS_WIDE_81
        if canonical(name) not in eval_canonicals and name != "sun"
    )
    return DatasetSpec(
        name="nuswide",
        class_names=NUS_WIDE_21,
        class_probs=tuple(_FREQUENCIES[c] for c in NUS_WIDE_21),
        dominance=tuple(_DOMINANCE.get(c, 1.0) for c in NUS_WIDE_21),
        context_pool=context_pool,
        context_weight=0.45,
        context_count_probs=(0.35, 0.40, 0.25),
        background_concept="sun",
        background_prob=0.72,
        background_weight=1.7,
    )
