"""Synthetic dataset generator over the semantic world.

Each benchmark dataset is described by a :class:`DatasetSpec` — class
vocabulary, per-class marginal frequencies, per-class visual dominance, and a
pool of *unlabeled context concepts* (the stuff real photos contain that
annotators did not tag).  The generator samples label sets, builds image
latents as weighted concept mixtures, and renders pixels through the world's
fixed render matrix.

Design notes tied to the paper:

- Multi-label marginals are heavily skewed (``sky`` dominates NUS-WIDE and
  MIRFlickr, as in the real datasets); a dominant, visually heavy background
  class is exactly what triggers the paper's ``f(c) > 0.5 n`` concept-discard
  rule.
- Context concepts inject image content outside the evaluation labels, which
  is what makes the candidate-concept denoising problem non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import HashingDataset
from repro.datasets.splits import SplitSizes
from repro.errors import ConfigurationError
from repro.utils.rng import as_generator, spawn
from repro.vlp.world import SemanticWorld

_RENDER_CHUNK = 512


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic benchmark dataset.

    Attributes
    ----------
    name:
        Dataset identifier.
    class_names:
        Evaluation label vocabulary (surface forms; the world resolves
        aliases).
    class_probs:
        Marginal probability of each class appearing in an image.  For
        single-label datasets these are the class-draw probabilities.
    dominance:
        Relative visual weight of each class when present (a big sky fills
        the frame; a bird is small).
    single_label:
        If true, exactly one class per image (CIFAR10).
    context_pool:
        Concepts that may appear in images *without being labeled*.
    context_weight:
        Visual weight of a context concept.
    context_count_probs:
        Distribution over how many context concepts an image gets.
    background_concept / background_prob / background_weight:
        An *unlabeled, ubiquitous, visually dominant* background concept
        (bright sky / sunlight in web photos).  It wins the VLP argmax for
        most images, triggering the paper's ``f(c) > 0.5 n`` discard rule —
        and because it is not an evaluation label, discarding it is exactly
        the right call ("useless for distinguishing the images").
    """

    name: str
    class_names: tuple[str, ...]
    class_probs: tuple[float, ...]
    dominance: tuple[float, ...] = ()
    single_label: bool = False
    context_pool: tuple[str, ...] = ()
    context_weight: float = 0.45
    context_count_probs: tuple[float, ...] = (1.0,)
    background_concept: str | None = None
    background_prob: float = 0.0
    background_weight: float = 2.0
    instance_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.class_names:
            raise ConfigurationError("class_names cannot be empty")
        if len(self.class_probs) != len(self.class_names):
            raise ConfigurationError(
                f"class_probs has {len(self.class_probs)} entries for "
                f"{len(self.class_names)} classes"
            )
        if any(not 0 < p <= 1 for p in self.class_probs):
            raise ConfigurationError("class_probs must lie in (0, 1]")
        if self.dominance and len(self.dominance) != len(self.class_names):
            raise ConfigurationError("dominance must match class_names length")
        if abs(sum(self.context_count_probs) - 1.0) > 1e-9:
            raise ConfigurationError("context_count_probs must sum to 1")
        if self.context_pool and not self.context_count_probs:
            raise ConfigurationError("context_pool given without count probs")
        if not 0.0 <= self.background_prob <= 1.0:
            raise ConfigurationError(
                f"background_prob must be in [0, 1]: {self.background_prob}"
            )
        if self.background_prob > 0 and not self.background_concept:
            raise ConfigurationError(
                "background_prob > 0 requires a background_concept"
            )

    @property
    def dominance_array(self) -> np.ndarray:
        if self.dominance:
            return np.asarray(self.dominance, dtype=np.float64)
        return np.ones(len(self.class_names))


@dataclass
class _SampledImage:
    label_mask: np.ndarray
    concepts: list[str] = field(default_factory=list)
    weights: list[float] = field(default_factory=list)


def _sample_image(
    spec: DatasetSpec, rng: np.random.Generator
) -> _SampledImage:
    """Draw one image's label set, visible concepts, and mixture weights."""
    n_classes = len(spec.class_names)
    probs = np.asarray(spec.class_probs, dtype=np.float64)
    dominance = spec.dominance_array

    if spec.single_label:
        cls = int(rng.choice(n_classes, p=probs / probs.sum()))
        mask = np.zeros(n_classes, dtype=np.int8)
        mask[cls] = 1
        present = [cls]
    else:
        mask = (rng.random(n_classes) < probs).astype(np.int8)
        if mask.sum() == 0:
            cls = int(rng.choice(n_classes, p=probs / probs.sum()))
            mask[cls] = 1
        present = list(np.flatnonzero(mask))

    sample = _SampledImage(label_mask=mask)
    for cls in present:
        jitter = rng.uniform(0.85, 1.15)
        sample.concepts.append(spec.class_names[cls])
        sample.weights.append(float(dominance[cls] * jitter))

    if spec.background_concept and rng.random() < spec.background_prob:
        sample.concepts.append(spec.background_concept)
        sample.weights.append(spec.background_weight)

    if spec.context_pool:
        n_context = int(
            rng.choice(len(spec.context_count_probs), p=spec.context_count_probs)
        )
        if n_context > 0:
            picks = rng.choice(
                len(spec.context_pool),
                size=min(n_context, len(spec.context_pool)),
                replace=False,
            )
            for idx in picks:
                sample.concepts.append(spec.context_pool[int(idx)])
                sample.weights.append(spec.context_weight)
    return sample


def generate_dataset(
    spec: DatasetSpec,
    sizes: SplitSizes,
    world: SemanticWorld | None = None,
    seed: int | np.random.Generator | None = 0,
) -> HashingDataset:
    """Generate a full query/database/train dataset from a spec.

    Queries are disjoint from the database; the training set is sampled
    without replacement from the database (the paper's protocol).
    """
    world = world or SemanticWorld()
    master = as_generator(seed)
    label_rng, latent_rng, pixel_rng, split_rng = spawn(master, 4)

    total = sizes.total_generated
    n_classes = len(spec.class_names)
    labels = np.zeros((total, n_classes), dtype=np.int8)
    latents = np.zeros((total, world.config.latent_dim))
    for i in range(total):
        sample = _sample_image(spec, label_rng)
        labels[i] = sample.label_mask
        latents[i] = world.image_latent(
            sample.concepts,
            np.asarray(sample.weights),
            rng=latent_rng,
            instance_scale=spec.instance_scale,
        )

    images = np.concatenate(
        [
            world.render(latents[start : start + _RENDER_CHUNK], rng=pixel_rng)
            for start in range(0, total, _RENDER_CHUNK)
        ]
    )

    query_images = images[: sizes.query]
    query_labels = labels[: sizes.query]
    database_images = images[sizes.query :]
    database_labels = labels[sizes.query :]
    train_indices = np.sort(
        split_rng.choice(sizes.database, size=sizes.train, replace=False)
    )

    return HashingDataset(
        name=spec.name,
        class_names=spec.class_names,
        train_images=database_images[train_indices],
        train_labels=database_labels[train_indices],
        query_images=query_images,
        query_labels=query_labels,
        database_images=database_images,
        database_labels=database_labels,
        train_indices=train_indices,
        world=world,
    )
