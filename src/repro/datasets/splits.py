"""Train / query / database split sizing.

The paper's split protocol (§4.1):

=============  ========  =======  =========
dataset        train     query    database
=============  ========  =======  =========
CIFAR10        10,000    1,000    59,000
NUS-WIDE       10,500    5,000    190,834
MIRFlickr-25K  10,000    1,000    24,000
=============  ========  =======  =========

Queries are held out; the training set is sampled from the database (so the
database contains the training images, as in the paper).  A ``scale`` factor
shrinks everything proportionally for CPU reproduction runs while keeping the
ratios, with floors so tiny scales stay usable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Paper §4.1 split sizes per dataset.
PAPER_SPLITS: dict[str, tuple[int, int, int]] = {
    "cifar10": (10_000, 1_000, 59_000),
    "nuswide": (10_500, 5_000, 190_834),
    "mirflickr": (10_000, 1_000, 24_000),
}

_MIN_TRAIN = 60
_MIN_QUERY = 30
_MIN_DATABASE = 120


@dataclass(frozen=True)
class SplitSizes:
    """Number of images in each split; database ⊇ train."""

    train: int
    query: int
    database: int

    def __post_init__(self) -> None:
        if min(self.train, self.query, self.database) <= 0:
            raise ConfigurationError(f"split sizes must be positive: {self}")
        if self.database < self.train:
            raise ConfigurationError(
                f"database ({self.database}) must be >= train ({self.train}) "
                "because the training set is drawn from the database"
            )

    @property
    def total_generated(self) -> int:
        """Images to synthesize: query + database (train is a database subset)."""
        return self.query + self.database


def paper_splits(dataset: str, scale: float = 1.0) -> SplitSizes:
    """Paper split sizes for ``dataset``, shrunk by ``scale``.

    ``scale=1.0`` reproduces the paper's protocol exactly; smaller values
    keep the train:query:database ratios with sanity floors.
    """
    key = dataset.strip().lower()
    if key not in PAPER_SPLITS:
        raise ConfigurationError(
            f"unknown dataset {dataset!r}; options: {sorted(PAPER_SPLITS)}"
        )
    if not 0 < scale <= 1.0:
        raise ConfigurationError(f"scale must be in (0, 1]: {scale}")
    train, query, database = PAPER_SPLITS[key]
    return SplitSizes(
        train=max(_MIN_TRAIN, round(train * scale)),
        query=max(_MIN_QUERY, round(query * scale)),
        database=max(_MIN_DATABASE, max(_MIN_TRAIN, round(train * scale)),
                     round(database * scale)),
    )
