"""Synthetic MIRFlickr-25K analogue: multi-label over 24 potential labels.

MIRFlickr's label vocabulary only partially overlaps the NUS-WIDE-81
candidate concepts the paper uses for every dataset (e.g. ``female``,
``indoor``, ``portrait`` have no candidate counterpart) — this spec keeps
that mismatch, which is what ablation 4.4.1 measures.
"""

from __future__ import annotations

from repro.datasets.synthetic import DatasetSpec
from repro.vlp.concepts import MIRFLICKR_24, NUS_WIDE_81, canonical, canonical_set

#: Marginal label frequencies (share of images carrying each tag).
_FREQUENCIES: dict[str, float] = {
    "animals": 0.10, "baby": 0.03, "bird": 0.06, "car": 0.08,
    "clouds": 0.28, "dog": 0.06, "female": 0.30, "flower": 0.10,
    "food": 0.07, "indoor": 0.25, "lake": 0.05, "male": 0.28,
    "night": 0.12, "people": 0.38, "plant life": 0.22, "portrait": 0.20,
    "river": 0.05, "sea": 0.10, "sky": 0.34, "structures": 0.28,
    "sunset": 0.10, "transport": 0.08, "tree": 0.18, "water": 0.22,
}

#: Visual weight of a class when present.
_DOMINANCE: dict[str, float] = {
    "sky": 1.0, "people": 1.1, "indoor": 1.1, "structures": 1.05,
}


def mirflickr_spec() -> DatasetSpec:
    """Spec for the synthetic MIRFlickr-25K dataset (24 evaluation classes)."""
    eval_canonicals = canonical_set(MIRFLICKR_24)
    context_pool = tuple(
        name for name in NUS_WIDE_81
        if canonical(name) not in eval_canonicals and name != "sun"
    )
    return DatasetSpec(
        name="mirflickr",
        class_names=MIRFLICKR_24,
        class_probs=tuple(_FREQUENCIES[c] for c in MIRFLICKR_24),
        dominance=tuple(_DOMINANCE.get(c, 1.0) for c in MIRFLICKR_24),
        context_pool=context_pool,
        context_weight=0.45,
        context_count_probs=(0.40, 0.40, 0.20),
        background_concept="sun",
        background_prob=0.74,
        background_weight=1.95,
    )
