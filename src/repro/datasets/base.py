"""Dataset container shared by every benchmark dataset."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.vlp.world import SemanticWorld


@dataclass
class HashingDataset:
    """A retrieval dataset: images + multi-hot labels for three splits.

    Splits follow the paper's protocol: ``query`` images are held-out search
    probes, ``database`` images are the corpus being searched, and ``train``
    is an (unlabeled, from the method's point of view) subset of the database
    used to fit hashing models.  Labels exist only for *evaluation* — two
    images count as relevant iff they share at least one label (§4.2).

    Attributes
    ----------
    name:
        Dataset identifier (``cifar10`` / ``nuswide`` / ``mirflickr``).
    class_names:
        Evaluation label names, length ``L``.
    *_images:
        NCHW float arrays rendered by the semantic world.
    *_labels:
        Multi-hot ``(n, L)`` int8 arrays aligned with the images.
    train_indices:
        Positions of the training images inside the database split.
    world:
        The generative world the images came from (shared with SimCLIP).
    """

    name: str
    class_names: tuple[str, ...]
    train_images: np.ndarray
    train_labels: np.ndarray
    query_images: np.ndarray
    query_labels: np.ndarray
    database_images: np.ndarray
    database_labels: np.ndarray
    train_indices: np.ndarray
    world: SemanticWorld
    _feature_cache: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._validate_split("train", self.train_images, self.train_labels)
        self._validate_split("query", self.query_images, self.query_labels)
        self._validate_split("database", self.database_images, self.database_labels)
        if self.train_indices.shape != (self.train_images.shape[0],):
            raise ShapeError(
                f"train_indices has shape {self.train_indices.shape}, expected "
                f"({self.train_images.shape[0]},)"
            )
        if np.any(self.train_indices < 0) or np.any(
            self.train_indices >= self.database_images.shape[0]
        ):
            raise ConfigurationError("train_indices out of database range")

    def _validate_split(self, split: str, images: np.ndarray,
                        labels: np.ndarray) -> None:
        if images.ndim != 4:
            raise ShapeError(f"{split}_images must be NCHW, got {images.shape}")
        n_classes = len(self.class_names)
        if labels.shape != (images.shape[0], n_classes):
            raise ShapeError(
                f"{split}_labels must be ({images.shape[0]}, {n_classes}), "
                f"got {labels.shape}"
            )
        if labels.min() < 0 or labels.max() > 1:
            raise ShapeError(f"{split}_labels must be multi-hot 0/1")
        if np.any(labels.sum(axis=1) == 0):
            raise ConfigurationError(f"{split} split contains unlabeled images")

    # -- sizes --------------------------------------------------------------

    @property
    def n_train(self) -> int:
        return self.train_images.shape[0]

    @property
    def n_query(self) -> int:
        return self.query_images.shape[0]

    @property
    def n_database(self) -> int:
        return self.database_images.shape[0]

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    @property
    def is_multilabel(self) -> bool:
        return bool((self.train_labels.sum(axis=1) > 1).any())

    # -- simulated pretrained-backbone features ------------------------------

    def features(self, split: str) -> np.ndarray:
        """Simulated ImageNet-pretrained VGG19 features for a split.

        The paper feeds 4,096-d fc7 features to the shallow baselines and
        initializes deep models from the pretrained stem; this reproduction's
        stand-in is the semantic world's degraded ``vgg_features`` encoder
        (see DESIGN.md §2).  Cached per split.
        """
        images = {
            "train": self.train_images,
            "query": self.query_images,
            "database": self.database_images,
        }
        if split not in images:
            raise ConfigurationError(
                f"unknown split {split!r}; options: train/query/database"
            )
        if split not in self._feature_cache:
            self._feature_cache[split] = self.world.vgg_features(images[split])
        return self._feature_cache[split]

    def labels(self, split: str) -> np.ndarray:
        """Multi-hot labels of a split (evaluation only)."""
        table = {
            "train": self.train_labels,
            "query": self.query_labels,
            "database": self.database_labels,
        }
        if split not in table:
            raise ConfigurationError(
                f"unknown split {split!r}; options: train/query/database"
            )
        return table[split]
