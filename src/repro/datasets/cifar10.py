"""Synthetic CIFAR10 analogue: single-label, 10 balanced classes.

CIFAR10 is the paper's single-label dataset — the one where concept mining
helps most (§4.3.1).  Images contain exactly one class concept and no
unlabeled context, matching the tiny single-object 32x32 originals.
"""

from __future__ import annotations

from repro.datasets.synthetic import DatasetSpec
from repro.vlp.concepts import CIFAR10_CLASSES


def cifar10_spec() -> DatasetSpec:
    """Spec for the synthetic CIFAR10 dataset."""
    n = len(CIFAR10_CLASSES)
    return DatasetSpec(
        name="cifar10",
        class_names=CIFAR10_CLASSES,
        class_probs=tuple([1.0 / n] * n),
        single_label=True,
        # CIFAR classes are visually broad (every dog breed and pose is one
        # class), so per-image individuality is high relative to the single
        # shared concept.
        instance_scale=1.6,
    )
