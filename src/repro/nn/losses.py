"""Generic loss functions for the NN substrate.

Each loss returns ``(value, grad_wrt_input)`` so training loops can feed the
gradient straight into ``model.backward``.  The UHSCM-specific hashing losses
(Eq. 7–11) live in :mod:`repro.core.losses`; these are the building blocks
used by baselines and for pre-training the simulated backbones.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error over all elements."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ShapeError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    value = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return value, grad


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Cross entropy with integer class labels; numerically stable."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be 2-D, got {logits.shape}")
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ShapeError(f"labels must have shape ({n},), got {labels.shape}")
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    value = float(-log_probs[np.arange(n), labels].mean())
    grad = np.exp(log_probs)
    grad[np.arange(n), labels] -= 1.0
    return value, grad / n


def binary_cross_entropy_with_logits(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Element-wise sigmoid BCE from logits (stable log-sum-exp form)."""
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if logits.shape != targets.shape:
        raise ShapeError(f"shape mismatch: {logits.shape} vs {targets.shape}")
    # loss = max(x, 0) - x*t + log(1 + exp(-|x|))
    value = float(
        np.mean(
            np.maximum(logits, 0)
            - logits * targets
            + np.log1p(np.exp(-np.abs(logits)))
        )
    )
    sig = np.empty_like(logits)
    pos = logits >= 0
    sig[pos] = 1.0 / (1.0 + np.exp(-logits[pos]))
    e = np.exp(logits[~pos])
    sig[~pos] = e / (1.0 + e)
    grad = (sig - targets) / logits.size
    return value, grad
