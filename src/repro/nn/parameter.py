"""Trainable parameter container for the :mod:`repro.nn` framework."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Dtypes the training stack supports.  float64 is the default (bit-stable
#: parity with the seed implementation); float32 roughly doubles throughput.
SUPPORTED_DTYPES: tuple[np.dtype, ...] = (np.dtype(np.float64), np.dtype(np.float32))


def resolve_dtype(dtype: str | np.dtype | type | None) -> np.dtype:
    """Normalize a dtype spec ("float32"/"float64"/np dtype) and validate it."""
    if dtype is None:
        return np.dtype(np.float64)
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        raise ConfigurationError(
            f"unsupported dtype {dtype!r}; options: "
            f"{sorted(d.name for d in SUPPORTED_DTYPES)}"
        )
    return resolved


class Parameter:
    """A named trainable array together with its accumulated gradient.

    Layers create parameters in their constructors; optimizers consume
    ``(data, grad)`` pairs and write updated values back into ``data``.
    ``weight_decay_enabled`` lets layers exempt parameters (e.g. batch-norm
    scale/shift) from L2 regularization, matching common practice.
    """

    __slots__ = ("name", "data", "grad", "weight_decay_enabled")

    def __init__(
        self,
        data: np.ndarray,
        name: str = "param",
        weight_decay_enabled: bool = True,
        dtype: str | np.dtype | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=resolve_dtype(dtype))
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.weight_decay_enabled = weight_decay_enabled

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def to(self, dtype: str | np.dtype) -> "Parameter":
        """Cast data and gradient to ``dtype`` (no-op when already there)."""
        resolved = resolve_dtype(dtype)
        if self.data.dtype != resolved:
            self.data = self.data.astype(resolved)
            self.grad = self.grad.astype(resolved)
        return self

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.shape})"
