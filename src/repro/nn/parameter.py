"""Trainable parameter container for the :mod:`repro.nn` framework."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A named trainable array together with its accumulated gradient.

    Layers create parameters in their constructors; optimizers consume
    ``(data, grad)`` pairs and write updated values back into ``data``.
    ``weight_decay_enabled`` lets layers exempt parameters (e.g. batch-norm
    scale/shift) from L2 regularization, matching common practice.
    """

    __slots__ = ("name", "data", "grad", "weight_decay_enabled")

    def __init__(
        self,
        data: np.ndarray,
        name: str = "param",
        weight_decay_enabled: bool = True,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.weight_decay_enabled = weight_decay_enabled

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.shape})"
