"""Base class for neural-network building blocks.

The framework uses explicit layer-wise backpropagation rather than a taped
autograd graph: each :class:`Module` caches what it needs during ``forward``
and implements ``backward(grad_output) -> grad_input``, accumulating parameter
gradients as a side effect.  This keeps every layer independently unit-testable
against numerical gradients.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.nn.parameter import Parameter, resolve_dtype


class Module:
    """A differentiable computation with optional trainable parameters."""

    #: Names of the attributes a layer caches between ``forward`` and
    #: ``backward``.  Listed so :meth:`capture_cache` / :meth:`restore_cache`
    #: can snapshot and restore a whole activation set (the trainer uses this
    #: to backprop two forwards' worth of activations without re-forwarding).
    _CACHE_ATTRS: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.training = True
        self.dtype: np.dtype = np.dtype(np.float64)
        self._parameters: list[Parameter] = []
        self._children: list[Module] = []
        self._buffers: dict[str, np.ndarray] = {}

    # -- construction ------------------------------------------------------

    def register_parameter(self, param: Parameter) -> Parameter:
        self._parameters.append(param)
        return param

    def register_buffer(self, name: str, value: np.ndarray) -> np.ndarray:
        """Track non-trainable state (e.g. batch-norm running statistics)
        so it is saved/restored by ``state_dict``."""
        self._buffers[name] = np.asarray(value, dtype=self.dtype)
        return self._buffers[name]

    def register_child(self, module: "Module") -> "Module":
        self._children.append(module)
        return module

    # -- computation -------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameter access --------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """Yield this module's parameters, then every child's, recursively."""
        yield from self._parameters
        for child in self._children:
            yield from child.parameters()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- dtype policy ------------------------------------------------------

    def to(self, dtype: str | np.dtype) -> "Module":
        """Cast the whole module tree (parameters, buffers, future
        activations) to ``dtype`` ("float32" or "float64").

        float64 is the default and keeps bit-stable parity with the seed
        implementation; float32 roughly doubles training throughput on CPU.
        Pending forward caches are dropped, so call this before ``forward``,
        not between a forward and its backward.
        """
        resolved = resolve_dtype(dtype)
        for module in self._modules_recursive():
            module._apply_dtype(resolved)
        return self

    def _apply_dtype(self, dtype: np.dtype) -> None:
        """Cast this module's own state (not children); override to rebind
        aliases into ``_buffers`` after the cast."""
        self.dtype = dtype
        for p in self._parameters:
            p.to(dtype)
        for name, value in self._buffers.items():
            self._buffers[name] = value.astype(dtype)
        for attr in self._CACHE_ATTRS:
            setattr(self, attr, None)

    # -- activation-cache slots --------------------------------------------

    def capture_cache(self) -> list[dict[str, object]]:
        """Snapshot every layer's forward cache so a later ``restore_cache``
        can backprop through an earlier forward.

        Layers rebind (never mutate) their cached arrays on each forward, so
        a shallow per-module snapshot is enough.  This is what lets the CIB
        training step do 2 forwards + 2 backwards instead of re-forwarding
        the first view a third time.
        """
        return [
            {attr: getattr(module, attr) for attr in module._CACHE_ATTRS}
            for module in self._modules_recursive()
        ]

    def restore_cache(self, snapshot: list[dict[str, object]]) -> None:
        """Restore a :meth:`capture_cache` snapshot taken on this module."""
        modules = self._modules_recursive()
        if len(snapshot) != len(modules):
            raise ValueError(
                f"cache snapshot has {len(snapshot)} entries, module tree "
                f"has {len(modules)}"
            )
        for module, entry in zip(modules, snapshot):
            for attr, value in entry.items():
                setattr(module, attr, value)

    # -- mode switching ----------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._children:
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- (de)serialization -------------------------------------------------

    def _modules_recursive(self) -> list["Module"]:
        out = [self]
        for child in self._children:
            out.extend(child._modules_recursive())
        return out

    def named_buffers(self) -> dict[str, np.ndarray]:
        """All buffers in this module tree, keyed by module index + name."""
        out: dict[str, np.ndarray] = {}
        for i, module in enumerate(self._modules_recursive()):
            for name, value in module._buffers.items():
                out[f"{i}:{name}"] = value
        return out

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameters and buffers for checkpointing."""
        state = {
            f"{i}:{p.name}": p.data.copy()
            for i, p in enumerate(self.parameters())
        }
        for key, value in self.named_buffers().items():
            state[f"buf:{key}"] = value.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = list(self.parameters())
        buffers = self.named_buffers()
        expected = len(params) + len(buffers)
        if len(state) != expected:
            raise ValueError(
                f"state has {len(state)} entries, model expects {expected} "
                f"({len(params)} parameters + {len(buffers)} buffers)"
            )
        for i, p in enumerate(params):
            key = f"{i}:{p.name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            value = np.asarray(state[key], dtype=p.data.dtype)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: {value.shape} vs {p.data.shape}"
                )
            p.data[...] = value
        for i, module in enumerate(self._modules_recursive()):
            for name in module._buffers:
                key = f"buf:{i}:{name}"
                if key not in state:
                    raise KeyError(f"missing buffer {key!r} in state dict")
                module._buffers[name][...] = state[key]
