"""Base class for neural-network building blocks.

The framework uses explicit layer-wise backpropagation rather than a taped
autograd graph: each :class:`Module` caches what it needs during ``forward``
and implements ``backward(grad_output) -> grad_input``, accumulating parameter
gradients as a side effect.  This keeps every layer independently unit-testable
against numerical gradients.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.nn.parameter import Parameter


class Module:
    """A differentiable computation with optional trainable parameters."""

    def __init__(self) -> None:
        self.training = True
        self._parameters: list[Parameter] = []
        self._children: list[Module] = []
        self._buffers: dict[str, np.ndarray] = {}

    # -- construction ------------------------------------------------------

    def register_parameter(self, param: Parameter) -> Parameter:
        self._parameters.append(param)
        return param

    def register_buffer(self, name: str, value: np.ndarray) -> np.ndarray:
        """Track non-trainable state (e.g. batch-norm running statistics)
        so it is saved/restored by ``state_dict``."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        return self._buffers[name]

    def register_child(self, module: "Module") -> "Module":
        self._children.append(module)
        return module

    # -- computation -------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameter access --------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """Yield this module's parameters, then every child's, recursively."""
        yield from self._parameters
        for child in self._children:
            yield from child.parameters()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- mode switching ----------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._children:
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- (de)serialization -------------------------------------------------

    def _modules_recursive(self) -> list["Module"]:
        out = [self]
        for child in self._children:
            out.extend(child._modules_recursive())
        return out

    def named_buffers(self) -> dict[str, np.ndarray]:
        """All buffers in this module tree, keyed by module index + name."""
        out: dict[str, np.ndarray] = {}
        for i, module in enumerate(self._modules_recursive()):
            for name, value in module._buffers.items():
                out[f"{i}:{name}"] = value
        return out

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameters and buffers for checkpointing."""
        state = {
            f"{i}:{p.name}": p.data.copy()
            for i, p in enumerate(self.parameters())
        }
        for key, value in self.named_buffers().items():
            state[f"buf:{key}"] = value.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = list(self.parameters())
        buffers = self.named_buffers()
        expected = len(params) + len(buffers)
        if len(state) != expected:
            raise ValueError(
                f"state has {len(state)} entries, model expects {expected} "
                f"({len(params)} parameters + {len(buffers)} buffers)"
            )
        for i, p in enumerate(params):
            key = f"{i}:{p.name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: {value.shape} vs {p.data.shape}"
                )
            p.data[...] = value
        for i, module in enumerate(self._modules_recursive()):
            for name in module._buffers:
                key = f"buf:{i}:{name}"
                if key not in state:
                    raise KeyError(f"missing buffer {key!r} in state dict")
                module._buffers[name][...] = state[key]
