"""VGG-style hashing backbones.

The paper's hashing network is VGG19 with the final layer replaced by a
``k``-dimensional fully connected layer under a ``tanh`` activation (§3.2).
On this CPU-only reproduction two interchangeable profiles are provided:

- **conv profiles** (``tiny`` / ``small`` / ``vgg19``): true convolutional
  stacks over NCHW images, built from the same ``[channels..., 'M']``
  configuration grammar as torchvision's VGG.  ``vgg19`` reproduces the full
  16-conv + 3-FC topology for structural fidelity; ``small`` is the
  CPU-practical default; ``tiny`` is for tests.
- **feature profile** (:func:`build_feature_hash_net`): an MLP hash head over
  precomputed backbone features, which simulates the paper's setup of
  initializing the first eighteen layers from an ImageNet-pretrained VGG19
  (the pretrained stem is approximated by the dataset's semantic feature
  extractor; see ``repro.datasets``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import (
    BatchNorm1d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.module import Module
from repro.utils.rng import as_generator, spawn

#: Configuration grammar: ints are conv output channels, "M" is 2x2 max-pool.
VGG_CONFIGS: dict[str, list[int | str]] = {
    "tiny": [8, "M", 16, "M"],
    "small": [16, "M", 32, "M", 64, "M"],
    "vgg19": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, 256, "M",
        512, 512, 512, 512, "M",
        512, 512, 512, 512, "M",
    ],
}


def build_conv_stem(
    config: list[int | str],
    in_channels: int = 3,
    rng: int | np.random.Generator | None = None,
) -> Sequential:
    """Build the convolutional feature stem for a VGG configuration."""
    gen = as_generator(rng)
    layers: list[Module] = []
    channels = in_channels
    for item in config:
        if item == "M":
            layers.append(MaxPool2d(2))
            continue
        if not isinstance(item, int) or item <= 0:
            raise ConfigurationError(f"bad VGG config item: {item!r}")
        layers.append(Conv2d(channels, item, kernel_size=3, padding=1, rng=gen))
        layers.append(ReLU())
        channels = item
    return Sequential(*layers)


class VGGHashNet(Module):
    """Conv hashing network: VGG stem -> FC stack -> k-dim tanh hash head.

    Parameters
    ----------
    n_bits:
        Hash-code length ``k``.
    image_size:
        Input spatial extent (square images assumed).
    profile:
        Key into :data:`VGG_CONFIGS`.
    hidden_dims:
        Widths of the fully connected layers between the stem and the hash
        head (VGG19 uses (4096, 4096); the small profiles use one modest
        layer).
    """

    def __init__(
        self,
        n_bits: int,
        image_size: int = 32,
        in_channels: int = 3,
        profile: str = "small",
        hidden_dims: tuple[int, ...] = (128,),
        dropout: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if profile not in VGG_CONFIGS:
            raise ConfigurationError(
                f"unknown profile {profile!r}; options: {sorted(VGG_CONFIGS)}"
            )
        if n_bits <= 0:
            raise ConfigurationError(f"n_bits must be positive: {n_bits}")
        gen = as_generator(rng)
        stem_rng, head_rng = spawn(gen, 2)
        config = VGG_CONFIGS[profile]
        self.n_bits = n_bits
        self.image_size = image_size
        self.in_channels = in_channels
        self.profile = profile

        self.stem = self.register_child(build_conv_stem(config, in_channels, stem_rng))
        n_pools = sum(1 for item in config if item == "M")
        final_extent = image_size // (2**n_pools)
        if final_extent <= 0:
            raise ConfigurationError(
                f"profile {profile!r} pools {n_pools} times, too deep for "
                f"image_size={image_size}"
            )
        last_channels = [c for c in config if isinstance(c, int)][-1]
        flat_dim = last_channels * final_extent * final_extent

        head_layers: list[Module] = [Flatten()]
        in_dim = flat_dim
        for width in hidden_dims:
            head_layers.append(Linear(in_dim, width, init_scheme="kaiming",
                                      rng=head_rng))
            head_layers.append(ReLU())
            if dropout > 0:
                head_layers.append(Dropout(dropout, rng=head_rng))
            in_dim = width
        # The paper's replaced 19th layer: k-dim FC with Xavier init + tanh.
        head_layers.append(Linear(in_dim, n_bits, init_scheme="xavier", rng=head_rng))
        head_layers.append(Tanh())
        self.head = self.register_child(Sequential(*head_layers))

    @classmethod
    def paper_profile(cls, n_bits: int, rng: int | None = 0) -> "VGGHashNet":
        """The full VGG19 topology (224x224 inputs, 4096-d FC layers)."""
        return cls(
            n_bits,
            image_size=224,
            profile="vgg19",
            hidden_dims=(4096, 4096),
            dropout=0.5,
            rng=rng,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 4 or x.shape[1:] != (
            self.in_channels,
            self.image_size,
            self.image_size,
        ):
            raise ShapeError(
                f"expected (n, {self.in_channels}, {self.image_size}, "
                f"{self.image_size}), got {x.shape}"
            )
        return self.head(self.stem(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.stem.backward(self.head.backward(grad_output))


def build_feature_hash_net(
    n_bits: int,
    feature_dim: int,
    hidden_dims: tuple[int, ...] = (256,),
    batch_norm: bool = True,
    rng: int | np.random.Generator | None = None,
) -> Sequential:
    """MLP hash network over precomputed backbone features.

    This mirrors the paper's practice of initializing the conv stem from a
    pretrained VGG19: the (simulated) pretrained stem is frozen into the
    dataset's feature extractor and only the top layers train.  Ends in a
    ``k``-dim Xavier-initialized linear layer + tanh, like the conv variant.
    """
    if feature_dim <= 0 or n_bits <= 0:
        raise ConfigurationError(
            f"feature_dim and n_bits must be positive: ({feature_dim}, {n_bits})"
        )
    gen = as_generator(rng)
    layers: list[Module] = []
    in_dim = feature_dim
    for width in hidden_dims:
        layers.append(Linear(in_dim, width, init_scheme="kaiming", rng=gen))
        if batch_norm:
            layers.append(BatchNorm1d(width))
        layers.append(ReLU())
        in_dim = width
    layers.append(Linear(in_dim, n_bits, init_scheme="xavier", rng=gen))
    layers.append(Tanh())
    return Sequential(*layers)
