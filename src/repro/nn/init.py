"""Weight initialization schemes.

The paper initializes the hashing head with Xavier initialization [Glorot &
Bengio 2010]; the conv stem uses Kaiming initialization which suits ReLU
stacks.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # linear: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # conv: (out_ch, in_ch, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"cannot infer fan for shape {shape}")


def xavier_uniform(
    shape: tuple[int, ...], rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    gen = as_generator(rng)
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return gen.uniform(-bound, bound, size=shape)


def xavier_normal(
    shape: tuple[int, ...], rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    gen = as_generator(rng)
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return gen.normal(0.0, std, size=shape)


def kaiming_normal(
    shape: tuple[int, ...], rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """He initialization: N(0, 2 / fan_in), appropriate before ReLU."""
    gen = as_generator(rng)
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return gen.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
