"""Gradient-based optimizers.

The paper trains with mini-batch SGD, momentum 0.9, fixed learning rate 0.006
and weight decay 1e-5 (§4.1); :class:`SGD` implements exactly that update.
:class:`Adam` is provided for the baseline methods that conventionally use it
(e.g. the CIB-style contrastive baseline).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping."""

    def __init__(self, parameters: Iterable[Parameter], learning_rate: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0: {learning_rate}")
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and decoupled-from-nothing L2 weight decay.

    The update matches the paper's setup: ``v <- momentum*v + (g + wd*w)``
    then ``w <- w - lr*v``.  Parameters flagged ``weight_decay_enabled=False``
    (batch-norm affine terms) skip the decay.

    The update is fused in place: velocity and a per-parameter scratch buffer
    are preallocated once, so a step allocates nothing and inherits each
    parameter's dtype (create the optimizer *after* casting the network with
    ``Module.to``).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 0.006,
        momentum: float = 0.9,
        weight_decay: float = 1e-5,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1): {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0: {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        lr, mu, wd = self.learning_rate, self.momentum, self.weight_decay
        for p, v, s in zip(self.parameters, self._velocity, self._scratch):
            np.multiply(v, mu, out=v)
            v += p.grad
            if wd > 0 and p.weight_decay_enabled:
                np.multiply(p.data, wd, out=s)
                v += s
            np.multiply(v, lr, out=s)
            p.data -= s


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError(f"betas must be in [0, 1): {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._t
        bias2 = 1.0 - beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay > 0 and p.weight_decay_enabled:
                grad = grad + self.weight_decay * p.data
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
