"""Array-level building blocks for convolution layers.

``im2col``/``col2im`` express 2-D convolution and its gradients as matrix
multiplications, which is the standard way to get acceptable CPU performance
out of a pure-numpy framework.
Arrays follow the NCHW layout throughout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output extent of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"window (kernel={kernel}, stride={stride}, padding={padding}) "
            f"does not fit input extent {size}"
        )
    return out


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad height and width of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, int, int]:
    """Unfold an NCHW tensor into patch columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(n * out_h * out_w, c * kernel * kernel)`` — one row per output pixel,
    one column per weight in the receptive field.

    ``out`` lets callers reuse a preallocated column buffer across calls
    (the patch gather is the hot allocation of every conv forward); it is
    used when its shape and dtype match and reallocated otherwise.  The
    returned array is ``out`` itself in that case — callers that overlap
    forwards (multi-slot activation caches) must rotate between buffers.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    x_p = pad_nchw(x, padding)

    # Gather strided views: shape (n, c, kernel, kernel, out_h, out_w).
    s = x_p.strides
    windows = np.lib.stride_tricks.as_strided(
        x_p,
        shape=(n, c, kernel, kernel, out_h, out_w),
        strides=(s[0], s[1], s[2], s[3], s[2] * stride, s[3] * stride),
        writeable=False,
    )
    cols_shape = (n * out_h * out_w, c * kernel * kernel)
    if (
        out is None
        or out.shape != cols_shape
        or out.dtype != x.dtype
        or not out.flags.c_contiguous
    ):
        out = np.empty(cols_shape, dtype=x.dtype)
    out.reshape(n, out_h, out_w, c, kernel, kernel)[...] = windows.transpose(
        0, 4, 5, 1, 2, 3
    )
    return out, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold patch columns back into an NCHW tensor, summing overlaps.

    This is the exact adjoint of :func:`im2col`, which makes it the gradient
    of the unfolding operation.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    expected_rows = n * out_h * out_w
    expected_cols = c * kernel * kernel
    if cols.shape != (expected_rows, expected_cols):
        raise ShapeError(
            f"cols shape {cols.shape} incompatible with x_shape {x_shape}; "
            f"expected {(expected_rows, expected_cols)}"
        )

    windows = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    h_p, w_p = h + 2 * padding, w + 2 * padding
    x_p = np.zeros((n, c, h_p, w_p), dtype=cols.dtype)
    for ki in range(kernel):
        h_end = ki + stride * out_h
        for kj in range(kernel):
            w_end = kj + stride * out_w
            x_p[:, :, ki:h_end:stride, kj:w_end:stride] += windows[:, :, ki, kj]
    if padding == 0:
        return x_p
    return x_p[:, :, padding:-padding, padding:-padding]
