"""Shape-adapting layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Collapse all axes after the batch axis: (n, ...) -> (n, prod(...))."""

    _CACHE_ATTRS = ("_x_shape",)

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=self.dtype).reshape(self._x_shape)
