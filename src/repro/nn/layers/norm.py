"""Batch normalization layers."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class _BatchNorm(Module):
    """Shared implementation of 1-D and 2-D batch norm.

    Normalizes over all axes except the channel axis, tracks running
    statistics for eval mode, and learns per-channel scale (γ) / shift (β).
    Scale/shift are exempt from weight decay.
    """

    _CACHE_ATTRS = ("_cache",)

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        if num_features <= 0:
            raise ShapeError(f"num_features must be positive: {num_features}")
        if not 0 < momentum < 1:
            raise ValueError(f"momentum must be in (0, 1): {momentum}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = self.register_parameter(
            Parameter(init.ones((num_features,)), name="bn.gamma",
                      weight_decay_enabled=False)
        )
        self.beta = self.register_parameter(
            Parameter(init.zeros((num_features,)), name="bn.beta",
                      weight_decay_enabled=False)
        )
        self.running_mean = self.register_buffer(
            "running_mean", np.zeros(num_features, dtype=np.float64)
        )
        self.running_var = self.register_buffer(
            "running_var", np.ones(num_features, dtype=np.float64)
        )
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._reduce_axes: tuple[int, ...] = (0,)
        self._shape_for_broadcast: tuple[int, ...] = (1, num_features)

    def _apply_dtype(self, dtype: np.dtype) -> None:
        super()._apply_dtype(dtype)
        # Re-point the running-stat aliases at the freshly cast buffers.
        self.running_mean = self._buffers["running_mean"]
        self.running_var = self._buffers["running_var"]

    def _check_input(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        self._check_input(x)
        bshape = self._shape_for_broadcast
        if self.training:
            mean = x.mean(axis=self._reduce_axes)
            centered = x - mean.reshape(bshape)
            # One pass over the already-centered values instead of x.var()
            # re-centering internally.
            var = (centered * centered).mean(axis=self._reduce_axes)
            m = self.momentum
            # In-place so the registered buffers stay aliased.
            self.running_mean *= 1 - m
            self.running_mean += m * mean
            self.running_var *= 1 - m
            self.running_var += m * var
        else:
            mean, var = self.running_mean, self.running_var
            centered = x - mean.reshape(bshape)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = centered * inv_std.reshape(bshape)
        if self.training:
            self._cache = (x_hat, inv_std, centered)
        # Fold scale and shift into one affine pass: γ·x̂ + β = x̂·γ + β.
        out = x_hat * self.gamma.data.reshape(bshape)
        out += self.beta.data.reshape(bshape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (in training mode)")
        x_hat, inv_std, _ = self._cache
        bshape = self._shape_for_broadcast
        grad = np.asarray(grad_output, dtype=self.dtype)
        axes = self._reduce_axes
        m = float(np.prod([x_hat.shape[a] for a in axes]))

        self.gamma.grad += (grad * x_hat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)

        grad_x_hat = grad * self.gamma.data.reshape(bshape)
        # Standard batch-norm backward over the normalized activations,
        # accumulated in place on the freshly allocated grad_x_hat.
        term2 = grad_x_hat.sum(axis=axes, keepdims=True) / m
        term3 = x_hat * ((grad_x_hat * x_hat).sum(axis=axes, keepdims=True) / m)
        grad_x_hat -= term2
        grad_x_hat -= term3
        grad_x_hat *= inv_std.reshape(bshape)
        return grad_x_hat


class BatchNorm1d(_BatchNorm):
    """Batch norm over (n, features) activations."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__(num_features, momentum, eps)
        self._reduce_axes = (0,)
        self._shape_for_broadcast = (1, num_features)

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm1d expected (n, {self.num_features}), got {x.shape}"
            )


class BatchNorm2d(_BatchNorm):
    """Batch norm over (n, c, h, w) activations, per channel."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__(num_features, momentum, eps)
        self._reduce_axes = (0, 2, 3)
        self._shape_for_broadcast = (1, num_features, 1, 1)

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2d expected (n, {self.num_features}, h, w), got {x.shape}"
            )
