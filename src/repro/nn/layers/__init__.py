"""Neural-network layers."""

from repro.nn.layers.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.container import Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm1d, BatchNorm2d
from repro.nn.layers.pooling import GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.reshape import Flatten

__all__ = [
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "LeakyReLU",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
]
