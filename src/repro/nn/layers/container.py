"""Module containers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Run child modules in order; backward runs them in reverse."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for m in modules:
            self.register_child(m)

    @property
    def layers(self) -> list[Module]:
        return list(self._children)

    def append(self, module: Module) -> "Sequential":
        self.register_child(module)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for m in self._children:
            x = m(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for m in reversed(self._children):
            grad = m.backward(grad)
        return grad

    def __len__(self) -> int:
        return len(self._children)

    def __getitem__(self, idx: int) -> Module:
        return self._children[idx]
