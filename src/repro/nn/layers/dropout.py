"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import as_generator


class Dropout(Module):
    """Zero activations with probability ``p`` during training, rescaled so
    the expected activation is unchanged; identity in eval mode."""

    _CACHE_ATTRS = ("_mask",)

    def __init__(self, p: float = 0.5, rng: int | np.random.Generator | None = None):
        super().__init__()
        if not 0 <= p < 1:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self._rng = as_generator(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep).astype(self.dtype) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=self.dtype)
        if self._mask is None:
            return grad
        return grad * self._mask
