"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import as_generator


class Linear(Module):
    """Affine map ``y = x W + b`` with shapes (n, in) -> (n, out).

    ``init_scheme`` selects the weight initializer: ``"xavier"`` (paper's
    choice for the hash head) or ``"kaiming"`` (for ReLU-activated hidden
    layers).
    """

    _CACHE_ATTRS = ("_x",)

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        init_scheme: str = "xavier",
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError(
                f"feature sizes must be positive: ({in_features}, {out_features})"
            )
        gen = as_generator(rng)
        initializers = {"xavier": init.xavier_uniform, "kaiming": init.kaiming_normal}
        if init_scheme not in initializers:
            raise ValueError(
                f"unknown init_scheme {init_scheme!r}; options: {sorted(initializers)}"
            )
        weight0 = initializers[init_scheme]((in_features, out_features), gen)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(Parameter(weight0, name="linear.weight"))
        self.bias = (
            self.register_parameter(
                Parameter(init.zeros((out_features,)), name="linear.bias")
            )
            if bias
            else None
        )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"Linear expected (n, {self.in_features}), got {x.shape}"
            )
        self._x = x
        out = x @ self.weight.data
        if self.bias is not None:
            out += self.bias.data  # in place: out is freshly allocated
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=self.dtype)
        self.weight.grad += self._x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T
