"""Element-wise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """max(x, 0)."""

    _CACHE_ATTRS = ("_mask",)

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, np.asarray(grad_output, dtype=self.dtype), 0.0)


class LeakyReLU(Module):
    """x if x > 0 else slope * x."""

    _CACHE_ATTRS = ("_mask",)

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be >= 0: {negative_slope}")
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad_output, dtype=self.dtype)
        return np.where(self._mask, grad, self.negative_slope * grad)


class Tanh(Module):
    """Hyperbolic tangent — the paper's hash-head activation (sign surrogate)."""

    _CACHE_ATTRS = ("_out",)

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(np.asarray(x, dtype=self.dtype))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=self.dtype) * (1.0 - self._out**2)


class Sigmoid(Module):
    """Logistic function, used by the BGAN-style baseline discriminator."""

    _CACHE_ATTRS = ("_out",)

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        e = np.exp(x[~pos])
        out[~pos] = e / (1.0 + e)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=self.dtype) * self._out * (1 - self._out)
