"""Spatial pooling layers over NCHW tensors."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.functional import conv_output_size, im2col
from repro.nn.module import Module


class MaxPool2d(Module):
    """Non-overlapping-by-default max pooling (stride defaults to kernel)."""

    _CACHE_ATTRS = ("_argmax", "_x_shape", "_out_hw")

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ShapeError(f"kernel_size must be positive: {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 4:
            raise ShapeError(f"MaxPool2d expects NCHW input, got {x.shape}")
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = conv_output_size(h, k, s, 0)
        out_w = conv_output_size(w, k, s, 0)
        # Treat channels independently by folding them into the batch axis.
        cols, _, _ = im2col(x.reshape(n * c, 1, h, w), k, s, 0)  # (ncohow, k*k)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        self._argmax = argmax
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        out_h, out_w = self._out_hw
        k, s = self.kernel_size, self.stride
        grad = np.asarray(grad_output, dtype=self.dtype).reshape(-1)
        if grad.size != n * c * out_h * out_w:
            raise ShapeError(
                f"grad_output has {grad.size} elements, expected "
                f"{n * c * out_h * out_w}"
            )
        from repro.nn.functional import col2im

        grad_cols = np.zeros((n * c * out_h * out_w, k * k), dtype=self.dtype)
        grad_cols[np.arange(grad.size), self._argmax] = grad
        grad_x = col2im(grad_cols, (n * c, 1, h, w), k, s, 0)
        return grad_x.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """Average over spatial dimensions: (n, c, h, w) -> (n, c)."""

    _CACHE_ATTRS = ("_x_shape",)

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 4:
            raise ShapeError(f"GlobalAvgPool2d expects NCHW input, got {x.shape}")
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        grad = np.asarray(grad_output, dtype=self.dtype).reshape(n, c, 1, 1)
        return np.broadcast_to(grad / (h * w), self._x_shape).copy()
