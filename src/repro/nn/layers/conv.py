"""2-D convolution layer implemented via im2col matrix multiplication."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.functional import col2im, im2col
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import as_generator


class Conv2d(Module):
    """Cross-correlation with square kernels over NCHW tensors.

    The im2col patch buffer is reused across forwards through a two-slot
    ring, so steady-state training does not reallocate the (large) column
    matrix every step.  Two slots cover the deepest overlap the trainers
    use (two captured forwards before their backwards, see
    :meth:`Module.capture_cache`); a third overlapping forward reuses the
    first slot's storage, and ``backward`` detects that (each forward
    stamps its slot with a sequence number) and raises instead of
    silently computing gradients from the wrong columns.
    """

    _CACHE_ATTRS = ("_cols", "_x_shape", "_out_hw", "_fwd_id", "_fwd_slot")

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ShapeError("channels, kernel_size and stride must be positive")
        if padding < 0:
            raise ShapeError(f"padding must be >= 0, got {padding}")
        gen = as_generator(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = self.register_parameter(
            Parameter(init.kaiming_normal(shape, gen), name="conv.weight")
        )
        self.bias = (
            self.register_parameter(
                Parameter(init.zeros((out_channels,)), name="conv.bias")
            )
            if bias
            else None
        )
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None
        self._fwd_id: int | None = None
        self._fwd_slot: int | None = None
        self._col_ring: list[np.ndarray | None] = [None, None]
        self._ring_owner: list[int | None] = [None, None]
        self._ring_slot = 0
        self._fwd_seq = 0

    def _apply_dtype(self, dtype: np.dtype) -> None:
        super()._apply_dtype(dtype)
        self._col_ring = [None, None]
        self._ring_owner = [None, None]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2d expected (n, {self.in_channels}, h, w), got {x.shape}"
            )
        slot = self._ring_slot
        self._ring_slot = 1 - slot
        cols, out_h, out_w = im2col(
            x, self.kernel_size, self.stride, self.padding,
            out=self._col_ring[slot],
        )
        self._col_ring[slot] = cols
        self._fwd_seq += 1
        self._fwd_id = self._ring_owner[slot] = self._fwd_seq
        self._fwd_slot = slot
        n = x.shape[0]
        w_mat = self.weight.data.reshape(self.out_channels, -1)  # (out_c, c*k*k)
        out = cols @ w_mat.T  # (n*oh*ow, out_c)
        if self.bias is not None:
            out = out + self.bias.data
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        if self._ring_owner[self._fwd_slot] != self._fwd_id:
            raise RuntimeError(
                "Conv2d im2col buffer was overwritten by a later forward; "
                "at most two forwards can be live (captured) at once"
            )
        n = self._x_shape[0]
        out_h, out_w = self._out_hw
        grad = np.asarray(grad_output, dtype=self.dtype)
        if grad.shape != (n, self.out_channels, out_h, out_w):
            raise ShapeError(
                f"grad_output shape {grad.shape} does not match forward output "
                f"{(n, self.out_channels, out_h, out_w)}"
            )
        # (n*oh*ow, out_c)
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat.T @ self._cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_mat.sum(axis=0)
        grad_cols = grad_mat @ w_mat  # (n*oh*ow, c*k*k)
        return col2im(
            grad_cols, self._x_shape, self.kernel_size, self.stride, self.padding
        )
