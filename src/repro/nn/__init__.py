"""A from-scratch numpy neural-network framework (the PyTorch substitute).

Provides a layer-wise backprop module system, VGG-style backbones, SGD /
Adam optimizers, and standard losses — everything the paper's training loop
(and the deep baselines) need.
"""

from repro.nn import init
from repro.nn.layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    mse_loss,
    softmax_cross_entropy,
)
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.parameter import Parameter
from repro.nn.vgg import VGG_CONFIGS, VGGHashNet, build_conv_stem, build_feature_hash_net

__all__ = [
    "Adam",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "LeakyReLU",
    "Linear",
    "MaxPool2d",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "VGGHashNet",
    "VGG_CONFIGS",
    "binary_cross_entropy_with_logits",
    "build_conv_stem",
    "build_feature_hash_net",
    "init",
    "mse_loss",
    "softmax_cross_entropy",
]
