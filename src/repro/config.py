"""Experiment configuration objects.

:class:`UHSCMConfig` collects every hyper-parameter named in the paper
(Sections 3.4, 4.1 and 4.6) with the per-dataset defaults the authors selected
after their sensitivity study:

=============  =====  =====  =====  =====  ======
dataset        α      λ      γ      β      τ
=============  =====  =====  =====  =====  ======
CIFAR10        0.2    0.8    0.2    0.001  3·m
NUS-WIDE       0.1    0.5    0.2    0.001  3·m
MIRFlickr-25K  0.3    0.6    0.5    0.001  3·m
=============  =====  =====  =====  =====  ======

where ``m`` is the number of candidate concepts (τ is stored as the
multiplier ``tau_scale`` so it tracks the concept count automatically).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.errors import ConfigurationError

#: Hash-code lengths evaluated throughout the paper.
PAPER_BIT_LENGTHS: tuple[int, ...] = (32, 64, 96, 128)

#: Default prompt template (paper §3.3.1 / ablation 4.4.3 row "Ours").
DEFAULT_PROMPT_TEMPLATE = "a photo of the {concept}"


#: Training dtypes the nn stack supports (see :attr:`TrainConfig.dtype`).
TRAIN_DTYPES: tuple[str, ...] = ("float64", "float32")


@dataclass(frozen=True)
class TrainConfig:
    """Optimization settings for the hashing network (paper §4.1).

    The paper uses SGD with momentum 0.9, fixed lr 0.006, batch size 128 and
    weight decay 1e-5.  ``epochs`` is scale-dependent; the paper trains to
    convergence, the reproduction default is sized for CPU runs.

    ``dtype`` selects the numeric policy for the whole training stack —
    parameters, activations, losses, and the SGD state are all kept in one
    dtype.  The default ``"float64"`` is bit-stable with the seed
    implementation (deterministic reproductions, tight gradient checks);
    ``"float32"`` roughly doubles CPU throughput and tracks the float64
    loss trajectory to ~1e-3 relative (gated by
    ``benchmarks/bench_train_scale.py``).  Inference helpers
    (``HashingNetwork.encode``) are unaffected: ±1 codes are identical in
    either dtype away from sign boundaries.
    """

    learning_rate: float = 0.006
    momentum: float = 0.9
    weight_decay: float = 1e-5
    batch_size: int = 128
    epochs: int = 60
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be > 0: {self.learning_rate}")
        if not 0 <= self.momentum < 1:
            raise ConfigurationError(f"momentum must be in [0, 1): {self.momentum}")
        if self.weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be >= 0: {self.weight_decay}")
        if self.batch_size <= 0 or self.epochs <= 0:
            raise ConfigurationError("batch_size and epochs must be positive")
        if self.dtype not in TRAIN_DTYPES:
            raise ConfigurationError(
                f"dtype must be one of {TRAIN_DTYPES}: {self.dtype!r}"
            )


@dataclass(frozen=True)
class UHSCMConfig:
    """Full UHSCM hyper-parameter set (Eq. 2, Eq. 5, Eq. 11).

    Attributes
    ----------
    n_bits:
        Hash-code length ``k``.
    alpha:
        Weight of the modified contrastive loss ``L_c`` in Eq. 11.
    beta:
        Weight of the quantization loss in Eq. 11.
    gamma:
        Contrastive temperature in Eq. 8.
    lam:
        Similarity threshold λ defining the positive set Ψ_i = {j | q_ij >= λ}.
    tau_scale:
        τ = ``tau_scale · m`` where ``m`` is the candidate-concept count.
        The paper reports both τ = 1m and τ = 3m as optimal (§4.6) and
        selects 3m; this reproduction's score distribution peaks at 1m
        (EXPERIMENTS.md, Figure 4a), so 1m is the default here.
    denoise:
        Apply the Eq. 4–5 concept-denoising step (ablation row 7 turns
        this off).
    sparse_topk:
        When set, Q is built in top-k sparse CSR form (the k strongest
        entries per row plus the diagonal) by the blocked pairwise-cosine
        kernel instead of as a dense (n, n) array — memory drops from
        O(n²) to O(n·k) and training gathers batch blocks from the CSR
        rows.  ``None`` (default) keeps the dense paper-parity path.
        With ``sparse_topk >= n - 1`` the sparse Q is exact; smaller k is
        an approximation that zeroes the weakest similarities.
    out_of_core:
        Execution policy, not a model hyper-parameter: when True (and the
        pipeline runs staged against a disk-backed store with
        ``sparse_topk`` set), the CSR Q is built by the streaming kernel
        directly into on-disk buffers and consumed as memmaps, so the
        largest arrays never reside wholly in RAM.  Outputs are
        bit-identical to the in-memory path, so this flag never enters
        fingerprints.
    workers:
        Execution policy like ``out_of_core``: worker count for the shared
        pool behind the parallel kernels (sparse Q row tiles, the
        trainer's one-slot batch prefetch; the serving layer has its own
        knob).  ``None`` defers to ``$REPRO_WORKERS`` (else serial);
        ``1`` forces the serial fallback.  Every parallel output is
        bit-identical to serial, so this never enters fingerprints either.
    pool_backend:
        Execution backend for the pooled top-k Q-build kernels:
        ``"thread"`` (the default), or ``"process"`` to run the GIL-bound
        tile portions in spawned workers with shared-memory operand
        transport.  ``None`` defers to ``$REPRO_POOL`` (else thread).
        Applies only to the process-safe Q builders — the trainer's
        prefetch and the serving fan-out stay thread-backed regardless.
        Bit-identical across backends, so it never enters fingerprints.
    prompt_template:
        Template used to turn a concept into text for the VLP model.
    train:
        Optimization settings.
    seed:
        Master seed controlling network init and batch sampling.
    """

    n_bits: int = 64
    alpha: float = 0.2
    beta: float = 0.001
    gamma: float = 0.2
    lam: float = 0.8
    tau_scale: float = 1.0
    denoise: bool = True
    sparse_topk: int | None = None
    out_of_core: bool = False
    workers: int | None = None
    pool_backend: str | None = None
    prompt_template: str = DEFAULT_PROMPT_TEMPLATE
    train: TrainConfig = field(default_factory=TrainConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_bits <= 0:
            raise ConfigurationError(f"n_bits must be positive: {self.n_bits}")
        if self.alpha < 0 or self.beta < 0:
            raise ConfigurationError("alpha and beta must be >= 0")
        if self.gamma <= 0:
            raise ConfigurationError(f"gamma must be > 0: {self.gamma}")
        if not 0 <= self.lam <= 1:
            raise ConfigurationError(f"lam must be in [0, 1]: {self.lam}")
        if self.tau_scale <= 0:
            raise ConfigurationError(f"tau_scale must be > 0: {self.tau_scale}")
        if self.sparse_topk is not None and self.sparse_topk <= 0:
            raise ConfigurationError(
                f"sparse_topk must be positive (or None): {self.sparse_topk}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1 (or None): {self.workers}"
            )
        if self.pool_backend is not None and self.pool_backend not in (
            "thread", "process",
        ):
            raise ConfigurationError(
                "pool_backend must be 'thread', 'process', or None: "
                f"{self.pool_backend!r}"
            )
        if "{concept}" not in self.prompt_template:
            raise ConfigurationError(
                "prompt_template must contain a '{concept}' placeholder: "
                f"{self.prompt_template!r}"
            )

    def with_bits(self, n_bits: int) -> "UHSCMConfig":
        """Copy of this config at a different code length."""
        return replace(self, n_bits=n_bits)

    def fingerprint_payload(self) -> dict:
        """JSON-able form of this config for content fingerprints.

        Omits ``sparse_topk`` when it is None, so every train-stage and
        model-snapshot fingerprint minted before the sparse similarity
        engine existed stays valid (dense runs replay their cached
        artifacts across the upgrade); the key participates only when
        sparsity is actually on.
        """
        payload = asdict(self)
        if payload.get("sparse_topk") is None:
            del payload["sparse_topk"]
        # Residency policy, not math: in-core and out-of-core runs produce
        # bit-identical artifacts, so they must share fingerprints.
        payload.pop("out_of_core", None)
        # Same for worker count and pool backend — parallel kernels are
        # bit-identical to serial on every backend, so any combination
        # replays the serial run's artifacts.
        payload.pop("workers", None)
        payload.pop("pool_backend", None)
        return payload

    def tau(self, n_concepts: int) -> float:
        """Concrete softmax temperature τ for an ``n_concepts`` vocabulary."""
        if n_concepts <= 0:
            raise ConfigurationError(f"n_concepts must be positive: {n_concepts}")
        return self.tau_scale * n_concepts


def paper_config(dataset: str, n_bits: int = 64, seed: int = 0) -> UHSCMConfig:
    """Per-dataset hyper-parameters, re-validated the way paper §4.6 does.

    The paper selects (α, λ, γ, β) per dataset by sweeping each around its
    optimum; this reproduction repeats that sweep on the simulated data
    (see ``benchmarks/bench_figure4.py``).  CIFAR10 lands on the paper's
    exact values; the multi-label optima shift slightly (smaller γ, λ = 0.5)
    because the simulated score distribution is not identical to real
    CLIP's — EXPERIMENTS.md records the deltas.
    """
    presets = {
        "cifar10": dict(alpha=0.2, lam=0.8, gamma=0.2, beta=0.001),
        "nuswide": dict(alpha=0.2, lam=0.5, gamma=0.15, beta=0.001),
        "mirflickr": dict(alpha=0.3, lam=0.5, gamma=0.1, beta=0.001),
    }
    key = dataset.lower().replace("-", "").replace("_", "")
    aliases = {
        "cifar10": "cifar10",
        "cifar": "cifar10",
        "nuswide": "nuswide",
        "mirflickr": "mirflickr",
        "mirflickr25k": "mirflickr",
    }
    if key not in aliases:
        raise ConfigurationError(
            f"unknown dataset {dataset!r}; expected one of {sorted(set(aliases))}"
        )
    return UHSCMConfig(n_bits=n_bits, seed=seed, **presets[aliases[key]])
