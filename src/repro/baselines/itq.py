"""Iterative Quantization (Gong et al., TPAMI 2012).

PCA to ``k`` dimensions, then alternate between assigning binary codes and
solving the orthogonal Procrustes problem for the rotation that minimizes
quantization error ||B − V R||².
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseHasher, center_and_scale, pca_projection
from repro.utils.mathops import sign


class ITQ(BaseHasher):
    """PCA + iterative rotation (the strongest shallow baseline in Table 1)."""

    name = "ITQ"

    def __init__(self, *args, n_iterations: int = 50, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if n_iterations <= 0:
            raise ValueError(f"n_iterations must be positive: {n_iterations}")
        self.n_iterations = n_iterations

    def _fit_features(self, features: np.ndarray) -> None:
        centered, self._mean = center_and_scale(features)
        self._basis = pca_projection(centered, self.n_bits)
        v = centered @ self._basis

        # Random orthogonal initialization of the rotation.
        q, _ = np.linalg.qr(self.rng.normal(size=(self.n_bits, self.n_bits)))
        rotation = q
        for _ in range(self.n_iterations):
            b = sign(v @ rotation)
            # Procrustes: R = S S̄ᵀ from the SVD of Bᵀ V.
            u, _, vt = np.linalg.svd(b.T @ v)
            rotation = (u @ vt).T
        self._rotation = rotation

    def _encode_features(self, features: np.ndarray) -> np.ndarray:
        centered, _ = center_and_scale(features, self._mean)
        return centered @ self._basis @ self._rotation
