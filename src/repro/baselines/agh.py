"""Anchor Graph Hashing (Liu et al., ICML 2011).

Builds a sparse low-rank anchor graph: each point connects to its ``s``
nearest anchors (from k-means) with kernel weights; hash functions are the
graph Laplacian's smoothest eigenvectors, computed through the small
anchor-space eigenproblem, extended out of sample via the anchor embedding.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.kmeans import kmeans
from repro.baselines.base import BaseHasher
from repro.errors import ConfigurationError

_EPS = 1e-12


class AGH(BaseHasher):
    """One-layer anchor graph hashing."""

    name = "AGH"

    def __init__(
        self,
        *args,
        n_anchors: int = 64,
        n_nearest: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if n_anchors <= 0 or n_nearest <= 0:
            raise ConfigurationError("n_anchors and n_nearest must be positive")
        self.n_anchors = n_anchors
        self.n_nearest = n_nearest

    def _anchor_embedding(self, features: np.ndarray) -> np.ndarray:
        """Truncated kernel affinities Z (n, m), rows sum to 1."""
        sq = (
            (features**2).sum(axis=1, keepdims=True)
            - 2 * features @ self._anchors.T
            + (self._anchors**2).sum(axis=1)
        )
        sq = np.maximum(sq, 0.0)
        s = min(self.n_nearest, self._anchors.shape[0])
        nearest = np.argpartition(sq, s - 1, axis=1)[:, :s]
        z = np.zeros((features.shape[0], self._anchors.shape[0]))
        rows = np.arange(features.shape[0])[:, None]
        kernel = np.exp(-sq[rows, nearest] / max(self._bandwidth, _EPS))
        kernel = np.maximum(kernel, _EPS)
        z[rows, nearest] = kernel / kernel.sum(axis=1, keepdims=True)
        return z

    def _fit_features(self, features: np.ndarray) -> None:
        m = min(self.n_anchors, features.shape[0])
        result = kmeans(features, m, seed=self.rng)
        self._anchors = result.centroids
        # Bandwidth: mean squared distance to assigned centroid.
        assigned = self._anchors[result.labels]
        self._bandwidth = float(((features - assigned) ** 2).sum(axis=1).mean())
        if self._bandwidth <= 0:
            self._bandwidth = 1.0

        z = self._anchor_embedding(features)
        lam = z.sum(axis=0)  # anchor degrees
        lam_inv_sqrt = 1.0 / np.sqrt(np.maximum(lam, _EPS))
        # Small m x m problem: M = Λ^-1/2 Zᵀ Z Λ^-1/2.
        m_mat = (z * lam_inv_sqrt).T @ (z * lam_inv_sqrt)
        eigvals, eigvecs = np.linalg.eigh(m_mat)
        order = np.argsort(eigvals)[::-1]
        # Drop the trivial top eigenvector (constant), keep the next k.
        take = order[1 : self.n_bits + 1]
        if take.size < self.n_bits:
            # Not enough anchors for k distinct functions: recycle with noise.
            reps = int(np.ceil(self.n_bits / max(take.size, 1)))
            take = np.tile(take, reps)[: self.n_bits]
        sigma = np.sqrt(np.maximum(eigvals[take], _EPS))
        n = features.shape[0]
        # Out-of-sample projection W (m, k), scaled as in the AGH paper.
        self._w = (
            lam_inv_sqrt[:, None] * eigvecs[:, take] / sigma
        ) * np.sqrt(n)

    def _encode_features(self, features: np.ndarray) -> np.ndarray:
        z = self._anchor_embedding(features)
        return z @ self._w
