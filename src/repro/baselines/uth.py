"""Unsupervised Triplet Hashing (Huang et al., ACM MM Workshops 2017).

Triplets are mined from the backbone feature space: the positive of an
anchor is one of its nearest neighbours, the negative a random sample from
the farthest half.  The hash head minimizes a margin ranking loss on relaxed
Hamming distances so neighbours stay close in code space.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deep import DeepHasherBase
from repro.core.losses import cosine_backward, pairwise_cosine
from repro.utils.mathops import cosine_similarity_matrix


class UTH(DeepHasherBase):
    """Feature-space triplet mining + margin ranking hashing loss."""

    name = "UTH"

    #: Number of nearest neighbours eligible as positives.
    N_POSITIVE = 5
    #: Margin of the triplet ranking loss (in cosine-similarity units).
    MARGIN = 0.4

    def _prepare(self, features: np.ndarray) -> None:
        sim = cosine_similarity_matrix(self._guidance_features(features))
        np.fill_diagonal(sim, -np.inf)
        n = features.shape[0]
        k = min(self.N_POSITIVE, n - 1)
        self._positives = np.argsort(-sim, axis=1)[:, :k]
        # Negative pool: the farthest half of the training set per anchor.
        half = max(n // 2, 1)
        self._negatives = np.argsort(sim, axis=1)[:, :half]

    def _step(self, batch_idx: np.ndarray, batch: np.ndarray) -> float:
        # Build triplets inside the batch: map global ids to batch slots.
        slot = {g: i for i, g in enumerate(batch_idx)}
        anchors, positives, negatives = [], [], []
        for i, g in enumerate(batch_idx):
            pos_candidates = [p for p in self._positives[g] if p in slot]
            neg_candidates = [q for q in self._negatives[g] if q in slot]
            if not pos_candidates or not neg_candidates:
                continue
            anchors.append(i)
            positives.append(slot[pos_candidates[0]])
            negatives.append(slot[neg_candidates[
                int(self.rng.integers(len(neg_candidates)))]])
        z = self.net(batch)
        if not anchors:
            return 0.0
        h, z_hat, norms = pairwise_cosine(z)
        a = np.asarray(anchors)
        p = np.asarray(positives)
        q = np.asarray(negatives)
        # hinge on similarity: want h[a,p] >= h[a,q] + margin.
        violation = self.MARGIN + h[a, q] - h[a, p]
        active = violation > 0
        loss = float(np.maximum(violation, 0).mean())
        grad_h = np.zeros_like(h)
        scale = 1.0 / max(len(anchors), 1)
        for ai, pi, qi, act in zip(a, p, q, active):
            if not act:
                continue
            grad_h[ai, pi] -= scale / 2  # symmetrized below via backward
            grad_h[ai, qi] += scale / 2
        grad_z = cosine_backward(z_hat, norms, grad_h)
        self.optimizer.zero_grad()
        self.net.backward(grad_z)
        self.optimizer.step()
        return loss
