"""GreedyHash (Su et al., NeurIPS 2018) — unsupervised adaptation.

GreedyHash's core idea is to keep the hard ``sign`` in the forward pass and
propagate gradients straight through it (treating ``d sign(z)/dz = 1``),
plus a cubic penalty pulling activations toward ±1.  The unsupervised
variant used as a Table 1 baseline preserves the feature cosine-similarity
structure of the batch through the *binary* codes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deep import DeepHasherBase
from repro.errors import ShapeError
from repro.utils.mathops import cosine_similarity_matrix, sign


class GreedyHash(DeepHasherBase):
    """Straight-through sign hashing with feature-similarity supervision."""

    name = "GH"

    #: Weight of the cubic quantization penalty |z − sign(z)|³.
    PENALTY = 0.1

    def _prepare(self, features: np.ndarray) -> None:
        self._feature_sim = cosine_similarity_matrix(
            self._guidance_features(features)
        )

    def _step(self, batch_idx: np.ndarray, batch: np.ndarray) -> float:
        z = self.net(batch)
        t = z.shape[0]
        b = sign(z)  # hard codes in the forward pass
        target = self._feature_sim[np.ix_(batch_idx, batch_idx)]
        h = b @ b.T / self.n_bits
        diff = h - target
        loss = float((diff**2).mean())
        # Straight-through: gradient w.r.t. b is used as gradient w.r.t. z.
        grad_b = (2.0 / (t * t)) * (diff + diff.T) @ b / self.n_bits
        penalty = np.abs(z - b) ** 3
        loss += self.PENALTY * float(penalty.mean())
        grad_pen = (
            self.PENALTY * 3.0 * np.sign(z - b) * (z - b) ** 2 / z.size
        )
        if grad_b.shape != z.shape:
            raise ShapeError("gradient/activation shape mismatch")
        self.optimizer.zero_grad()
        self.net.backward(grad_b + grad_pen)
        self.optimizer.step()
        return loss
