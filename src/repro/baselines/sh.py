"""Spectral Hashing (Weiss, Torralba & Fergus, NeurIPS 2009).

PCA-align the data, then take the ``k`` lowest-frequency one-dimensional
Laplacian eigenfunctions of a uniform distribution over each principal
range, thresholded at zero — the classical closed-form SH construction.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseHasher, center_and_scale, pca_projection

_RANGE_EPS = 1e-9


class SpectralHashing(BaseHasher):
    """Closed-form spectral hashing over backbone features."""

    name = "SH"

    def _fit_features(self, features: np.ndarray) -> None:
        centered, self._mean = center_and_scale(features)
        n_pc = min(self.n_bits, features.shape[1])
        self._basis = pca_projection(centered, n_pc)
        projected = centered @ self._basis
        self._min = projected.min(axis=0)
        self._range = np.maximum(projected.max(axis=0) - self._min, _RANGE_EPS)

        # Enumerate candidate eigenfunctions (pc, mode) with analytical
        # eigenvalues lambda = (mode * pi / range)^2 and keep the k smallest
        # non-trivial ones.
        max_modes = self.n_bits + 1
        candidates: list[tuple[float, int, int]] = []
        for pc in range(n_pc):
            for mode in range(1, max_modes + 1):
                eigenvalue = (mode * np.pi / self._range[pc]) ** 2
                candidates.append((eigenvalue, pc, mode))
        candidates.sort()
        self._modes = [(pc, mode) for _, pc, mode in candidates[: self.n_bits]]

    def _encode_features(self, features: np.ndarray) -> np.ndarray:
        centered, _ = center_and_scale(features, self._mean)
        projected = (centered @ self._basis - self._min) / self._range
        projected = np.clip(projected, 0.0, 1.0)
        out = np.empty((features.shape[0], self.n_bits))
        for bit, (pc, mode) in enumerate(self._modes):
            out[:, bit] = np.sin(np.pi * mode * projected[:, pc] + np.pi / 2)
        return out
