"""Shared machinery for the unsupervised hashing baselines.

Every baseline follows the paper's "fair comparison" protocol (§4.1): the
shallow methods consume features from a pretrained backbone and the deep
methods train a hashing head over the same backbone.  In this reproduction
the backbone is the simulated pretrained encoder (``SimCLIP.image_features``
/ ``HashingDataset.features``), injected as a ``feature_extractor`` callable
so every method sees identical inputs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.utils.mathops import sign
from repro.utils.rng import as_generator

FeatureExtractor = Callable[[np.ndarray], np.ndarray]


class BaseHasher(ABC):
    """Common fit/encode surface: raw images in, ±1 codes out.

    Subclasses implement ``_fit_features`` / ``_encode_features`` over the
    extracted feature matrix.
    """

    #: Human-readable method name used in experiment tables.
    name: str = "base"

    def __init__(
        self,
        n_bits: int,
        feature_extractor: FeatureExtractor,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_bits <= 0:
            raise ConfigurationError(f"n_bits must be positive: {n_bits}")
        self.n_bits = n_bits
        self.feature_extractor = feature_extractor
        self.rng = as_generator(seed)
        self._fitted = False

    def fit(self, images: np.ndarray) -> "BaseHasher":
        """Fit the hash function on unlabeled training images."""
        images = np.asarray(images, dtype=np.float64)
        self._train_images = images  # kept for guidance extractors
        features = self.feature_extractor(images)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ConfigurationError(
                f"feature extractor returned shape {features.shape}"
            )
        self._fit_features(features)
        self._fitted = True
        return self

    def encode(self, images: np.ndarray) -> np.ndarray:
        """±1 hash codes of shape (n, n_bits)."""
        if not self._fitted:
            raise NotFittedError(f"{self.name}: encode called before fit")
        features = self.feature_extractor(np.asarray(images, dtype=np.float64))
        codes = self._encode_features(features)
        return sign(codes)

    @abstractmethod
    def _fit_features(self, features: np.ndarray) -> None:
        """Fit on the (n, d) training feature matrix."""

    @abstractmethod
    def _encode_features(self, features: np.ndarray) -> np.ndarray:
        """Real-valued code responses; the base class applies ``sign``."""


def center_and_scale(
    features: np.ndarray, mean: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Center features; returns (centered, mean).  Pass the training mean
    back in at encode time."""
    features = np.asarray(features, dtype=np.float64)
    if mean is None:
        mean = features.mean(axis=0)
    return features - mean, mean


def pca_projection(features: np.ndarray, n_components: int) -> np.ndarray:
    """Top-``n_components`` PCA directions (d, n_components) of centered data.

    If the feature dimension is smaller than the requested component count,
    directions are recycled with random rotations, the standard trick used
    by ITQ/SH implementations for long codes.
    """
    n, d = features.shape
    cov = features.T @ features / max(n - 1, 1)
    eigvals, eigvecs = np.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1]
    basis = eigvecs[:, order]
    if n_components <= d:
        return basis[:, :n_components]
    # Recycle directions beyond d with deterministic random rotations.
    reps = int(np.ceil(n_components / d))
    blocks = [basis]
    gen = np.random.default_rng(0)
    for _ in range(reps - 1):
        q, _ = np.linalg.qr(gen.normal(size=(d, d)))
        blocks.append(basis @ q)
    return np.concatenate(blocks, axis=1)[:, :n_components]
