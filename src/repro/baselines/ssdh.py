"""Semantic Structure-based unsupervised Deep Hashing (Yang et al., IJCAI 2018).

SSDH estimates the distribution of pairwise feature cosine distances as a
mixture of two Gaussians (similar vs. dissimilar pairs), picks distance
thresholds from that estimate, and labels pairs below/above them +1/−1
(pairs in between are ignored).  The hashing network then fits the labeled
structure with an L2 loss.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deep import DeepHasherBase, masked_pair_loss
from repro.utils.mathops import cosine_similarity_matrix


class SSDH(DeepHasherBase):
    """Gaussian-threshold semantic structure + pairwise L2 hashing loss."""

    name = "SSDH"

    #: Threshold offsets in units of the distance std (the paper's α, β).
    #: Conservative thresholds label few pairs, which is SSDH's documented
    #: weakness on single-label data (its Table 1 row trails even ITQ).
    ALPHA = 2.0
    BETA = 2.0

    def _prepare(self, features: np.ndarray) -> None:
        cosine = cosine_similarity_matrix(self._guidance_features(features))
        distances = 1.0 - cosine
        off_diag = ~np.eye(distances.shape[0], dtype=bool)
        values = distances[off_diag]
        mean, std = float(values.mean()), float(values.std())
        left = mean - self.ALPHA * std  # below: confidently similar
        right = mean + self.BETA * std  # above: confidently dissimilar

        self._structure = np.zeros_like(distances)
        self._structure[distances <= left] = 1.0
        self._structure[distances >= right] = -1.0
        self._mask = (self._structure != 0) & off_diag
        np.fill_diagonal(self._structure, 1.0)

    def _step(self, batch_idx: np.ndarray, batch: np.ndarray) -> float:
        z = self.net(batch)
        sub = np.ix_(batch_idx, batch_idx)
        loss, grad = masked_pair_loss(z, self._structure[sub], self._mask[sub])
        self.optimizer.zero_grad()
        self.net.backward(grad)
        self.optimizer.step()
        return loss
