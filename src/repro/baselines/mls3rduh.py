"""MLS3RDUH (Tu, Mao & Wei, IJCAI 2020).

Deep Unsupervised Hashing via Manifold-based Local Semantic Similarity
Structure Reconstructing: the guiding similarity matrix is rebuilt from the
*manifold* structure of the feature space — a kNN graph whose multi-hop
diffusion replaces raw cosine similarity — and pairs that are close both on
the manifold and in cosine get reinforced.

The O(n²·hops) diffusion over the full training set is what makes this the
slowest method in the paper's Table 3; the reproduction keeps that cost
profile.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deep import DeepHasherBase, masked_pair_loss
from repro.utils.mathops import cosine_similarity_matrix


class MLS3RDUH(DeepHasherBase):
    """Manifold-diffused similarity reconstruction + pairwise L2 hashing."""

    name = "MLS3RDUH"

    #: Nearest-neighbour count of the manifold graph.
    N_NEIGHBOURS = 10
    #: Diffusion decay per hop.
    DECAY = 0.6
    #: Number of diffusion hops.
    HOPS = 3
    #: Fraction of top manifold-similar pairs marked similar.
    TOP_FRACTION = 0.08

    def _manifold_similarity(self, cosine: np.ndarray) -> np.ndarray:
        """Multi-hop diffusion over the row-normalized kNN graph."""
        n = cosine.shape[0]
        k = min(self.N_NEIGHBOURS, n - 1)
        adjacency = np.zeros_like(cosine)
        order = np.argsort(-cosine, axis=1)
        rows = np.arange(n)[:, None]
        neighbours = order[:, 1 : k + 1]  # skip self
        adjacency[rows, neighbours] = np.maximum(
            cosine[rows, neighbours], 0.0
        )
        adjacency = np.maximum(adjacency, adjacency.T)  # undirected
        row_sums = np.maximum(adjacency.sum(axis=1, keepdims=True), 1e-12)
        transition = adjacency / row_sums

        diffusion = np.zeros_like(transition)
        power = np.eye(n)
        for hop in range(1, self.HOPS + 1):
            power = power @ transition
            diffusion += (self.DECAY**hop) * power
        return (diffusion + diffusion.T) / 2.0

    def _prepare(self, features: np.ndarray) -> None:
        cosine = cosine_similarity_matrix(self._guidance_features(features))
        manifold = self._manifold_similarity(cosine)

        # Reconstruct the local structure: pairs in the top fraction of the
        # manifold similarity are similar (+1); pairs with non-positive
        # diffusion are dissimilar (−1); the rest keep their cosine value.
        n = cosine.shape[0]
        off = ~np.eye(n, dtype=bool)
        values = manifold[off]
        threshold = np.quantile(values, 1.0 - self.TOP_FRACTION)
        structure = cosine.copy()
        structure[manifold >= threshold] = 1.0
        structure[manifold <= 0] = -1.0
        np.fill_diagonal(structure, 1.0)
        self._structure = structure

    def _step(self, batch_idx: np.ndarray, batch: np.ndarray) -> float:
        z = self.net(batch)
        sub = np.ix_(batch_idx, batch_idx)
        mask = np.ones((len(batch_idx), len(batch_idx)), dtype=bool)
        loss, grad = masked_pair_loss(z, self._structure[sub], mask)
        self.optimizer.zero_grad()
        self.net.backward(grad)
        self.optimizer.step()
        return loss
