"""Shared infrastructure for the deep unsupervised hashing baselines.

Each deep baseline trains an MLP hash head (the same topology UHSCM uses)
over the frozen pretrained backbone features, with its own self-supervision
signal.  :class:`DeepHasherBase` owns the network, the SGD loop, and batched
encoding; subclasses implement ``_prepare(features)`` (precompute their
guidance, e.g. a similarity matrix) and ``_step(batch_idx, batch)``
(one gradient step returning the loss value).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseHasher
from repro.core.losses import cosine_backward, pairwise_cosine
from repro.errors import ShapeError
from repro.nn.optim import SGD
from repro.nn.vgg import build_feature_hash_net


def masked_pair_loss(
    z: np.ndarray, target: np.ndarray, mask: np.ndarray
) -> tuple[float, np.ndarray]:
    """L2 loss between relaxed Hamming similarity and ``target`` on masked
    pairs; returns ``(loss, grad_wrt_z)``.

    This is the workhorse of SSDH / MLS3RDUH-style methods: ``target`` holds
    the constructed semantic structure and ``mask`` selects confident pairs.
    """
    h, z_hat, norms = pairwise_cosine(z)
    if target.shape != h.shape or mask.shape != h.shape:
        raise ShapeError(
            f"target/mask must be {h.shape}, got {target.shape} / {mask.shape}"
        )
    mask = mask.astype(np.float64)
    n_active = max(mask.sum(), 1.0)
    diff = (h - target) * mask
    loss = float((diff**2).sum() / n_active)
    grad_h = 2.0 * diff / n_active
    return loss, cosine_backward(z_hat, norms, grad_h)


class DeepHasherBase(BaseHasher):
    """Template for feature-head deep baselines.

    ``feature_extractor`` supplies the *network inputs* (the trainable
    backbone path); ``guidance_extractor`` supplies the features the method
    builds its self-supervision from (the paper's pretrained VGG19 fc7
    features).  When omitted, guidance falls back to the input features.
    """

    def __init__(
        self,
        *args,
        guidance_extractor=None,
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 0.006,
        momentum: float = 0.9,
        weight_decay: float = 1e-5,
        hidden_dims: tuple[int, ...] = (256,),
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        self.guidance_extractor = guidance_extractor
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.hidden_dims = hidden_dims
        self.net = None
        self.loss_history: list[float] = []

    def _guidance_features(self, features: np.ndarray) -> np.ndarray:
        """Features the method's self-supervision is computed from."""
        if self.guidance_extractor is None:
            return features
        return self.guidance_extractor(self._train_images)

    # -- subclass hooks ------------------------------------------------------

    def _prepare(self, features: np.ndarray) -> None:
        """Precompute guidance (similarity structure, neighbours, ...)."""

    def _step(self, batch_idx: np.ndarray, batch: np.ndarray) -> float:
        """One optimization step; must call the optimizer itself."""
        raise NotImplementedError

    # -- template ------------------------------------------------------------

    def _fit_features(self, features: np.ndarray) -> None:
        self.net = build_feature_hash_net(
            self.n_bits,
            features.shape[1],
            hidden_dims=self.hidden_dims,
            rng=self.rng,
        )
        self.optimizer = SGD(
            self.net.parameters(),
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        self._prepare(features)
        n = features.shape[0]
        batch_size = min(self.batch_size, n)
        self.loss_history = []
        self.net.train(True)
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                if idx.size < 2:
                    continue
                epoch_losses.append(self._step(idx, features[idx]))
            self.loss_history.append(float(np.mean(epoch_losses)))

    def _encode_features(self, features: np.ndarray) -> np.ndarray:
        self.net.train(False)
        out = self.net(features)
        self.net.train(True)
        return out
