"""Baseline registry: Table 1's method list in paper order.

The registry maps method names to factories taking
``(n_bits, feature_extractor, seed)`` so the experiment runners can sweep
all methods uniformly.  UHSCM itself lives in :mod:`repro.core`; the Table 1
runner adds it on top of these nine baselines.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.agh import AGH
from repro.baselines.base import BaseHasher, FeatureExtractor
from repro.baselines.bgan import BGAN
from repro.baselines.cib import CIB
from repro.baselines.gh import GreedyHash
from repro.baselines.itq import ITQ
from repro.baselines.lsh import LSH
from repro.baselines.mls3rduh import MLS3RDUH
from repro.baselines.sh import SpectralHashing
from repro.baselines.ssdh import SSDH
from repro.baselines.uth import UTH
from repro.errors import ConfigurationError

BaselineFactory = Callable[..., BaseHasher]

#: Table 1 row order: four shallow methods, then the deep ones.
BASELINES: dict[str, BaselineFactory] = {
    "LSH": LSH,
    "SH": SpectralHashing,
    "ITQ": ITQ,
    "AGH": AGH,
    "SSDH": SSDH,
    "GH": GreedyHash,
    "BGAN": BGAN,
    "MLS3RDUH": MLS3RDUH,
    "CIB": CIB,
}

#: The additional baseline evaluated only in some comparisons (§4.1 mentions
#: UTH among the deep baselines).
EXTRA_BASELINES: dict[str, BaselineFactory] = {
    "UTH": UTH,
}


def make_baseline(
    name: str,
    n_bits: int,
    feature_extractor: FeatureExtractor,
    seed: int = 0,
    guidance_extractor: FeatureExtractor | None = None,
    augment_fn=None,
    **kwargs,
) -> BaseHasher:
    """Instantiate a baseline by Table 1 name.

    ``feature_extractor`` feeds the method's inputs; ``guidance_extractor``
    (deep methods only) feeds its self-supervision signal — the §4.1 "fair
    comparison" splits these into trainable-backbone vs. pretrained-VGG
    features.  ``augment_fn`` reaches the view-contrastive methods (CIB).
    """
    from repro.baselines.cib import CIB as _CIB
    from repro.baselines.deep import DeepHasherBase as _Deep

    registry = {**BASELINES, **EXTRA_BASELINES}
    key = name.strip().upper()
    aliases = {"MLS3RDUH": "MLS3RDUH", "GREEDYHASH": "GH"}
    key = aliases.get(key, key)
    if key not in registry:
        raise ConfigurationError(
            f"unknown baseline {name!r}; options: {sorted(registry)}"
        )
    cls = registry[key]
    if issubclass(cls, _Deep):
        kwargs.setdefault("guidance_extractor", guidance_extractor)
    if issubclass(cls, _CIB):
        kwargs.setdefault("augment_fn", augment_fn)
    return cls(n_bits, feature_extractor, seed=seed, **kwargs)
