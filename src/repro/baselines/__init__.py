"""The nine unsupervised hashing baselines of Table 1 (plus UTH)."""

from repro.baselines.agh import AGH
from repro.baselines.base import BaseHasher
from repro.baselines.bgan import BGAN
from repro.baselines.cib import CIB
from repro.baselines.deep import DeepHasherBase, masked_pair_loss
from repro.baselines.gh import GreedyHash
from repro.baselines.itq import ITQ
from repro.baselines.lsh import LSH
from repro.baselines.mls3rduh import MLS3RDUH
from repro.baselines.registry import BASELINES, EXTRA_BASELINES, make_baseline
from repro.baselines.sh import SpectralHashing
from repro.baselines.ssdh import SSDH
from repro.baselines.uth import UTH

__all__ = [
    "AGH",
    "BASELINES",
    "BGAN",
    "BaseHasher",
    "CIB",
    "DeepHasherBase",
    "EXTRA_BASELINES",
    "GreedyHash",
    "ITQ",
    "LSH",
    "MLS3RDUH",
    "SSDH",
    "SpectralHashing",
    "UTH",
    "make_baseline",
    "masked_pair_loss",
]
