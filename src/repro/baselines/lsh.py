"""Locality-Sensitive Hashing (Gionis et al., VLDB 1999).

Random signed hyperplane projections — the data-independent floor every
learned method should beat (Table 1's weakest row).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseHasher, center_and_scale


class LSH(BaseHasher):
    """Random-hyperplane LSH over backbone features."""

    name = "LSH"

    def _fit_features(self, features: np.ndarray) -> None:
        _, self._mean = center_and_scale(features)
        self._projection = self.rng.normal(
            size=(features.shape[1], self.n_bits)
        )

    def _encode_features(self, features: np.ndarray) -> np.ndarray:
        centered, _ = center_and_scale(features, self._mean)
        return centered @ self._projection
