"""CIB — Unsupervised Hashing with Contrastive Information Bottleneck
(Qiu et al., IJCAI 2021).

CIB trains the hash head with a view-based contrastive loss (the paper's
Eq. 10): two augmented views of the same image are positives, everything
else negatives.  No constructed similarity matrix is involved — which is
precisely the weakness UHSCM's modified contrastive loss addresses
(§3.4).  Augmentation on backbone features is Gaussian perturbation, the
feature-space stand-in for image augmentation.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deep import DeepHasherBase
from repro.core.losses import cib_contrastive_loss, quantization_loss


class CIB(DeepHasherBase):
    """View-contrastive hashing (J_c of Eq. 10) + quantization.

    ``augment_fn(features, rng) -> features`` generates one view; when the
    semantic world is available the experiments pass
    ``world.augment_features`` (style re-jitter — the feature-space analogue
    of crop/color augmentation), otherwise isotropic Gaussian noise is used.
    """

    name = "CIB"

    #: Std of the fallback Gaussian feature augmentation.
    AUGMENT_STD = 0.1
    #: Contrastive temperature.
    GAMMA = 0.3
    #: Quantization weight.
    BETA = 0.001

    def __init__(self, *args, augment_fn=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.augment_fn = augment_fn

    def _augment(self, batch: np.ndarray) -> np.ndarray:
        if self.augment_fn is not None:
            return self.augment_fn(batch, self.rng)
        return batch + self.rng.normal(size=batch.shape) * self.AUGMENT_STD

    def _step(self, batch_idx: np.ndarray, batch: np.ndarray) -> float:
        view1 = self._augment(batch)
        view2 = self._augment(batch)
        z1 = self.net(view1)
        view1_cache = self.net.capture_cache()
        lq, grad_q = quantization_loss(z1)
        z2 = self.net(view2)
        jc, grad_c1, grad_c2 = cib_contrastive_loss(z1, z2, gamma=self.GAMMA)

        # Two backward passes share the network; view 1's activations are
        # captured before view 2's forward so no third forward is needed.
        self.optimizer.zero_grad()
        self.net.backward(grad_c2)
        self.net.restore_cache(view1_cache)
        self.net.backward(grad_c1 + self.BETA * grad_q)
        self.optimizer.step()
        return float(jc + self.BETA * lq)
