"""Binary Generative Adversarial Networks for image retrieval
(Song et al., AAAI 2018) — scaled adaptation.

BGAN couples a hashing encoder with a generator reconstructing the input
and an adversarial signal keeping codes informative.  The reproduction keeps
the three ingredients that matter for retrieval quality and cost profile:

1. a neighbourhood-structure loss (feature cosine similarity, as BGAN builds
   its guiding matrix from pretrained features),
2. a decoder reconstructing the backbone features from the relaxed codes
   (the "generative" path), and
3. an adversarial regularizer: a discriminator trained to tell relaxed codes
   from true ±1 samples, pushing the encoder toward binary outputs.

The extra decoder/discriminator updates make BGAN markedly slower than the
plain pairwise methods, reproducing its position in the paper's Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deep import DeepHasherBase, masked_pair_loss
from repro.nn.layers import Linear, ReLU, Sequential, Sigmoid
from repro.nn.losses import binary_cross_entropy_with_logits, mse_loss
from repro.nn.optim import SGD
from repro.utils.mathops import cosine_similarity_matrix


class BGAN(DeepHasherBase):
    """Encoder + generator + code discriminator."""

    name = "BGAN"

    #: Loss weights: reconstruction, adversarial.
    RECON_WEIGHT = 0.5
    ADV_WEIGHT = 0.1
    #: Fraction of highest-cosine pairs marked similar in the binary
    #: neighbourhood structure (BGAN constructs a binary similarity matrix
    #: from pretrained features rather than using raw cosine values).
    NEIGHBOUR_FRACTION = 0.03

    def _prepare(self, features: np.ndarray) -> None:
        cosine = cosine_similarity_matrix(self._guidance_features(features))
        n = cosine.shape[0]
        off = ~np.eye(n, dtype=bool)
        threshold = np.quantile(cosine[off], 1.0 - self.NEIGHBOUR_FRACTION)
        structure = np.where(cosine >= threshold, 1.0, -1.0)
        np.fill_diagonal(structure, 1.0)
        self._feature_sim = structure
        dim = features.shape[1]
        self._decoder = Sequential(
            Linear(self.n_bits, 128, init_scheme="kaiming", rng=self.rng),
            ReLU(),
            Linear(128, dim, rng=self.rng),
        )
        # Discriminator over codes (real = random ±1, fake = relaxed z).
        self._disc = Sequential(
            Linear(self.n_bits, 64, init_scheme="kaiming", rng=self.rng),
            ReLU(),
            Linear(64, 1, rng=self.rng),
        )
        self._decoder_opt = SGD(
            self._decoder.parameters(), learning_rate=self.learning_rate,
            momentum=self.momentum, weight_decay=self.weight_decay,
        )
        self._disc_opt = SGD(
            self._disc.parameters(), learning_rate=self.learning_rate,
            momentum=self.momentum, weight_decay=self.weight_decay,
        )

    def _discriminator_step(self, z: np.ndarray) -> None:
        """Train the discriminator on (real ±1 codes, fake relaxed codes)."""
        t = z.shape[0]
        real = self.rng.choice((-1.0, 1.0), size=(t, self.n_bits))
        inputs = np.concatenate([real, z])
        targets = np.concatenate([np.ones((t, 1)), np.zeros((t, 1))])
        logits = self._disc(inputs)
        _, grad = binary_cross_entropy_with_logits(logits, targets)
        self._disc_opt.zero_grad()
        self._disc.backward(grad)
        self._disc_opt.step()

    def _step(self, batch_idx: np.ndarray, batch: np.ndarray) -> float:
        z = self.net(batch)
        t = z.shape[0]
        sub = np.ix_(batch_idx, batch_idx)
        mask = np.ones((t, t), dtype=bool)
        sim_loss, grad_sim = masked_pair_loss(z, self._feature_sim[sub], mask)

        # Generative path: decode features back from the relaxed codes.
        recon = self._decoder(z)
        recon_loss, grad_recon_out = mse_loss(recon, batch)
        self._decoder_opt.zero_grad()
        grad_z_recon = self._decoder.backward(grad_recon_out)
        self._decoder_opt.step()

        # Adversarial path: encoder tries to make codes look binary.
        self._discriminator_step(z)
        logits = self._disc(z)
        adv_loss, grad_logits = binary_cross_entropy_with_logits(
            logits, np.ones((t, 1))
        )
        grad_z_adv = self._disc.backward(grad_logits)

        grad_z = (
            grad_sim
            + self.RECON_WEIGHT * grad_z_recon
            + self.ADV_WEIGHT * grad_z_adv
        )
        self.optimizer.zero_grad()
        self.net.backward(grad_z)
        self.optimizer.step()
        return float(
            sim_loss
            + self.RECON_WEIGHT * recon_loss
            + self.ADV_WEIGHT * adv_loss
        )
