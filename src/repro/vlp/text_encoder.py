"""Simulated VLP text encoder.

Maps a prompt string into the shared semantic space, reproducing the three
properties of CLIP's text tower that the paper's prompt engineering exploits:

1. **Grounding** — content words land near their concept's latent direction,
   up to a fixed per-word alignment offset (CLIP's text-image misalignment).
2. **Caption familiarity** — words frequent in caption pretraining data
   ("a", "photo", "of", "the", ...) are near-neutral context: they contribute
   only tiny fixed vectors.  Rare function words ("it", "contains") act like
   spurious pseudo-concepts and pull the embedding away from the target
   concept, which is why template P2 underperforms.
3. **Prompt-length sensitivity** — very short prompts are out-of-distribution
   for a caption-trained tower and incur extra distortion (the CLIP paper's
   own observation that "a photo of a {label}" beats the bare label), which
   is why template P1 underperforms.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.hashing import stable_seed
from repro.utils.mathops import l2_normalize
from repro.vlp.tokenizer import tokenize
from repro.vlp.world import SemanticWorld

#: Words so frequent in web-caption pretraining that the tower treats them as
#: near-neutral context.
CAPTION_STOPWORDS: frozenset[str] = frozenset(
    {"a", "an", "the", "of", "photo", "picture", "image", "this", "is",
     "there", "some", "in", "on"}
)

#: Norm of a caption-stopword's context vector.
_STOPWORD_NORM = 0.05

#: Prompts shorter than this many tokens incur out-of-distribution distortion.
_MIN_FAMILIAR_LENGTH = 4

#: Distortion added per missing token below the familiar length.
_SHORT_PROMPT_NOISE = 0.15


class TextEncoder:
    """Deterministic text tower over a :class:`SemanticWorld`."""

    def __init__(self, world: SemanticWorld) -> None:
        self.world = world

    def _token_vector(self, token: str) -> np.ndarray:
        if token in CAPTION_STOPWORDS:
            # Tiny fixed context vector; deterministic per word.
            gen = np.random.default_rng(
                stable_seed(self.world.config.seed, "stop", token)
            )
            vec = l2_normalize(gen.normal(size=self.world.config.latent_dim))
            return vec * _STOPWORD_NORM
        # Content (or unfamiliar) words behave as grounded pseudo-concepts.
        return self.world.concept_direction(token) + self.world.text_offset(token)

    def _short_prompt_distortion(self, text: str, n_tokens: int) -> np.ndarray:
        missing = max(0, _MIN_FAMILIAR_LENGTH - n_tokens)
        if missing == 0:
            return np.zeros(self.world.config.latent_dim)
        gen = np.random.default_rng(stable_seed(self.world.config.seed, "ood", text))
        direction = l2_normalize(gen.normal(size=self.world.config.latent_dim))
        return direction * (_SHORT_PROMPT_NOISE * missing)

    def encode(self, text: str) -> np.ndarray:
        """Unit-norm embedding of one prompt."""
        tokens = tokenize(text)
        if not tokens:
            raise ConfigurationError(f"prompt has no tokens: {text!r}")
        vectors = np.stack([self._token_vector(t) for t in tokens])
        content_mask = np.array([t not in CAPTION_STOPWORDS for t in tokens])
        if content_mask.any():
            # Content words carry the meaning; stopwords perturb slightly.
            pooled = vectors[content_mask].mean(axis=0)
            pooled = pooled + vectors[~content_mask].sum(axis=0)
        else:
            pooled = vectors.mean(axis=0)
        pooled = pooled + self._short_prompt_distortion(text, len(tokens))
        return l2_normalize(pooled)

    def encode_batch(self, texts: list[str] | tuple[str, ...]) -> np.ndarray:
        """Stack of unit-norm embeddings, shape (len(texts), D)."""
        if not texts:
            raise ConfigurationError("empty text batch")
        return np.stack([self.encode(t) for t in texts])
