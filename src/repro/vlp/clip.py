"""SimCLIP — the simulated vision-language pre-training model.

Implements the single contract the paper needs from CLIP (Eq. 1):

    s_ij = F_VLP(x_i, t_j; Θ) ∈ [0, 1]

an image-text similarity score that carries true-but-noisy concept signal.
Scores are cosine similarities in the shared space mapped affinely to [0, 1],
which matches the paper's statement that s_i ∈ [0, 1]^m.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.vlp.image_encoder import ImageEncoder
from repro.vlp.prompts import PromptTemplate, paper_template
from repro.vlp.text_encoder import TextEncoder
from repro.vlp.world import SemanticWorld, WorldConfig


class SimCLIP:
    """Frozen, deterministic CLIP stand-in over a :class:`SemanticWorld`.

    Parameters
    ----------
    world:
        The generative world shared with the datasets.  Passing the *same*
        world instance to datasets and SimCLIP is what simulates "CLIP was
        pretrained on imagery like this dataset".
    """

    def __init__(self, world: SemanticWorld | None = None) -> None:
        self.world = world or SemanticWorld(WorldConfig())
        self.image_encoder = ImageEncoder(self.world)
        self.text_encoder = TextEncoder(self.world)

    # -- encoders ----------------------------------------------------------

    def encode_images(self, images: np.ndarray) -> np.ndarray:
        """Unit-norm image embeddings (n, D)."""
        return self.image_encoder.encode(images)

    def encode_texts(self, texts: list[str] | tuple[str, ...]) -> np.ndarray:
        """Unit-norm text embeddings (m, D)."""
        return self.text_encoder.encode_batch(list(texts))

    def image_features(self, images: np.ndarray) -> np.ndarray:
        """Raw (unnormalized) image features for the UHSCM_IF ablation."""
        return self.image_encoder.features(images)

    # -- Eq. 1 -------------------------------------------------------------

    def similarity(self, images: np.ndarray, texts: list[str]) -> np.ndarray:
        """Image-text score matrix S with s_ij ∈ [0, 1] (paper Eq. 1)."""
        img = self.encode_images(images)
        txt = self.encode_texts(texts)
        cos = img @ txt.T
        return (np.clip(cos, -1.0, 1.0) + 1.0) / 2.0

    def score_concepts(
        self,
        images: np.ndarray,
        concepts: list[str] | tuple[str, ...],
        template: PromptTemplate | str | None = None,
    ) -> np.ndarray:
        """Scores of every image against every concept under a template.

        This is the full §3.3.1 prompt-engineering path: concepts are
        instantiated into texts via the template, then scored by Eq. 1.
        """
        if not concepts:
            raise ConfigurationError("empty concept list")
        template = resolve_template(template)
        return self.similarity(images, template.format_all(list(concepts)))


def resolve_template(template: PromptTemplate | str | None) -> PromptTemplate:
    if template is None:
        return paper_template("default")
    if isinstance(template, PromptTemplate):
        return template
    if "{concept}" in template:
        return PromptTemplate(template)
    return paper_template(template)
