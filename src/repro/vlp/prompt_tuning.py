"""CoOp-style continuous prompt tuning (extension feature).

The paper's related-work section highlights CoOp [Zhou et al. 2021], which
replaces the hand-written template with *learned context vectors*.  This
module implements the unsupervised analogue for UHSCM: learn a context
vector ``v`` such that prompts ``encode(concept) + v`` maximize the margin
between each training image's best and average concept scores — sharpening
the mined distributions without any labels.

This is an extension beyond the paper's experiments (its §2.1 motivates it);
``benchmarks/bench_ablation_prompt_tuning.py`` measures its effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.mathops import l2_normalize, softmax
from repro.vlp.clip import SimCLIP, resolve_template
from repro.vlp.prompts import PromptTemplate


@dataclass
class TunedPrompt:
    """A learned additive context vector for the text tower."""

    context: np.ndarray
    base_template: PromptTemplate
    history: list[float]

    def encode_concepts(
        self, clip: SimCLIP, concepts: list[str] | tuple[str, ...]
    ) -> np.ndarray:
        """Unit-norm tuned text embeddings for the given concepts."""
        base = clip.encode_texts(self.base_template.format_all(list(concepts)))
        return l2_normalize(base + self.context)


class PromptTuner:
    """Learns a shared context vector by coordinate-free gradient ascent.

    Objective (maximized): mean over images of
    ``max_j s_ij − mean_j s_ij`` where ``s`` are image-text cosines with the
    tuned prompts — i.e. make each image's dominant concept stand out.
    Optimized with finite-difference-free analytic gradients w.r.t. the
    context vector (the text embeddings are linear in the context before the
    final normalization, which we fold into the step size).
    """

    def __init__(
        self,
        clip: SimCLIP,
        template: PromptTemplate | str | None = None,
        learning_rate: float = 0.05,
        n_steps: int = 30,
        temperature: float = 20.0,
    ) -> None:
        if learning_rate <= 0 or n_steps <= 0 or temperature <= 0:
            raise ConfigurationError(
                "learning_rate, n_steps and temperature must be positive"
            )
        self.clip = clip
        self.template = resolve_template(template)
        self.learning_rate = learning_rate
        self.n_steps = n_steps
        self.temperature = temperature

    def _objective_and_grad(
        self,
        image_emb: np.ndarray,
        base_text: np.ndarray,
        context: np.ndarray,
    ) -> tuple[float, np.ndarray]:
        text = l2_normalize(base_text + context)
        scores = image_emb @ text.T  # (n, m) cosines
        # Soft-max margin: E_i[ sum_j p_ij s_ij - mean_j s_ij ],
        # p = softmax(T * s) row-wise (differentiable stand-in for max).
        p = softmax(scores, temperature=self.temperature, axis=1)
        value = float((p * scores).sum(axis=1).mean()
                      - scores.mean(axis=1).mean())
        m = scores.shape[1]
        # d value / d scores (treating p's dependence via the product rule).
        sharp = p * (1.0 + self.temperature
                     * (scores - (p * scores).sum(axis=1, keepdims=True)))
        grad_scores = (sharp - 1.0 / m) / scores.shape[0]
        # scores = image_emb @ normalize(base+ctx).T; fold normalization into
        # the projection of the gradient onto each text direction's tangent.
        grad_text = grad_scores.T @ image_emb  # (m, d)
        norms = np.linalg.norm(base_text + context, axis=1, keepdims=True)
        tangent = grad_text - (grad_text * text).sum(axis=1, keepdims=True) * text
        grad_context = (tangent / np.maximum(norms, 1e-12)).sum(axis=0)
        return value, grad_context

    def fit(
        self,
        images: np.ndarray,
        concepts: list[str] | tuple[str, ...],
    ) -> TunedPrompt:
        """Learn the context vector on unlabeled training images."""
        if not concepts:
            raise ConfigurationError("cannot tune prompts on an empty set")
        image_emb = self.clip.encode_images(images)
        base_text = self.clip.encode_texts(
            self.template.format_all(list(concepts))
        )
        context = np.zeros(self.clip.world.config.latent_dim)
        history: list[float] = []
        for _ in range(self.n_steps):
            value, grad = self._objective_and_grad(image_emb, base_text,
                                                   context)
            history.append(value)
            context = context + self.learning_rate * grad
        return TunedPrompt(context=context, base_template=self.template,
                           history=history)


def tuned_concept_scores(
    clip: SimCLIP,
    images: np.ndarray,
    concepts: list[str] | tuple[str, ...],
    tuned: TunedPrompt,
) -> np.ndarray:
    """Eq. 1 scores using the tuned prompts (s in [0, 1])."""
    image_emb = clip.encode_images(images)
    text = tuned.encode_concepts(clip, concepts)
    return (np.clip(image_emb @ text.T, -1.0, 1.0) + 1.0) / 2.0
