"""Word-level tokenizer for prompt texts.

Real CLIP uses byte-pair encoding; for the simulated model a lower-cased
word tokenizer is sufficient because the text encoder grounds whole words.
The tokenizer still mirrors the BPE interface (encode to ids, decode back,
special tokens) so code written against it would port to a real tokenizer.
"""

from __future__ import annotations

import re

from repro.errors import VocabularyError

_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens of ``text`` (punctuation is discarded)."""
    return _WORD_RE.findall(text.lower())


class Vocabulary:
    """Bidirectional word <-> id mapping with an <unk> token.

    Ids are assigned in first-seen order; id 0 is reserved for ``<unk>``.
    """

    UNK = "<unk>"

    def __init__(self, words: list[str] | tuple[str, ...] = ()) -> None:
        self._word_to_id: dict[str, int] = {self.UNK: 0}
        self._id_to_word: list[str] = [self.UNK]
        for word in words:
            self.add(word)

    def add(self, word: str) -> int:
        key = word.strip().lower()
        if not key:
            raise VocabularyError("cannot add empty word")
        if key not in self._word_to_id:
            self._word_to_id[key] = len(self._id_to_word)
            self._id_to_word.append(key)
        return self._word_to_id[key]

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __contains__(self, word: str) -> bool:
        return word.strip().lower() in self._word_to_id

    def id_of(self, word: str) -> int:
        return self._word_to_id.get(word.strip().lower(), 0)

    def word_of(self, token_id: int) -> str:
        if not 0 <= token_id < len(self._id_to_word):
            raise VocabularyError(f"token id {token_id} out of range")
        return self._id_to_word[token_id]

    def encode(self, text: str) -> list[int]:
        """Token ids of ``text`` (<unk>=0 for out-of-vocabulary words)."""
        return [self.id_of(w) for w in tokenize(text)]

    def decode(self, ids: list[int]) -> str:
        return " ".join(self.word_of(i) for i in ids)
