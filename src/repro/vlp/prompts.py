"""Prompt engineering: templates turning concepts into VLP input texts.

The paper's default template is ``"a photo of the {concept}"`` (§3.3.1); the
ablation 4.4.3 compares it against ``"the {concept}"`` (P1) and
``"it contains the {concept}"`` (P2), plus an ensemble that averages the
similarity matrices of all three (``UHSCM_avg``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: The three templates studied in ablation 4.4.3, keyed as in the paper.
PAPER_TEMPLATES: dict[str, str] = {
    "default": "a photo of the {concept}",
    "p1": "the {concept}",
    "p2": "it contains the {concept}",
}


@dataclass(frozen=True)
class PromptTemplate:
    """A text template with a single ``{concept}`` placeholder."""

    template: str

    def __post_init__(self) -> None:
        if "{concept}" not in self.template:
            raise ConfigurationError(
                f"template must contain '{{concept}}': {self.template!r}"
            )

    def format(self, concept: str) -> str:
        """Instantiate the template for one concept name."""
        concept = concept.strip()
        if not concept:
            raise ConfigurationError("empty concept name")
        return self.template.format(concept=concept)

    def format_all(self, concepts: list[str] | tuple[str, ...]) -> list[str]:
        """Instantiate the template for every concept (the texts t_i)."""
        return [self.format(c) for c in concepts]


def paper_template(key: str = "default") -> PromptTemplate:
    """Look up one of the paper's three templates by key."""
    normalized = key.strip().lower()
    if normalized not in PAPER_TEMPLATES:
        raise ConfigurationError(
            f"unknown template key {key!r}; options: {sorted(PAPER_TEMPLATES)}"
        )
    return PromptTemplate(PAPER_TEMPLATES[normalized])
