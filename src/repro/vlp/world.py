"""The generative *semantic world* grounding the whole simulation.

Everything the reproduction cannot download — CLIP's pretraining, ImageNet
features, the photographic datasets — is replaced by one latent model:

- every canonical concept ``c`` has a unit **latent direction** ``u_c`` in a
  shared semantic space R^D (hypernyms are means of their members, so broad
  concepts genuinely overlap many images);
- an **image** with concept weights ``w`` has latent
  ``z = normalize(Σ w_c u_c) + style-noise`` and pixels ``x = W_render z +
  pixel-noise`` for a fixed orthonormal render matrix;
- the **VLP image encoder** approximately inverts the render (it was
  "pretrained" on this world), and the **VLP text encoder** maps concept
  words near their latent directions with per-word alignment noise.

Because both CLIP-like encoders and the datasets are derived from the same
world, image–text similarity scores carry true-but-noisy concept signal —
exactly the contract UHSCM needs from the real CLIP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, VocabularyError
from repro.utils.hashing import stable_seed
from repro.utils.mathops import l2_normalize
from repro.utils.rng import as_generator, spawn
from repro.vlp.concepts import HYPERNYMS, canonical


@dataclass(frozen=True)
class WorldConfig:
    """Geometry and noise levels of the semantic world.

    Attributes
    ----------
    latent_dim:
        Dimension ``D`` of the shared semantic space.
    image_size / channels:
        Rendered image geometry (pixels = channels * image_size**2 must be
        >= latent_dim so the render can be injective).
    style_dim / style_noise:
        Per-image nuisance (lighting, pose, background texture) lives in a
        fixed ``style_dim``-dimensional subspace of the latent space with
        per-dimension std ``style_noise``.  Confining style to a subspace is
        what lets the two simulated backbones treat it differently.
    instance_noise:
        Scale of the per-image *semantic individuality* component — a random
        full-space direction unique to each image (two cat photos share
        "cat" but differ in everything else).  Unlike style it is NOT
        nuisance: both backbones keep it, and only aggregating over concepts
        (what UHSCM's mining does) averages it away.  This is what separates
        concept-mined similarity from raw feature cosine and from
        instance-discrimination contrastive learning.
    pixel_noise:
        Std of i.i.d. pixel noise added after rendering.
    text_noise:
        Std of the per-word text-alignment offset (CLIP's imperfect
        text-image alignment).
    encoder_noise:
        Magnitude of the image-encoder imperfection mixing matrix.
    clip_style_suppress:
        Fraction of the style component the CLIP image tower removes —
        contrastive text alignment teaches it to ignore nuisance.
    vgg_style_boost:
        Extra style amplification in the simulated VGG features — an
        ImageNet classifier transferred out of domain responds strongly to
        texture/nuisance, which is why its features guide hashing worse
        than mined concepts (the paper's core claim).
    """

    latent_dim: int = 48
    image_size: int = 16
    channels: int = 3
    style_dim: int = 16
    style_noise: float = 0.20
    instance_noise: float = 0.55
    pixel_noise: float = 0.03
    text_noise: float = 0.05
    encoder_noise: float = 0.05
    clip_style_suppress: float = 0.75
    vgg_style_boost: float = 1.3
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.latent_dim <= 0:
            raise ConfigurationError(f"latent_dim must be positive: {self.latent_dim}")
        pixels = self.channels * self.image_size**2
        if pixels < self.latent_dim:
            raise ConfigurationError(
                f"render needs pixels >= latent_dim: {pixels} < {self.latent_dim}"
            )
        for field_name in ("style_noise", "pixel_noise", "text_noise",
                           "encoder_noise"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")

    @property
    def n_pixels(self) -> int:
        return self.channels * self.image_size**2


class SemanticWorld:
    """Ground-truth generative model shared by datasets and SimCLIP.

    The world lazily assigns latent directions to canonical concepts on first
    use, derived deterministically from the concept name and the world seed,
    so any vocabulary (including user-defined concepts) can be grounded
    without pre-registration.
    """

    def __init__(self, config: WorldConfig | None = None) -> None:
        self.config = config or WorldConfig()
        master = as_generator(self.config.seed)
        (self._dir_rng, self._render_rng, self._enc_rng,
         self._text_rng) = spawn(master, 4)
        self._directions: dict[str, np.ndarray] = {}
        self._text_offsets: dict[str, np.ndarray] = {}
        # Fixed orthonormal render matrix (n_pixels x latent_dim).
        gaussian = self._render_rng.normal(
            size=(self.config.n_pixels, self.config.latent_dim)
        )
        q, _ = np.linalg.qr(gaussian)
        self._render = q[:, : self.config.latent_dim]
        # Image-encoder imperfection: a fixed near-identity mixing matrix.
        d = self.config.latent_dim
        noise = self._enc_rng.normal(size=(d, d)) * self.config.encoder_noise
        self._encoder_mix = np.eye(d) + noise
        # Fixed orthonormal style subspace (d x style_dim).
        style_gauss = self._enc_rng.normal(size=(d, self.config.style_dim))
        q_style, _ = np.linalg.qr(style_gauss)
        self._style_basis = q_style[:, : self.config.style_dim]

    # -- concept geometry ----------------------------------------------------

    #: Fraction of a member concept's direction shared with its hypernym core
    #: (so e.g. cat·animal ≈ 0.45 and cat·dog ≈ 0.2, mimicking real visual
    #: similarity structure).
    MEMBER_CORE_WEIGHT = 0.45

    def _raw_direction(self, tag: str, canonical_id: str) -> np.ndarray:
        """Deterministic random unit vector keyed by (tag, concept)."""
        gen = np.random.default_rng(stable_seed(self.config.seed, tag, canonical_id))
        return l2_normalize(gen.normal(size=self.config.latent_dim))

    def _member_hypernym(self, canonical_id: str) -> str | None:
        for hyper, members in HYPERNYMS.items():
            if canonical_id in {canonical(m) for m in members}:
                return hyper
        return None

    def concept_direction(self, name: str) -> np.ndarray:
        """Latent direction of a concept surface form (alias-aware).

        Hypernyms (``animal``, ``vehicle``, ...) get a *core* direction;
        member concepts blend that core with a unique component, so the
        hypernym genuinely overlaps every member's images.
        """
        cid = canonical(name)
        if cid in self._directions:
            return self._directions[cid]
        if cid in HYPERNYMS:
            direction = self._raw_direction("core", cid)
        else:
            hyper = self._member_hypernym(cid)
            unique = self._raw_direction("dir", cid)
            if hyper is None:
                direction = unique
            else:
                a = self.MEMBER_CORE_WEIGHT
                core = self._raw_direction("core", hyper)
                direction = l2_normalize(a * core + np.sqrt(1 - a**2) * unique)
        self._directions[cid] = direction
        return direction

    def concept_matrix(self, names: list[str] | tuple[str, ...]) -> np.ndarray:
        """Stack concept directions into an (m, D) matrix."""
        if not names:
            raise VocabularyError("empty concept list")
        return np.stack([self.concept_direction(n) for n in names])

    def text_offset(self, word: str) -> np.ndarray:
        """Fixed per-word text-alignment noise (the text encoder's error)."""
        key = word.strip().lower()
        if key not in self._text_offsets:
            gen = np.random.default_rng(stable_seed(self.config.seed, "text", key))
            self._text_offsets[key] = (
                gen.normal(size=self.config.latent_dim) * self.config.text_noise
            )
        return self._text_offsets[key]

    # -- image generation ------------------------------------------------------

    def image_latent(
        self,
        concept_names: list[str] | tuple[str, ...],
        weights: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
        instance_scale: float = 1.0,
    ) -> np.ndarray:
        """Latent vector of an image containing the given concepts.

        ``instance_scale`` multiplies the per-image individuality component
        (datasets with high intra-class diversity pass > 1).
        """
        gen = as_generator(rng)
        dirs = self.concept_matrix(concept_names)
        if weights is None:
            weights = np.ones(len(concept_names))
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(concept_names),):
            raise ConfigurationError(
                f"weights shape {weights.shape} != ({len(concept_names)},)"
            )
        semantic = l2_normalize(weights @ dirs)
        instance = l2_normalize(gen.normal(size=self.config.latent_dim))
        style = self._style_basis @ (
            gen.normal(size=self.config.style_dim) * self.config.style_noise
        )
        instance_amp = self.config.instance_noise * float(instance_scale)
        return semantic + instance_amp * instance + style

    def render(
        self,
        latents: np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Render latent vectors to NCHW images with pixel noise."""
        gen = as_generator(rng)
        latents = np.atleast_2d(np.asarray(latents, dtype=np.float64))
        if latents.shape[1] != self.config.latent_dim:
            raise ConfigurationError(
                f"latents must have {self.config.latent_dim} dims, "
                f"got {latents.shape[1]}"
            )
        flat = latents @ self._render.T
        flat = flat + gen.normal(size=flat.shape) * self.config.pixel_noise
        n = latents.shape[0]
        c, s = self.config.channels, self.config.image_size
        return flat.reshape(n, c, s, s)

    # -- trainable-backbone equivalent ------------------------------------------

    def backbone_features(self, images: np.ndarray) -> np.ndarray:
        """Inputs for *end-to-end trainable* hashing networks.

        The paper fine-tunes the whole VGG19, so a deep method can extract
        whatever the pixels contain; the equivalent here is the lossless
        render inversion (the render matrix is orthonormal, so these 48
        dimensions carry everything — semantic *and* style).  What separates
        methods is purely the quality of their training guidance.
        """
        return self._recover_latents(images)

    def augment_features(
        self,
        features: np.ndarray,
        rng: int | np.random.Generator | None = None,
        style_strength: float = 0.25,
        iso_strength: float = 0.12,
    ) -> np.ndarray:
        """Semantic-preserving augmentation in backbone-feature space.

        Image augmentations (crop / color jitter / flip) change nuisance but
        not content; the equivalent here is re-jittering the style-subspace
        component plus a little isotropic noise.  Used by the view-based
        contrastive methods (CIB, UHSCM_CL).
        """
        gen = as_generator(rng)
        features = np.asarray(features, dtype=np.float64)
        style_noise = self._style_basis @ (
            gen.normal(size=(self.config.style_dim, features.shape[0]))
            * (self.config.style_noise * style_strength)
        )
        iso = gen.normal(size=features.shape) * iso_strength
        return features + style_noise.T + iso

    # -- the "pretrained VGG19" backbone used by hashing methods ---------------

    #: Output dimension of the simulated VGG feature space.
    VGG_DIM = 96
    #: Strength of the texture/nuisance component mixed into VGG features.
    VGG_TEXTURE_SCALE = 1.5

    def vgg_features(self, images: np.ndarray) -> np.ndarray:
        """Simulated ImageNet-pretrained VGG19 fc7 features.

        The paper feeds these to every baseline and uses them to initialize
        the hashing backbone.  A generic ImageNet CNN carries *weaker,
        nonlinearly-entangled* semantic signal on out-of-domain data than a
        contrastively trained VLP image tower — that asymmetry is the very
        thing UHSCM exploits.  The simulation reproduces it with a fixed
        random mixing + ReLU layer whose inputs blend the recovered latent
        with a *texture* component (a saturated random projection of the raw
        pixels): texture responds to per-image nuisance detail the way an
        ImageNet CNN responds to local patterns, overlapping the class
        clusters while leaving them nonlinearly recoverable.
        """
        raw = self._recover_latents(images)
        style = raw @ self._style_basis @ self._style_basis.T
        boosted = raw + self.config.vgg_style_boost * style
        if not hasattr(self, "_vgg_mix"):
            gen = np.random.default_rng(stable_seed(self.config.seed, "vgg"))
            d = self.config.latent_dim
            self._vgg_mix = gen.normal(size=(self.VGG_DIM, d)) / np.sqrt(d)
            self._vgg_bias = gen.normal(size=self.VGG_DIM) * 0.1
        return np.maximum(boosted @ self._vgg_mix.T + self._vgg_bias, 0.0)

    # -- the "pretrained" inverse used by SimCLIP ------------------------------

    def _recover_latents(self, images: np.ndarray) -> np.ndarray:
        """Raw render inversion shared by both simulated backbones."""
        images = np.asarray(images, dtype=np.float64)
        c, s = self.config.channels, self.config.image_size
        if images.ndim != 4 or images.shape[1:] != (c, s, s):
            raise ConfigurationError(
                f"expected (n, {c}, {s}, {s}) images, got {images.shape}"
            )
        flat = images.reshape(images.shape[0], -1)
        return flat @ self._render

    def encode_pixels(self, images: np.ndarray) -> np.ndarray:
        """Recover latents the way the VLP image tower does.

        ``W_render`` has orthonormal columns so ``W^T x ≈ z``; contrastive
        pretraining taught the tower to *suppress the style subspace*
        (nuisance is useless for matching captions), and the fixed
        near-identity mixing matrix models its residual imperfection.
        """
        recovered = self._recover_latents(images)
        style = recovered @ self._style_basis @ self._style_basis.T
        cleaned = recovered - self.config.clip_style_suppress * style
        return cleaned @ self._encoder_mix.T
