"""Concept vocabularies used by the paper.

The paper's candidate concept set is the 81 NUS-WIDE category names (used for
*all three* datasets), with the 80 MS COCO categories and their 153-name union
as ablation vocabularies (Table 2 rows 1–2).  The lists below are the real
published category names.

``ALIASES`` maps surface variants to a canonical semantic identifier so the
simulated world can treat e.g. ``birds`` (NUS-WIDE), ``bird`` (COCO) and the
CIFAR10 class ``bird`` as the same underlying concept while keeping their
*text* forms distinct (the VLP text encoder adds per-word alignment noise).
"""

from __future__ import annotations

from repro.errors import VocabularyError

#: The 81 NUS-WIDE concepts (Chua et al. 2009) — the paper's default
#: candidate set for every dataset (§4.1).
NUS_WIDE_81: tuple[str, ...] = (
    "airport", "animal", "beach", "bear", "birds", "boats", "book", "bridge",
    "buildings", "cars", "castle", "cat", "cityscape", "clouds", "computer",
    "coral", "cow", "dancing", "dog", "earthquake", "elk", "fire", "fish",
    "flags", "flowers", "food", "fox", "frost", "garden", "glacier", "grass",
    "harbor", "horses", "house", "lake", "leaf", "map", "military", "moon",
    "mountain", "nighttime", "ocean", "person", "plane", "plants", "police",
    "protest", "railroad", "rainbow", "reflection", "road", "rocks",
    "running", "sand", "sign", "sky", "snow", "soccer", "sports", "statue",
    "street", "sun", "sunset", "surf", "swimmers", "tattoo", "temple",
    "tiger", "tower", "town", "toy", "train", "tree", "valley", "vehicle",
    "water", "waterfall", "wedding", "whales", "window", "zebra",
)

#: The 80 MS COCO object categories (Lin et al. 2014) — ablation vocabulary.
COCO_80: tuple[str, ...] = (
    "person", "bicycle", "car", "motorcycle", "airplane", "bus", "train",
    "truck", "boat", "traffic light", "fire hydrant", "stop sign",
    "parking meter", "bench", "bird", "cat", "dog", "horse", "sheep", "cow",
    "elephant", "bear", "zebra", "giraffe", "backpack", "umbrella",
    "handbag", "tie", "suitcase", "frisbee", "skis", "snowboard",
    "sports ball", "kite", "baseball bat", "baseball glove", "skateboard",
    "surfboard", "tennis racket", "bottle", "wine glass", "cup", "fork",
    "knife", "spoon", "bowl", "banana", "apple", "sandwich", "orange",
    "broccoli", "carrot", "hot dog", "pizza", "donut", "cake", "chair",
    "couch", "potted plant", "bed", "dining table", "toilet", "tv",
    "laptop", "mouse", "remote", "keyboard", "cell phone", "microwave",
    "oven", "toaster", "sink", "refrigerator", "book", "clock", "vase",
    "scissors", "teddy bear", "hair drier", "toothbrush",
)

#: CIFAR10 class names (single-label dataset).
CIFAR10_CLASSES: tuple[str, ...] = (
    "airplane", "automobile", "bird", "cat", "deer",
    "dog", "frog", "horse", "ship", "truck",
)

#: The 21 most frequent NUS-WIDE classes used for retrieval evaluation (§4.1).
NUS_WIDE_21: tuple[str, ...] = (
    "animal", "beach", "buildings", "cars", "clouds", "flowers", "grass",
    "lake", "mountain", "ocean", "person", "plants", "reflection", "road",
    "rocks", "sky", "snow", "street", "sunset", "tree", "water",
)

#: The 24 MIRFlickr-25K potential labels.
MIRFLICKR_24: tuple[str, ...] = (
    "animals", "baby", "bird", "car", "clouds", "dog", "female", "flower",
    "food", "indoor", "lake", "male", "night", "people", "plant life",
    "portrait", "river", "sea", "sky", "structures", "sunset", "transport",
    "tree", "water",
)

#: Surface form -> canonical semantic id.  Variants across vocabularies that
#: denote the same visual concept share a canonical id.
ALIASES: dict[str, str] = {
    "birds": "bird",
    "cars": "car",
    "automobile": "car",
    "horses": "horse",
    "plane": "airplane",
    "flowers": "flower",
    "plants": "plant",
    "plant life": "plant",
    "potted plant": "plant",
    "animals": "animal",
    "people": "person",
    "boats": "boat",
    "ship": "boat",
    "sea": "ocean",
    "whales": "whale",
    "swimmers": "swimmer",
    "buildings": "building",
    "structures": "building",
    "rocks": "rock",
    "flags": "flag",
    "nighttime": "night",
    "transport": "vehicle",
}

#: Hypernyms: broad concepts whose world direction is the mean of their
#: members' directions.  These are exactly the concepts that tend to win the
#: argmax for a large share of images, triggering the paper's f(c) > 0.5 n
#: discard rule.
HYPERNYMS: dict[str, tuple[str, ...]] = {
    "animal": ("cat", "dog", "bird", "horse", "cow", "bear", "zebra",
               "tiger", "fox", "elk", "whale", "fish", "deer", "frog",
               "sheep", "elephant", "giraffe"),
    "vehicle": ("car", "truck", "bus", "train", "airplane", "boat",
                "bicycle", "motorcycle"),
    "plant": ("tree", "flower", "grass", "leaf", "garden"),
    "sports": ("soccer", "running", "surf", "dancing", "skateboard",
               "snowboard", "frisbee", "kite"),
    "food": ("banana", "apple", "sandwich", "orange", "broccoli", "carrot",
             "pizza", "cake", "donut"),
    "water": ("ocean", "lake", "river", "waterfall", "harbor", "surf"),
}


def union_vocabulary(*vocabularies: tuple[str, ...]) -> tuple[str, ...]:
    """Order-preserving union of concept name tuples (paper's nus&coco set).

    The NUS-WIDE(81) ∪ COCO(80) union has 153 distinct names, matching the
    count reported in ablation 4.4.1 (8 names appear in both lists).
    """
    seen: set[str] = set()
    merged: list[str] = []
    for vocab in vocabularies:
        for name in vocab:
            if name not in seen:
                seen.add(name)
                merged.append(name)
    return tuple(merged)


def canonical(name: str) -> str:
    """Canonical semantic id for a concept surface form."""
    cleaned = name.strip().lower()
    if not cleaned:
        raise VocabularyError("empty concept name")
    return ALIASES.get(cleaned, cleaned)


def canonical_set(names: tuple[str, ...] | list[str]) -> frozenset[str]:
    """Canonical ids covered by a vocabulary."""
    return frozenset(canonical(n) for n in names)


#: Named registry used by config/CLI surfaces.
VOCABULARIES: dict[str, tuple[str, ...]] = {
    "nuswide81": NUS_WIDE_81,
    "coco80": COCO_80,
    "nus&coco": union_vocabulary(NUS_WIDE_81, COCO_80),
}


def get_vocabulary(name: str) -> tuple[str, ...]:
    """Look up a registered candidate-concept vocabulary by name."""
    key = name.strip().lower()
    if key not in VOCABULARIES:
        raise VocabularyError(
            f"unknown vocabulary {name!r}; registered: {sorted(VOCABULARIES)}"
        )
    return VOCABULARIES[key]
