"""SimCLIP: the simulated vision-language pre-training substrate.

Replaces the pre-trained CLIP checkpoint the paper downloads with a
deterministic model over a generative :class:`~repro.vlp.world.SemanticWorld`
(see DESIGN.md §2 for the substitution argument).
"""

from repro.vlp.clip import SimCLIP
from repro.vlp.concepts import (
    ALIASES,
    CIFAR10_CLASSES,
    COCO_80,
    HYPERNYMS,
    MIRFLICKR_24,
    NUS_WIDE_21,
    NUS_WIDE_81,
    VOCABULARIES,
    canonical,
    canonical_set,
    get_vocabulary,
    union_vocabulary,
)
from repro.vlp.image_encoder import ImageEncoder
from repro.vlp.prompt_tuning import PromptTuner, TunedPrompt, tuned_concept_scores
from repro.vlp.prompts import PAPER_TEMPLATES, PromptTemplate, paper_template
from repro.vlp.text_encoder import CAPTION_STOPWORDS, TextEncoder
from repro.vlp.tokenizer import Vocabulary, tokenize
from repro.vlp.world import SemanticWorld, WorldConfig

__all__ = [
    "ALIASES",
    "CAPTION_STOPWORDS",
    "CIFAR10_CLASSES",
    "COCO_80",
    "HYPERNYMS",
    "ImageEncoder",
    "MIRFLICKR_24",
    "NUS_WIDE_21",
    "NUS_WIDE_81",
    "PAPER_TEMPLATES",
    "PromptTemplate",
    "PromptTuner",
    "TunedPrompt",
    "SemanticWorld",
    "SimCLIP",
    "TextEncoder",
    "VOCABULARIES",
    "Vocabulary",
    "WorldConfig",
    "canonical",
    "canonical_set",
    "get_vocabulary",
    "paper_template",
    "tokenize",
    "tuned_concept_scores",
    "union_vocabulary",
]
