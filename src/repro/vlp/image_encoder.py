"""Simulated VLP image encoder.

A thin wrapper over :meth:`SemanticWorld.encode_pixels` (the world's
"pretrained" approximate render inverse) that L2-normalizes outputs, matching
CLIP's unit-sphere image embeddings.  Also exposes the *unnormalized* features
used by the ``UHSCM_IF`` ablation (raw CLIP image features as similarity
input) and by the simulated "pretrained VGG19" feature pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.utils.mathops import l2_normalize
from repro.vlp.world import SemanticWorld


class ImageEncoder:
    """Deterministic image tower over a :class:`SemanticWorld`."""

    def __init__(self, world: SemanticWorld) -> None:
        self.world = world

    @property
    def embedding_dim(self) -> int:
        return self.world.config.latent_dim

    def features(self, images: np.ndarray) -> np.ndarray:
        """Unnormalized semantic features, shape (n, D)."""
        return self.world.encode_pixels(images)

    def encode(self, images: np.ndarray) -> np.ndarray:
        """Unit-norm image embeddings, shape (n, D)."""
        return l2_normalize(self.features(images))
