"""Micro-batching queue for single-query encode requests.

Online serving receives queries one at a time, but the hashing network is
dramatically cheaper per row when it runs one forward over many rows (PR 2's
vectorized engine).  :class:`EncodeBatcher` bridges the two: ``submit()``
enqueues one vector and returns an :class:`EncodeTicket`; the queue flushes
into a single network forward when it reaches ``max_batch`` rows (size
trigger) or when the oldest pending request has waited ``max_delay_s``
seconds (deadline trigger, checked on every submit/poll).  Resolving a
ticket whose batch has not flushed yet forces the flush, so callers can
never deadlock on their own result.

The batcher follows the encoder's dtype policy: pending rows are stacked
directly in the network's training dtype (``float32`` engines never pay a
float64 round trip on the hot path).

Failure isolation (PR 7): a batch forward that raises must not take every
co-batched caller down with it, and above all must never leave a ticket
permanently unresolved.  When the batched forward fails, the flush re-runs
each pending row as its own one-row forward: rows that succeed resolve
normally, rows that keep failing resolve to a **typed error** (a
:class:`~repro.errors.ReproError`; foreign exceptions are wrapped in
:class:`~repro.errors.TransientError`) which :meth:`EncodeTicket.result`
raises to exactly that caller.  The forward consults the batcher's
:class:`~repro.utils.faults.FaultInjector` at the ``encode.forward`` point.

Concurrency (PR 10): the batcher is **thread-safe** — the async HTTP front
end drives it from concurrent request handlers, which is the load pattern
the size/deadline triggers were designed for.  The queue/ticket path is
lock-guarded: ``submit``/``poll``/``flush`` detach the pending batch
atomically, then run the network forward *outside* the lock so the next
batch accumulates while the current one encodes.  Tickets resolve through
a :class:`threading.Event`; ``result(wait=True)`` parks the caller until a
size trigger fires or the batch deadline expires (whichever thread wakes
first claims the deadline flush), so co-arriving callers genuinely
coalesce instead of each forcing a size-1 flush.  The default
``result()`` keeps the synchronous contract: force the flush, never wait.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from collections.abc import Callable

import numpy as np

from repro.errors import (
    ConfigurationError,
    ReproError,
    ShapeError,
    TransientError,
)
from repro.utils.faults import NULL_INJECTOR, FaultInjector


class EncodeTicket:
    """Handle to one submitted query; resolves when its batch flushes.

    A ticket resolves to either a code row or a typed error — never to
    nothing: ``result()`` forces the owning batcher to flush (or, with
    ``wait=True``, parks until a size/deadline trigger fires), so a caller
    can never hang on its own request.
    """

    __slots__ = ("_batcher", "_code", "_error", "_event")

    def __init__(self, batcher: "EncodeBatcher") -> None:
        self._batcher = batcher
        self._code: np.ndarray | None = None
        self._error: BaseException | None = None
        self._event = threading.Event()

    @property
    def ready(self) -> bool:
        """Whether the batch holding this request has already flushed."""
        return self._event.is_set()

    @property
    def failed(self) -> bool:
        """Whether this request resolved to an error."""
        return self._event.is_set() and self._error is not None

    def _resolve(
        self,
        code: np.ndarray | None = None,
        error: BaseException | None = None,
    ) -> None:
        self._code = code
        self._error = error
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the ticket resolves; True when it did in time."""
        return self._event.wait(timeout)

    def result(self, wait: bool = False) -> np.ndarray:
        """The ±1 code row, flushing the owning batcher if still pending.

        ``wait=False`` (the default, and the synchronous contract every
        pre-HTTP caller relies on) forces an immediate flush.
        ``wait=True`` is the concurrent-caller mode: park until the batch
        flushes on its size trigger or its deadline expires — the
        coalescing window the micro-batcher exists for.

        Raises the typed error this request resolved to, if its encode
        failed — only this caller sees it; co-batched requests that
        encoded fine resolve normally.
        """
        if not self._event.is_set():
            if wait:
                self._batcher._await(self)
            else:
                self._batcher.flush()
                # Our row may be riding a batch another thread detached
                # whose forward is still running; it resolves every
                # ticket, so this wait is bounded by that forward.
                self._event.wait()
        if self._error is not None:
            raise self._error
        assert self._code is not None
        return self._code


class EncodeBatcher:
    """Coalesce single-vector encode requests into batched forwards.

    Parameters
    ----------
    encoder:
        Anything with an ``encode(matrix) -> codes`` method (a
        :class:`~repro.core.hashing_network.HashingNetwork`, a fitted
        UHSCM, any baseline) or a bare callable with that signature.
    max_batch:
        Size trigger: flush as soon as this many requests are pending.
    max_delay_s:
        Deadline trigger: flush when the oldest pending request has waited
        this long (checked on every ``submit``/``poll``, and awaited by
        ``result(wait=True)`` callers).
    clock:
        Monotonic time source, injectable for deterministic tests.
    faults:
        :class:`~repro.utils.faults.FaultInjector` consulted at the
        ``encode.forward`` point before every network forward.
    """

    #: Fallback wait quantum for tickets parked behind an in-flight
    #: forward (or a stalled injected clock): re-check this often.
    WAIT_QUANTUM_S = 0.05

    def __init__(
        self,
        encoder,
        max_batch: int = 256,
        max_delay_s: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
        faults: FaultInjector = NULL_INJECTOR,
    ) -> None:
        if max_batch <= 0:
            raise ConfigurationError(f"max_batch must be positive: {max_batch}")
        if max_delay_s < 0:
            raise ConfigurationError(
                f"max_delay_s must be >= 0: {max_delay_s}"
            )
        self._encode = encoder.encode if hasattr(encoder, "encode") else encoder
        #: Stack pending rows straight into the engine's training dtype.
        self._dtype = np.dtype(getattr(encoder, "dtype", np.float64))
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self._clock = clock
        self.faults = faults
        self._lock = threading.Lock()
        self._pending: list[tuple[np.ndarray, EncodeTicket]] = []
        self._oldest: float | None = None
        self.requests = 0
        self.flushes = 0
        self.deadline_flushes = 0
        self.flush_failures = 0
        self.isolation_flushes = 0
        self.poisoned = 0
        self.flush_sizes: Counter[int] = Counter()

    # -- queue ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit(self, vector: np.ndarray) -> EncodeTicket:
        """Enqueue one query vector; may trigger a size or deadline flush."""
        vector = np.asarray(vector, dtype=self._dtype)
        if vector.ndim == 0:
            raise ShapeError("submit takes one query item, got a scalar")
        self.poll()  # deadline may have passed since the last activity
        with self._lock:
            if self._pending and vector.shape != self._pending[0][0].shape:
                # Reject shape mismatches at submit time: one bad request
                # must not poison the whole batch for every other pending
                # caller.
                raise ShapeError(
                    f"query item shape {vector.shape} does not match the "
                    f"pending batch's {self._pending[0][0].shape}"
                )
            ticket = EncodeTicket(self)
            if not self._pending:
                self._oldest = self._clock()
            self._pending.append((vector, ticket))
            self.requests += 1
            size_due = len(self._pending) >= self.max_batch
        if size_due:
            self.flush()
        return ticket

    def _deadline_due_locked(self) -> bool:
        return (bool(self._pending) and self._oldest is not None
                and self._clock() - self._oldest >= self.max_delay_s)

    def _detach_locked(self) -> list[tuple[np.ndarray, EncodeTicket]]:
        pending, self._pending = self._pending, []
        self._oldest = None
        return pending

    def poll(self) -> bool:
        """Flush if the oldest pending request has exceeded the deadline.

        The deadline claim and the batch detach are one atomic step, so
        concurrent pollers (parked ``result(wait=True)`` callers waking
        together) count exactly one deadline flush per expired batch.
        """
        with self._lock:
            if not self._deadline_due_locked():
                return False
            self.deadline_flushes += 1
            pending = self._detach_locked()
        self._run_flush(pending)
        return True

    def _await(self, ticket: EncodeTicket) -> None:
        """Park a ``result(wait=True)`` caller until its ticket resolves.

        While the ticket still sits in the pending queue the caller
        sleeps exactly until the batch deadline, then claims the deadline
        flush itself (via :meth:`poll`) — no background flusher thread
        exists or is needed.  A ticket already detached into an in-flight
        forward re-checks on a short quantum until that forward resolves
        it (every flush resolves every ticket, success or typed error).
        """
        while not ticket._event.is_set():
            with self._lock:
                if self._oldest is None:
                    remaining = None  # detached: an in-flight forward owns it
                else:
                    remaining = self.max_delay_s - (self._clock() - self._oldest)
            if remaining is None:
                ticket._event.wait(self.WAIT_QUANTUM_S)
            elif remaining <= 0:
                self.poll()
            else:
                # A size-trigger flush resolves the event early; otherwise
                # wake at the deadline (quantum-capped so an injected
                # clock that never advances cannot park us forever).
                ticket._event.wait(min(remaining, self.WAIT_QUANTUM_S))

    def _forward(self, matrix: np.ndarray) -> np.ndarray:
        """One guarded network forward (the ``encode.forward`` fault point)."""
        self.faults.check("encode.forward")
        return self._encode(matrix)

    @staticmethod
    def _typed(exc: BaseException) -> BaseException:
        """The error a poisoned ticket resolves to: always a ReproError."""
        if isinstance(exc, ReproError):
            return exc
        typed = TransientError(f"encode failed: {exc!r}")
        typed.__cause__ = exc
        return typed

    def flush(self) -> int:
        """Encode every pending request in one forward; returns batch size.

        A failing batched forward falls back to one-row forwards so a
        poisoned request fails alone: healthy co-batched rows resolve
        normally, each failing row's ticket resolves to a typed error that
        ``result()`` raises to its caller.  Every pending ticket resolves
        one way or the other — a flush can never strand a request.
        """
        with self._lock:
            if not self._pending:
                return 0
            pending = self._detach_locked()
        return self._run_flush(pending)

    def _run_flush(self, pending: list[tuple[np.ndarray, EncodeTicket]]) -> int:
        """Forward one detached batch and resolve its tickets.

        Runs outside the queue lock: concurrent submitters keep
        accumulating the next batch while this one encodes.
        """
        batch = np.stack([vector for vector, _ in pending])
        failed = False
        try:
            codes = self._forward(batch)
            if np.asarray(codes).shape[0] != len(pending):
                raise ShapeError(
                    f"encoder returned {np.asarray(codes).shape[0]} rows "
                    f"for a {len(pending)}-row batch"
                )
        except Exception as exc:
            failed = True
            poisoned = 0
            if len(pending) == 1:
                pending[0][1]._resolve(error=self._typed(exc))
                poisoned = 1
            else:
                # Isolate the poison: re-run each row on its own so one bad
                # request cannot fail the whole cohort.
                for vector, ticket in pending:
                    try:
                        ticket._resolve(code=self._forward(vector[None])[0])
                    except Exception as row_exc:
                        ticket._resolve(error=self._typed(row_exc))
                        poisoned += 1
        else:
            for row, (_, ticket) in enumerate(pending):
                ticket._resolve(code=codes[row])
        with self._lock:
            if failed:
                self.flush_failures += 1
                self.poisoned += poisoned
                if len(pending) > 1:
                    self.isolation_flushes += 1
            self.flushes += 1
            self.flush_sizes[len(pending)] += 1
        return len(pending)

    # -- reporting --------------------------------------------------------------

    def stats(self) -> dict:
        """Counters for ``HashingService.stats()`` / the serve CLI."""
        with self._lock:
            return {
                "requests": self.requests,
                "flushes": self.flushes,
                "deadline_flushes": self.deadline_flushes,
                "flush_failures": self.flush_failures,
                "isolation_flushes": self.isolation_flushes,
                "poisoned": self.poisoned,
                "pending": len(self._pending),
                "max_batch": self.max_batch,
                "max_delay_s": self.max_delay_s,
                "flush_sizes": {
                    int(size): int(count)
                    for size, count in sorted(self.flush_sizes.items())
                },
            }
