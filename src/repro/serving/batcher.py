"""Micro-batching queue for single-query encode requests.

Online serving receives queries one at a time, but the hashing network is
dramatically cheaper per row when it runs one forward over many rows (PR 2's
vectorized engine).  :class:`EncodeBatcher` bridges the two: ``submit()``
enqueues one vector and returns an :class:`EncodeTicket`; the queue flushes
into a single network forward when it reaches ``max_batch`` rows (size
trigger) or when the oldest pending request has waited ``max_delay_s``
seconds (deadline trigger, checked on every submit/poll).  Resolving a
ticket whose batch has not flushed yet forces the flush, so callers can
never deadlock on their own result.

The batcher follows the encoder's dtype policy: pending rows are stacked
directly in the network's training dtype (``float32`` engines never pay a
float64 round trip on the hot path).

Everything is synchronous and single-threaded — deliberate for this CPU
reproduction: the batcher is the coalescing *policy*, and an async front
end would own the event loop around it.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError, ShapeError


class EncodeTicket:
    """Handle to one submitted query; resolves when its batch flushes."""

    __slots__ = ("_batcher", "_code")

    def __init__(self, batcher: "EncodeBatcher") -> None:
        self._batcher = batcher
        self._code: np.ndarray | None = None

    @property
    def ready(self) -> bool:
        """Whether the batch holding this request has already flushed."""
        return self._code is not None

    def result(self) -> np.ndarray:
        """The ±1 code row, flushing the owning batcher if still pending."""
        if self._code is None:
            self._batcher.flush()
        assert self._code is not None
        return self._code


class EncodeBatcher:
    """Coalesce single-vector encode requests into batched forwards.

    Parameters
    ----------
    encoder:
        Anything with an ``encode(matrix) -> codes`` method (a
        :class:`~repro.core.hashing_network.HashingNetwork`, a fitted
        UHSCM, any baseline) or a bare callable with that signature.
    max_batch:
        Size trigger: flush as soon as this many requests are pending.
    max_delay_s:
        Deadline trigger: flush when the oldest pending request has waited
        this long (checked on every ``submit``/``poll``).
    clock:
        Monotonic time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        encoder,
        max_batch: int = 256,
        max_delay_s: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch <= 0:
            raise ConfigurationError(f"max_batch must be positive: {max_batch}")
        if max_delay_s < 0:
            raise ConfigurationError(
                f"max_delay_s must be >= 0: {max_delay_s}"
            )
        self._encode = encoder.encode if hasattr(encoder, "encode") else encoder
        #: Stack pending rows straight into the engine's training dtype.
        self._dtype = np.dtype(getattr(encoder, "dtype", np.float64))
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self._clock = clock
        self._pending: list[tuple[np.ndarray, EncodeTicket]] = []
        self._oldest: float | None = None
        self.requests = 0
        self.flushes = 0
        self.deadline_flushes = 0
        self.flush_sizes: Counter[int] = Counter()

    # -- queue ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, vector: np.ndarray) -> EncodeTicket:
        """Enqueue one query vector; may trigger a size or deadline flush."""
        vector = np.asarray(vector, dtype=self._dtype)
        if vector.ndim == 0:
            raise ShapeError("submit takes one query item, got a scalar")
        if self._pending and vector.shape != self._pending[0][0].shape:
            # Reject shape mismatches at submit time: one bad request must
            # not poison the whole batch for every other pending caller.
            raise ShapeError(
                f"query item shape {vector.shape} does not match the "
                f"pending batch's {self._pending[0][0].shape}"
            )
        self.poll()  # deadline may have passed since the last activity
        ticket = EncodeTicket(self)
        if not self._pending:
            self._oldest = self._clock()
        self._pending.append((vector, ticket))
        self.requests += 1
        if len(self._pending) >= self.max_batch:
            self.flush()
        return ticket

    def poll(self) -> bool:
        """Flush if the oldest pending request has exceeded the deadline."""
        if (self._pending and self._oldest is not None
                and self._clock() - self._oldest >= self.max_delay_s):
            self.deadline_flushes += 1
            self.flush()
            return True
        return False

    def flush(self) -> int:
        """Encode every pending request in one forward; returns batch size."""
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        self._oldest = None
        batch = np.stack([vector for vector, _ in pending])
        codes = self._encode(batch)
        for row, (_, ticket) in enumerate(pending):
            ticket._code = codes[row]
        self.flushes += 1
        self.flush_sizes[len(pending)] += 1
        return len(pending)

    # -- reporting --------------------------------------------------------------

    def stats(self) -> dict:
        """Counters for ``HashingService.stats()`` / the serve CLI."""
        return {
            "requests": self.requests,
            "flushes": self.flushes,
            "deadline_flushes": self.deadline_flushes,
            "pending": len(self._pending),
            "max_batch": self.max_batch,
            "max_delay_s": self.max_delay_s,
            "flush_sizes": {
                int(size): int(count)
                for size, count in sorted(self.flush_sizes.items())
            },
        }
