"""Online serving layer: sharded indexes, micro-batched encoding, snapshots.

This package turns the reproduction's pieces into a deployable service:

- :class:`~repro.retrieval.sharded.ShardedIndex` — the ``"sharded"``
  retrieval backend (it lives in :mod:`repro.retrieval` so the backend
  registry never imports upward; re-exported here): rows hash-partitioned
  across N child backends, merged top-k bit-identical to a single index.
- :class:`~repro.serving.batcher.EncodeBatcher` — size/deadline
  micro-batching of single-query encodes into one network forward.
- :class:`~repro.serving.service.HashingService` — the facade: load a
  model snapshot by fingerprint from the
  :class:`~repro.pipeline.ArtifactStore` (or a persistence archive), build
  or warm-load its index from a store snapshot, and serve
  ``query``/``add``/``remove``/``stats``.

- :mod:`~repro.serving.http` — the asyncio HTTP/JSON front end
  (:class:`~repro.serving.http.ServingApp` +
  :class:`~repro.serving.http.HttpServer`): concurrent connections feed
  the shared batcher so independent clients coalesce into micro-batched
  encodes.

CLI entry points: ``python -m repro.cli serve`` (one-shot or REPL),
``python -m repro.cli serve-http`` (network daemon), and
``python -m repro.cli bench-serve``; the gated scale smokes are
``benchmarks/bench_serving_scale.py`` and
``benchmarks/bench_http_scale.py``.
"""

from repro.retrieval.sharded import ShardedIndex
from repro.serving.batcher import EncodeBatcher, EncodeTicket
from repro.serving.http import HttpServer, ServerThread, ServingApp
from repro.serving.service import (
    INDEX_STAGE,
    MODEL_STAGE,
    HashingService,
    load_model,
    publish_model,
)

__all__ = [
    "EncodeBatcher",
    "EncodeTicket",
    "HashingService",
    "HttpServer",
    "INDEX_STAGE",
    "MODEL_STAGE",
    "ServerThread",
    "ServingApp",
    "ShardedIndex",
    "load_model",
    "publish_model",
]
