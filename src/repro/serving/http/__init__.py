"""Network-grade HTTP/JSON front end over :class:`HashingService`.

Three layers, stdlib-only:

- :mod:`~repro.serving.http.schemas` — the validation boundary: typed
  request parsing and the exception-class → HTTP-status map.
- :mod:`~repro.serving.http.app` — :class:`ServingApp`: endpoint
  handlers, bounded admission, per-endpoint latency histograms, and
  zero-drop hot swap between service generations.
- :mod:`~repro.serving.http.server` — :class:`HttpServer`: the asyncio
  socket layer whose concurrent connections feed one shared
  :class:`~repro.serving.batcher.EncodeBatcher`, plus
  :class:`ServerThread` for embedding a running server in tests, the
  bench harness, and the CLI.

CLI entry point: ``python -m repro.cli serve-http``; the gated scale
smoke is ``benchmarks/bench_http_scale.py``.
"""

from repro.serving.http.app import ServingApp
from repro.serving.http.server import (
    HttpServer,
    ServerThread,
    run_server_in_thread,
)

__all__ = [
    "HttpServer",
    "ServerThread",
    "ServingApp",
    "run_server_in_thread",
]
