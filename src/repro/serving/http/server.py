"""Asyncio HTTP/1.1 socket server for the serving front end.

Pure stdlib: one :func:`asyncio.start_server` event loop accepts
connections and parses requests; handler work (validation, encode,
search) is dispatched to a dedicated thread pool via
``run_in_executor`` so that

- N concurrent connections put N concurrent callers *inside*
  :meth:`~repro.serving.service.HashingService.query` at once — which is
  exactly what lets the :class:`~repro.serving.batcher.EncodeBatcher`
  coalesce their rows into shared encode flushes (the whole point of
  this PR), and
- a slow or poisoned request can never stall the accept loop.

The protocol support is deliberately minimal — HTTP/1.1 with
``Content-Length`` bodies and keep-alive; no chunked encoding, no TLS —
because the clients are the bundled CLI, the benchmark harness, and
sidecar load balancers, not browsers.

Lifecycle (``shutdown()`` / SIGTERM path):

1. the app begins draining — new work is refused with
   :class:`~repro.errors.ShutdownError` (503) so load balancers fail
   over immediately;
2. the listening socket closes — no new connections;
3. in-flight handler calls run to completion on the worker pool
   (executor join happens off-loop, so responses still flow);
4. idle keep-alive connections are closed, and the app retires the
   service (which flushes the batcher and joins the shard pool, leaving
   balanced worker/shm counters).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ConfigurationError
from repro.serving.http.app import ServingApp

#: Upper bound on request head + body; a hostile client must not be able
#: to balloon server memory before validation even runs.
MAX_HEAD_BYTES = 16 * 1024
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _response_bytes(status: int, body: bytes, *, close: bool) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


class HttpServer:
    """The asyncio front end over a :class:`ServingApp`.

    Parameters
    ----------
    app:
        The endpoint handlers (admission, metrics, swap live there).
    host / port:
        Bind address; ``port=0`` picks a free port (exposed as
        :attr:`port` after :meth:`start` — tests and the bench rely on
        this).
    concurrency:
        Worker threads for handler dispatch.  This is the server's
        parallelism ceiling; the app's ``max_inflight`` should be at
        least this large or the extra threads only ever shed.
    max_body_bytes:
        Hard cap on ``Content-Length`` (413 beyond it).
    """

    def __init__(
        self,
        app: ServingApp,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        concurrency: int = 8,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        if concurrency <= 0:
            raise ConfigurationError(
                f"concurrency must be positive: {concurrency}"
            )
        if max_body_bytes <= 0:
            raise ConfigurationError(
                f"max_body_bytes must be positive: {max_body_bytes}"
            )
        self.app = app
        self.host = host
        self.port = port
        self.concurrency = concurrency
        self.max_body_bytes = max_body_bytes
        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._stopped = False
        #: Connections currently between request-read and response-write
        #: (all touched from the loop thread only); shutdown waits for
        #: this to hit zero before closing sockets so no response is cut.
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise ConfigurationError("server already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.concurrency,
            thread_name_prefix="http-worker",
        )
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ConfigurationError("server not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish in-flight, then close.

        Idempotent; safe to call from a signal handler's task.
        """
        if self._stopped:
            return
        self._stopped = True
        self.app.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._executor is not None:
            # Joining the pool blocks, so hop off the event loop thread —
            # in-flight handlers still need the loop alive to write their
            # responses.
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self._executor.shutdown(wait=True)
            )
        # Handlers have returned, but their responses may still be queued
        # on connection tasks; wait for every mid-request connection to
        # finish writing before cutting sockets.
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=30)
        except asyncio.TimeoutError:
            pass
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        self.app.close()

    # -- connection handling ----------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive = request
                if isinstance(body, int):
                    # Oversized or malformed framing: body carries the
                    # status; answer and hang up.
                    payload = (
                        b'{"error": {"type": "ValidationError", '
                        b'"message": "request too large or malformed"}}'
                    )
                    writer.write(_response_bytes(body, payload, close=True))
                    await writer.drain()
                    break
                self._active += 1
                self._idle.clear()
                try:
                    if self._stopped:
                        # The worker pool is (or is about to be) joined;
                        # answer the drain refusal inline.
                        status, payload = 503, (
                            b'{"error": {"type": "ShutdownError", '
                            b'"message": "server is draining for '
                            b'shutdown"}}'
                        )
                    else:
                        loop = asyncio.get_running_loop()
                        status, payload = await loop.run_in_executor(
                            self._executor, self.app.handle_raw,
                            method, path, body,
                        )
                    close = (not keep_alive or self._stopped
                             or self.app.draining)
                    writer.write(
                        _response_bytes(status, payload, close=close)
                    )
                    await writer.drain()
                finally:
                    self._active -= 1
                    if self._active == 0:
                        self._idle.set()
                if close:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            RuntimeError,  # executor shut down mid-dispatch
        ):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` on clean EOF, an ``int`` body for
        protocol-level failures (the status to answer with)."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between keep-alive requests
            return ("GET", "/", 400, False)
        except asyncio.LimitOverrunError:
            return ("GET", "/", 431, False)
        if len(head) > MAX_HEAD_BYTES:
            return ("GET", "/", 431, False)

        try:
            lines = head.decode("ascii").split("\r\n")
            method, path, version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            return ("GET", "/", 400, False)
        path = path.split("?", 1)[0]

        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            return (method, path, 400, False)
        if length < 0:
            return (method, path, 400, False)
        if length > self.max_body_bytes:
            return (method, path, 413, False)
        body = await reader.readexactly(length) if length else b""

        keep_alive = version.strip().upper() != "HTTP/1.0"
        if headers.get("connection", "").lower() == "close":
            keep_alive = False
        return (method, path, body, keep_alive)


class ServerThread:
    """A running :class:`HttpServer` on a background event-loop thread.

    Tests, the bench harness, and the CLI's foreground mode all want
    "start it, talk to it over a socket, stop it" without owning an
    event loop — this wrapper gives them that:

    >>> handle = ServerThread(app)          # binds a free port
    >>> handle.start()
    >>> handle.port                         # actual bound port
    >>> ...
    >>> handle.stop()                       # graceful drain, joins thread
    """

    def __init__(self, app: ServingApp, **server_kwargs: object) -> None:
        self.server = HttpServer(app, **server_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop_event = asyncio.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout_s: float = 10.0) -> "ServerThread":
        if self._thread is not None:
            raise ConfigurationError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="http-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ConfigurationError("server failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_until_complete(self._main())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        serving = asyncio.ensure_future(self.server.serve_forever())
        await self._stop_event.wait()
        # shutdown() closes the listener, which unblocks serve_forever.
        await self.server.shutdown()
        serving.cancel()
        try:
            await serving
        except asyncio.CancelledError:
            pass

    def stop(self, timeout_s: float = 30.0) -> None:
        """Graceful shutdown: drain in-flight work, then join the thread."""
        thread, loop = self._thread, self._loop
        if thread is None or loop is None:
            return
        if thread.is_alive():
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already finished on its own
        thread.join(timeout_s)


def run_server_in_thread(
    app: ServingApp, **server_kwargs: object
) -> ServerThread:
    """Start a server for ``app`` on a daemon thread; returns the handle."""
    return ServerThread(app, **server_kwargs).start()
