"""Request/response schemas for the HTTP serving front end.

Every endpoint speaks JSON.  This module is the validation boundary: raw
payload dicts parse into typed request objects (strict — unknown fields,
wrong types, out-of-bound sizes all raise
:class:`~repro.errors.ValidationError` with a field-named message), and
every library exception maps to one HTTP status through
:func:`status_for`, so a client can route on the *class* of failure the
same way in-process callers route on the exception type:

==============================  ======
error                           status
==============================  ======
``ValidationError`` (+ shape/
config/vocabulary errors)       400
``NotFittedError``              409
``OverloadedError``             429
``ShutdownError``               503
``ShardUnavailableError``       503
``DeadlineExceededError``       504
anything else                   500
==============================  ======

The wire formats:

- ``POST /query``  ``{"vector": [..]}`` or ``{"vectors": [[..], ..]}``,
  optional ``top_k`` (default 10) and ``deadline_s``.
  -> ``{"ids": [[..]], "distances": [[..]], "degraded": bool}``
- ``POST /add``    ``{"vectors": [[..], ..]}``, optional ``ids``.
  -> ``{"ids": [..]}``
- ``POST /remove`` ``{"ids": [..]}``  ->  ``{"removed": n}``
- ``POST /swap``   ``{"model": "<fingerprint-or-path>"}``
- ``GET /stats`` / ``GET /health``  ->  the service dicts, JSON-sanitized.
- errors           ``{"error": {"type": "<ExceptionName>", "message": ..}}``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    NotFittedError,
    OverloadedError,
    ReproError,
    ShapeError,
    ShardUnavailableError,
    ShutdownError,
    ValidationError,
    VocabularyError,
)

#: Hard per-request bounds: a single malformed or hostile payload must not
#: be able to queue unbounded work behind the admission controller.
MAX_ROWS = 4096
MAX_DIM = 65536
MAX_TOP_K = 4096
MAX_IDS = 65536

#: First matching class decides the HTTP status (order matters: every
#: entry is a ReproError subclass, checked before the catch-alls).
_STATUS_TABLE: tuple[tuple[type[BaseException], int], ...] = (
    (ValidationError, 400),
    (ShapeError, 400),
    (VocabularyError, 400),
    (ConfigurationError, 400),
    (NotFittedError, 409),
    (OverloadedError, 429),
    (ShutdownError, 503),
    (ShardUnavailableError, 503),
    (DeadlineExceededError, 504),
    (ReproError, 500),
)


def status_for(exc: BaseException) -> int:
    """HTTP status code for a handler exception (500 for foreign ones)."""
    for klass, status in _STATUS_TABLE:
        if isinstance(exc, klass):
            return status
    return 500


def error_body(exc: BaseException) -> dict:
    """The JSON error envelope: the typed error's class name + message."""
    return {"error": {"type": type(exc).__name__, "message": str(exc)}}


# -- payload primitives --------------------------------------------------------


def _require_object(payload: object, endpoint: str) -> dict:
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ValidationError(
            f"{endpoint}: request body must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def _reject_unknown(payload: dict, allowed: frozenset[str], endpoint: str) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ValidationError(
            f"{endpoint}: unknown field(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )


def _as_matrix(value: object, field: str, *, single: bool = False) -> np.ndarray:
    """A JSON array as a float64 batch whose first axis indexes rows.

    Accepts feature rows (1-D single / 2-D batch) and image tensors
    (3-D single / 4-D batch — the encoder decides what a row means);
    with ``single=True`` the payload is one row and gets the batch axis
    prepended.
    """
    try:
        matrix = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError):
        raise ValidationError(
            f"{field} must be an array of finite numbers"
        ) from None
    if single:
        if matrix.ndim not in (1, 3):
            raise ValidationError(
                f"{field} must be one row (a flat vector or one image "
                f"tensor); use the batch field for multiple rows"
            )
        matrix = matrix[None, ...]
    elif matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.ndim not in (2, 4):
        raise ValidationError(
            f"{field} must be a batch of vectors or image tensors, "
            f"got {matrix.ndim} dimensions"
        )
    if matrix.size == 0:
        raise ValidationError(f"{field} must not be empty")
    if matrix.shape[0] > MAX_ROWS:
        raise ValidationError(
            f"{field} has {matrix.shape[0]} rows; the per-request limit "
            f"is {MAX_ROWS}"
        )
    row_size = int(np.prod(matrix.shape[1:]))
    if row_size > MAX_DIM:
        raise ValidationError(
            f"{field} rows have {row_size} entries; the limit "
            f"is {MAX_DIM}"
        )
    if not np.isfinite(matrix).all():
        raise ValidationError(f"{field} must contain only finite numbers")
    return matrix


def _as_ids(value: object, field: str) -> np.ndarray:
    try:
        ids = np.asarray(value, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        raise ValidationError(f"{field} must be a list of integers") from None
    ids = np.atleast_1d(ids)
    if ids.ndim != 1:
        raise ValidationError(f"{field} must be a flat list of integers")
    if ids.size == 0:
        raise ValidationError(f"{field} must not be empty")
    if ids.size > MAX_IDS:
        raise ValidationError(
            f"{field} has {ids.size} ids; the per-request limit is {MAX_IDS}"
        )
    return ids


def _as_int(value: object, field: str, low: int, high: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{field} must be an integer")
    if not low <= value <= high:
        raise ValidationError(
            f"{field} must be in [{low}, {high}]: {value}"
        )
    return value


def _as_positive_float(value: object, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{field} must be a number")
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ValidationError(f"{field} must be a positive number: {value}")
    return value


# -- requests ------------------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    vectors: np.ndarray
    top_k: int
    deadline_s: float | None


@dataclass(frozen=True)
class AddRequest:
    vectors: np.ndarray
    ids: np.ndarray | None


@dataclass(frozen=True)
class RemoveRequest:
    ids: np.ndarray


@dataclass(frozen=True)
class SwapRequest:
    model: str


def parse_query(payload: object) -> QueryRequest:
    payload = _require_object(payload, "query")
    _reject_unknown(
        payload, frozenset({"vector", "vectors", "top_k", "deadline_s"}),
        "query",
    )
    if ("vector" in payload) == ("vectors" in payload):
        raise ValidationError(
            'query: exactly one of "vector" (one row) or "vectors" '
            '(a batch) is required'
        )
    field = "vector" if "vector" in payload else "vectors"
    vectors = _as_matrix(payload[field], field, single=field == "vector")
    top_k = _as_int(payload.get("top_k", 10), "top_k", 1, MAX_TOP_K)
    deadline = payload.get("deadline_s")
    if deadline is not None:
        deadline = _as_positive_float(deadline, "deadline_s")
    return QueryRequest(vectors=vectors, top_k=top_k, deadline_s=deadline)


def parse_add(payload: object) -> AddRequest:
    payload = _require_object(payload, "add")
    _reject_unknown(payload, frozenset({"vectors", "ids"}), "add")
    if "vectors" not in payload:
        raise ValidationError('add: "vectors" is required')
    vectors = _as_matrix(payload["vectors"], "vectors")
    ids = payload.get("ids")
    if ids is not None:
        ids = _as_ids(ids, "ids")
        if ids.size != vectors.shape[0]:
            raise ValidationError(
                f"add: got {ids.size} ids for {vectors.shape[0]} rows"
            )
    return AddRequest(vectors=vectors, ids=ids)


def parse_remove(payload: object) -> RemoveRequest:
    payload = _require_object(payload, "remove")
    _reject_unknown(payload, frozenset({"ids"}), "remove")
    if "ids" not in payload:
        raise ValidationError('remove: "ids" is required')
    return RemoveRequest(ids=_as_ids(payload["ids"], "ids"))


def parse_swap(payload: object) -> SwapRequest:
    payload = _require_object(payload, "swap")
    _reject_unknown(payload, frozenset({"model"}), "swap")
    model = payload.get("model")
    if not isinstance(model, str) or not model.strip():
        raise ValidationError(
            'swap: "model" must be a non-empty store fingerprint or '
            'archive path'
        )
    return SwapRequest(model=model.strip())


# -- responses -----------------------------------------------------------------


def jsonable(value: object) -> object:
    """Recursively convert numpy scalars/arrays so json.dumps accepts it."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return value


def query_response(
    ids: np.ndarray, distances: np.ndarray, degraded: bool
) -> dict:
    """The /query envelope; float64 distances survive the JSON round trip
    bit-exactly (Python serializes floats via repr)."""
    return {
        "ids": ids.tolist(),
        "distances": distances.tolist(),
        "degraded": bool(degraded),
    }
