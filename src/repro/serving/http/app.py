"""Endpoint handlers for the HTTP serving front end.

:class:`ServingApp` is the transport-agnostic middle layer between the
asyncio socket server (:mod:`repro.serving.http.server`) and a
:class:`~repro.serving.service.HashingService`:

- **routing** — ``handle(method, path, payload)`` maps the six endpoints
  (``POST /query|/add|/remove|/swap``, ``GET /stats|/health``) onto the
  service, returning ``(status, body)`` pairs; ``handle_raw`` wraps that
  in JSON decode/encode so the socket server stays pure transport.
- **admission control** — work endpoints pass a bounded in-flight gate:
  past ``max_inflight`` concurrent requests the app sheds with
  :class:`~repro.errors.OverloadedError` (HTTP 429) *before* any work is
  queued; once draining, with :class:`~repro.errors.ShutdownError` (503).
  ``/stats`` and ``/health`` bypass the gate — operators must be able to
  observe an overloaded server.
- **metrics** — one :class:`~repro.utils.metrics.LatencyHistogram` per
  endpoint (p50/p95/p99 via ``/stats``), plus request/shed/response-class
  counters.
- **hot swap** — ``POST /swap`` builds a replacement service through the
  injected ``service_factory`` *while the current one keeps serving*,
  then switches the reference atomically.  In-flight requests pinned to
  the old service finish on it; the old service is closed only when its
  last request drains, so a swap drops zero requests.

Handlers run on the socket server's worker threads; everything here is
thread-safe (one lock around the swap/admission state, thread-safe
histograms, and the PR 10 concurrency-safe batcher underneath).
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from collections.abc import Callable
from contextlib import contextmanager

import json

from repro.errors import (
    ConfigurationError,
    OverloadedError,
    ShutdownError,
    ValidationError,
)
from repro.serving.http import schemas
from repro.serving.service import HashingService
from repro.utils.metrics import LatencyHistogram


class _ServiceState:
    """One service generation: the instance plus its in-flight pin count."""

    __slots__ = ("service", "inflight", "retired")

    def __init__(self, service: HashingService) -> None:
        self.service = service
        self.inflight = 0
        self.retired = False


class ServingApp:
    """The HTTP front end's endpoint handlers over a swappable service.

    Parameters
    ----------
    service:
        The initial :class:`~repro.serving.service.HashingService`.
    service_factory:
        Optional ``factory(model_source) -> HashingService`` used by
        ``POST /swap`` to build the replacement (load the model by store
        fingerprint, warm-load its index snapshot).  Without one, swap
        requests are refused with a configuration error.
    max_inflight:
        Admission bound: the maximum number of concurrently admitted work
        requests; the gate sheds beyond it with
        :class:`~repro.errors.OverloadedError` (HTTP 429).
    clock:
        Monotonic time source for the latency histograms, injectable for
        deterministic tests.
    """

    def __init__(
        self,
        service: HashingService,
        *,
        service_factory: Callable[[str], HashingService] | None = None,
        max_inflight: int = 64,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_inflight <= 0:
            raise ConfigurationError(
                f"max_inflight must be positive: {max_inflight}"
            )
        self._lock = threading.Lock()
        self._state = _ServiceState(service)
        self._factory = service_factory
        self.max_inflight = max_inflight
        self._clock = clock
        self._inflight = 0
        self._draining = False
        self._swapping = False
        self._swaps = 0
        self._shed = 0
        self._requests = 0
        self._responses: Counter[int] = Counter()
        self.metrics = {
            endpoint: LatencyHistogram(clock=clock)
            for endpoint in ("query", "add", "remove", "swap", "stats",
                             "health", "other")
        }
        self._routes = {
            ("POST", "/query"): ("query", self._handle_query),
            ("POST", "/add"): ("add", self._handle_add),
            ("POST", "/remove"): ("remove", self._handle_remove),
            ("POST", "/swap"): ("swap", self._handle_swap),
            ("GET", "/stats"): ("stats", self._handle_stats),
            ("GET", "/health"): ("health", self._handle_health),
        }

    # -- observability ----------------------------------------------------------

    @property
    def service(self) -> HashingService:
        """The live service generation (swap replaces it atomically)."""
        with self._lock:
            return self._state.service

    @property
    def draining(self) -> bool:
        """Whether the app has begun refusing new work for shutdown."""
        with self._lock:
            return self._draining

    @property
    def inflight(self) -> int:
        """Currently admitted work requests."""
        with self._lock:
            return self._inflight

    # -- admission + swap bookkeeping -------------------------------------------

    @contextmanager
    def _admitted(self):
        """Bounded-admission guard pinning the request to one generation."""
        with self._lock:
            if self._draining:
                raise ShutdownError(
                    "server is draining for shutdown; retry against a "
                    "live replica"
                )
            if self._inflight >= self.max_inflight:
                self._shed += 1
                raise OverloadedError(
                    f"{self._inflight} request(s) already in flight "
                    f"(max_inflight={self.max_inflight}); shed"
                )
            self._inflight += 1
            state = self._state
            state.inflight += 1
        try:
            yield state
        finally:
            with self._lock:
                self._inflight -= 1
                state.inflight -= 1
                retire = state.retired and state.inflight == 0
            if retire:
                self._close_service(state)

    @staticmethod
    def _close_service(state: _ServiceState) -> None:
        try:
            state.service.close()
        except Exception:  # retiring must never fail the swapped traffic
            pass

    # -- dispatch ---------------------------------------------------------------

    def handle(self, method: str, path: str, payload: object = None):
        """Route one request; returns ``(status, body_dict)``.

        Library errors map to their taxonomy status (see
        :func:`~repro.serving.http.schemas.status_for`); unknown routes
        return 404; anything foreign is a 500 — a handler can never leak
        an exception to the transport, so no connection is left hanging.
        """
        route = self._routes.get((method.upper(), path))
        endpoint = route[0] if route is not None else "other"
        start = self._clock()
        try:
            if route is None:
                status, body = 404, {
                    "error": {
                        "type": "NotFound",
                        "message": f"no route for {method.upper()} {path}",
                    }
                }
            else:
                status, body = 200, route[1](payload)
        except BaseException as exc:
            status, body = schemas.status_for(exc), schemas.error_body(exc)
        finally:
            self.metrics[endpoint].record(self._clock() - start)
        with self._lock:
            self._requests += 1
            self._responses[status] += 1
        return status, body

    def handle_raw(self, method: str, path: str, body: bytes):
        """The byte-level entry the socket server dispatches to.

        Decodes the JSON body (empty bodies parse as ``{}``), runs
        :meth:`handle`, and encodes the response; returns
        ``(status, response_bytes)``.
        """
        payload: object = None
        if body:
            try:
                payload = json.loads(body)
            except ValueError:
                status, out = 400, schemas.error_body(
                    ValidationError("request body is not valid JSON")
                )
                with self._lock:
                    self._requests += 1
                    self._responses[status] += 1
                return status, json.dumps(out).encode()
        status, out = self.handle(method, path, payload)
        return status, json.dumps(schemas.jsonable(out)).encode()

    # -- endpoints --------------------------------------------------------------

    def _handle_query(self, payload: object) -> dict:
        request = schemas.parse_query(payload)
        with self._admitted() as state:
            ids, distances = state.service.query(
                request.vectors, top_k=request.top_k,
                deadline_s=request.deadline_s, flush="auto",
            )
            degraded = state.service.last_query_degraded
        return schemas.query_response(ids, distances, degraded)

    def _handle_add(self, payload: object) -> dict:
        request = schemas.parse_add(payload)
        with self._admitted() as state:
            ids = state.service.add(request.vectors, ids=request.ids)
        return {"ids": ids.tolist()}

    def _handle_remove(self, payload: object) -> dict:
        request = schemas.parse_remove(payload)
        with self._admitted() as state:
            removed = state.service.remove(request.ids)
        return {"removed": int(removed)}

    def _handle_swap(self, payload: object) -> dict:
        request = schemas.parse_swap(payload)
        if self._factory is None:
            raise ConfigurationError(
                "hot swap is disabled: the server was started without a "
                "service factory"
            )
        with self._lock:
            if self._swapping:
                raise OverloadedError("another swap is already in progress")
            self._swapping = True
        try:
            with self._admitted():
                # Built on this worker thread while the current generation
                # keeps answering queries — the swap itself is just the
                # reference switch below.
                replacement = self._factory(request.model)
            with self._lock:
                old = self._state
                self._state = _ServiceState(replacement)
                old.retired = True
                self._swaps += 1
                retire_now = old.inflight == 0
            if retire_now:
                self._close_service(old)
            return {
                "swapped": True,
                "model_key": replacement.model_key,
                "previous_model_key": old.service.model_key,
                "swaps": self._swaps,
            }
        finally:
            with self._lock:
                self._swapping = False

    def _handle_stats(self, payload: object) -> dict:
        with self._lock:
            server = {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "draining": self._draining,
                "requests": self._requests,
                "shed": self._shed,
                "swaps": self._swaps,
                "responses": {
                    str(status): count
                    for status, count in sorted(self._responses.items())
                },
            }
            service = self._state.service
        server["latency"] = {
            endpoint: hist.snapshot()
            for endpoint, hist in self.metrics.items()
            if hist.count
        }
        return {
            "server": server,
            "model_key": service.model_key,
            "service": service.stats(),
        }

    def _handle_health(self, payload: object) -> dict:
        with self._lock:
            draining = self._draining
            service = self._state.service
        report = service.health()
        if draining:
            report["status"] = "draining"
        report["draining"] = draining
        return report

    # -- lifecycle --------------------------------------------------------------

    def begin_drain(self) -> None:
        """Refuse new work with :class:`~repro.errors.ShutdownError`
        while in-flight requests keep running (idempotent)."""
        with self._lock:
            self._draining = True

    def close(self) -> None:
        """Finish the drain: retire the live service once idle.

        Call after the transport has stopped dispatching (the socket
        server drains its worker pool first); a generation still pinned by
        in-flight requests closes when its last one finishes.
        """
        self.begin_drain()
        with self._lock:
            state = self._state
            state.retired = True
            retire_now = state.inflight == 0
        if retire_now:
            self._close_service(state)
