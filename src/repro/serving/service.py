"""The online serving facade: snapshot-loaded models behind a sharded index.

:class:`HashingService` composes the three layers the previous PRs built in
isolation into one request/response surface:

- **model** — any encoder with ``encode()`` (a fitted UHSCM, a bare
  :class:`~repro.core.hashing_network.HashingNetwork`, a baseline).
  :func:`publish_model` snapshots a fitted UHSCM into the
  :class:`~repro.pipeline.ArtifactStore` under a content fingerprint and
  :func:`load_model` restores it — by fingerprint from the store, falling
  back to a :mod:`repro.core.persistence` archive on disk.
- **encoding** — single-query requests coalesce through an
  :class:`~repro.serving.batcher.EncodeBatcher` into batched network
  forwards.
- **index** — a registered retrieval backend (default ``"sharded"``),
  warm-loadable: the encoded database persists as a store artifact (packed
  code bits under the ``serve_index`` stage), so a restarted service
  rebuilds its index without re-encoding a single database row.  The
  store's per-stage hit/miss counters are the audit trail — a warm restart
  shows up as a ``serve_index`` hit and zero new encodes.

External ids: callers may attach their own int64 ids to added rows;
``query``/``remove`` speak external ids throughout, mapped over the
index's stable internal insertion-order ids.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from pathlib import Path

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ShapeError,
    ShutdownError,
)
from repro.pipeline import (
    CODE_FORMAT_VERSION,
    ArtifactStore,
    Stage,
    array_fingerprint,
    canonical,
    fingerprint,
    run_stage,
)
from repro.retrieval.backend import make_backend
from repro.retrieval.hamming import PackedCodes, unpack_codes
from repro.retrieval.sharded import MISSING_ID
from repro.serving.batcher import EncodeBatcher
from repro.utils.faults import NULL_INJECTOR, FaultInjector
from repro.utils.metrics import LatencyHistogram
from repro.utils.parallel import require_thread_backend

#: Store stage names owned by the serving layer.
MODEL_STAGE = "serve_model"
INDEX_STAGE = "serve_index"

_HEX_DIGITS = set("0123456789abcdef")


def _looks_like_fingerprint(source: str) -> bool:
    return len(source) == 64 and set(source) <= _HEX_DIGITS


def publish_model(store: ArtifactStore, model) -> str:
    """Snapshot a fitted UHSCM into the store; returns its fingerprint.

    The key is content-addressed (config + construction metadata + a hash
    of every trained parameter), so republishing an identical model is a
    no-op overwrite at the same address.
    """
    from repro.core.persistence import model_payload

    meta, arrays = model_payload(model)
    # The stored meta carries the full config for faithful restores; the
    # *key* hashes the fingerprint form (sparse_topk omitted when None) so
    # models published before the sparse engine keep their addresses — and
    # with them their warm serve_index snapshots.
    key_meta = dict(meta, config=model.config.fingerprint_payload())
    key = fingerprint(
        {
            "kind": "uhscm-model",
            "format": CODE_FORMAT_VERSION,
            "meta": canonical(key_meta),
            "params": {
                name: array_fingerprint(array)
                for name, array in sorted(arrays.items())
            },
        }
    )
    store.put(key, meta, arrays, stage=MODEL_STAGE)
    return key


def load_model(source: str | Path, clip, store: ArtifactStore | None = None):
    """Load a serving model from a store fingerprint or an archive path.

    A 64-hex-digit ``source`` is treated as a :func:`publish_model`
    fingerprint and resolved against ``store`` first; anything else (or a
    fingerprint missing from the store) falls back to a
    :func:`repro.core.persistence.load_uhscm` archive on disk.
    """
    from repro.core.persistence import load_uhscm, restore_uhscm

    source = str(source)
    if store is not None and _looks_like_fingerprint(source):
        artifact = store.get(source, stage=MODEL_STAGE)
        if artifact is not None:
            if "format_version" not in artifact.meta:
                # e.g. a serve_index or pipeline fingerprint pasted by
                # mistake — say so instead of failing deep in restore.
                raise ConfigurationError(
                    f"store artifact {source} is not a model snapshot "
                    f"(publish one with publish_model / serve --publish)"
                )
            return restore_uhscm(artifact.meta, artifact.arrays, clip)
    path = Path(source)
    if path.exists():
        return load_uhscm(path, clip)
    raise ConfigurationError(
        f"model source {source!r} is neither a store fingerprint nor an "
        f"archive path"
    )


class HashingService:
    """Online encode + top-k Hamming lookup over one fitted model.

    Parameters
    ----------
    encoder:
        Object with ``encode(items) -> ±1 codes`` (and ideally ``n_bits``);
        pass ``n_bits=`` explicitly for bare callables.
    store:
        Optional :class:`~repro.pipeline.ArtifactStore` enabling index
        snapshots (and recording serve-stage counters).
    backend / backend_options:
        Registered index backend name plus its constructor options.  The
        default is a ``"sharded"`` index; ``n_shards`` / ``shard_backend``
        / ``cache_size`` are conveniences folded into the options.
    max_batch / max_delay_s / clock:
        :class:`EncodeBatcher` triggers.
    model_key:
        Provenance fingerprint of the encoder used to address index
        snapshots; derived from the trained parameters when omitted.
    max_pending:
        Bounded-queue load shedding: a ``query``/``add`` burst that would
        push the batcher's pending queue past this many rows is rejected
        up front with :class:`~repro.errors.OverloadedError` instead of
        being allowed to grow the queue without bound.  ``None`` (default)
        disables shedding.
    default_deadline_s:
        Per-query latency budget applied when ``query`` is called without
        an explicit ``deadline_s``; ``None`` disables the budget.
    faults:
        :class:`~repro.utils.faults.FaultInjector` threaded into the
        batcher (``encode.forward``) and, for the sharded backend, into
        per-shard fan-out (``shard.search``).
    workers:
        Worker count for the sharded backend's concurrent fan-out
        (``None`` reads ``$REPRO_WORKERS``; ``1`` keeps the serial probe
        loop).  Surfaced in :meth:`stats` and :meth:`health`; merged
        results are bit-identical at any value.
    pool_backend:
        Must be ``"thread"`` or ``None`` — the serving fan-out is
        latency-bound and shares live index state, so it is thread-only;
        an explicit ``"process"`` raises
        :class:`~repro.errors.ConfigurationError` at construction (the
        process backend belongs to the offline Q-build kernels).  The
        effective backend is surfaced in :meth:`stats` and
        :meth:`health`.
    """

    def __init__(
        self,
        encoder,
        *,
        store: ArtifactStore | None = None,
        backend: str = "sharded",
        n_shards: int = 4,
        shard_backend: str = "bruteforce",
        cache_size: int = 0,
        backend_options: dict | None = None,
        max_batch: int = 256,
        max_delay_s: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
        model_key: str | None = None,
        n_bits: int | None = None,
        max_pending: int | None = None,
        default_deadline_s: float | None = None,
        faults: FaultInjector = NULL_INJECTOR,
        workers: int | None = None,
        pool_backend: str | None = None,
    ) -> None:
        # Fail fast, and with the call-site name, even when the backend
        # below is not sharded (the knob would otherwise be dropped).
        self.pool_backend = require_thread_backend(
            pool_backend, "HashingService fan-out"
        )
        if max_pending is not None and max_pending <= 0:
            raise ConfigurationError(
                f"max_pending must be positive (or None): {max_pending}"
            )
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ConfigurationError(
                f"default_deadline_s must be positive (or None): "
                f"{default_deadline_s}"
            )
        self.encoder = encoder
        self._encode = encoder.encode if hasattr(encoder, "encode") else encoder
        self.n_bits = n_bits if n_bits is not None else _encoder_bits(encoder)
        self.store = store
        self.backend_name = backend
        self.model_key = (model_key if model_key is not None
                          else _encoder_fingerprint(encoder, self.n_bits))
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self.faults = faults
        self._clock = clock
        options = dict(backend_options or {})
        if backend == "sharded":
            options.setdefault("n_shards", n_shards)
            options.setdefault("shard_backend", shard_backend)
            options.setdefault("faults", faults)
            options.setdefault("clock", clock)
            options.setdefault("workers", workers)
            options.setdefault("pool_backend", self.pool_backend)
        if cache_size:
            options.setdefault("cache_size", cache_size)
        self.index = make_backend(backend, self.n_bits, **options)
        self.batcher = EncodeBatcher(
            encoder, max_batch=max_batch, max_delay_s=max_delay_s,
            clock=clock, faults=faults,
        )
        self._shed = 0
        self._deadline_exceeded = 0
        self._closed = False
        #: Per-stage latency distributions over every query (seconds).
        self._latency = {
            stage: LatencyHistogram(clock=clock)
            for stage in ("encode", "search", "total")
        }
        #: External id of every internal (insertion-order) id ever assigned.
        self._ext_ids = np.empty(0, dtype=np.int64)
        #: external -> internal for the alive rows.
        self._int_by_ext: dict[int, int] = {}
        self._db_encodes = 0
        self._warm_loads = 0
        self._snapshot_mmap = False

    @classmethod
    def from_snapshot(
        cls,
        store: ArtifactStore,
        model_fingerprint: str,
        clip,
        **kwargs,
    ) -> "HashingService":
        """Build a service around a model published with :func:`publish_model`."""
        model = load_model(model_fingerprint, clip, store=store)
        kwargs.setdefault("model_key", model_fingerprint)
        return cls(model, store=store, **kwargs)

    # -- database ---------------------------------------------------------------

    #: Default rows-per-slice for memmapped databases and snapshots.
    DB_CHUNK = 65536

    def load_database(
        self,
        vectors: np.ndarray,
        key: dict | None = None,
        chunk_size: int | None = None,
    ) -> np.ndarray:
        """Encode + index a database, snapshotting the codes in the store.

        ``key`` is a small JSON-able provenance payload identifying the
        database rows (e.g. :func:`repro.pipeline.dataset_key`); without
        one the raw vectors are content-hashed instead.  With a store and a
        model fingerprint the encoded codes persist under the
        ``serve_index`` stage, so the next service pointed at the same
        (model, database) pair warm-loads its index with zero re-encodes.
        Returns the external ids assigned to the database rows.

        Memory model: a memmapped ``vectors`` array stays disk-resident —
        encoding and registration proceed ``chunk_size`` rows at a time
        (default :attr:`DB_CHUNK`), each slice copied to the heap only for
        its own forward pass, with results identical to the monolithic
        path.  When the store replays the snapshot from a raw-format
        artifact the packed code bits come back memmapped too, so K
        service processes over the same cache share one physical copy;
        :meth:`stats` reports this under ``database.snapshot_mmapped``.
        """
        if chunk_size is not None and chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be positive (or None): {chunk_size}"
            )
        if not isinstance(vectors, np.memmap):
            vectors = np.asarray(vectors, dtype=np.float64)
        # The key is trusted provenance (like dataset_key): it must change
        # whenever the database content changes.  The shape is folded in as
        # a cheap sanity net so a same-key catalog that grew or shrank can
        # never silently serve the old snapshot.
        db_fp = (fingerprint({"kind": "db", "key": canonical(key),
                              "shape": list(vectors.shape)})
                 if key is not None else array_fingerprint(vectors))
        stage = Stage(
            INDEX_STAGE,
            params={"n_bits": self.n_bits, "db": db_fp},
            inputs=(self.model_key,) if self.model_key is not None else (),
        )

        step = chunk_size
        if step is None and isinstance(vectors, np.memmap):
            step = self.DB_CHUNK

        def build() -> tuple[dict, dict[str, np.ndarray]]:
            self._db_encodes += 1
            if step is None or vectors.shape[0] == 0:
                codes = self._encode(np.asarray(vectors, dtype=np.float64))
                bits = np.packbits(codes > 0, axis=1)
            else:
                # Per-chunk cast + forward + packbits: every row's code is
                # independent in eval mode, so the concatenation equals the
                # monolithic encode bit for bit.
                bits = np.concatenate(
                    [
                        np.packbits(
                            self._encode(
                                np.asarray(vectors[s : s + step],
                                           dtype=np.float64)
                            ) > 0,
                            axis=1,
                        )
                        for s in range(0, vectors.shape[0], step)
                    ]
                )
            return (
                {"n_bits": self.n_bits, "rows": int(bits.shape[0])},
                {"bits": bits},
            )

        encodes_before = self._db_encodes
        staged = self.store is not None and self.model_key is not None
        artifact = run_stage(self.store if staged else None, stage, build)
        if self._db_encodes == encodes_before:
            self._warm_loads += 1
        bits = artifact.arrays["bits"]
        self._snapshot_mmap = isinstance(bits, np.memmap)
        reg_step = step
        if reg_step is None and self._snapshot_mmap:
            reg_step = self.DB_CHUNK
        if reg_step is None or bits.shape[0] == 0:
            codes = unpack_codes(
                PackedCodes(bits=np.asarray(bits), n_bits=self.n_bits)
            )
            return self._register(codes, ids=None)
        return np.concatenate(
            [
                self._register(
                    unpack_codes(
                        PackedCodes(bits=np.asarray(bits[s : s + reg_step]),
                                    n_bits=self.n_bits)
                    ),
                    ids=None,
                )
                for s in range(0, bits.shape[0], reg_step)
            ]
        )

    # -- mutation ---------------------------------------------------------------

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Encode and index new rows; returns their external ids.

        ``ids`` optionally assigns caller-owned int64 ids (must be unique
        and not collide with any alive row); by default rows get the
        index's insertion-order ids.
        """
        self._check_open()
        codes = self._encode(np.asarray(vectors, dtype=np.float64))
        return self._register(codes, ids)

    def _register(self, codes: np.ndarray, ids: np.ndarray | None) -> np.ndarray:
        n_new = codes.shape[0]
        internal = np.arange(self._ext_ids.size, self._ext_ids.size + n_new,
                             dtype=np.int64)
        if ids is None:
            external = internal
            collisions = [e for e in external.tolist()
                          if e in self._int_by_ext]
            if collisions:
                raise ConfigurationError(
                    f"auto-assigned id(s) {collisions[:5]} collide with "
                    f"caller-assigned external ids; pass explicit ids= to "
                    f"this add()"
                )
        else:
            external = np.atleast_1d(np.asarray(ids, dtype=np.int64))
            if external.shape != (n_new,):
                raise ShapeError(
                    f"got {external.size} ids for {n_new} rows"
                )
            if np.unique(external).size != n_new:
                raise ConfigurationError("external ids must be unique")
            collisions = [e for e in external.tolist() if e in self._int_by_ext]
            if collisions:
                raise ConfigurationError(
                    f"external id(s) already in use: {collisions[:5]}"
                )
        self.index.add(codes)
        self._ext_ids = np.concatenate([self._ext_ids, external])
        self._int_by_ext.update(
            zip(external.tolist(), internal.tolist())
        )
        return external.copy()

    def remove(self, ids: np.ndarray) -> int:
        """Remove rows by external id (unknown ids are ignored)."""
        self._check_open()
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        known = [e for e in dict.fromkeys(ids.tolist())
                 if e in self._int_by_ext]
        if not known:
            return 0
        internal = np.array([self._int_by_ext[e] for e in known],
                            dtype=np.int64)
        removed = self.index.remove(internal)
        for e in known:
            del self._int_by_ext[e]
        return removed

    # -- queries ----------------------------------------------------------------

    def query(
        self,
        vectors: np.ndarray,
        top_k: int = 10,
        deadline_s: float | None = None,
        flush: str = "force",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode queries through the micro-batcher and search the index.

        ``vectors`` is one query item (1-D) or a batch (first axis = items);
        every row rides the batcher, so a burst of requests coalesces into
        ``ceil(n / max_batch)`` network forwards and one fan-out search.
        Returns ``(external_ids, distances)``, both ``(n, top_k)``.

        ``flush`` is the coalescing policy.  ``"force"`` (the default —
        the CLI/REPL behavior since PR 4) flushes the batcher right after
        submitting, so a sequential caller never waits on the batch
        deadline.  ``"auto"`` leaves the flush to the batcher's own
        size/deadline triggers and parks on the tickets instead — the mode
        for genuinely concurrent callers (the HTTP front end), whose
        co-arriving rows then coalesce into shared network forwards.
        Results are bit-identical across policies; only the flush timing
        differs.

        Fault surface: when the service is overloaded (``max_pending``)
        the whole request is shed up front with
        :class:`~repro.errors.OverloadedError` — no partial enqueue.  A
        ``deadline_s`` budget (defaulting to ``default_deadline_s``) is
        checked between the encode and search stages and raises
        :class:`~repro.errors.DeadlineExceededError` once blown.  Under a
        degraded sharded index, rows lost with a downed shard come back
        padded: external id ``-1`` with distance ``n_bits + 1``;
        :attr:`last_query_degraded` reports whether this query was partial.
        A service that has been :meth:`close`\\ d refuses new queries with
        :class:`~repro.errors.ShutdownError`.
        """
        if flush not in ("force", "auto"):
            raise ConfigurationError(
                f'flush policy must be "force" or "auto": {flush!r}'
            )
        self._check_open()
        vectors = np.asarray(vectors)  # the batcher casts per dtype policy
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.shape[0] == 0:
            raise ShapeError("query needs at least one vector")
        if (self.max_pending is not None
                and len(self.batcher) + vectors.shape[0] > self.max_pending):
            self._shed += vectors.shape[0]
            raise OverloadedError(
                f"query of {vectors.shape[0]} row(s) would exceed the "
                f"pending bound ({len(self.batcher)} pending, "
                f"max_pending={self.max_pending})"
            )
        deadline = deadline_s if deadline_s is not None else self.default_deadline_s
        start = self._clock()
        tickets = [self.batcher.submit(row) for row in vectors]
        if flush == "force":
            self.batcher.flush()  # resolve the tail below max_batch
        codes = np.stack([ticket.result(wait=flush == "auto")
                          for ticket in tickets])
        t_encoded = self._clock()
        self._latency["encode"].record(t_encoded - start)
        self._check_deadline(start, deadline, stage="encode")
        internal, distances = self.index.search(codes, top_k=top_k)
        t_searched = self._clock()
        self._latency["search"].record(t_searched - t_encoded)
        self._latency["total"].record(t_searched - start)
        self._check_deadline(start, deadline, stage="search")
        # A degraded fan-out pads lost rows with MISSING_ID; keep the
        # sentinel out of the external-id table (clipping would alias it
        # to a real row).
        missing = internal == MISSING_ID
        if missing.any():
            external = np.where(missing, np.int64(MISSING_ID),
                                self._ext_ids[np.where(missing, 0, internal)])
            return external, distances
        return self._ext_ids[internal], distances

    def _check_deadline(
        self, start: float, deadline: float | None, stage: str
    ) -> None:
        if deadline is None:
            return
        elapsed = self._clock() - start
        if elapsed > deadline:
            self._deadline_exceeded += 1
            raise DeadlineExceededError(
                f"query blew its {deadline:.6g}s budget after the {stage} "
                f"stage ({elapsed:.6g}s elapsed)"
            )

    @property
    def last_query_degraded(self) -> bool:
        """Whether the most recent query returned partial (padded) results."""
        return bool(getattr(self.index, "last_query_degraded", False))

    def __len__(self) -> int:
        return len(self.index)

    # -- lifecycle --------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has retired this service."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ShutdownError(
                "service is shut down; it no longer accepts requests"
            )

    def close(self) -> None:
        """Drain and retire the service (idempotent).

        New ``query``/``add``/``remove`` calls are refused with
        :class:`~repro.errors.ShutdownError`; any encodes still pending in
        the batcher flush first so no ticket is stranded, and the index's
        fan-out pool (when it has one) joins its workers, leaving balanced
        submitted/completed counters and zero live shared-memory segments.
        """
        if self._closed:
            return
        self._closed = True
        self.batcher.flush()
        index_close = getattr(self.index, "close", None)
        if index_close is not None:
            index_close()

    # -- reporting --------------------------------------------------------------

    def health(self) -> dict:
        """One-call resilience report for operators and the serve CLI.

        ``status`` is ``"ok"`` when every shard circuit is closed and
        ``"degraded"`` while any circuit is open or half-open (queries
        keep answering, partially).  The rest is the raw evidence: per-
        shard circuit states, the store's corruption/quarantine/retry
        counters, the batcher's poison counters, and the service-level
        shed/deadline counters.
        """
        degraded = bool(getattr(self.index, "degraded", False))
        circuits = getattr(self.index, "circuit_states", None)
        batcher = self.batcher.stats()
        report: dict = {
            "status": ("shutdown" if self._closed
                       else "degraded" if degraded else "ok"),
            "degraded": degraded,
            "closed": self._closed,
            "workers": int(getattr(self.index, "workers", 1)),
            "pool_backend": self.pool_backend,
            "circuits": circuits() if circuits is not None else [],
            "batcher": {
                key: batcher[key]
                for key in ("pending", "flush_failures",
                            "isolation_flushes", "poisoned")
            },
            "shed": self._shed,
            "deadline_exceeded": self._deadline_exceeded,
            "store": None,
        }
        if self.store is not None:
            stats = self.store.stats()
            report["store"] = {
                key: stats[key]
                for key in ("corruptions", "quarantined", "retries",
                            "read_failures", "put_failures",
                            "quarantine_entries")
            }
        return report

    def stats(self) -> dict:
        """Serving counters: shard sizes, batcher histogram, cache rates,
        and per-stage (encode/search/total) query latency percentiles."""
        out: dict = {
            "backend": self.backend_name,
            "n_bits": self.n_bits,
            "size": len(self.index),
            "shards": list(
                getattr(self.index, "shard_sizes", (len(self.index),))
            ),
            "workers": int(getattr(self.index, "workers", 1)),
            "pool_backend": self.pool_backend,
            "batcher": self.batcher.stats(),
            "shed": self._shed,
            "deadline_exceeded": self._deadline_exceeded,
            "closed": self._closed,
            "latency": {
                stage: hist.snapshot()
                for stage, hist in self._latency.items()
            },
            "database": {
                "encodes": self._db_encodes,
                "warm_loads": self._warm_loads,
                "snapshot_mmapped": self._snapshot_mmap,
            },
            "caches": {},
        }
        pool_stats = getattr(self.index, "pool_stats", None)
        if pool_stats is not None:
            out["pool"] = pool_stats()
        cache = getattr(self.index, "cache", None)
        if cache is not None:
            out["caches"]["index"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
            }
        for si, shard in enumerate(getattr(self.index, "shards", ())):
            shard_cache = getattr(shard, "cache", None)
            if shard_cache is not None:
                out["caches"][f"shard{si}"] = {
                    "hits": shard_cache.hits,
                    "misses": shard_cache.misses,
                    "hit_rate": shard_cache.hit_rate,
                }
        if self.store is not None:
            stages = self.store.stats()["stages"]
            out["store_stages"] = {
                name: dict(stages[name])
                for name in (MODEL_STAGE, INDEX_STAGE)
                if name in stages
            }
        return out


def _encoder_bits(encoder) -> int:
    """Code length of an encoder (UHSCM, HashingNetwork, or baseline)."""
    n_bits = getattr(encoder, "n_bits", None)
    if n_bits is None:
        config = getattr(encoder, "config", None)
        n_bits = getattr(config, "n_bits", None)
    if n_bits is None:
        raise ConfigurationError(
            "cannot infer n_bits from the encoder; pass n_bits= explicitly"
        )
    return int(n_bits)


def _encoder_fingerprint(encoder, n_bits: int) -> str | None:
    """Content fingerprint of an encoder's trained parameters, best effort.

    ``None`` (for encoders without an inspectable state dict) disables
    index snapshots rather than risking a stale-address collision.
    """
    net = getattr(encoder, "network", encoder)
    inner = getattr(net, "net", None)
    if inner is None or not hasattr(inner, "state_dict"):
        return None
    state = inner.state_dict()
    return fingerprint(
        {
            "kind": "encoder-state",
            "format": CODE_FORMAT_VERSION,
            "n_bits": n_bits,
            "params": {
                name: array_fingerprint(array)
                for name, array in sorted(state.items())
            },
        }
    )
