"""Figure 6: top-10 retrieval quality on CIFAR10.

The paper frames sample queries' top-10 results in green (relevant) / red
(irrelevant) and counts "fault images".  The headless reproduction measures
precision@10 over a query sample per method and renders an ASCII grid of
✓/✗ for the first queries — same information, no pixels needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import ExperimentContext
from repro.retrieval.engine import HammingIndex
from repro.retrieval.protocol import relevance_matrix

#: Methods shown in the paper's Figure 6.
FIGURE6_METHODS: tuple[str, ...] = ("UHSCM", "CIB", "MLS3RDUH", "BGAN")


@dataclass
class Figure6Result:
    """Precision@10 per method plus per-query hit grids."""

    precision_at_10: dict[str, float]
    hit_grids: dict[str, np.ndarray]  # (n_queries, 10) booleans

    def render(self, max_queries: int = 5) -> str:
        lines = ["Figure 6: top-10 retrieval on CIFAR10 (64 bits)"]
        for method, p10 in self.precision_at_10.items():
            lines.append(f"  {method:10s} mean P@10 = {p10:.3f}")
            grid = self.hit_grids[method][:max_queries]
            for qi, row in enumerate(grid):
                marks = "".join("+" if hit else "." for hit in row)
                lines.append(f"    query {qi}: {marks}")
        return "\n".join(lines)


def run_figure6(
    scale: float = 0.02,
    n_bits: int = 64,
    methods: tuple[str, ...] = FIGURE6_METHODS,
    n_queries: int = 20,
    seed: int = 0,
    epochs: int | None = None,
    store=None,
) -> Figure6Result:
    """Regenerate Figure 6 as precision@10 + hit grids on sampled queries."""
    ctx = ExperimentContext("cifar10", scale=scale, seed=seed, epochs=epochs,
                            store=store)
    rng = np.random.default_rng(seed)
    n_queries = min(n_queries, ctx.dataset.n_query)
    sample = rng.choice(ctx.dataset.n_query, size=n_queries, replace=False)
    relevance = relevance_matrix(
        ctx.dataset.query_labels[sample], ctx.dataset.database_labels
    )

    precisions: dict[str, float] = {}
    grids: dict[str, np.ndarray] = {}
    for method in methods:
        fit = ctx.fit(method, n_bits)
        index = HammingIndex(n_bits).add(fit.database_codes)
        top_idx, _ = index.search(fit.query_codes[sample], top_k=10)
        hits = np.take_along_axis(relevance, top_idx, axis=1)
        precisions[method] = float(hits.mean())
        grids[method] = hits
    return Figure6Result(precision_at_10=precisions, hit_grids=grids)
