"""Figure 4: sensitivity of UHSCM to its five hyper-parameters.

One panel per (dataset, parameter) at 64 bits, sweeping the same grids as
the paper: τ ∈ {1m..4m}, α ∈ {0..0.5}, λ ∈ {0.5..1.0}, γ ∈ {0.1..0.6},
β ∈ {0, 1e-4, 1e-3, 1e-2, 1e-1}.  The claim reproduced is that UHSCM is
robust in a broad band around the chosen defaults.

For the α/λ/γ/β sweeps the semantic similarity matrix Q is mined once and
re-used (it does not depend on them); the τ sweep re-mines per value.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.similarity import SemanticSimilarityGenerator
from repro.core.uhscm import UHSCM
from repro.datasets import DATASET_NAMES
from repro.experiments.reporting import SweepResult
from repro.experiments.runner import ExperimentContext, make_contexts
from repro.vlp.concepts import NUS_WIDE_81

#: Paper sweep grids (§4.6).
SWEEP_GRIDS: dict[str, tuple[float, ...]] = {
    "tau_scale": (1.0, 2.0, 3.0, 4.0),
    "alpha": (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    "lam": (0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    "gamma": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
    "beta": (0.0, 0.0001, 0.001, 0.01, 0.1),
}


def _sweep_mined_q(
    ctx: ExperimentContext,
    parameter: str,
    values: tuple[float, ...],
    n_bits: int,
) -> SweepResult:
    """Sweep a training-side parameter against a fixed, pre-mined Q.

    The Q construction runs through the context's artifact store when one
    is attached, so the sweep shares the same mine → denoise → build_q
    artifacts as every other experiment on this dataset (and each swept
    fit's train stage is itself resumable).
    """
    sweep = SweepResult(parameter=parameter, dataset=ctx.dataset_name)
    base = ctx.uhscm_config(n_bits)
    generator = SemanticSimilarityGenerator(
        ctx.clip, NUS_WIDE_81,
        templates=(base.prompt_template,),
        tau_scale=base.tau_scale, denoise=base.denoise,
    )
    similarity = generator.generate(
        ctx.dataset.train_images, store=ctx.store, data_key=ctx.data_key()
    )
    for value in values:
        if parameter == "gamma" and value == 0.0:
            continue  # gamma must stay positive
        config = replace(base, **{parameter: value})
        model = UHSCM(config, clip=ctx.clip)
        model.fit(ctx.dataset.train_images, similarity=similarity,
                  store=ctx.store, data_key=ctx.data_key())
        sweep.record(value, ctx.evaluate_model(model).map)
    return sweep


def _sweep_tau(
    ctx: ExperimentContext, values: tuple[float, ...], n_bits: int
) -> SweepResult:
    """τ changes the mined distributions, so re-mine per value."""
    sweep = SweepResult(parameter="tau_scale", dataset=ctx.dataset_name)
    base = ctx.uhscm_config(n_bits)
    for value in values:
        config = replace(base, tau_scale=value)
        model = UHSCM(config, clip=ctx.clip)
        model.fit(ctx.dataset.train_images, store=ctx.store,
                  data_key=ctx.data_key())
        sweep.record(value, ctx.evaluate_model(model).map)
    return sweep


def run_figure4(
    scale: float = 0.02,
    n_bits: int = 64,
    datasets: tuple[str, ...] = DATASET_NAMES,
    parameters: tuple[str, ...] = tuple(SWEEP_GRIDS),
    seed: int = 0,
    epochs: int | None = None,
    store=None,
) -> dict[tuple[str, str], SweepResult]:
    """Regenerate every Figure 4 panel; keys are (dataset, parameter)."""
    panels: dict[tuple[str, str], SweepResult] = {}
    contexts = make_contexts(datasets, scale=scale, seed=seed, epochs=epochs,
                             store=store)
    for dataset, ctx in contexts.items():
        for parameter in parameters:
            values = SWEEP_GRIDS[parameter]
            if parameter == "tau_scale":
                panels[(dataset, parameter)] = _sweep_tau(ctx, values, n_bits)
            else:
                panels[(dataset, parameter)] = _sweep_mined_q(
                    ctx, parameter, values, n_bits
                )
    return panels
