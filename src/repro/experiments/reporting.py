"""Result containers and rendering for the experiment runners.

Every experiment returns a structured result object with a ``render()``
method that prints the same rows/columns as the paper's table or figure, so
reproduced numbers can be eyeballed against the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.tables import format_float, render_table


@dataclass
class MapTable:
    """MAP results laid out like the paper's Tables 1 and 2.

    ``cells[method][(dataset, bits)] = MAP``.
    """

    title: str
    methods: list[str] = field(default_factory=list)
    datasets: list[str] = field(default_factory=list)
    bit_lengths: list[int] = field(default_factory=list)
    cells: dict[str, dict[tuple[str, int], float]] = field(default_factory=dict)

    def record(self, method: str, dataset: str, bits: int, value: float) -> None:
        if method not in self.methods:
            self.methods.append(method)
        if dataset not in self.datasets:
            self.datasets.append(dataset)
        if bits not in self.bit_lengths:
            self.bit_lengths.append(bits)
        self.cells.setdefault(method, {})[(dataset, bits)] = value

    def value(self, method: str, dataset: str, bits: int) -> float:
        return self.cells[method][(dataset, bits)]

    def render(self) -> str:
        headers = ["Method"] + [
            f"{ds}/{bits}" for ds in self.datasets for bits in self.bit_lengths
        ]
        rows = []
        for method in self.methods:
            row: list[object] = [method]
            for ds in self.datasets:
                for bits in self.bit_lengths:
                    value = self.cells.get(method, {}).get((ds, bits))
                    row.append("-" if value is None else format_float(value))
            rows.append(row)
        return render_table(headers, rows, title=self.title)


@dataclass
class CurveFamily:
    """A named family of (x, y) curves, one per method (Figures 2 and 3)."""

    title: str
    x_label: str
    y_label: str
    x_values: dict[str, np.ndarray] = field(default_factory=dict)
    y_values: dict[str, np.ndarray] = field(default_factory=dict)

    def record(self, method: str, x: np.ndarray, y: np.ndarray) -> None:
        self.x_values[method] = np.asarray(x, dtype=np.float64)
        self.y_values[method] = np.asarray(y, dtype=np.float64)

    @property
    def methods(self) -> list[str]:
        return list(self.y_values)

    def render(self, max_points: int = 12) -> str:
        lines = [f"{self.title}  ({self.x_label} -> {self.y_label})"]
        for method in self.methods:
            x, y = self.x_values[method], self.y_values[method]
            if x.size > max_points:
                idx = np.linspace(0, x.size - 1, max_points).round().astype(int)
                x, y = x[idx], y[idx]
            points = "  ".join(
                f"{xi:g}:{format_float(float(yi))}" for xi, yi in zip(x, y)
            )
            lines.append(f"  {method:10s} {points}")
        return "\n".join(lines)


@dataclass
class SweepResult:
    """One hyper-parameter sensitivity sweep (one panel of Figure 4)."""

    parameter: str
    dataset: str
    values: list[float] = field(default_factory=list)
    maps: list[float] = field(default_factory=list)

    def record(self, value: float, map_score: float) -> None:
        self.values.append(float(value))
        self.maps.append(float(map_score))

    @property
    def best_value(self) -> float:
        return self.values[int(np.argmax(self.maps))]

    def render(self) -> str:
        pairs = "  ".join(
            f"{v:g}:{format_float(m)}" for v, m in zip(self.values, self.maps)
        )
        return (
            f"Figure4[{self.dataset}] {self.parameter}: {pairs}   "
            f"(best {self.parameter}={self.best_value:g})"
        )


@dataclass
class TimingTable:
    """Method wall-clock times per dataset (Table 3, minutes in the paper)."""

    title: str
    seconds: dict[str, dict[str, float]] = field(default_factory=dict)

    def record(self, method: str, dataset: str, elapsed_seconds: float) -> None:
        self.seconds.setdefault(method, {})[dataset] = elapsed_seconds

    def render(self) -> str:
        datasets = sorted({d for row in self.seconds.values() for d in row})
        headers = ["Method"] + [f"{d} (s)" for d in datasets]
        rows = []
        for method, row in self.seconds.items():
            rows.append(
                [method]
                + [format_float(row.get(d, float("nan")), 2) for d in datasets]
            )
        return render_table(headers, rows, title=self.title)
