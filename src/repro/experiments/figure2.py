"""Figure 2: Precision@N curves (N = 100 … 1000) at 64 and 128 bits.

Reproduces the Hamming-ranking P@N protocol of §4.2 for every Table 1
method on all three datasets.  The paper's claim: UHSCM's curve dominates
every baseline at every N, most dramatically on CIFAR10.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import DATASET_NAMES
from repro.experiments.reporting import CurveFamily
from repro.experiments.runner import TABLE1_METHODS, make_contexts
from repro.retrieval.hamming import hamming_distance_matrix
from repro.retrieval.metrics import precision_at_n
from repro.retrieval.protocol import relevance_matrix

#: N values plotted in the paper's Figure 2.
FIGURE2_POINTS: tuple[int, ...] = (100, 300, 500, 700, 900, 1000)

#: Bit lengths shown in the figure.
FIGURE2_BITS: tuple[int, ...] = (64, 128)


def run_figure2(
    scale: float = 0.02,
    bit_lengths: tuple[int, ...] = FIGURE2_BITS,
    datasets: tuple[str, ...] = DATASET_NAMES,
    methods: tuple[str, ...] = TABLE1_METHODS,
    seed: int = 0,
    epochs: int | None = None,
    store=None,
) -> dict[tuple[str, int], CurveFamily]:
    """Regenerate every Figure 2 panel; keys are (dataset, bits)."""
    panels: dict[tuple[str, int], CurveFamily] = {}
    contexts = make_contexts(datasets, scale=scale, seed=seed, epochs=epochs,
                             store=store)
    for dataset, ctx in contexts.items():
        relevance = relevance_matrix(
            ctx.dataset.query_labels, ctx.dataset.database_labels
        )
        n_db = ctx.dataset.n_database
        points = tuple(min(p, n_db) for p in FIGURE2_POINTS)
        points = tuple(dict.fromkeys(points))  # dedupe if db is small
        for bits in bit_lengths:
            family = CurveFamily(
                title=f"Figure 2: P@N on {dataset} @{bits} bits",
                x_label="N",
                y_label="precision",
            )
            for method in methods:
                fit = ctx.fit(method, bits)
                distances = hamming_distance_matrix(
                    fit.query_codes, fit.database_codes
                )
                pn = precision_at_n(distances, relevance, points)
                family.record(
                    method,
                    np.asarray(list(pn.keys())),
                    np.asarray(list(pn.values())),
                )
            panels[(dataset, bits)] = family
    return panels
