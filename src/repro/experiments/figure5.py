"""Figure 5: t-SNE structure of the learned hash codes on CIFAR10.

The paper shows 2-D t-SNE scatter plots for UHSCM, CIB, MLS3RDUH and BGAN
and argues UHSCM's class clusters are best separated.  A headless
reproduction replaces the visual with two numbers computed on the embedded
codes: the silhouette score of the t-SNE embedding and the inter/intra
class-separation ratio of the raw codes.  Higher is better for both; the
claim is UHSCM > all three baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.separation import class_separation_ratio, silhouette_score
from repro.analysis.tsne import tsne
from repro.experiments.runner import ExperimentContext

#: Methods visualized in the paper's Figure 5.
FIGURE5_METHODS: tuple[str, ...] = ("UHSCM", "CIB", "MLS3RDUH", "BGAN")


@dataclass
class Figure5Result:
    """Separation metrics per method + the embeddings themselves."""

    silhouettes: dict[str, float]
    separation_ratios: dict[str, float]
    embeddings: dict[str, np.ndarray]
    labels: np.ndarray

    def render(self) -> str:
        lines = ["Figure 5: hash-code cluster separation on CIFAR10 (64 bits)"]
        for method in self.silhouettes:
            lines.append(
                f"  {method:10s} tsne-silhouette={self.silhouettes[method]:.3f}  "
                f"separation-ratio={self.separation_ratios[method]:.3f}"
            )
        return "\n".join(lines)


def run_figure5(
    scale: float = 0.02,
    n_bits: int = 64,
    methods: tuple[str, ...] = FIGURE5_METHODS,
    max_points: int = 400,
    seed: int = 0,
    epochs: int | None = None,
    tsne_iters: int = 250,
    store=None,
) -> Figure5Result:
    """Regenerate Figure 5's comparison on the CIFAR10 database split."""
    ctx = ExperimentContext("cifar10", scale=scale, seed=seed, epochs=epochs,
                            store=store)
    labels_full = ctx.dataset.database_labels.argmax(axis=1)
    rng = np.random.default_rng(seed)
    subset = rng.choice(
        labels_full.size, size=min(max_points, labels_full.size), replace=False
    )
    labels = labels_full[subset]

    silhouettes: dict[str, float] = {}
    ratios: dict[str, float] = {}
    embeddings: dict[str, np.ndarray] = {}
    for method in methods:
        fit = ctx.fit(method, n_bits)
        codes = fit.database_codes[subset]
        embedding = tsne(codes, perplexity=20.0, n_iter=tsne_iters, seed=seed)
        silhouettes[method] = silhouette_score(embedding, labels)
        ratios[method] = class_separation_ratio(codes, labels)
        embeddings[method] = embedding
    return Figure5Result(
        silhouettes=silhouettes,
        separation_ratios=ratios,
        embeddings=embeddings,
        labels=labels,
    )
