"""Table 3: end-to-end time consumption of each method.

The paper reports minutes (preprocessing + training to convergence) on the
authors' GPU testbed; this reproduction reports wall-clock seconds at
reproduction scale.  The claims being reproduced are *relative*: UHSCM's
cost is comparable to SSDH / GH / CIB, while BGAN (extra generator +
discriminator updates) and MLS3RDUH (O(n²) manifold diffusion) are much
slower.
"""

from __future__ import annotations

from repro.datasets import DATASET_NAMES
from repro.experiments.reporting import TimingTable
from repro.experiments.runner import make_contexts

#: Methods timed in the paper's Table 3.
TABLE3_METHODS: tuple[str, ...] = ("SSDH", "GH", "BGAN", "MLS3RDUH", "CIB",
                                   "UHSCM")

#: Paper Table 3 values in minutes, for the paper-vs-measured index.
PAPER_TABLE3_MINUTES: dict[str, dict[str, float]] = {
    "SSDH": {"cifar10": 24.9, "nuswide": 21.2, "mirflickr": 20.8},
    "GH": {"cifar10": 25.7, "nuswide": 28.4, "mirflickr": 21.3},
    "BGAN": {"cifar10": 78.1, "nuswide": 83.3, "mirflickr": 66.1},
    "MLS3RDUH": {"cifar10": 132.7, "nuswide": 126.5, "mirflickr": 114.7},
    "CIB": {"cifar10": 31.5, "nuswide": 34.6, "mirflickr": 18.5},
    "UHSCM": {"cifar10": 27.3, "nuswide": 35.7, "mirflickr": 20.2},
}


def run_table3(
    scale: float = 0.02,
    n_bits: int = 64,
    datasets: tuple[str, ...] = DATASET_NAMES,
    methods: tuple[str, ...] = TABLE3_METHODS,
    seed: int = 0,
    epochs: int | None = None,
) -> TimingTable:
    """Regenerate Table 3 (fit wall-clock, seconds) at reproduction scale.

    Timing runs never touch the artifact store (``use_cache=False``): a
    replayed fit or a pre-mined Q would report the cache's speed, not the
    method's.
    """
    table = TimingTable(title="Table 3: time consumption (seconds, repro scale)")
    contexts = make_contexts(datasets, scale=scale, seed=seed, epochs=epochs)
    for dataset, ctx in contexts.items():
        for method in methods:
            fit = ctx.fit(method, n_bits, use_cache=False)
            table.record(method, dataset, fit.fit_seconds)
    return table
