"""Table 1: MAP of Hamming ranking for all methods / datasets / bit widths.

Paper reference values (for shape comparison — absolute numbers depend on
the authors' data and backbone; this reproduction claims shape, not value):

======== ===== ===== ===== =====  ===== ===== ===== =====  ===== ===== ===== =====
method   CIFAR10 (32/64/96/128)   NUS-WIDE (32/64/96/128)  MIRFlickr (32/64/96/128)
======== =========================  ========================  =======================
LSH      0.257 0.286 0.346 0.375  0.538 0.579 0.636 0.666  0.642 0.685 0.701 0.702
UHSCM    0.831 0.850 0.857 0.853  0.796 0.810 0.813 0.815  0.827 0.834 0.835 0.834
======== =========================  ========================  =======================

(remaining rows in the paper text; the key claims are: UHSCM best everywhere,
largest margin on CIFAR10, shallow methods weakest.)
"""

from __future__ import annotations

from repro.config import PAPER_BIT_LENGTHS
from repro.datasets import DATASET_NAMES
from repro.experiments.reporting import MapTable
from repro.experiments.runner import TABLE1_METHODS, make_contexts

#: Paper Table 1 MAP values, used by EXPERIMENTS.md's paper-vs-measured index.
PAPER_TABLE1: dict[str, dict[str, tuple[float, float, float, float]]] = {
    "cifar10": {
        "LSH": (0.257, 0.286, 0.346, 0.375),
        "SH": (0.327, 0.339, 0.341, 0.353),
        "ITQ": (0.442, 0.474, 0.479, 0.492),
        "AGH": (0.495, 0.491, 0.485, 0.481),
        "SSDH": (0.314, 0.331, 0.352, 0.372),
        "GH": (0.456, 0.469, 0.500, 0.504),
        "BGAN": (0.583, 0.607, 0.604, 0.612),
        "MLS3RDUH": (0.540, 0.550, 0.559, 0.569),
        "CIB": (0.580, 0.599, 0.606, 0.611),
        "UHSCM": (0.831, 0.850, 0.857, 0.853),
    },
    "nuswide": {
        "LSH": (0.538, 0.579, 0.636, 0.666),
        "SH": (0.612, 0.623, 0.623, 0.626),
        "ITQ": (0.719, 0.743, 0.751, 0.753),
        "AGH": (0.727, 0.733, 0.734, 0.732),
        "SSDH": (0.552, 0.596, 0.637, 0.673),
        "GH": (0.684, 0.720, 0.737, 0.743),
        "BGAN": (0.777, 0.785, 0.790, 0.793),
        "MLS3RDUH": (0.776, 0.788, 0.793, 0.796),
        "CIB": (0.774, 0.782, 0.782, 0.783),
        "UHSCM": (0.796, 0.810, 0.813, 0.815),
    },
    "mirflickr": {
        "LSH": (0.642, 0.685, 0.701, 0.702),
        "SH": (0.660, 0.659, 0.654, 0.654),
        "ITQ": (0.763, 0.769, 0.776, 0.776),
        "AGH": (0.798, 0.786, 0.777, 0.771),
        "SSDH": (0.749, 0.752, 0.761, 0.762),
        "GH": (0.744, 0.766, 0.782, 0.791),
        "BGAN": (0.783, 0.793, 0.803, 0.806),
        "MLS3RDUH": (0.814, 0.818, 0.817, 0.816),
        "CIB": (0.796, 0.808, 0.813, 0.812),
        "UHSCM": (0.827, 0.834, 0.835, 0.834),
    },
}


def run_table1(
    scale: float = 0.02,
    bit_lengths: tuple[int, ...] = PAPER_BIT_LENGTHS,
    datasets: tuple[str, ...] = DATASET_NAMES,
    methods: tuple[str, ...] = TABLE1_METHODS,
    seed: int = 0,
    epochs: int | None = None,
    store=None,
    sparse_topk: int | None = None,
    out_of_core: bool = False,
    workers: int | None = None,
    pool_backend: str | None = None,
) -> MapTable:
    """Regenerate Table 1 at the requested reproduction scale.

    With an :class:`~repro.pipeline.ArtifactStore`, finished
    (method, n_bits) cells replay from their encode artifacts, so an
    interrupted run resumes where it died and UHSCM mines each dataset's
    Q once for all bit widths.  ``sparse_topk`` routes UHSCM's Q through
    the blocked top-k CSR engine (an approximation at table scale; the
    default dense path reproduces the paper exactly), ``out_of_core``
    additionally streams those CSR builds through disk-resident buffers —
    same cells, same fingerprints, flat memory — and ``workers`` runs the
    UHSCM fits' parallel kernels on that many threads (every cell
    bit-identical to the serial run).
    """
    table = MapTable(title="Table 1: MAP of Hamming ranking")
    contexts = make_contexts(datasets, scale=scale, seed=seed, epochs=epochs,
                             store=store, sparse_topk=sparse_topk,
                             out_of_core=out_of_core, workers=workers,
                             pool_backend=pool_backend)
    for dataset, ctx in contexts.items():
        for bits in bit_lengths:
            for method in methods:
                fit = ctx.fit(method, bits)
                report = ctx.evaluate(fit)
                table.record(method, dataset, bits, report.map)
    return table
