"""Experiment runners regenerating every table and figure of the paper."""

from repro.experiments.figure2 import FIGURE2_BITS, FIGURE2_POINTS, run_figure2
from repro.experiments.figure3 import FIGURE3_BITS, run_figure3
from repro.experiments.figure4 import SWEEP_GRIDS, run_figure4
from repro.experiments.figure5 import FIGURE5_METHODS, Figure5Result, run_figure5
from repro.experiments.figure6 import FIGURE6_METHODS, Figure6Result, run_figure6
from repro.experiments.reporting import (
    CurveFamily,
    MapTable,
    SweepResult,
    TimingTable,
)
from repro.experiments.runner import (
    TABLE1_METHODS,
    ExperimentContext,
    FitResult,
    make_contexts,
)
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.experiments.table2 import PAPER_TABLE2_64BITS, run_table2
from repro.experiments.table3 import PAPER_TABLE3_MINUTES, TABLE3_METHODS, run_table3

__all__ = [
    "CurveFamily",
    "ExperimentContext",
    "FIGURE2_BITS",
    "FIGURE2_POINTS",
    "FIGURE3_BITS",
    "FIGURE5_METHODS",
    "FIGURE6_METHODS",
    "Figure5Result",
    "Figure6Result",
    "FitResult",
    "MapTable",
    "PAPER_TABLE1",
    "PAPER_TABLE2_64BITS",
    "PAPER_TABLE3_MINUTES",
    "SWEEP_GRIDS",
    "SweepResult",
    "TABLE1_METHODS",
    "TABLE3_METHODS",
    "TimingTable",
    "make_contexts",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_table1",
    "run_table2",
    "run_table3",
]
