"""Figure 3: Precision-Recall curves from the hash-lookup protocol.

PR points come from sweeping the Hamming radius 0..k (§4.3.2).  The paper's
claim: UHSCM's PR curve dominates, i.e. it packs similar images into smaller
Hamming balls.
"""

from __future__ import annotations

from repro.datasets import DATASET_NAMES
from repro.experiments.reporting import CurveFamily
from repro.experiments.runner import TABLE1_METHODS, make_contexts
from repro.retrieval.metrics import pr_curve_hamming
from repro.retrieval.protocol import relevance_matrix

#: Bit lengths shown in the figure.
FIGURE3_BITS: tuple[int, ...] = (64, 128)


def run_figure3(
    scale: float = 0.02,
    bit_lengths: tuple[int, ...] = FIGURE3_BITS,
    datasets: tuple[str, ...] = DATASET_NAMES,
    methods: tuple[str, ...] = TABLE1_METHODS,
    seed: int = 0,
    epochs: int | None = None,
    store=None,
) -> dict[tuple[str, int], CurveFamily]:
    """Regenerate every Figure 3 panel; keys are (dataset, bits).

    Each curve is recall (x) vs precision (y) over the radius sweep.
    """
    panels: dict[tuple[str, int], CurveFamily] = {}
    contexts = make_contexts(datasets, scale=scale, seed=seed, epochs=epochs,
                             store=store)
    for dataset, ctx in contexts.items():
        relevance = relevance_matrix(
            ctx.dataset.query_labels, ctx.dataset.database_labels
        )
        for bits in bit_lengths:
            family = CurveFamily(
                title=f"Figure 3: PR curve on {dataset} @{bits} bits",
                x_label="recall",
                y_label="precision",
            )
            for method in methods:
                fit = ctx.fit(method, bits)
                curve = pr_curve_hamming(
                    fit.query_codes, fit.database_codes, relevance
                )
                family.record(method, curve.recall, curve.precision)
            panels[(dataset, bits)] = family
    return panels
