"""Assemble EXPERIMENTS.md from persisted benchmark results.

``pytest benchmarks/ --benchmark-only`` writes each regenerated table/figure
to ``benchmarks/results/<name>.txt``; :func:`write_experiments_md` stitches
them into the paper-vs-measured record the reproduction brief requires.
"""

from __future__ import annotations

from pathlib import Path

_HEADER = """\
# EXPERIMENTS — paper vs. measured

Generated from the benchmark harness (`pytest benchmarks/ --benchmark-only`);
raw renders live in `benchmarks/results/`.  Absolute numbers are measured at
reproduction scale (~4% of the paper's split sizes) on the simulated
substrate, so the comparison target is *shape* — orderings, margins, and
crossovers — not absolute values.  See DESIGN.md §2 for the substitution
argument and §2.2 for deliberate deviations.

## Shape claims and their status

| claim (paper) | where checked |
|---|---|
| UHSCM best on all 3 datasets × 4 code lengths (Table 1) | `table1` section below |
| Largest UHSCM margin on CIFAR10; small margins on multi-label sets | `table1` |
| UHSCM's P@N curve dominates at every N (Figure 2) | `figure2` |
| UHSCM's PR curve dominates (Figure 3) | `figure3` |
| Concept vocabulary matters: COCO best on CIFAR10, NUS-81 best on the others (Table 2 rows 1–2) | `table2` |
| Concept mining beats raw CLIP-feature similarity (row 3) | `table2` |
| "a photo of the {concept}" is the best template (rows 4–6) | `table2` |
| Eq. 4–5 denoising beats no-denoising and k-means clustering (rows 7–12) | `table2` |
| Modified contrastive loss beats none and beats CIB's J_c (rows 13–14) | `table2` |
| UHSCM's cost comparable to SSDH/GH/CIB; BGAN & MLS3RDUH much slower (Table 3) | `table3` |
| UHSCM's hash codes form the best-separated clusters (Figure 5) | `figure5` |
| UHSCM has the fewest fault images in top-10 retrieval (Figure 6) | `figure6` |

## Known deviations

1. **Table 3, MLS3RDUH ranking.** At reproduction scale (~420 training
   images) MLS3RDUH's O(n²·hops) manifold diffusion is cheap, so it does not
   dominate the cost table the way it does at the paper's n = 10,500.  The
   bench therefore also times the *guidance-construction* step at two scales
   to exhibit the super-linear growth that makes it the slowest method at
   paper scale.  BGAN's extra generator/discriminator updates do reproduce
   its premium at every scale.
2. **Compressed multi-label margins.** UHSCM wins NUS-WIDE and MIRFlickr by
   ~0.01–0.03 MAP (paper: ~0.02–0.03) — the ordering holds, but with a small
   absolute cushion, individual cells at one bit width can sit within noise
   of CIB.
3. **Hyper-parameters.** τ default is 1m (paper: 3m, with 1m reported
   equally good); the multi-label (α, λ, γ) optima shift slightly after
   re-running the paper's §4.6 selection on the simulated data (DESIGN.md
   §2.2).

"""

#: Sections in the order they appear in the paper.
_SECTIONS = (
    ("table1", "Table 1 — MAP of Hamming ranking"),
    ("figure2", "Figure 2 — Precision@N curves"),
    ("figure3", "Figure 3 — Precision-Recall curves (hash lookup)"),
    ("table2", "Table 2 — ablation variants"),
    ("table3", "Table 3 — time consumption"),
    ("figure4", "Figure 4 — hyper-parameter sensitivity"),
    ("figure5", "Figure 5 — t-SNE cluster separation"),
    ("figure6", "Figure 6 — top-10 retrieval quality"),
    ("ablation_prompt_tuning",
     "Extension — CoOp-style prompt tuning (beyond the paper)"),
)


def write_experiments_md(
    results_dir: str | Path,
    output_path: str | Path,
) -> str:
    """Build EXPERIMENTS.md from the persisted benchmark renders.

    Missing sections are marked as not-yet-run rather than failing, so the
    document can be regenerated incrementally.  Returns the rendered text.
    """
    results_dir = Path(results_dir)
    parts = [_HEADER]
    for name, title in _SECTIONS:
        parts.append(f"## {name}: {title}\n")
        path = results_dir / f"{name}.txt"
        if path.exists():
            parts.append("```text")
            parts.append(path.read_text().rstrip())
            parts.append("```")
        else:
            parts.append(
                f"*(not yet generated — run "
                f"`pytest benchmarks/bench_{name}.py --benchmark-only`)*"
            )
        parts.append("")
    text = "\n".join(parts)
    Path(output_path).write_text(text)
    return text
