"""Shared machinery for the experiment runners.

The paper's evaluation (§4.1) compares ten methods on three datasets at four
code lengths.  :class:`ExperimentContext` owns the dataset + SimCLIP pair
for one dataset at one scale and knows how to fit any method by Table 1 name
and produce its query/database codes, so each table/figure runner is a thin
loop.

Fitting runs through the staged pipeline: when the context holds an
:class:`~repro.pipeline.ArtifactStore`, every fit is an ``encode`` stage
whose artifact (query + database codes) persists on disk, UHSCM fits share
one mine → denoise → build_q chain per dataset across all bit widths and
all variants with the same similarity settings, and a killed table run
resumes from its completed (method, n_bits) cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import BASELINES, make_baseline
from repro.config import UHSCMConfig, paper_config
from repro.core.uhscm import UHSCM
from repro.core.variants import get_variant
from repro.datasets import HashingDataset, load_dataset
from repro.errors import ConfigurationError
from repro.pipeline import ENCODE, ArtifactStore, Stage, dataset_key, run_stage
from repro.retrieval import RetrievalReport, evaluate_codes
from repro.utils.timer import Timer
from repro.vlp import SimCLIP

#: Table 1 method order (paper rows top to bottom).
TABLE1_METHODS: tuple[str, ...] = (
    "LSH", "SH", "ITQ", "AGH", "SSDH", "GH", "BGAN", "MLS3RDUH", "CIB",
    "UHSCM",
)

_SHALLOW = frozenset({"LSH", "SH", "ITQ", "AGH"})


@dataclass
class FitResult:
    """Codes + timing for one fitted method on one dataset at one bit width.

    ``fit_seconds`` for a fit replayed from the artifact store is the wall
    time recorded when the cell originally trained, not the replay cost.
    """

    method: str
    n_bits: int
    query_codes: np.ndarray
    database_codes: np.ndarray
    fit_seconds: float


@dataclass
class ExperimentContext:
    """One dataset (with its world and SimCLIP) plus a code cache."""

    dataset_name: str
    scale: float = 0.02
    seed: int = 0
    epochs: int | None = None
    #: Optional retrieval serving backend name (see repro.retrieval.backend);
    #: None keeps the direct BLAS distance path.  All backends are exact, so
    #: table/figure numbers are identical either way.
    backend: str | None = None
    #: Optional artifact store making fits resumable and Q shareable across
    #: bit widths; None keeps the purely in-process cache.
    store: ArtifactStore | None = None
    #: Top-k sparse Q for UHSCM fits (None = dense paper-parity Q); see
    #: :attr:`repro.config.UHSCMConfig.sparse_topk`.
    sparse_topk: int | None = None
    #: Out-of-core residency for sparse staged builds (bit-identical outputs,
    #: never fingerprinted); see :attr:`repro.config.UHSCMConfig.out_of_core`.
    out_of_core: bool = False
    #: Worker count for the parallel kernels behind UHSCM fits (bit-identical
    #: outputs, never fingerprinted); see
    #: :attr:`repro.config.UHSCMConfig.workers`.
    workers: int | None = None
    #: Pool backend for the Q-build kernels (thread/process; bit-identical
    #: outputs, never fingerprinted); see
    #: :attr:`repro.config.UHSCMConfig.pool_backend`.
    pool_backend: str | None = None
    dataset: HashingDataset = field(init=False)
    clip: SimCLIP = field(init=False)
    _cache: dict[tuple[str, int], FitResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.dataset = load_dataset(self.dataset_name, scale=self.scale,
                                    seed=self.seed)
        self.clip = SimCLIP(self.dataset.world)

    # -- pipeline provenance -----------------------------------------------

    def data_key(self) -> dict:
        """Provenance of this context's training split for stage fingerprints."""
        return dataset_key(self.dataset_name, self.scale, self.seed)

    def _fit_stage(self, label: str, n_bits: int) -> Stage:
        params = {
            "data": self.data_key(),
            "method": label,
            "n_bits": n_bits,
            "epochs": self.epochs,
        }
        uses_q = (label.upper() == "UHSCM"
                  or (label.startswith("variant:")
                      and label != "variant:avg"))
        if self.sparse_topk is not None and uses_q:
            # Only when set and only for the UHSCM family — baselines never
            # consume Q, and the avg variant always builds dense Q — so
            # those cells (and every artifact cached before the sparse
            # engine existed) stay valid either way.
            params["sparse_topk"] = self.sparse_topk
        return Stage(ENCODE, params=params)

    # -- method construction ---------------------------------------------------

    def build_method(self, name: str, n_bits: int):
        """Instantiate a Table 1 method (baseline or UHSCM) ready to fit."""
        world = self.dataset.world
        if name.upper() == "UHSCM":
            return UHSCM(self.uhscm_config(n_bits), clip=self.clip)
        if name in _SHALLOW or name.upper() in _SHALLOW:
            return make_baseline(name, n_bits, world.vgg_features,
                                 seed=self.seed)
        kwargs = {}
        if self.epochs is not None:
            kwargs["epochs"] = self.epochs
        return make_baseline(
            name,
            n_bits,
            world.backbone_features,
            seed=self.seed,
            guidance_extractor=world.vgg_features,
            augment_fn=lambda f, rng: world.augment_features(f, rng),
            **kwargs,
        )

    def uhscm_config(self, n_bits: int) -> UHSCMConfig:
        from dataclasses import replace

        config = paper_config(self.dataset_name, n_bits=n_bits, seed=self.seed)
        if self.epochs is not None:
            config = replace(config, train=replace(config.train,
                                                   epochs=self.epochs))
        if self.sparse_topk is not None:
            config = replace(config, sparse_topk=self.sparse_topk)
        if self.out_of_core:
            config = replace(config, out_of_core=True)
        if self.workers is not None:
            config = replace(config, workers=self.workers)
        if self.pool_backend is not None:
            config = replace(config, pool_backend=self.pool_backend)
        return config

    def build_variant(self, key: str, n_bits: int) -> UHSCM:
        """Instantiate a Table 2 UHSCM variant by row key."""
        model = get_variant(key)(self.uhscm_config(n_bits), self.clip)
        return model

    # -- fitting ----------------------------------------------------------------

    def _fit_model(self, model, use_store: bool) -> float:
        """Fit ``model`` on the training split; returns wall seconds."""
        timer = Timer()
        with timer:
            if use_store and isinstance(model, UHSCM):
                # The staged path shares the mined Q across every fit with
                # the same similarity settings and replays finished
                # train stages.
                model.fit(self.dataset.train_images, store=self.store,
                          data_key=self.data_key())
            else:
                model.fit(self.dataset.train_images)
        return timer.elapsed

    def _staged_fit(
        self, label: str, n_bits: int, make_model, use_cache: bool
    ) -> FitResult:
        """Fit + encode through the artifact store (when one is attached)."""
        use_store = use_cache and self.store is not None
        stage = self._fit_stage(label, n_bits)

        def build() -> tuple[dict, dict[str, np.ndarray]]:
            model = make_model()
            elapsed = self._fit_model(model, use_store)
            return (
                {"method": label, "n_bits": n_bits, "fit_seconds": elapsed},
                {
                    "query_codes": model.encode(self.dataset.query_images),
                    "database_codes": model.encode(
                        self.dataset.database_images
                    ),
                },
            )

        artifact = run_stage(self.store if use_store else None, stage, build)
        return FitResult(
            method=label,
            n_bits=n_bits,
            query_codes=artifact.arrays["query_codes"],
            database_codes=artifact.arrays["database_codes"],
            fit_seconds=artifact.meta["fit_seconds"],
        )

    def fit(self, name: str, n_bits: int, use_cache: bool = True) -> FitResult:
        """Fit a method and encode query + database splits (cached).

        ``use_cache=False`` bypasses both the in-process cache and the
        artifact store (Table 3 times fits, so a replayed artifact or a
        pre-mined Q would corrupt its numbers).
        """
        key = (name, n_bits)
        if use_cache and key in self._cache:
            return self._cache[key]
        result = self._staged_fit(
            name, n_bits, lambda: self.build_method(name, n_bits), use_cache
        )
        if use_cache:
            self._cache[key] = result
        return result

    def fit_variant(
        self, variant: str, n_bits: int, use_cache: bool = True
    ) -> FitResult:
        """Fit a Table 2 variant and encode both splits (cached like fit)."""
        label = f"variant:{variant}"
        key = (label, n_bits)
        if use_cache and key in self._cache:
            return self._cache[key]
        result = self._staged_fit(
            label, n_bits, lambda: self.build_variant(variant, n_bits),
            use_cache,
        )
        if use_cache:
            self._cache[key] = result
        return result

    def evaluate(self, fit: FitResult, **kwargs) -> RetrievalReport:
        """Run the full §4.2 evaluation on a fit's codes."""
        kwargs.setdefault("backend", self.backend)
        return evaluate_codes(
            fit.query_codes,
            fit.database_codes,
            self.dataset.query_labels,
            self.dataset.database_labels,
            **kwargs,
        )

    def evaluate_model(self, model, **kwargs) -> RetrievalReport:
        """Evaluate an already-fitted model object (used by Figure 4)."""
        kwargs.setdefault("backend", self.backend)
        return evaluate_codes(
            model.encode(self.dataset.query_images),
            model.encode(self.dataset.database_images),
            self.dataset.query_labels,
            self.dataset.database_labels,
            **kwargs,
        )


def make_contexts(
    datasets: tuple[str, ...],
    scale: float,
    seed: int = 0,
    epochs: int | None = None,
    store: ArtifactStore | None = None,
    sparse_topk: int | None = None,
    out_of_core: bool = False,
    workers: int | None = None,
    pool_backend: str | None = None,
) -> dict[str, ExperimentContext]:
    """Build one context per dataset."""
    if not datasets:
        raise ConfigurationError("no datasets requested")
    return {
        name: ExperimentContext(name, scale=scale, seed=seed, epochs=epochs,
                                store=store, sparse_topk=sparse_topk,
                                out_of_core=out_of_core, workers=workers,
                                pool_backend=pool_backend)
        for name in datasets
    }
