"""Table 2: MAPs of UHSCM and its fourteen ablation variants.

The rows (paper §4.4) probe every design decision: candidate vocabulary
(1–2), concept mining vs. raw features (3), prompt templates (4–6),
denoising vs. clustering (7–12), and the modified contrastive loss (13–14).
"""

from __future__ import annotations

from repro.core.variants import VARIANTS
from repro.datasets import DATASET_NAMES
from repro.experiments.reporting import MapTable
from repro.experiments.runner import make_contexts

#: Paper Table 2 values at 64 bits (used in EXPERIMENTS.md's index).
PAPER_TABLE2_64BITS: dict[str, dict[str, float]] = {
    "coco": {"cifar10": 0.866, "nuswide": 0.785, "mirflickr": 0.809},
    "nus&coco": {"cifar10": 0.865, "nuswide": 0.805, "mirflickr": 0.824},
    "if": {"cifar10": 0.776, "nuswide": 0.795, "mirflickr": 0.792},
    "p1": {"cifar10": 0.841, "nuswide": 0.798, "mirflickr": 0.815},
    "p2": {"cifar10": 0.846, "nuswide": 0.789, "mirflickr": 0.800},
    "avg": {"cifar10": 0.851, "nuswide": 0.805, "mirflickr": 0.824},
    "wo_de": {"cifar10": 0.780, "nuswide": 0.805, "mirflickr": 0.827},
    "c20": {"cifar10": 0.456, "nuswide": 0.764, "mirflickr": 0.773},
    "c30": {"cifar10": 0.543, "nuswide": 0.766, "mirflickr": 0.792},
    "c40": {"cifar10": 0.620, "nuswide": 0.803, "mirflickr": 0.798},
    "c50": {"cifar10": 0.691, "nuswide": 0.781, "mirflickr": 0.817},
    "c60": {"cifar10": 0.697, "nuswide": 0.780, "mirflickr": 0.806},
    "wo_mcl": {"cifar10": 0.715, "nuswide": 0.801, "mirflickr": 0.819},
    "cl": {"cifar10": 0.800, "nuswide": 0.801, "mirflickr": 0.826},
    "ours": {"cifar10": 0.850, "nuswide": 0.810, "mirflickr": 0.834},
}


def run_table2(
    scale: float = 0.02,
    bit_lengths: tuple[int, ...] = (32, 64),
    datasets: tuple[str, ...] = DATASET_NAMES,
    variants: tuple[str, ...] = tuple(VARIANTS),
    seed: int = 0,
    epochs: int | None = None,
    store=None,
    sparse_topk: int | None = None,
    out_of_core: bool = False,
    workers: int | None = None,
    pool_backend: str | None = None,
) -> MapTable:
    """Regenerate Table 2 (variant ablations) at the requested scale.

    With an artifact store, variants sharing similarity settings (e.g.
    ``ours`` / ``wo_mcl`` / ``cl``, which differ only on the training side)
    reuse one mined Q per dataset, and finished cells replay on resume.
    ``sparse_topk`` routes the UHSCM-family variants through the top-k CSR
    Q engine (the ``avg`` variant requires dense Q and rejects it);
    ``out_of_core`` streams those builds through disk-resident buffers
    without changing any cell; ``workers`` runs the fits' parallel kernels
    on that many threads, also without changing any cell.
    """
    table = MapTable(title="Table 2: MAPs of UHSCM and its variants")
    contexts = make_contexts(datasets, scale=scale, seed=seed, epochs=epochs,
                             store=store, sparse_topk=sparse_topk,
                             out_of_core=out_of_core, workers=workers,
                             pool_backend=pool_backend)
    for dataset, ctx in contexts.items():
        for bits in bit_lengths:
            for key in variants:
                fit = ctx.fit_variant(key, bits)
                report = ctx.evaluate(fit)
                table.record(key, dataset, bits, report.map)
    return table
