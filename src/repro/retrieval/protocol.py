"""Ground-truth relevance protocol.

Following §4.2: two images form a *similar pair* iff they share at least one
label; otherwise they are dissimilar.  Relevance matrices are boolean with
queries as rows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def relevance_matrix(query_labels: np.ndarray, db_labels: np.ndarray) -> np.ndarray:
    """Boolean (n_query, n_db) matrix: share >= 1 label (paper §4.2)."""
    q = np.asarray(query_labels)
    d = np.asarray(db_labels)
    if q.ndim != 2 or d.ndim != 2:
        raise ShapeError(
            f"labels must be 2-D multi-hot arrays, got {q.shape} and {d.shape}"
        )
    if q.shape[1] != d.shape[1]:
        raise ShapeError(
            f"label dimensions differ: {q.shape[1]} vs {d.shape[1]}"
        )
    return (q.astype(np.int64) @ d.astype(np.int64).T) > 0
