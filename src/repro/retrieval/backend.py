"""Retrieval serving backends: protocol, registry, and query-result cache.

The serving layer exposes every Hamming index through one interface so the
evaluation harness, the CLI, and the benchmarks can swap implementations
freely:

- :class:`RetrievalBackend` — the structural protocol every index satisfies:
  incremental :meth:`~RetrievalBackend.add` (append semantics),
  :meth:`~RetrievalBackend.remove` by stable id, top-k
  :meth:`~RetrievalBackend.search` and :meth:`~RetrievalBackend.radius_search`.
- :func:`register_backend` / :func:`make_backend` — a tiny name registry.
  ``"bruteforce"`` is the bit-packed linear-scan
  :class:`~repro.retrieval.engine.HammingIndex`; ``"multi-index"`` is the
  sublinear :class:`~repro.retrieval.multi_index.MultiIndexHammingIndex`.
  The two are tested to agree bit-for-bit.
- :class:`QueryResultCache` — an optional bounded LRU keyed on the packed
  query bytes, for serving workloads with repeated queries.  Backends clear
  it on every mutation, so cached results never go stale.

Stable ids: rows are numbered in insertion order starting at 0 and keep
their id for the lifetime of the index — ``remove()`` never renumbers.
While no rows have been removed, ids coincide with row positions in the
concatenation of all ``add()`` calls.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError


@runtime_checkable
class RetrievalBackend(Protocol):
    """Structural interface of a Hamming retrieval index.

    Implementations index ±1 code matrices and answer exact top-k and
    Hamming-radius queries over the *alive* rows, identifying results by
    stable insertion-order ids.
    """

    n_bits: int

    def add(self, codes: np.ndarray) -> "RetrievalBackend":  # pragma: no cover
        """Append ±1 codes; newly added rows get the next stable ids."""
        ...

    def remove(self, ids: np.ndarray) -> int:  # pragma: no cover
        """Remove rows by stable id; returns how many were removed."""
        ...

    def search(
        self, query_codes: np.ndarray, top_k: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:  # pragma: no cover
        """Exact top-k Hamming ranking: (ids, distances), ties by id."""
        ...

    def radius_search(
        self, query_codes: np.ndarray, radius: int
    ) -> list[np.ndarray]:  # pragma: no cover
        """All alive ids within Hamming ``radius`` per query, sorted."""
        ...

    def __len__(self) -> int:  # pragma: no cover
        """Number of alive (searchable) rows."""
        ...


_REGISTRY: dict[str, Callable[..., RetrievalBackend]] = {}


def register_backend(name: str):
    """Class decorator registering a backend factory under ``name``."""

    def decorate(factory: Callable[..., RetrievalBackend]):
        if name in _REGISTRY:
            raise ConfigurationError(f"backend {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return decorate


def _ensure_builtin_backends() -> None:
    # Importing the modules runs their register_backend decorators; done
    # lazily so `repro.retrieval.backend` has no import cycle with them.
    import repro.retrieval.engine  # noqa: F401
    import repro.retrieval.multi_index  # noqa: F401


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    _ensure_builtin_backends()
    return tuple(sorted(_REGISTRY))


def make_backend(name: str, n_bits: int, **kwargs) -> RetrievalBackend:
    """Instantiate a registered backend by name."""
    _ensure_builtin_backends()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown retrieval backend {name!r}; "
            f"choose from {sorted(_REGISTRY)}"
        ) from None
    return factory(n_bits, **kwargs)


class QueryResultCache:
    """Bounded LRU cache for per-query retrieval results.

    Keys are built by the owning index from the packed query bytes plus the
    query parameters, so identical queries at identical settings hit.  The
    index clears the cache on every ``add``/``remove``.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries <= 0:
            raise ConfigurationError(
                f"cache max_entries must be positive, got {max_entries}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable):
        """Return the cached value (refreshing recency) or ``None``."""
        try:
            value = self._data.pop(key)
        except KeyError:
            self.misses += 1
            return None
        self._data[key] = value
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        self._data.pop(key, None)
        self._data[key] = value
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
