"""Retrieval serving backends: protocol, registry, and query-result cache.

The serving layer exposes every Hamming index through one interface so the
evaluation harness, the CLI, and the benchmarks can swap implementations
freely:

- :class:`RetrievalBackend` — the structural protocol every index satisfies:
  incremental :meth:`~RetrievalBackend.add` (append semantics),
  :meth:`~RetrievalBackend.remove` by stable id, top-k
  :meth:`~RetrievalBackend.search` and :meth:`~RetrievalBackend.radius_search`.
- :func:`register_backend` / :func:`make_backend` — a tiny name registry.
  ``"bruteforce"`` is the bit-packed linear-scan
  :class:`~repro.retrieval.engine.HammingIndex`; ``"multi-index"`` is the
  sublinear :class:`~repro.retrieval.multi_index.MultiIndexHammingIndex`;
  ``"sharded"`` is the hash-partitioned
  :class:`~repro.retrieval.sharded.ShardedIndex` composing any of the
  others as its shard type.  All are tested to agree bit-for-bit.
- :class:`QueryResultCache` — an optional bounded LRU keyed on the packed
  query bytes, for serving workloads with repeated queries.  Backends clear
  it on every mutation, so cached results never go stale.

Stable ids: rows are numbered in insertion order starting at 0 and keep
their id for the lifetime of the index — ``remove()`` never renumbers.
While no rows have been removed, ids coincide with row positions in the
concatenation of all ``add()`` calls.
"""

from __future__ import annotations

import inspect
from collections import OrderedDict
from collections.abc import Hashable
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError


@runtime_checkable
class RetrievalBackend(Protocol):
    """Structural interface of a Hamming retrieval index.

    Implementations index ±1 code matrices and answer exact top-k and
    Hamming-radius queries over the *alive* rows, identifying results by
    stable insertion-order ids.
    """

    n_bits: int

    def add(self, codes: np.ndarray) -> "RetrievalBackend":  # pragma: no cover
        """Append ±1 codes; newly added rows get the next stable ids."""
        ...

    def remove(self, ids: np.ndarray) -> int:  # pragma: no cover
        """Remove rows by stable id; returns how many were removed."""
        ...

    def search(
        self, query_codes: np.ndarray, top_k: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:  # pragma: no cover
        """Exact top-k Hamming ranking: (ids, distances), ties by id."""
        ...

    def radius_search(
        self, query_codes: np.ndarray, radius: int
    ) -> list[np.ndarray]:  # pragma: no cover
        """All alive ids within Hamming ``radius`` per query, sorted."""
        ...

    def __len__(self) -> int:  # pragma: no cover
        """Number of alive (searchable) rows."""
        ...


_REGISTRY: dict[str, Callable[..., RetrievalBackend]] = {}


def register_backend(name: str):
    """Class decorator registering a backend factory under ``name``."""

    def decorate(factory: Callable[..., RetrievalBackend]):
        if name in _REGISTRY:
            raise ConfigurationError(f"backend {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return decorate


def _ensure_builtin_backends() -> None:
    # Importing the modules runs their register_backend decorators; done
    # lazily so `repro.retrieval.backend` has no import cycle with them.
    import repro.retrieval.engine  # noqa: F401
    import repro.retrieval.multi_index  # noqa: F401
    import repro.retrieval.sharded  # noqa: F401


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    _ensure_builtin_backends()
    return tuple(sorted(_REGISTRY))


def backend_options(name: str) -> tuple[str, ...]:
    """Keyword options a registered backend's constructor accepts."""
    _ensure_builtin_backends()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown retrieval backend {name!r}; "
            f"choose from {sorted(_REGISTRY)}"
        ) from None
    parameters = list(inspect.signature(factory).parameters.values())
    return tuple(
        p.name
        for p in parameters[1:]  # first parameter is n_bits, always given
        if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
    )


def make_backend(name: str, n_bits: int, **kwargs) -> RetrievalBackend:
    """Instantiate a registered backend by name.

    Unknown keyword arguments raise :class:`ConfigurationError` naming the
    backend and its accepted options instead of escaping as a bare
    ``TypeError`` from the constructor.
    """
    accepted = backend_options(name)  # raises on unknown backend names
    factory = _REGISTRY[name]
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown and not any(
        p.kind == p.VAR_KEYWORD
        for p in inspect.signature(factory).parameters.values()
    ):
        raise ConfigurationError(
            f"backend {name!r} does not accept option(s) "
            f"{', '.join(map(repr, unknown))}; accepted options: "
            f"{', '.join(accepted) or '(none)'}"
        )
    return factory(n_bits, **kwargs)


class QueryResultCache:
    """Bounded LRU cache for per-query retrieval results.

    Keys are built by the owning index from the packed query bytes plus the
    query parameters, so identical queries at identical settings hit.  The
    index clears the cache on every ``add``/``remove``.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries <= 0:
            raise ConfigurationError(
                f"cache max_entries must be positive, got {max_entries}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 before any)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: Hashable):
        """Return the cached value (refreshing recency) or ``None``."""
        try:
            value = self._data.pop(key)
        except KeyError:
            self.misses += 1
            return None
        self._data[key] = value
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        self._data.pop(key, None)
        self._data[key] = value
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


def cached_topk(
    cache: QueryResultCache,
    packed_bits: np.ndarray,
    top_k: int,
    compute: Callable[[list[int]], tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Shared miss/fill loop for cached batched top-k serving.

    ``packed_bits`` is the per-query key material (one packed uint8 row per
    query); ``compute(miss_positions)`` returns ``(ids, distances)`` for
    just that subset of queries.  Cached entries are stored as copies so a
    caller mutating its results never corrupts the cache.
    """
    n_queries = packed_bits.shape[0]
    out_ids = np.empty((n_queries, top_k), dtype=np.int64)
    out_dist = np.empty((n_queries, top_k), dtype=np.float64)
    misses = []
    for qi in range(n_queries):
        hit = cache.get(("top_k", top_k, packed_bits[qi].tobytes()))
        if hit is None:
            misses.append(qi)
        else:
            out_ids[qi], out_dist[qi] = hit
    if misses:
        fresh_ids, fresh_dist = compute(misses)
        for pos, qi in enumerate(misses):
            out_ids[qi], out_dist[qi] = fresh_ids[pos], fresh_dist[pos]
            cache.put(
                ("top_k", top_k, packed_bits[qi].tobytes()),
                (fresh_ids[pos].copy(), fresh_dist[pos].copy()),
            )
    return out_ids, out_dist


def cached_radius(
    cache: QueryResultCache,
    packed_bits: np.ndarray,
    radius: int,
    compute: Callable[[list[int]], "list[np.ndarray]"],
) -> "list[np.ndarray]":
    """Shared miss/fill loop for cached batched radius serving.

    Like :func:`cached_topk` but for per-query hit lists: the cache keeps
    the canonical arrays and every caller receives copies.
    """
    results: list[np.ndarray | None] = [None] * packed_bits.shape[0]
    misses = []
    for qi in range(packed_bits.shape[0]):
        hit = cache.get(("radius", radius, packed_bits[qi].tobytes()))
        if hit is None:
            misses.append(qi)
        else:
            results[qi] = hit.copy()
    if misses:
        for qi, hits in zip(misses, compute(misses)):
            cache.put(("radius", radius, packed_bits[qi].tobytes()), hits)
            results[qi] = hits.copy()
    return results
