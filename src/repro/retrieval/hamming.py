"""Hamming-space primitives: code packing and distance computation.

Hash codes live in {-1, +1}^k (paper §3.1).  Two distance paths are provided:

- :func:`hamming_distance_matrix` — BLAS path using the identity
  ``Hd(b_i, b_j) = (k - b_i·b_j) / 2`` (paper §3.4); fastest in numpy.
- :class:`PackedCodes` + :func:`packed_hamming_distance` — bit-packed uint8
  storage with hardware popcount (``np.bitwise_count`` over uint64 words on
  numpy >= 2, byte-LUT fallback otherwise), the representation a production
  system would ship (64x smaller than float codes).  Tested to agree
  exactly with the BLAS path.
- :func:`packed_distances_to_one` — single-query popcount against a packed
  row subset, the candidate-verification primitive the multi-index serving
  path uses (no float conversion, no re-validation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.utils.validation import check_binary_codes

#: Popcount lookup table for all byte values.
_POPCOUNT = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint16)

#: numpy >= 2.0 ships a hardware popcount ufunc; the LUT gather above stays
#: as the fallback so older numpys keep working.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_QUERY_CHUNK = 256


def _popcount_rows(xor: np.ndarray) -> np.ndarray:
    """Per-row popcount of a (..., n_bytes) uint8 XOR buffer (uint16 out).

    With a hardware popcount available, byte widths that are a multiple of
    8 are reinterpreted as uint64 words first — for 64-bit codes that is a
    single popcount per code pair instead of an 8-byte LUT gather.
    """
    if _HAS_BITWISE_COUNT:
        if xor.shape[-1] % 8 == 0 and xor.shape[-1] > 0:
            words = np.ascontiguousarray(xor).view(np.uint64)
            return np.bitwise_count(words).sum(axis=-1, dtype=np.uint16)
        return np.bitwise_count(xor).sum(axis=-1, dtype=np.uint16)
    return _POPCOUNT[xor].sum(axis=-1, dtype=np.uint16)


def hamming_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distances between ±1 code matrices.

    Uses ``Hd = (k - a·b) / 2``; the result is an integer-valued float
    matrix of shape ``(len(a), len(b))``.
    """
    a = check_binary_codes(a, "a")
    b = check_binary_codes(b, "b")
    if a.shape[1] != b.shape[1]:
        raise ShapeError(
            f"code lengths differ: {a.shape[1]} vs {b.shape[1]}"
        )
    k = a.shape[1]
    return (k - a @ b.T) / 2.0


@dataclass(frozen=True)
class PackedCodes:
    """Bit-packed ±1 hash codes: +1 -> bit 1, -1 -> bit 0.

    Attributes
    ----------
    bits:
        uint8 array of shape ``(n, ceil(k/8))``.
    n_bits:
        Original code length ``k`` (needed because packing pads to bytes).
    """

    bits: np.ndarray
    n_bits: int

    def __post_init__(self) -> None:
        if self.bits.dtype != np.uint8 or self.bits.ndim != 2:
            raise ShapeError("bits must be a 2-D uint8 array")
        expected = (self.n_bits + 7) // 8
        if self.bits.shape[1] != expected:
            raise ShapeError(
                f"bits has {self.bits.shape[1]} bytes per code, expected {expected} "
                f"for {self.n_bits}-bit codes"
            )

    def __len__(self) -> int:
        return self.bits.shape[0]

    @property
    def nbytes(self) -> int:
        return int(self.bits.nbytes)


def pack_codes(codes: np.ndarray) -> PackedCodes:
    """Pack a ±1 code matrix into bits (padding bits are zero)."""
    codes = check_binary_codes(codes)
    bools = codes > 0
    return PackedCodes(bits=np.packbits(bools, axis=1), n_bits=codes.shape[1])


def unpack_codes(packed: PackedCodes) -> np.ndarray:
    """Inverse of :func:`pack_codes`, recovering the ±1 matrix."""
    bools = np.unpackbits(packed.bits, axis=1)[:, : packed.n_bits]
    return np.where(bools.astype(bool), 1.0, -1.0)


def packed_distances_to_one(
    query_bits: np.ndarray, db_bits: np.ndarray
) -> np.ndarray:
    """Hamming distances from one packed query row to many packed db rows.

    ``query_bits`` is a 1-D uint8 row (one code), ``db_bits`` a 2-D uint8
    matrix of packed codes with the same byte width.  Returns a 1-D uint16
    distance vector.  Padding bits must be zero on both sides (as produced
    by :func:`pack_codes`), so they never contribute to the XOR popcount.
    """
    if query_bits.ndim != 1 or db_bits.ndim != 2:
        raise ShapeError(
            f"expected 1-D query and 2-D db, got {query_bits.shape} "
            f"and {db_bits.shape}"
        )
    if query_bits.shape[0] != db_bits.shape[1]:
        raise ShapeError(
            f"byte widths differ: {query_bits.shape[0]} vs {db_bits.shape[1]}"
        )
    return _popcount_rows(db_bits ^ query_bits[None, :])


def packed_hamming_distance(a: PackedCodes, b: PackedCodes) -> np.ndarray:
    """Pairwise Hamming distances between packed code sets (uint16 matrix).

    Queries are processed in chunks to bound the XOR buffer size.
    """
    if a.n_bits != b.n_bits:
        raise ShapeError(f"code lengths differ: {a.n_bits} vs {b.n_bits}")
    a_bits, b_bits = a.bits, b.bits
    if (_HAS_BITWISE_COUNT and a_bits.shape[1] % 8 == 0
            and a_bits.shape[1] > 0):
        # Reinterpret both operands as uint64 words *before* the pairwise
        # XOR: the broadcast buffer shrinks 8x in element count, and each
        # word resolves with one hardware popcount.
        a_bits = np.ascontiguousarray(a_bits).view(np.uint64)
        b_bits = np.ascontiguousarray(b_bits).view(np.uint64)
        popcount = np.bitwise_count
    elif _HAS_BITWISE_COUNT:
        popcount = np.bitwise_count
    else:
        popcount = _POPCOUNT.__getitem__
    out = np.empty((len(a), len(b)), dtype=np.uint16)
    for start in range(0, len(a), _QUERY_CHUNK):
        chunk = a_bits[start : start + _QUERY_CHUNK]
        xor = chunk[:, None, :] ^ b_bits[None, :, :]
        counts = popcount(xor)
        if counts.shape[2] == 1:  # 64-bit codes: one word, nothing to sum
            out[start : start + _QUERY_CHUNK] = counts[:, :, 0]
        else:
            out[start : start + _QUERY_CHUNK] = counts.sum(
                axis=2, dtype=np.uint16
            )
    return out
